//! Warp-synchronous GPU simulator for the `multidim` framework.
//!
//! This crate is the hardware substitute for the paper's Tesla K20c (see
//! DESIGN.md): it *functionally executes* the kernels produced by
//! `multidim-codegen` — real data, lane masks, shared memory, atomics,
//! block synchronization — while accumulating memory-system events
//! (coalescing transactions, bank conflicts, occupancy), and converts them
//! to time with an occupancy-aware roofline model. It also provides the
//! multicore-CPU baseline estimate used by the Figure 14 experiments.
//!
//! # Examples
//!
//! End-to-end: build a program, map it, lower it, simulate it, and check
//! the result against the reference interpreter.
//!
//! ```
//! use multidim_ir::*;
//! use multidim_mapping::analyze;
//! use multidim_codegen::{lower, CodegenOptions};
//! use multidim_sim::run_program;
//! use multidim_device::GpuSpec;
//! use std::collections::HashMap;
//!
//! let mut b = ProgramBuilder::new("scale");
//! let n = b.sym("N");
//! let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
//! let root = b.map(Size::sym(n), |b, i| b.read(x, &[i.into()]) * Expr::lit(3.0));
//! let p = b.finish_map(root, "y", ScalarKind::F32)?;
//!
//! let mut bind = Bindings::new();
//! bind.bind(n, 1000);
//! let gpu = GpuSpec::tesla_k20c();
//! let analysis = analyze(&p, &bind, &gpu);
//! let kp = lower(&p, &analysis.decision, &CodegenOptions::default())?;
//!
//! let inputs: HashMap<_, _> = [(x, vec![2.0; 1000])].into_iter().collect();
//! let sim = run_program(&kp, &gpu, &bind, &inputs)?;
//! assert_eq!(sim.array(p.output.unwrap())[0], 6.0);
//! assert!(sim.total_seconds > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod cost;
mod cpu;
mod exec;
mod memory;
pub mod metrics;
mod report;

pub use cost::{kernel_time, memory_floor_seconds, occupancy, KernelCost, KernelTime, LaunchShape};
pub use cpu::{estimate_cpu, random_access_fraction, run_cpu, CpuEstimate};
pub use exec::{
    run_program, run_program_sanitized, DeviceBuffer, SanitizerReport, SimError, SimResult,
    WriteConflict,
};
pub use memory::{bank_conflicts, coalesce};
pub use metrics::{KernelMetrics, RunMetrics};
pub use report::{kernel_report, BoundBy, Efficiency};

/// Host→device transfer time for `bytes` over the default PCIe link.
pub fn transfer_seconds(bytes: u64) -> f64 {
    multidim_device::PcieSpec::default().transfer_seconds(bytes)
}
