//! Warp-synchronous execution of kernel IR.
//!
//! Kernels execute with real data, warp by warp, with lane masks for
//! divergence — both sides of a divergent branch run (and cost), inactive
//! lanes are masked. Blocks containing `__syncthreads` execute in
//! *block-lockstep*: every statement runs across all warps before the next
//! statement starts, which is exactly the synchronization the generated
//! reduction trees rely on. Loop bounds and branch conditions enclosing a
//! `Sync` must be block-uniform (our code generator guarantees this).
//!
//! Every global access is coalesced through [`crate::coalesce`] and every
//! shared-memory access through [`crate::bank_conflicts`], accumulating the
//! [`KernelCost`] record that the timing model converts to seconds.

use crate::cost::{kernel_time, KernelCost, KernelTime, LaunchShape};
use crate::memory::{bank_conflicts, coalesce};
use crate::report::{BoundBy, Efficiency};
use multidim_codegen::{BufId, BufferInit, KExpr, Kernel, KernelProgram, Stmt};
use multidim_device::{GpuSpec, WARP_SIZE};
use multidim_ir::{apply_bin, apply_un, ArrayId, Bindings, ReduceOp, Size};
use multidim_trace as trace;
use std::collections::HashMap;
use std::fmt;

/// Simulation failure (out-of-bounds access, missing input, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError(pub String);

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation error: {}", self.0)
    }
}

impl std::error::Error for SimError {}

/// A device buffer during simulation.
#[derive(Debug, Clone)]
pub struct DeviceBuffer {
    /// Element width in bytes (for coalescing).
    pub elem_bytes: u64,
    /// Contents.
    pub data: Vec<f64>,
    /// Virtual base byte address (distinct buffers never share segments).
    pub base: u64,
}

/// Result of simulating a [`KernelProgram`].
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Final contents of buffers that materialize program arrays.
    pub arrays: HashMap<ArrayId, Vec<f64>>,
    /// Kernel names (same order as `kp.kernels`).
    pub names: Vec<String>,
    /// Per-kernel launch shapes.
    pub shapes: Vec<LaunchShape>,
    /// Per-kernel cost records (same order as `kp.kernels`).
    pub costs: Vec<KernelCost>,
    /// Per-kernel timing breakdowns.
    pub times: Vec<KernelTime>,
    /// Sum of kernel times in seconds.
    pub total_seconds: f64,
}

impl SimResult {
    /// The final contents of `array`.
    ///
    /// # Panics
    ///
    /// Panics if the array was not materialized by the program.
    pub fn array(&self, array: ArrayId) -> &[f64] {
        &self.arrays[&array]
    }

    /// Sum of the per-kernel cost counters across the whole run.
    pub fn total_cost(&self) -> KernelCost {
        let mut sum = KernelCost::default();
        for c in &self.costs {
            sum.add(c);
        }
        sum
    }
}

/// One element stored by two different threads within one kernel launch,
/// observed by the sanitizer.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteConflict {
    /// The launching kernel's name.
    pub kernel: String,
    /// The conflicting buffer's name.
    pub buffer: String,
    /// The program array the buffer materializes, if any.
    pub array: Option<ArrayId>,
    /// The element both threads stored.
    pub index: u64,
    /// Global thread id of the first observed writer.
    pub first_tid: u64,
    /// Global thread id of the second (conflicting) writer.
    pub second_tid: u64,
}

/// What the sanitizer observed across a whole program run.
///
/// Only plain (non-atomic) global stores are tracked: an atomic
/// read-modify-write cannot lose an update, so concurrent atomics to one
/// element are not write-write races. Each kernel launch is a fresh
/// epoch — kernel boundaries order all memory operations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SanitizerReport {
    /// Number of store operations recorded.
    pub tracked_stores: u64,
    /// Observed write-write conflicts (one entry per conflicting element
    /// per kernel, reporting the first colliding pair).
    pub conflicts: Vec<WriteConflict>,
}

impl SanitizerReport {
    /// Did any kernel exhibit a write-write conflict?
    pub fn has_conflicts(&self) -> bool {
        !self.conflicts.is_empty()
    }
}

/// Per-kernel first-writer map backing the sanitizer.
#[derive(Default)]
struct WriteTracker {
    /// (buffer, element) → global tid of the first store this launch.
    writers: HashMap<(BufId, u64), u64>,
    /// Elements already reported this launch (report each once).
    flagged: std::collections::HashSet<(BufId, u64)>,
    tracked: u64,
    /// (buffer, element, first tid, second tid).
    conflicts: Vec<(BufId, u64, u64, u64)>,
}

impl WriteTracker {
    fn record(&mut self, buf: BufId, index: u64, tid: u64) {
        self.tracked += 1;
        match self.writers.entry((buf, index)) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(tid);
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                let first = *e.get();
                if first != tid && self.flagged.insert((buf, index)) {
                    self.conflicts.push((buf, index, first, tid));
                }
            }
        }
    }
}

/// Simulate `kp` on `gpu` with launch-time `bindings` and host `inputs`.
///
/// # Errors
///
/// Returns [`SimError`] for missing inputs or faulting kernels.
pub fn run_program(
    kp: &KernelProgram,
    gpu: &GpuSpec,
    bindings: &Bindings,
    inputs: &HashMap<ArrayId, Vec<f64>>,
) -> Result<SimResult, SimError> {
    run_program_inner(kp, gpu, bindings, inputs, false).map(|(r, _)| r)
}

/// Like [`run_program`], but with the sanitizer on: every non-atomic
/// global store is recorded with the issuing thread, and elements stored
/// by two different threads within one launch are reported as conflicts.
///
/// # Errors
///
/// Returns [`SimError`] for missing inputs or faulting kernels.
pub fn run_program_sanitized(
    kp: &KernelProgram,
    gpu: &GpuSpec,
    bindings: &Bindings,
    inputs: &HashMap<ArrayId, Vec<f64>>,
) -> Result<(SimResult, SanitizerReport), SimError> {
    run_program_inner(kp, gpu, bindings, inputs, true).map(|(r, san)| (r, san.unwrap_or_default()))
}

fn run_program_inner(
    kp: &KernelProgram,
    gpu: &GpuSpec,
    bindings: &Bindings,
    inputs: &HashMap<ArrayId, Vec<f64>>,
    sanitize: bool,
) -> Result<(SimResult, Option<SanitizerReport>), SimError> {
    // Allocate and initialize buffers.
    let mut buffers = Vec::with_capacity(kp.buffers.len());
    let mut base = 0u64;
    for decl in &kp.buffers {
        let len = decl.len.eval(bindings).max(0) as usize;
        let data = match decl.init {
            BufferInit::Zero => vec![0.0; len],
            BufferInit::Fill(v) => vec![v; len],
            BufferInit::FromArrayOrZero(a) => match inputs.get(&a) {
                Some(host) => {
                    if host.len() != len {
                        return Err(SimError(format!(
                            "seed for `{}` has {} elements, buffer needs {len}",
                            decl.name,
                            host.len()
                        )));
                    }
                    host.clone()
                }
                None => vec![0.0; len],
            },
            BufferInit::FromArray(a) => {
                let host = inputs.get(&a).ok_or_else(|| {
                    SimError(format!("missing host input for buffer `{}`", decl.name))
                })?;
                if host.len() != len {
                    return Err(SimError(format!(
                        "input `{}` has {} elements, buffer needs {len}",
                        decl.name,
                        host.len()
                    )));
                }
                host.clone()
            }
        };
        buffers.push(DeviceBuffer {
            elem_bytes: decl.elem_bytes,
            data,
            base,
        });
        // Segment-align the next buffer.
        base += (len as u64 * decl.elem_bytes).next_multiple_of(gpu.transaction_bytes.max(1));
        base += gpu.transaction_bytes;
    }

    let mut names = Vec::new();
    let mut shapes = Vec::new();
    let mut costs = Vec::new();
    let mut times = Vec::new();
    let mut total = 0.0f64;
    let mut san_report = sanitize.then(SanitizerReport::default);
    let children: Vec<Kernel> = kp
        .children
        .iter()
        .map(|c| specialize(c, bindings))
        .collect();
    for kernel in &kp.kernels {
        let k = specialize(kernel, bindings);
        // Fresh first-writer map per launch: kernel boundaries synchronize.
        let mut tracker = sanitize.then(WriteTracker::default);
        let mut pending: Vec<PendingLaunch> = Vec::new();
        let mut ex = Exec {
            gpu,
            buffers: &mut buffers,
            cost: KernelCost::default(),
            kernel: &k,
            san: tracker.as_mut(),
            pending: &mut pending,
            tid_base: 0,
            launch_args: &[],
        };
        let blocks = ex.run()?;
        let mut cost = ex.cost;
        // Fire the device-side launches the parent queued: every child
        // grid belongs to this kernel's launch epoch — its work folds into
        // the parent's cost record (plus the per-launch counters the
        // timing model charges) and its stores share the parent's
        // write-tracker epoch under distinct thread ids.
        for (ordinal, launch) in pending.iter().enumerate() {
            let child = children
                .get(launch.kernel as usize)
                .ok_or_else(|| SimError(format!("child kernel {} not declared", launch.kernel)))?;
            let threads = u64::from(child.block_threads().max(1));
            let cblocks = launch.extent.div_ceil(threads);
            if cblocks > 1 << 22 {
                return Err(SimError(format!(
                    "child launch of {} blocks exceeds the sanity cap",
                    cblocks
                )));
            }
            let mut ck = child.clone();
            ck.grid = [
                Size::from(cblocks as i64),
                Size::from(1i64),
                Size::from(1i64),
            ];
            let mut child_pending: Vec<PendingLaunch> = Vec::new();
            let mut cex = Exec {
                gpu,
                buffers: &mut buffers,
                cost: KernelCost::default(),
                kernel: &ck,
                san: tracker.as_mut(),
                pending: &mut child_pending,
                // Disjoint per launch; far above any real parent tid.
                tid_base: (ordinal as u64 + 1) << 40,
                launch_args: &launch.args,
            };
            cex.run()?;
            let child_cost = cex.cost;
            if !child_pending.is_empty() {
                return Err(SimError(format!(
                    "child kernel `{}` issued a nested device-side launch",
                    child.name
                )));
            }
            cost.add(&child_cost);
            cost.child_blocks += cblocks;
        }
        let shape = LaunchShape {
            blocks,
            block_threads: k.block_threads(),
            smem_bytes: k.smem_bytes(),
        };
        let t = kernel_time(gpu, &shape, &cost);
        if trace::enabled() {
            emit_kernel_timeline(gpu, &kernel.name, total, &shape, &cost, &t);
        }
        total += t.total;
        names.push(kernel.name.clone());
        shapes.push(shape);
        costs.push(cost);
        times.push(t);
        if let (Some(report), Some(tr)) = (san_report.as_mut(), tracker) {
            report.tracked_stores += tr.tracked;
            for (buf, index, first, second) in tr.conflicts {
                let decl = &kp.buffers[buf.0 as usize];
                report.conflicts.push(WriteConflict {
                    kernel: kernel.name.clone(),
                    buffer: decl.name.clone(),
                    array: decl.array,
                    index,
                    first_tid: first,
                    second_tid: second,
                });
            }
        }
    }

    let mut arrays = HashMap::new();
    for (i, decl) in kp.buffers.iter().enumerate() {
        if let Some(a) = decl.array {
            arrays.insert(a, buffers[i].data.clone());
        }
    }
    Ok((
        SimResult {
            arrays,
            names,
            shapes,
            costs,
            times,
            total_seconds: total,
        },
        san_report,
    ))
}

/// Emit the per-kernel slice, per-pipe breakdown, and counter samples on the
/// simulated-GPU trace lane ([`trace::PID_SIM`], microsecond timestamps).
fn emit_kernel_timeline(
    gpu: &GpuSpec,
    name: &str,
    start_s: f64,
    shape: &LaunchShape,
    cost: &KernelCost,
    t: &KernelTime,
) {
    let ts = start_s * 1e6;
    let eff = Efficiency::of(gpu, shape, cost);
    trace::emit(
        trace::Event::instant("sim", "launch")
            .at(ts)
            .on_pid(trace::PID_SIM)
            .arg("kernel", name.to_string())
            .arg("blocks", shape.blocks)
            .arg("block_threads", u64::from(shape.block_threads))
            .arg("smem_bytes", u64::from(shape.smem_bytes)),
    );
    trace::emit(
        trace::Event::complete("sim", name.to_string(), ts, t.total * 1e6)
            .arg("bound_by", BoundBy::classify(t).label())
            .arg("blocks", shape.blocks)
            .arg("block_threads", u64::from(shape.block_threads))
            .arg("smem_bytes", u64::from(shape.smem_bytes))
            .arg("tx_per_request", eff.transactions_per_request)
            .arg("conflicts_per_access", eff.conflicts_per_access)
            .arg("resident_warps", u64::from(eff.resident_warps))
            .arg("warp_instr", cost.warp_instr)
            .arg("mem_requests", cost.mem_requests)
            .arg("transactions", cost.transactions)
            .arg("dram_bytes", cost.dram_bytes)
            .arg("smem_accesses", cost.smem_accesses)
            .arg("smem_conflicts", cost.smem_conflicts)
            .arg("syncs", cost.syncs)
            .arg("mallocs", cost.mallocs)
            .arg("atomic_serial", cost.atomic_serial)
            .arg("child_launches", cost.child_launches)
            .arg("child_blocks", cost.child_blocks),
    );
    // Per-pipe roofline terms as parallel sub-tracks: the tallest slice is
    // the one the kernel is bound by.
    let pipes: [(&'static str, u32, f64); 4] = [
        ("issue", 1, t.issue),
        ("bandwidth", 2, t.bandwidth),
        ("latency", 3, t.latency),
        ("overhead+malloc", 4, t.overhead + t.malloc),
    ];
    for (pipe, tid, dur) in pipes {
        if dur > 0.0 {
            trace::emit(trace::Event::complete("sim.pipe", pipe, ts, dur * 1e6).on_tid(tid));
        }
    }
    trace::emit(trace::Event::counter("sim", "dram_bytes", ts).arg("bytes", cost.dram_bytes));
}

/// Resolve every symbolic size in the kernel to a constant.
fn specialize(k: &Kernel, bindings: &Bindings) -> Kernel {
    let mut out = k.clone();
    out.grid = [
        Size::from(k.grid[0].eval(bindings).max(1)),
        Size::from(k.grid[1].eval(bindings).max(1)),
        Size::from(k.grid[2].eval(bindings).max(1)),
    ];
    out.body = k.body.iter().map(|s| spec_stmt(s, bindings)).collect();
    out
}

fn spec_stmt(s: &Stmt, b: &Bindings) -> Stmt {
    match s {
        Stmt::Assign { dst, value } => Stmt::Assign {
            dst: *dst,
            value: spec_expr(value, b),
        },
        Stmt::Store { buf, idx, value } => Stmt::Store {
            buf: *buf,
            idx: spec_expr(idx, b),
            value: spec_expr(value, b),
        },
        Stmt::AtomicRmw {
            buf,
            idx,
            op,
            value,
            capture,
        } => Stmt::AtomicRmw {
            buf: *buf,
            idx: spec_expr(idx, b),
            op: *op,
            value: spec_expr(value, b),
            capture: *capture,
        },
        Stmt::SmemStore { arr, idx, value } => Stmt::SmemStore {
            arr: *arr,
            idx: spec_expr(idx, b),
            value: spec_expr(value, b),
        },
        Stmt::For {
            var,
            start,
            end,
            step,
            body,
        } => Stmt::For {
            var: *var,
            start: spec_expr(start, b),
            end: spec_expr(end, b),
            step: spec_expr(step, b),
            body: body.iter().map(|s| spec_stmt(s, b)).collect(),
        },
        Stmt::Break => Stmt::Break,
        Stmt::If { cond, then, els } => Stmt::If {
            cond: spec_expr(cond, b),
            then: then.iter().map(|s| spec_stmt(s, b)).collect(),
            els: els.iter().map(|s| spec_stmt(s, b)).collect(),
        },
        Stmt::Sync => Stmt::Sync,
        Stmt::DeviceMalloc { bytes } => Stmt::DeviceMalloc {
            bytes: spec_expr(bytes, b),
        },
        Stmt::ChildLaunch {
            kernel,
            extent,
            args,
        } => Stmt::ChildLaunch {
            kernel: *kernel,
            extent: spec_expr(extent, b),
            args: args.iter().map(|a| spec_expr(a, b)).collect(),
        },
    }
}

fn spec_expr(e: &KExpr, b: &Bindings) -> KExpr {
    match e {
        KExpr::SizeVal(s) => KExpr::Imm(s.eval(b) as f64),
        KExpr::Load { buf, idx } => KExpr::Load {
            buf: *buf,
            idx: Box::new(spec_expr(idx, b)),
        },
        KExpr::SmemLoad { arr, idx } => KExpr::SmemLoad {
            arr: *arr,
            idx: Box::new(spec_expr(idx, b)),
        },
        KExpr::Bin(op, x, y) => {
            KExpr::Bin(*op, Box::new(spec_expr(x, b)), Box::new(spec_expr(y, b)))
        }
        KExpr::Un(op, x) => KExpr::Un(*op, Box::new(spec_expr(x, b))),
        KExpr::Select(c, t, f) => KExpr::Select(
            Box::new(spec_expr(c, b)),
            Box::new(spec_expr(t, b)),
            Box::new(spec_expr(f, b)),
        ),
        other => other.clone(),
    }
}

const W: usize = WARP_SIZE as usize;
type Lanes = [f64; W];
type Mask = u32;

struct BlockState {
    dims: [u32; 3],
    threads: u32,
    bid: [u32; 3],
    /// locals[local * threads + tid]
    locals: Vec<f64>,
    smem: Vec<Vec<f64>>,
}

/// One device-side launch recorded during parent execution. Child grids
/// run after the parent kernel's body completes (fire-and-forget), in
/// launch order — deterministic, and matching the guarantee the lowering
/// relies on (parents never read child output within the same kernel).
#[derive(Debug, Clone)]
struct PendingLaunch {
    /// Index into `KernelProgram::children`.
    kernel: u32,
    /// Requested child threads (grid = `ceil(extent / block)`).
    extent: u64,
    /// Evaluated launch arguments → child locals `0..n` (all threads).
    args: Vec<f64>,
}

struct Exec<'a> {
    gpu: &'a GpuSpec,
    buffers: &'a mut Vec<DeviceBuffer>,
    cost: KernelCost,
    kernel: &'a Kernel,
    /// Sanitizer hook: records every non-atomic global store when set.
    san: Option<&'a mut WriteTracker>,
    /// Child launches issued by this grid, drained by the caller.
    pending: &'a mut Vec<PendingLaunch>,
    /// Offset added to sanitizer thread ids: child grids must not collide
    /// with parent threads (or with other child grids) in the write
    /// tracker, since they all belong to one launch epoch.
    tid_base: u64,
    /// Launch arguments (child grids only): values for locals `0..n`,
    /// uniform across every thread of the grid.
    launch_args: &'a [f64],
}

impl<'a> Exec<'a> {
    /// Run all blocks; returns the number of blocks launched.
    fn run(&mut self) -> Result<u64, SimError> {
        let g = [
            size_const(&self.kernel.grid[0]),
            size_const(&self.kernel.grid[1]),
            size_const(&self.kernel.grid[2]),
        ];
        let dims = self.kernel.block;
        let threads = self.kernel.block_threads().max(1);
        let lockstep = self.kernel.has_sync();
        let smem: Vec<Vec<f64>> = self
            .kernel
            .smem
            .iter()
            .map(|d| vec![0.0; d.len as usize])
            .collect();

        for bz in 0..g[2] {
            for by in 0..g[1] {
                for bx in 0..g[0] {
                    let mut blk = BlockState {
                        dims,
                        threads,
                        bid: [bx as u32, by as u32, bz as u32],
                        locals: vec![0.0; self.kernel.locals as usize * threads as usize],
                        smem: smem.clone(),
                    };
                    // Child grids: launch arguments arrive as the leading
                    // locals, identical for every thread of the block.
                    for (a, &v) in self.launch_args.iter().enumerate() {
                        for t in 0..threads as usize {
                            blk.locals[a * threads as usize + t] = v;
                        }
                    }
                    if lockstep {
                        self.exec_block(&self.kernel.body, &mut blk)?;
                    } else {
                        let warps = threads.div_ceil(WARP_SIZE);
                        for w in 0..warps {
                            let mask = full_mask(threads, w);
                            self.exec_warp(&self.kernel.body, &mut blk, w, mask)?;
                        }
                    }
                }
            }
        }
        Ok(g[0] * g[1] * g[2])
    }

    /// Block-lockstep execution (statements with internal `Sync`).
    fn exec_block(&mut self, stmts: &[Stmt], blk: &mut BlockState) -> Result<(), SimError> {
        let warps = blk.threads.div_ceil(WARP_SIZE);
        for s in stmts {
            if !stmt_has_sync(s) {
                for w in 0..warps {
                    let mask = full_mask(blk.threads, w);
                    let broken = self.exec_warp(std::slice::from_ref(s), blk, w, mask)?;
                    debug_assert_eq!(broken, 0, "break escaping to block level");
                }
                continue;
            }
            match s {
                Stmt::Sync => self.cost.syncs += warps as u64,
                Stmt::For {
                    var,
                    start,
                    end,
                    step,
                    body,
                } => {
                    // Bounds must be block-uniform: evaluate on warp 0 lane 0.
                    let s0 = self.eval_scalar(start, blk, 0, 0)?;
                    let step0 = self.eval_scalar(step, blk, 0, 0)?;
                    if step0 <= 0.0 {
                        return Err(SimError("non-positive uniform loop step".into()));
                    }
                    let mut v = s0;
                    loop {
                        let e0 = self.eval_scalar(end, blk, 0, 0)?;
                        if v >= e0 {
                            break;
                        }
                        for t in 0..blk.threads {
                            blk.locals[*var as usize * blk.threads as usize + t as usize] = v;
                        }
                        self.exec_block(body, blk)?;
                        v += step0;
                    }
                }
                Stmt::If { cond, then, els } => {
                    let c = self.eval_scalar(cond, blk, 0, 0)?;
                    if c != 0.0 {
                        self.exec_block(then, blk)?;
                    } else {
                        self.exec_block(els, blk)?;
                    }
                }
                other => {
                    return Err(SimError(format!(
                        "statement {other:?} cannot contain __syncthreads"
                    )))
                }
            }
        }
        Ok(())
    }

    /// Per-warp masked execution; returns the set of lanes that executed
    /// `Break`.
    fn exec_warp(
        &mut self,
        stmts: &[Stmt],
        blk: &mut BlockState,
        warp: u32,
        mut mask: Mask,
    ) -> Result<Mask, SimError> {
        let mut broken: Mask = 0;
        for s in stmts {
            if mask == 0 {
                break;
            }
            match s {
                Stmt::Assign { dst, value } => {
                    let mut v = [0.0; W];
                    self.eval(value, blk, warp, mask, &mut v)?;
                    let base = *dst as usize * blk.threads as usize + (warp * WARP_SIZE) as usize;
                    for l in lanes(mask) {
                        blk.locals[base + l] = v[l];
                    }
                }
                Stmt::Store { buf, idx, value } => {
                    let mut v = [0.0; W];
                    self.eval(value, blk, warp, mask, &mut v)?;
                    let mut ix = [0.0; W];
                    self.eval(idx, blk, warp, mask, &mut ix)?;
                    self.global_access(*buf, &ix, mask, Some(&v), None)?;
                    if let Some(tracker) = self.san.as_mut() {
                        // `global_access` validated every index, so the
                        // casts below are exact.
                        let g = [
                            size_const(&self.kernel.grid[0]),
                            size_const(&self.kernel.grid[1]),
                        ];
                        let blk_lin = (u64::from(blk.bid[2]) * g[1] + u64::from(blk.bid[1])) * g[0]
                            + u64::from(blk.bid[0]);
                        let base_tid = self.tid_base
                            + blk_lin * u64::from(blk.threads)
                            + u64::from(warp * WARP_SIZE);
                        for l in lanes(mask) {
                            tracker.record(*buf, ix[l] as u64, base_tid + l as u64);
                        }
                    }
                }
                Stmt::AtomicRmw {
                    buf,
                    idx,
                    op,
                    value,
                    capture,
                } => {
                    let mut v = [0.0; W];
                    self.eval(value, blk, warp, mask, &mut v)?;
                    let mut ix = [0.0; W];
                    self.eval(idx, blk, warp, mask, &mut ix)?;
                    let old = self.atomic(*buf, &ix, mask, &v, *op)?;
                    if let Some(c) = capture {
                        let base = *c as usize * blk.threads as usize + (warp * WARP_SIZE) as usize;
                        for l in lanes(mask) {
                            blk.locals[base + l] = old[l];
                        }
                    }
                }
                Stmt::SmemStore { arr, idx, value } => {
                    let mut v = [0.0; W];
                    self.eval(value, blk, warp, mask, &mut v)?;
                    let mut ix = [0.0; W];
                    self.eval(idx, blk, warp, mask, &mut ix)?;
                    self.smem_cost(&ix, mask);
                    let a = *arr as usize;
                    for l in lanes(mask) {
                        let i = to_index(ix[l], blk.smem[a].len(), "shared store")?;
                        blk.smem[a][i] = v[l];
                    }
                }
                Stmt::For {
                    var,
                    start,
                    end,
                    step,
                    body,
                } => {
                    let mut sv = [0.0; W];
                    self.eval(start, blk, warp, mask, &mut sv)?;
                    let base = *var as usize * blk.threads as usize + (warp * WARP_SIZE) as usize;
                    for l in lanes(mask) {
                        blk.locals[base + l] = sv[l];
                    }
                    let mut active = mask;
                    loop {
                        // cond: var < end
                        let mut ev = [0.0; W];
                        self.eval(end, blk, warp, active, &mut ev)?;
                        self.cost.warp_instr += 1;
                        let mut next: Mask = 0;
                        for l in lanes(active) {
                            let vv = blk.locals[*var as usize * blk.threads as usize
                                + (warp * WARP_SIZE) as usize
                                + l];
                            if vv < ev[l] {
                                next |= 1 << l;
                            }
                        }
                        if next == 0 {
                            break;
                        }
                        let b = self.exec_warp(body, blk, warp, next)?;
                        let cont = next & !b;
                        if cont == 0 {
                            break;
                        }
                        // step
                        let mut stv = [0.0; W];
                        self.eval(step, blk, warp, cont, &mut stv)?;
                        for l in lanes(cont) {
                            blk.locals[*var as usize * blk.threads as usize
                                + (warp * WARP_SIZE) as usize
                                + l] += stv[l];
                        }
                        active = cont;
                        if active == 0 {
                            break;
                        }
                    }
                }
                Stmt::Break => {
                    broken |= mask;
                    mask = 0;
                }
                Stmt::If { cond, then, els } => {
                    let mut cv = [0.0; W];
                    self.eval(cond, blk, warp, mask, &mut cv)?;
                    let mut tmask: Mask = 0;
                    for l in lanes(mask) {
                        if cv[l] != 0.0 {
                            tmask |= 1 << l;
                        }
                    }
                    let emask = mask & !tmask;
                    let mut b = 0;
                    if tmask != 0 {
                        b |= self.exec_warp(then, blk, warp, tmask)?;
                    }
                    if emask != 0 {
                        b |= self.exec_warp(els, blk, warp, emask)?;
                    }
                    broken |= b;
                    mask &= !b;
                }
                Stmt::Sync => {
                    // A sync reached in per-warp mode is only legal when the
                    // kernel has no cross-warp dependence (single-warp
                    // blocks); treat as a cost event.
                    self.cost.syncs += 1;
                }
                Stmt::DeviceMalloc { bytes } => {
                    let mut bv = [0.0; W];
                    self.eval(bytes, blk, warp, mask, &mut bv)?;
                    self.cost.mallocs += mask.count_ones() as u64;
                    self.cost.warp_instr += 1;
                }
                Stmt::ChildLaunch {
                    kernel,
                    extent,
                    args,
                } => {
                    let mut ev = [0.0; W];
                    self.eval(extent, blk, warp, mask, &mut ev)?;
                    let mut av: Vec<Lanes> = Vec::with_capacity(args.len());
                    for a in args {
                        let mut lane_vals = [0.0; W];
                        self.eval(a, blk, warp, mask, &mut lane_vals)?;
                        av.push(lane_vals);
                    }
                    for l in lanes(mask) {
                        let e = ev[l];
                        if e.fract() != 0.0 || e < 0.0 {
                            return Err(SimError(format!(
                                "child launch extent {e} is not a non-negative integer"
                            )));
                        }
                        // `extent ≤ 0` launches nothing (common guard-free
                        // form; real CDP would launch an empty grid).
                        if e < 1.0 {
                            continue;
                        }
                        self.cost.child_launches += 1;
                        self.pending.push(PendingLaunch {
                            kernel: *kernel,
                            extent: e as u64,
                            args: av.iter().map(|vals| vals[l]).collect(),
                        });
                    }
                }
            }
            self.cost.warp_instr += 1;
        }
        Ok(broken)
    }

    /// Evaluate `e` for every active lane of `warp` into `out`.
    fn eval(
        &mut self,
        e: &KExpr,
        blk: &mut BlockState,
        warp: u32,
        mask: Mask,
        out: &mut Lanes,
    ) -> Result<(), SimError> {
        self.cost.warp_instr += 1;
        let warp_base = warp * WARP_SIZE;
        match e {
            KExpr::Imm(v) => {
                for l in lanes(mask) {
                    out[l] = *v;
                }
            }
            KExpr::Local(x) => {
                let base = *x as usize * blk.threads as usize + warp_base as usize;
                for l in lanes(mask) {
                    out[l] = blk.locals[base + l];
                }
            }
            KExpr::Tid(a) => {
                let (dx, dy) = (blk.dims[0].max(1), blk.dims[1].max(1));
                for l in lanes(mask) {
                    let t = warp_base + l as u32;
                    out[l] = match a.index() {
                        0 => (t % dx) as f64,
                        1 => ((t / dx) % dy) as f64,
                        _ => (t / (dx * dy)) as f64,
                    };
                }
            }
            KExpr::Bid(a) => {
                let v = blk.bid[a.index()] as f64;
                for l in lanes(mask) {
                    out[l] = v;
                }
            }
            KExpr::Bdim(a) => {
                let v = blk.dims[a.index()] as f64;
                for l in lanes(mask) {
                    out[l] = v;
                }
            }
            KExpr::Gdim(a) => {
                let v = size_const(&self.kernel.grid[a.index()]) as f64;
                for l in lanes(mask) {
                    out[l] = v;
                }
            }
            KExpr::SizeVal(s) => {
                // Normally removed by specialization.
                let v = size_const(s) as f64;
                for l in lanes(mask) {
                    out[l] = v;
                }
            }
            KExpr::Load { buf, idx } => {
                let mut ix = [0.0; W];
                self.eval(idx, blk, warp, mask, &mut ix)?;
                self.global_access(*buf, &ix, mask, None, Some(out))?;
            }
            KExpr::SmemLoad { arr, idx } => {
                let mut ix = [0.0; W];
                self.eval(idx, blk, warp, mask, &mut ix)?;
                self.smem_cost(&ix, mask);
                let a = *arr as usize;
                for l in lanes(mask) {
                    let i = to_index(ix[l], blk.smem[a].len(), "shared load")?;
                    out[l] = blk.smem[a][i];
                }
            }
            KExpr::Bin(op, x, y) => {
                let mut xv = [0.0; W];
                self.eval(x, blk, warp, mask, &mut xv)?;
                let mut yv = [0.0; W];
                self.eval(y, blk, warp, mask, &mut yv)?;
                for l in lanes(mask) {
                    out[l] = apply_bin(*op, xv[l], yv[l]);
                }
            }
            KExpr::Un(op, x) => {
                let mut xv = [0.0; W];
                self.eval(x, blk, warp, mask, &mut xv)?;
                for l in lanes(mask) {
                    out[l] = apply_un(*op, xv[l]);
                }
            }
            KExpr::Select(c, t, f) => {
                let mut cv = [0.0; W];
                self.eval(c, blk, warp, mask, &mut cv)?;
                let mut tv = [0.0; W];
                self.eval(t, blk, warp, mask, &mut tv)?;
                let mut fv = [0.0; W];
                self.eval(f, blk, warp, mask, &mut fv)?;
                for l in lanes(mask) {
                    out[l] = if cv[l] != 0.0 { tv[l] } else { fv[l] };
                }
            }
        }
        Ok(())
    }

    /// Evaluate a (block-uniform) expression on a single lane.
    fn eval_scalar(
        &mut self,
        e: &KExpr,
        blk: &mut BlockState,
        warp: u32,
        lane: u32,
    ) -> Result<f64, SimError> {
        let mut out = [0.0; W];
        self.eval(e, blk, warp, 1 << lane, &mut out)?;
        Ok(out[lane as usize])
    }

    /// Shared load/store (coalesced) or a load into `out` / store of
    /// `store` values for one warp request.
    fn global_access(
        &mut self,
        buf: BufId,
        ix: &Lanes,
        mask: Mask,
        store: Option<&Lanes>,
        load_out: Option<&mut Lanes>,
    ) -> Result<(), SimError> {
        let b = &mut self.buffers[buf.0 as usize];
        let mut addrs = [0u64; W];
        let mut n = 0usize;
        for l in lanes(mask) {
            let i = to_index(ix[l], b.data.len(), "global access")?;
            addrs[n] = b.base + i as u64 * b.elem_bytes;
            n += 1;
        }
        let (tx, bytes) = coalesce(self.gpu, &addrs[..n]);
        self.cost.mem_requests += 1;
        self.cost.transactions += tx;
        self.cost.dram_bytes += bytes;
        match (store, load_out) {
            (Some(v), _) => {
                for l in lanes(mask) {
                    let i = to_index(ix[l], b.data.len(), "global store")?;
                    b.data[i] = v[l];
                }
            }
            (None, Some(out)) => {
                for l in lanes(mask) {
                    let i = to_index(ix[l], b.data.len(), "global load")?;
                    out[l] = b.data[i];
                }
            }
            (None, None) => {}
        }
        Ok(())
    }

    /// Atomic read-modify-write per lane (program order within the warp);
    /// returns pre-update values.
    fn atomic(
        &mut self,
        buf: BufId,
        ix: &Lanes,
        mask: Mask,
        v: &Lanes,
        op: ReduceOp,
    ) -> Result<Lanes, SimError> {
        let b = &mut self.buffers[buf.0 as usize];
        let mut old = [0.0; W];
        let mut addrs = [0u64; W];
        let mut n = 0usize;
        for l in lanes(mask) {
            let i = to_index(ix[l], b.data.len(), "atomic")?;
            addrs[n] = b.base + i as u64 * b.elem_bytes;
            n += 1;
            old[l] = b.data[i];
            b.data[i] = op.apply(b.data[i], v[l]);
        }
        let (tx, bytes) = coalesce(self.gpu, &addrs[..n]);
        self.cost.mem_requests += 1;
        self.cost.transactions += tx;
        self.cost.dram_bytes += bytes;
        // Contention: lanes beyond the first hitting the same address
        // serialize.
        let distinct = {
            let mut d = 0usize;
            for i in 0..n {
                if !addrs[..i].contains(&addrs[i]) {
                    d += 1;
                }
            }
            d
        };
        self.cost.atomic_serial += (n - distinct) as u64;
        Ok(old)
    }

    fn smem_cost(&mut self, ix: &Lanes, mask: Mask) {
        let mut words = [0u64; W];
        let mut n = 0usize;
        for l in lanes(mask) {
            words[n] = ix[l] as u64;
            n += 1;
        }
        self.cost.smem_accesses += 1;
        self.cost.smem_conflicts += bank_conflicts(self.gpu.smem_banks, &words[..n]);
    }
}

fn size_const(s: &Size) -> u64 {
    s.eval(&Bindings::new()).max(0) as u64
}

fn full_mask(threads: u32, warp: u32) -> Mask {
    let start = warp * WARP_SIZE;
    let count = threads.saturating_sub(start).min(WARP_SIZE);
    if count == 0 {
        0
    } else if count == 32 {
        u32::MAX
    } else {
        (1u32 << count) - 1
    }
}

fn lanes(mask: Mask) -> impl Iterator<Item = usize> {
    (0..W).filter(move |l| mask & (1 << l) != 0)
}

fn to_index(v: f64, len: usize, what: &str) -> Result<usize, SimError> {
    if !v.is_finite() || v.fract() != 0.0 {
        return Err(SimError(format!("{what}: non-integral index {v}")));
    }
    let i = v as i64;
    if i < 0 || i as usize >= len {
        return Err(SimError(format!(
            "{what}: index {i} out of bounds (len {len})"
        )));
    }
    Ok(i as usize)
}

fn stmt_has_sync(s: &Stmt) -> bool {
    match s {
        Stmt::Sync => true,
        Stmt::For { body, .. } => body.iter().any(stmt_has_sync),
        Stmt::If { then, els, .. } => {
            then.iter().any(stmt_has_sync) || els.iter().any(stmt_has_sync)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multidim_codegen::{Axis, BufferDecl, SmemDecl};

    fn gpu() -> GpuSpec {
        GpuSpec::tesla_k20c()
    }

    fn one_buffer_prog(len: i64, kernel: Kernel) -> KernelProgram {
        KernelProgram {
            name: "t".into(),
            buffers: vec![
                BufferDecl {
                    name: "in".into(),
                    elem_bytes: 4,
                    len: Size::from(len),
                    init: BufferInit::FromArray(ArrayId(0)),
                    array: Some(ArrayId(0)),
                },
                BufferDecl {
                    name: "out".into(),
                    elem_bytes: 4,
                    len: Size::from(len),
                    init: BufferInit::Zero,
                    array: Some(ArrayId(1)),
                },
            ],
            kernels: vec![kernel],
            children: vec![],
            notes: vec![],
        }
    }

    /// out[i] = in[i] * 2 over one block of 32 threads.
    fn double_kernel(len: i64) -> Kernel {
        let idx = KExpr::global_tid(Axis::X);
        Kernel {
            name: "double".into(),
            grid: [Size::from((len + 31) / 32), Size::from(1), Size::from(1)],
            block: [32, 1, 1],
            smem: vec![],
            locals: 1,
            body: vec![
                Stmt::Assign { dst: 0, value: idx },
                Stmt::If {
                    cond: KExpr::lt(KExpr::Local(0), KExpr::imm(len)),
                    then: vec![Stmt::Store {
                        buf: BufId(1),
                        idx: KExpr::Local(0),
                        value: KExpr::mul(
                            KExpr::Load {
                                buf: BufId(0),
                                idx: Box::new(KExpr::Local(0)),
                            },
                            KExpr::Imm(2.0),
                        ),
                    }],
                    els: vec![],
                },
            ],
        }
    }

    #[test]
    fn elementwise_double() {
        let kp = one_buffer_prog(100, double_kernel(100));
        let inputs: HashMap<_, _> = [(ArrayId(0), (0..100).map(|x| x as f64).collect::<Vec<_>>())]
            .into_iter()
            .collect();
        let r = run_program(&kp, &gpu(), &Bindings::new(), &inputs).unwrap();
        let out = r.array(ArrayId(1));
        assert_eq!(out[7], 14.0);
        assert_eq!(out[99], 198.0);
        assert!(r.total_seconds > 0.0);
    }

    #[test]
    fn coalesced_traffic_counted() {
        let kp = one_buffer_prog(1024, double_kernel(1024));
        let inputs: HashMap<_, _> = [(ArrayId(0), vec![1.0; 1024])].into_iter().collect();
        let r = run_program(&kp, &gpu(), &Bindings::new(), &inputs).unwrap();
        let c = &r.costs[0];
        // 32 warps, each 1 load + 1 store request, each 1 transaction
        // (32 lanes x 4B = 128B).
        assert_eq!(c.mem_requests, 64);
        assert_eq!(c.transactions, 64);
        assert_eq!(c.dram_bytes, 64 * 128);
    }

    #[test]
    fn oob_faults() {
        let kp = one_buffer_prog(10, double_kernel(32)); // guard says 32, len 10
        let inputs: HashMap<_, _> = [(ArrayId(0), vec![0.0; 10])].into_iter().collect();
        let err = run_program(&kp, &gpu(), &Bindings::new(), &inputs).unwrap_err();
        assert!(err.0.contains("out of bounds"));
    }

    #[test]
    fn block_tree_reduce_with_sync() {
        // Sum 64 values with one 64-thread block using smem tree reduce.
        let n = 64i64;
        let idx = KExpr::global_tid(Axis::X);
        let mut body = vec![
            Stmt::Assign { dst: 0, value: idx },
            Stmt::SmemStore {
                arr: 0,
                idx: KExpr::Tid(Axis::X),
                value: KExpr::Load {
                    buf: BufId(0),
                    idx: Box::new(KExpr::Local(0)),
                },
            },
            Stmt::Sync,
        ];
        let mut s = 32;
        while s >= 1 {
            body.push(Stmt::If {
                cond: KExpr::lt(KExpr::Tid(Axis::X), KExpr::imm(s)),
                then: vec![Stmt::SmemStore {
                    arr: 0,
                    idx: KExpr::Tid(Axis::X),
                    value: KExpr::add(
                        KExpr::SmemLoad {
                            arr: 0,
                            idx: Box::new(KExpr::Tid(Axis::X)),
                        },
                        KExpr::SmemLoad {
                            arr: 0,
                            idx: Box::new(KExpr::add(KExpr::Tid(Axis::X), KExpr::imm(s))),
                        },
                    ),
                }],
                els: vec![],
            });
            body.push(Stmt::Sync);
            s /= 2;
        }
        body.push(Stmt::If {
            cond: KExpr::eq(KExpr::Tid(Axis::X), KExpr::imm(0)),
            then: vec![Stmt::Store {
                buf: BufId(1),
                idx: KExpr::imm(0),
                value: KExpr::SmemLoad {
                    arr: 0,
                    idx: Box::new(KExpr::imm(0)),
                },
            }],
            els: vec![],
        });
        let k = Kernel {
            name: "reduce".into(),
            grid: [Size::from(1), Size::from(1), Size::from(1)],
            block: [64, 1, 1],
            smem: vec![SmemDecl {
                name: "s".into(),
                len: 64,
            }],
            locals: 1,
            body,
        };
        let kp = one_buffer_prog(n, k);
        let inputs: HashMap<_, _> = [(ArrayId(0), (0..n).map(|x| x as f64).collect::<Vec<_>>())]
            .into_iter()
            .collect();
        let r = run_program(&kp, &gpu(), &Bindings::new(), &inputs).unwrap();
        assert_eq!(r.array(ArrayId(1))[0], (0..64).sum::<i64>() as f64);
        assert!(r.costs[0].syncs > 0);
        assert!(r.costs[0].smem_accesses > 0);
    }

    #[test]
    fn divergence_costs_both_paths() {
        // Even lanes take then, odd lanes take else: instructions should
        // exceed the uniform case.
        let mk = |divergent: bool| {
            let cond = if divergent {
                KExpr::eq(
                    KExpr::Bin(
                        multidim_ir::BinOp::Rem,
                        Box::new(KExpr::Tid(Axis::X)),
                        Box::new(KExpr::imm(2)),
                    ),
                    KExpr::imm(0),
                )
            } else {
                KExpr::Imm(1.0)
            };
            Kernel {
                name: "div".into(),
                grid: [Size::from(1), Size::from(1), Size::from(1)],
                block: [32, 1, 1],
                smem: vec![],
                locals: 1,
                body: vec![Stmt::If {
                    cond,
                    then: vec![Stmt::Assign {
                        dst: 0,
                        value: KExpr::add(KExpr::Imm(1.0), KExpr::Imm(2.0)),
                    }],
                    els: vec![Stmt::Assign {
                        dst: 0,
                        value: KExpr::mul(KExpr::Imm(2.0), KExpr::Imm(3.0)),
                    }],
                }],
            }
        };
        let inputs: HashMap<_, _> = [(ArrayId(0), vec![0.0; 4])].into_iter().collect();
        let r_uniform = run_program(
            &one_buffer_prog(4, mk(false)),
            &gpu(),
            &Bindings::new(),
            &inputs,
        )
        .unwrap();
        let r_div = run_program(
            &one_buffer_prog(4, mk(true)),
            &gpu(),
            &Bindings::new(),
            &inputs,
        )
        .unwrap();
        assert!(r_div.costs[0].warp_instr > r_uniform.costs[0].warp_instr);
    }

    #[test]
    fn for_loop_with_break() {
        // r1 = iterations until local exceeds 8, starting from tid.
        let k = Kernel {
            name: "brk".into(),
            grid: [Size::from(1), Size::from(1), Size::from(1)],
            block: [4, 1, 1],
            smem: vec![],
            locals: 2,
            body: vec![
                Stmt::Assign {
                    dst: 1,
                    value: KExpr::Tid(Axis::X),
                },
                Stmt::For {
                    var: 0,
                    start: KExpr::imm(0),
                    end: KExpr::imm(100),
                    step: KExpr::imm(1),
                    body: vec![Stmt::If {
                        cond: KExpr::ge(KExpr::Local(1), KExpr::imm(8)),
                        then: vec![Stmt::Break],
                        els: vec![Stmt::Assign {
                            dst: 1,
                            value: KExpr::mul(KExpr::Local(1), KExpr::Imm(2.0)),
                        }],
                    }],
                },
                Stmt::Store {
                    buf: BufId(1),
                    idx: KExpr::Tid(Axis::X),
                    value: KExpr::Local(1),
                },
            ],
        };
        let kp = one_buffer_prog(4, k);
        let inputs: HashMap<_, _> = [(ArrayId(0), vec![0.0; 4])].into_iter().collect();
        let r = run_program(&kp, &gpu(), &Bindings::new(), &inputs).unwrap();
        // lane0: 0 doubles forever -> stays 0 (loop ends at 100 iters).
        // lane1: 1->2->4->8 stop. lane2: 2->4->8. lane3: 3->6->12? 12>=8 stop.
        assert_eq!(r.array(ArrayId(1)), &[0.0, 8.0, 8.0, 12.0]);
    }

    #[test]
    fn atomic_accumulation() {
        let k = Kernel {
            name: "atomic".into(),
            grid: [Size::from(2), Size::from(1), Size::from(1)],
            block: [32, 1, 1],
            smem: vec![],
            locals: 0,
            body: vec![Stmt::AtomicRmw {
                buf: BufId(1),
                idx: KExpr::imm(0),
                op: ReduceOp::Add,
                value: KExpr::Imm(1.0),
                capture: None,
            }],
        };
        let kp = one_buffer_prog(4, k);
        let inputs: HashMap<_, _> = [(ArrayId(0), vec![0.0; 4])].into_iter().collect();
        let r = run_program(&kp, &gpu(), &Bindings::new(), &inputs).unwrap();
        assert_eq!(r.array(ArrayId(1))[0], 64.0);
        assert!(r.costs[0].atomic_serial > 0);
    }

    #[test]
    fn partial_warp_masks() {
        let kp = one_buffer_prog(5, double_kernel(5));
        let inputs: HashMap<_, _> = [(ArrayId(0), vec![1.0, 2.0, 3.0, 4.0, 5.0])]
            .into_iter()
            .collect();
        let r = run_program(&kp, &gpu(), &Bindings::new(), &inputs).unwrap();
        assert_eq!(r.array(ArrayId(1)), &[2.0, 4.0, 6.0, 8.0, 10.0]);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use multidim_codegen::{Axis, BufferDecl, SmemDecl};

    fn gpu() -> GpuSpec {
        GpuSpec::tesla_k20c()
    }

    fn buffers(lens: &[(u64, i64)]) -> Vec<BufferDecl> {
        lens.iter()
            .enumerate()
            .map(|(i, &(bytes, len))| BufferDecl {
                name: format!("b{i}"),
                elem_bytes: bytes,
                len: Size::from(len),
                init: if i == 0 {
                    BufferInit::FromArray(ArrayId(0))
                } else {
                    BufferInit::Zero
                },
                array: Some(ArrayId(i as u32)),
            })
            .collect()
    }

    /// A 2-D grid/block kernel writes its (x, y) coordinates: exercises
    /// multi-axis thread indexing.
    #[test]
    fn two_dimensional_indexing() {
        let w = 8i64;
        let h = 6i64;
        let x = 0u32;
        let y = 1u32;
        let body = vec![
            Stmt::Assign {
                dst: x,
                value: KExpr::global_tid(Axis::X),
            },
            Stmt::Assign {
                dst: y,
                value: KExpr::global_tid(Axis::Y),
            },
            Stmt::If {
                cond: KExpr::and(
                    KExpr::lt(KExpr::Local(x), KExpr::imm(w)),
                    KExpr::lt(KExpr::Local(y), KExpr::imm(h)),
                ),
                then: vec![Stmt::Store {
                    buf: BufId(1),
                    idx: KExpr::add(KExpr::mul(KExpr::Local(y), KExpr::imm(w)), KExpr::Local(x)),
                    value: KExpr::add(
                        KExpr::mul(KExpr::Local(y), KExpr::Imm(100.0)),
                        KExpr::Local(x),
                    ),
                }],
                els: vec![],
            },
        ];
        let kp = KernelProgram {
            name: "grid2d".into(),
            buffers: buffers(&[(4, 1), (4, w * h)]),
            kernels: vec![Kernel {
                name: "grid2d".into(),
                grid: [Size::from(2), Size::from(3), Size::from(1)],
                block: [4, 2, 1],
                smem: vec![],
                locals: 2,
                body,
            }],
            children: vec![],
            notes: vec![],
        };
        let inputs: HashMap<_, _> = [(ArrayId(0), vec![0.0])].into_iter().collect();
        let r = run_program(&kp, &gpu(), &Bindings::new(), &inputs).unwrap();
        let out = r.array(ArrayId(1));
        for yy in 0..h {
            for xx in 0..w {
                assert_eq!(out[(yy * w + xx) as usize], (yy * 100 + xx) as f64);
            }
        }
    }

    /// Bank conflicts are observed in kernel cost when a kernel strides
    /// shared memory by the bank count.
    #[test]
    fn smem_conflicts_counted() {
        let body = vec![Stmt::SmemStore {
            arr: 0,
            idx: KExpr::mul(KExpr::Tid(Axis::X), KExpr::imm(32)),
            value: KExpr::Imm(1.0),
        }];
        let kp = KernelProgram {
            name: "conflict".into(),
            buffers: buffers(&[(4, 1)]),
            kernels: vec![Kernel {
                name: "conflict".into(),
                grid: [Size::from(1), Size::from(1), Size::from(1)],
                block: [32, 1, 1],
                smem: vec![SmemDecl {
                    name: "s".into(),
                    len: 32 * 32,
                }],
                locals: 0,
                body,
            }],
            children: vec![],
            notes: vec![],
        };
        let inputs: HashMap<_, _> = [(ArrayId(0), vec![0.0])].into_iter().collect();
        let r = run_program(&kp, &gpu(), &Bindings::new(), &inputs).unwrap();
        assert_eq!(r.costs[0].smem_conflicts, 31);
    }

    /// Atomic capture returns pre-update values — all distinct for a
    /// shared counter.
    #[test]
    fn atomic_capture_is_exclusive() {
        let body = vec![
            Stmt::AtomicRmw {
                buf: BufId(0),
                idx: KExpr::imm(0),
                op: ReduceOp::Add,
                value: KExpr::Imm(1.0),
                capture: Some(0),
            },
            Stmt::Store {
                buf: BufId(1),
                idx: KExpr::Local(0),
                value: KExpr::Imm(7.0),
            },
        ];
        let kp = KernelProgram {
            name: "cap".into(),
            buffers: buffers(&[(4, 1), (4, 64)]),
            kernels: vec![Kernel {
                name: "cap".into(),
                grid: [Size::from(2), Size::from(1), Size::from(1)],
                block: [32, 1, 1],
                smem: vec![],
                locals: 1,
                body,
            }],
            children: vec![],
            notes: vec![],
        };
        let inputs: HashMap<_, _> = [(ArrayId(0), vec![0.0])].into_iter().collect();
        let r = run_program(&kp, &gpu(), &Bindings::new(), &inputs).unwrap();
        // Every slot 0..64 received exactly one write.
        assert!(r.array(ArrayId(1)).iter().all(|&v| v == 7.0));
        assert_eq!(r.array(ArrayId(0))[0], 64.0);
    }

    /// Specialization resolves symbolic sizes before execution.
    #[test]
    fn symbolic_grid_sizes_resolve() {
        let n = multidim_ir::SymId(0);
        let body = vec![
            Stmt::Assign {
                dst: 0,
                value: KExpr::global_tid(Axis::X),
            },
            Stmt::If {
                cond: KExpr::lt(KExpr::Local(0), KExpr::SizeVal(Size::sym(n))),
                then: vec![Stmt::Store {
                    buf: BufId(1),
                    idx: KExpr::Local(0),
                    value: KExpr::Imm(3.0),
                }],
                els: vec![],
            },
        ];
        let kp = KernelProgram {
            name: "sym".into(),
            buffers: vec![
                BufferDecl {
                    name: "a".into(),
                    elem_bytes: 4,
                    len: Size::from(1),
                    init: BufferInit::FromArray(ArrayId(0)),
                    array: Some(ArrayId(0)),
                },
                BufferDecl {
                    name: "o".into(),
                    elem_bytes: 4,
                    len: Size::sym(n),
                    init: BufferInit::Zero,
                    array: Some(ArrayId(1)),
                },
            ],
            kernels: vec![Kernel {
                name: "sym".into(),
                grid: [Size::sym(n) / Size::from(32), Size::from(1), Size::from(1)],
                block: [32, 1, 1],
                smem: vec![],
                locals: 1,
                body,
            }],
            children: vec![],
            notes: vec![],
        };
        let mut bind = Bindings::new();
        bind.bind(n, 77);
        let inputs: HashMap<_, _> = [(ArrayId(0), vec![0.0])].into_iter().collect();
        let r = run_program(&kp, &gpu(), &bind, &inputs).unwrap();
        assert_eq!(r.array(ArrayId(1)).len(), 77);
        assert!(r.array(ArrayId(1)).iter().all(|&v| v == 3.0));
    }

    /// Select evaluates both sides but picks per lane.
    #[test]
    fn select_is_per_lane() {
        let body = vec![Stmt::Store {
            buf: BufId(1),
            idx: KExpr::Tid(Axis::X),
            value: KExpr::Select(
                Box::new(KExpr::Bin(
                    multidim_ir::BinOp::Rem,
                    Box::new(KExpr::Tid(Axis::X)),
                    Box::new(KExpr::imm(2)),
                )),
                Box::new(KExpr::Imm(1.0)),
                Box::new(KExpr::Imm(2.0)),
            ),
        }];
        let kp = KernelProgram {
            name: "sel".into(),
            buffers: buffers(&[(4, 1), (4, 32)]),
            kernels: vec![Kernel {
                name: "sel".into(),
                grid: [Size::from(1), Size::from(1), Size::from(1)],
                block: [32, 1, 1],
                smem: vec![],
                locals: 0,
                body,
            }],
            children: vec![],
            notes: vec![],
        };
        let inputs: HashMap<_, _> = [(ArrayId(0), vec![0.0])].into_iter().collect();
        let r = run_program(&kp, &gpu(), &Bindings::new(), &inputs).unwrap();
        let out = r.array(ArrayId(1));
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, if i % 2 == 1 { 1.0 } else { 2.0 });
        }
    }
}
