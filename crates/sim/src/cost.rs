//! Cost accounting and the kernel timing model.
//!
//! The simulator accumulates per-kernel event counts while it executes and
//! converts them to time with an occupancy-aware roofline:
//!
//! ```text
//! T = max(T_issue, T_bandwidth, T_latency) + T_malloc + T_overhead
//! ```
//!
//! * `T_bandwidth` — DRAM bytes actually transferred (transactions × 128 B,
//!   so uncoalesced access patterns pay up to 32× — the effect the paper's
//!   analysis optimizes for);
//! * `T_latency` — memory requests × latency ÷ (active SMs × resident
//!   warps × per-warp MLP): with too few resident warps latency cannot be
//!   hidden — the paper's "not enough threads to … hide memory latency";
//! * `T_issue` — warp instructions (including shared-memory accesses, bank
//!   serialization and syncs) through the active SMs' schedulers;
//! * `T_malloc` — device-heap allocations are near-serial (Section V-A's
//!   "significant" per-thread malloc overhead);
//! * `T_overhead` — kernel launch plus per-block dispatch (the
//!   "overhead of too many thread blocks").

use multidim_device::{GpuSpec, WARP_SIZE};

/// Event counts for one kernel execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelCost {
    /// Warp-level instructions issued (expression nodes + statements).
    pub warp_instr: u64,
    /// Warp-level global-memory requests (loads + stores + atomics).
    pub mem_requests: u64,
    /// 128-byte DRAM transactions those requests coalesced into.
    pub transactions: u64,
    /// Bytes moved to/from DRAM (transactions × segment size).
    pub dram_bytes: u64,
    /// Warp-level shared-memory accesses.
    pub smem_accesses: u64,
    /// Extra serialized shared-memory passes from bank conflicts.
    pub smem_conflicts: u64,
    /// Block-wide synchronizations executed (per warp).
    pub syncs: u64,
    /// Per-thread device-heap allocations.
    pub mallocs: u64,
    /// Extra serialization cycles from contended atomics (lane count
    /// beyond the first per warp request).
    pub atomic_serial: u64,
    /// Device-side child-kernel launches issued from this kernel
    /// (dynamic parallelism); each pays
    /// [`GpuSpec::child_launch_overhead_s`].
    pub child_launches: u64,
    /// Thread blocks dispatched for those child launches (their execution
    /// cost is folded into the parent's counters; the blocks still pay
    /// dispatch overhead).
    pub child_blocks: u64,
}

impl KernelCost {
    /// Merge another cost record into this one.
    pub fn add(&mut self, other: &KernelCost) {
        self.warp_instr += other.warp_instr;
        self.mem_requests += other.mem_requests;
        self.transactions += other.transactions;
        self.dram_bytes += other.dram_bytes;
        self.smem_accesses += other.smem_accesses;
        self.smem_conflicts += other.smem_conflicts;
        self.syncs += other.syncs;
        self.mallocs += other.mallocs;
        self.atomic_serial += other.atomic_serial;
        self.child_launches += other.child_launches;
        self.child_blocks += other.child_blocks;
    }
}

/// Static launch facts the timing model needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchShape {
    /// Total thread blocks launched.
    pub blocks: u64,
    /// Threads per block.
    pub block_threads: u32,
    /// Shared-memory bytes per block.
    pub smem_bytes: u32,
}

/// Occupancy: resident blocks and warps per *active* SM for a launch
/// (capped both by architectural limits and by how many blocks the launch
/// actually provides per SM).
pub fn occupancy(gpu: &GpuSpec, shape: &LaunchShape) -> (u32, u32) {
    let by_threads = (gpu.max_threads_per_sm / shape.block_threads.max(1)).max(1);
    let by_blocks = gpu.max_blocks_per_sm;
    let by_smem = gpu
        .smem_per_sm
        .checked_div(shape.smem_bytes)
        .map_or(u32::MAX, |v| v.max(1));
    let arch = by_threads.min(by_blocks).min(by_smem).max(1);
    let blocks = shape.blocks.max(1);
    let active_sms = (gpu.sm_count as u64).min(blocks) as u32;
    let per_sm = blocks.div_ceil(active_sms as u64).min(u32::MAX as u64) as u32;
    let resident_blocks = arch.min(per_sm).max(1);
    let warps_per_block = shape.block_threads.div_ceil(WARP_SIZE).max(1);
    (resident_blocks, resident_blocks * warps_per_block)
}

/// Detailed timing breakdown of one kernel (all in seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelTime {
    /// Instruction-issue bound.
    pub issue: f64,
    /// DRAM bandwidth bound.
    pub bandwidth: f64,
    /// Latency-hiding bound.
    pub latency: f64,
    /// Device-malloc serialization.
    pub malloc: f64,
    /// Launch + block dispatch overhead.
    pub overhead: f64,
    /// Final kernel time: `max(issue, bandwidth, latency) + malloc +
    /// overhead`.
    pub total: f64,
}

/// Convert a kernel's cost record into time on `gpu`.
pub fn kernel_time(gpu: &GpuSpec, shape: &LaunchShape, cost: &KernelCost) -> KernelTime {
    let (resident_blocks, resident_warps) = occupancy(gpu, shape);
    let _ = resident_blocks;
    let active_sms = gpu
        .sm_count
        .min(shape.blocks.max(1).min(u32::MAX as u64) as u32)
        .max(1);

    // --- issue pipe -----------------------------------------------------
    // A warp sustains roughly one instruction per 4 cycles (dependency
    // latency); with enough warps the scheduler's issue width caps it.
    let per_warp_ipc = 0.25f64;
    let throughput_per_sm = (resident_warps as f64 * per_warp_ipc)
        .min(gpu.issue_width as f64)
        .max(per_warp_ipc);
    let issue_work = cost.warp_instr as f64
        + (cost.smem_accesses + cost.smem_conflicts) as f64 * gpu.smem_cycles
        + cost.syncs as f64 * gpu.sync_cycles
        + cost.atomic_serial as f64;
    let issue_cycles = issue_work / (active_sms as f64 * throughput_per_sm);

    // --- bandwidth pipe ---------------------------------------------------
    let bytes_per_cycle = gpu.dram_bandwidth / gpu.clock_hz;
    let bw_cycles = cost.dram_bytes as f64 / bytes_per_cycle;

    // --- latency pipe ----------------------------------------------------
    // Each resident warp sustains up to `mlp_per_warp` outstanding
    // transactions, but the SM's miss-handling resources (MSHRs) cap the
    // total in flight.
    let per_sm = (resident_warps as f64 * gpu.mlp_per_warp).min(gpu.mshr_per_sm);
    let concurrency = active_sms as f64 * per_sm;
    let lat_cycles = cost.transactions as f64 * gpu.mem_latency_cycles / concurrency.max(1.0);

    // --- serial extras ----------------------------------------------------
    let malloc_cycles = cost.mallocs as f64 * gpu.device_malloc_cycles
        / (active_sms as f64 * resident_warps as f64).clamp(1.0, 32.0);
    let overhead_s = gpu.kernel_launch_overhead_s
        + gpu
            .cycles_to_seconds(shape.blocks as f64 * gpu.block_dispatch_cycles / active_sms as f64)
        // Dynamic parallelism: each device-side launch pays a fixed
        // overhead, and the child grids' blocks pay dispatch like any
        // other block (their execution cost is already folded into the
        // parent's counters).
        + cost.child_launches as f64 * gpu.child_launch_overhead_s
        + gpu.cycles_to_seconds(
            cost.child_blocks as f64 * gpu.block_dispatch_cycles / active_sms as f64,
        );

    let issue = gpu.cycles_to_seconds(issue_cycles);
    let bandwidth = gpu.cycles_to_seconds(bw_cycles);
    let latency = gpu.cycles_to_seconds(lat_cycles);
    let malloc = gpu.cycles_to_seconds(malloc_cycles);
    let total = issue.max(bandwidth).max(latency) + malloc + overhead_s;
    KernelTime {
        issue,
        bandwidth,
        latency,
        malloc,
        overhead: overhead_s,
        total,
    }
}

/// A sound lower bound (seconds) on the time any kernel set moving
/// `transactions` DRAM transactions can take on `gpu`, derived from the
/// same roofline terms as [`kernel_time`]:
///
/// * the bandwidth pipe is linear in bytes, so summing over kernels can
///   only grow it: `Σ_k bw_k ≥ bw(Σ_k tx_k)`;
/// * the latency pipe's concurrency denominator is capped by
///   `sm_count × mshr_per_sm` (`per_sm ≤ mshr_per_sm`, `active_sms ≤
///   sm_count`), so each kernel's latency term is at least
///   `tx_k × mem_latency / (sm_count × mshr)`;
/// * `total = max(issue, bw, lat) + … ≥ max(bw, lat)` per kernel, and
///   `Σ max(a_k, b_k) ≥ max(Σ a_k, Σ b_k)`.
///
/// The static locality analysis uses this to prune mapping candidates:
/// keeping the formula next to [`kernel_time`] means a timing-model change
/// cannot silently invalidate the bound.
pub fn memory_floor_seconds(gpu: &GpuSpec, transactions: u64) -> f64 {
    let bytes = (transactions as f64) * (gpu.transaction_bytes as f64);
    let bw = bytes / gpu.dram_bandwidth;
    let concurrency = (gpu.sm_count as f64 * gpu.mshr_per_sm).max(1.0);
    let lat = gpu.cycles_to_seconds(transactions as f64 * gpu.mem_latency_cycles / concurrency);
    bw.max(lat)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuSpec {
        GpuSpec::tesla_k20c()
    }

    #[test]
    fn occupancy_full_blocks() {
        let shape = LaunchShape {
            blocks: 1000,
            block_threads: 256,
            smem_bytes: 0,
        };
        let (blocks, warps) = occupancy(&gpu(), &shape);
        assert_eq!(blocks, 8); // 2048/256
        assert_eq!(warps, 64);
    }

    #[test]
    fn occupancy_limited_by_smem() {
        let shape = LaunchShape {
            blocks: 1000,
            block_threads: 64,
            smem_bytes: 24 * 1024,
        };
        let (blocks, _) = occupancy(&gpu(), &shape);
        assert_eq!(blocks, 2); // 48K/24K
    }

    #[test]
    fn occupancy_limited_by_launch() {
        // 3 blocks spread over 3 active SMs: 1 resident block each.
        let shape = LaunchShape {
            blocks: 3,
            block_threads: 64,
            smem_bytes: 0,
        };
        let (blocks, warps) = occupancy(&gpu(), &shape);
        assert_eq!(blocks, 1);
        assert_eq!(warps, 2);
        // 26 blocks over 13 SMs: 2 resident blocks each.
        let shape = LaunchShape {
            blocks: 26,
            block_threads: 64,
            smem_bytes: 0,
        };
        assert_eq!(occupancy(&gpu(), &shape).0, 2);
    }

    #[test]
    fn bandwidth_bound_kernel() {
        // 256 MB moved on a well-occupied kernel: ~1.2 ms on 208 GB/s.
        let shape = LaunchShape {
            blocks: 4096,
            block_threads: 256,
            smem_bytes: 0,
        };
        let cost = KernelCost {
            warp_instr: 1_000_000,
            mem_requests: 2_000_000,
            transactions: 2_000_000,
            dram_bytes: 256 << 20,
            ..Default::default()
        };
        let t = kernel_time(&gpu(), &shape, &cost);
        assert!(t.total > 1.0e-3 && t.total < 2.0e-3, "t = {t:?}");
        assert!(t.bandwidth > t.issue);
    }

    #[test]
    fn uncoalesced_pays_more() {
        let shape = LaunchShape {
            blocks: 4096,
            block_threads: 256,
            smem_bytes: 0,
        };
        let coalesced = KernelCost {
            mem_requests: 1_000_000,
            transactions: 1_000_000,
            dram_bytes: 128_000_000,
            ..Default::default()
        };
        let scattered = KernelCost {
            mem_requests: 1_000_000,
            transactions: 32_000_000,
            dram_bytes: 32 * 128_000_000,
            ..Default::default()
        };
        let tc = kernel_time(&gpu(), &shape, &coalesced);
        let ts = kernel_time(&gpu(), &shape, &scattered);
        assert!(ts.total / tc.total > 8.0, "ratio {}", ts.total / tc.total);
    }

    #[test]
    fn underutilization_hurts_latency_bound() {
        // Same traffic, but on 4 blocks instead of 4096: fewer SMs active,
        // less latency hiding.
        let cost = KernelCost {
            mem_requests: 1_000_000,
            transactions: 1_000_000,
            dram_bytes: 128_000_000,
            ..Default::default()
        };
        let busy = LaunchShape {
            blocks: 4096,
            block_threads: 256,
            smem_bytes: 0,
        };
        let starved = LaunchShape {
            blocks: 4,
            block_threads: 256,
            smem_bytes: 0,
        };
        let tb = kernel_time(&gpu(), &busy, &cost);
        let ts = kernel_time(&gpu(), &starved, &cost);
        assert!(ts.total / tb.total > 3.0, "ratio {}", ts.total / tb.total);
    }

    #[test]
    fn launch_overhead_floor() {
        let shape = LaunchShape {
            blocks: 1,
            block_threads: 32,
            smem_bytes: 0,
        };
        let t = kernel_time(&gpu(), &shape, &KernelCost::default());
        assert!(t.total >= gpu().kernel_launch_overhead_s);
    }

    #[test]
    fn cost_merge() {
        let mut a = KernelCost {
            warp_instr: 1,
            ..Default::default()
        };
        let b = KernelCost {
            warp_instr: 2,
            dram_bytes: 128,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.warp_instr, 3);
        assert_eq!(a.dram_bytes, 128);
    }
}
