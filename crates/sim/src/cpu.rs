//! Analytic multicore-CPU baseline (the Figure 14 reference machine).
//!
//! The reference interpreter executes the program once for correctness and
//! op/byte counters; this module turns those counters into a time estimate
//! with a two-term roofline — compute throughput and memory bandwidth —
//! where the bandwidth term derates *random* accesses to cache-line
//! efficiency. Access randomness is classified statically from the IR's
//! affine access summaries, exactly the information the GPU mapping
//! analysis uses.

use multidim_device::CpuSpec;
use multidim_ir::{
    collect_accesses, AffineForm, Bindings, CostCounters, InterpError, InterpResult, Program,
};
use std::collections::HashMap;

/// CPU time estimate with its ingredients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuEstimate {
    /// Wall-clock estimate in seconds.
    pub seconds: f64,
    /// Arithmetic operations counted by the interpreter.
    pub flops: u64,
    /// Total bytes moved (reads + writes).
    pub bytes: u64,
    /// Fraction of traffic classified as random-access (0..1).
    pub random_fraction: f64,
}

/// Execute `program` on the reference interpreter and estimate multicore
/// CPU time for it.
///
/// # Errors
///
/// Propagates interpreter failures.
pub fn run_cpu(
    program: &Program,
    cpu: &CpuSpec,
    bindings: &Bindings,
    inputs: &HashMap<multidim_ir::ArrayId, Vec<f64>>,
) -> Result<(InterpResult, CpuEstimate), InterpError> {
    let result = multidim_ir::interpret(program, bindings, inputs)?;
    let est = estimate_cpu(program, cpu, bindings, &result.counters);
    Ok((result, est))
}

/// Estimate CPU time from execution counters plus a static random-access
/// classification.
pub fn estimate_cpu(
    program: &Program,
    cpu: &CpuSpec,
    bindings: &Bindings,
    counters: &CostCounters,
) -> CpuEstimate {
    let random_fraction = random_access_fraction(program, bindings);
    let bytes = counters.bytes_read + counters.bytes_written;
    let flops = counters.flops;

    let t_compute = flops as f64 / cpu.peak_flops();
    // Random traffic wastes the rest of each cache line. Approximate the
    // average element as 4 bytes.
    let line_factor = (cpu.cache_line_bytes as f64 / 4.0).max(1.0);
    let effective_bytes =
        bytes as f64 * (1.0 - random_fraction) + bytes as f64 * random_fraction * line_factor;
    let t_mem = effective_bytes / cpu.dram_bandwidth;

    CpuEstimate {
        seconds: t_compute.max(t_mem),
        flops,
        bytes,
        random_fraction,
    }
}

/// Share of access executions whose innermost-varying index is data
/// dependent (non-affine), weighted by execution count.
pub fn random_access_fraction(program: &Program, bindings: &Bindings) -> f64 {
    let mut total = 0.0f64;
    let mut random = 0.0f64;
    for a in collect_accesses(program) {
        let mut n = 1.0f64;
        for link in &a.chain {
            n *= link.size.eval_or_default(bindings).max(1) as f64;
        }
        n *= a.iterate_factor.max(1) as f64;
        n /= 2f64.powi(a.branch_depth as i32);
        total += n;
        if a.addr == AffineForm::NonAffine && !a.flexible_layout {
            random += n;
        }
    }
    if total == 0.0 {
        0.0
    } else {
        random / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multidim_ir::{Expr, ProgramBuilder, ReduceOp, ScalarKind, Size};

    fn cpu() -> CpuSpec {
        CpuSpec::dual_xeon_x5550()
    }

    #[test]
    fn streaming_sum_is_bandwidth_bound() {
        let mut b = ProgramBuilder::new("sum");
        let n = b.sym("N");
        let a = b.input("a", ScalarKind::F32, &[Size::sym(n)]);
        let root = b.reduce(Size::sym(n), ReduceOp::Add, |b, i| b.read(a, &[i.into()]));
        let p = b.finish_reduce(root, "total", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 1 << 20);
        let inputs: HashMap<_, _> = [(a, vec![1.0; 1 << 20])].into_iter().collect();
        let (res, est) = run_cpu(&p, &cpu(), &bind, &inputs).unwrap();
        assert_eq!(res.array(p.output.unwrap()).data[0], (1 << 20) as f64);
        assert_eq!(est.random_fraction, 0.0);
        // 4 MiB at 25 GB/s ≈ 0.17 ms; compute is far below it.
        assert!(
            est.seconds > 1e-4 && est.seconds < 1e-3,
            "t = {}",
            est.seconds
        );
    }

    #[test]
    fn gather_counts_as_random() {
        let mut b = ProgramBuilder::new("gather");
        let n = b.sym("N");
        let idx = b.input("idx", ScalarKind::I32, &[Size::sym(n)]);
        let data = b.input("data", ScalarKind::F32, &[Size::sym(n)]);
        let root = b.map(Size::sym(n), |b, i| {
            let j = b.read(idx, &[i.into()]);
            b.read(data, &[j])
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 1000);
        let f = random_access_fraction(&p, &bind);
        // One of three accesses (idx read, data read, out store) is random.
        assert!((f - 1.0 / 3.0).abs() < 1e-9, "f = {f}");
    }

    #[test]
    fn random_traffic_costs_more() {
        let mut b1 = ProgramBuilder::new("seq");
        let n1 = b1.sym("N");
        let a1 = b1.input("a", ScalarKind::F32, &[Size::sym(n1)]);
        let root1 = b1.map(Size::sym(n1), |b, i| {
            b.read(a1, &[i.into()]) * Expr::lit(2.0)
        });
        let p1 = b1.finish_map(root1, "o", ScalarKind::F32).unwrap();

        let mut b2 = ProgramBuilder::new("rand");
        let n2 = b2.sym("N");
        let ix = b2.input("idx", ScalarKind::I32, &[Size::sym(n2)]);
        let a2 = b2.input("a", ScalarKind::F32, &[Size::sym(n2)]);
        let root2 = b2.map(Size::sym(n2), |b, i| {
            let j = b.read(ix, &[i.into()]);
            b.read(a2, &[j]) * Expr::lit(2.0)
        });
        let p2 = b2.finish_map(root2, "o", ScalarKind::F32).unwrap();

        let n = 1 << 16;
        let mut bind = Bindings::new();
        bind.bind(n1, n);
        let inputs1: HashMap<_, _> = [(a1, vec![1.0; n as usize])].into_iter().collect();
        let (_, e1) = run_cpu(&p1, &cpu(), &bind, &inputs1).unwrap();

        let mut bind2 = Bindings::new();
        bind2.bind(n2, n);
        let ids: Vec<f64> = (0..n).map(|i| ((i * 7919) % n) as f64).collect();
        let inputs2: HashMap<_, _> = [(ix, ids), (a2, vec![1.0; n as usize])]
            .into_iter()
            .collect();
        let (_, e2) = run_cpu(&p2, &cpu(), &bind2, &inputs2).unwrap();
        assert!(
            e2.seconds > 2.0 * e1.seconds,
            "{} vs {}",
            e2.seconds,
            e1.seconds
        );
    }
}
