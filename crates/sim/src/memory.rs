//! Memory-system models: global-memory coalescing and shared-memory bank
//! conflicts.

use multidim_device::{GpuSpec, WARP_SIZE};

/// Coalesce one warp's global access: given the active lanes' byte
/// addresses, count the distinct `transaction_bytes`-sized segments touched
/// (NVIDIA-style coalescing — Section II of the paper).
///
/// Returns `(transactions, bytes)`.
///
/// # Examples
///
/// ```
/// use multidim_sim::coalesce;
/// use multidim_device::GpuSpec;
///
/// let gpu = GpuSpec::tesla_k20c();
/// // 32 adjacent 4-byte accesses: one 128-byte transaction.
/// let seq: Vec<u64> = (0..32).map(|i| i * 4).collect();
/// assert_eq!(coalesce(&gpu, &seq), (1, 128));
/// // 32 accesses strided by 4 KiB: 32 transactions.
/// let strided: Vec<u64> = (0..32).map(|i| i * 4096).collect();
/// assert_eq!(coalesce(&gpu, &strided), (32, 32 * 128));
/// ```
pub fn coalesce(gpu: &GpuSpec, byte_addrs: &[u64]) -> (u64, u64) {
    if byte_addrs.is_empty() {
        return (0, 0);
    }
    let seg = gpu.transaction_bytes.max(1);
    let mut segments: [u64; WARP_SIZE as usize] = [u64::MAX; WARP_SIZE as usize];
    let mut n = 0usize;
    for &a in byte_addrs {
        let s = a / seg;
        if !segments[..n].contains(&s) {
            segments[n] = s;
            n += 1;
        }
    }
    (n as u64, n as u64 * seg)
}

/// Shared-memory bank conflicts for one warp access: word addresses map to
/// `banks` 4-byte banks; the access replays once per extra hit on the most
/// contended bank (identical addresses broadcast for free).
///
/// Returns the number of *extra* serialized passes (0 = conflict-free).
///
/// # Examples
///
/// ```
/// use multidim_sim::bank_conflicts;
///
/// // Conflict-free: consecutive words.
/// let seq: Vec<u64> = (0..32).collect();
/// assert_eq!(bank_conflicts(32, &seq), 0);
/// // 2-way conflict: stride 2.
/// let s2: Vec<u64> = (0..32).map(|i| i * 2).collect();
/// assert_eq!(bank_conflicts(32, &s2), 1);
/// // Broadcast: same word everywhere — free.
/// let b: Vec<u64> = vec![7; 32];
/// assert_eq!(bank_conflicts(32, &b), 0);
/// ```
pub fn bank_conflicts(banks: u32, word_addrs: &[u64]) -> u64 {
    if word_addrs.is_empty() {
        return 0;
    }
    let banks = banks.max(1) as u64;
    // Per bank, count *distinct* words (same word broadcasts).
    let mut seen: Vec<(u64, u64)> = Vec::with_capacity(word_addrs.len()); // (bank, word)
    let mut per_bank = vec![0u64; banks as usize];
    for &w in word_addrs {
        let b = w % banks;
        if !seen.contains(&(b, w)) {
            seen.push((b, w));
            per_bank[b as usize] += 1;
        }
    }
    per_bank
        .iter()
        .copied()
        .max()
        .unwrap_or(1)
        .saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuSpec {
        GpuSpec::tesla_k20c()
    }

    #[test]
    fn single_lane_one_transaction() {
        assert_eq!(coalesce(&gpu(), &[4096]), (1, 128));
    }

    #[test]
    fn two_segments_when_straddling() {
        // Two accesses in different 128B segments.
        assert_eq!(coalesce(&gpu(), &[0, 128]).0, 2);
        // Same segment: one.
        assert_eq!(coalesce(&gpu(), &[0, 124]).0, 1);
    }

    #[test]
    fn f64_sequential_is_two_transactions() {
        // 32 lanes x 8 bytes = 256 bytes = 2 segments.
        let addrs: Vec<u64> = (0..32).map(|i| i * 8).collect();
        assert_eq!(coalesce(&gpu(), &addrs).0, 2);
    }

    #[test]
    fn stride_interacts_with_segment_size() {
        // Stride 32 floats (128B): every lane its own segment.
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 128).collect();
        assert_eq!(coalesce(&gpu(), &addrs).0, 32);
        // Stride 8 floats (32B): 4 lanes share a segment.
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 32).collect();
        assert_eq!(coalesce(&gpu(), &addrs).0, 8);
    }

    #[test]
    fn conflict_heavy_stride() {
        // Stride 32 words on 32 banks: all lanes hit bank 0: 31 replays.
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 32).collect();
        assert_eq!(bank_conflicts(32, &addrs), 31);
    }

    #[test]
    fn partial_warp() {
        let addrs: Vec<u64> = (0..7u64).map(|i| i * 4).collect();
        let (t, b) = coalesce(&gpu(), &addrs);
        assert_eq!(t, 1);
        assert_eq!(b, 128);
        assert_eq!(bank_conflicts(32, &addrs), 0);
    }

    #[test]
    fn empty_access() {
        assert_eq!(coalesce(&gpu(), &[]), (0, 0));
        assert_eq!(bank_conflicts(32, &[]), 0);
    }
}
