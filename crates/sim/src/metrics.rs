//! Machine-readable run summary: per-kernel counters, timing breakdown, and
//! efficiency metrics, serializable to/from JSON via [`multidim_trace::json`].
//!
//! [`RunMetrics`] is the export format behind `metrics.json` in the profiling
//! example and the `--report` flag of the figure benches. It is derived from a
//! live [`SimResult`] so the numbers always match what the simulator charged.

use crate::cost::{KernelCost, KernelTime, LaunchShape};
use crate::exec::SimResult;
use crate::report::{BoundBy, Efficiency};
use multidim_device::GpuSpec;
use multidim_trace::json::Json;

/// Everything the simulator knows about one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelMetrics {
    /// Kernel name from the lowered [`multidim_codegen::KernelProgram`].
    pub name: String,
    /// Simulated start time (seconds since the first launch).
    pub start_seconds: f64,
    /// Launch configuration.
    pub shape: LaunchShape,
    /// Accumulated cost counters.
    pub cost: KernelCost,
    /// Roofline timing breakdown.
    pub time: KernelTime,
    /// Derived efficiency metrics.
    pub efficiency: Efficiency,
    /// [`BoundBy`] classification label (e.g. `"bandwidth-bound"`).
    pub bound_by: String,
}

/// Full-run summary: one [`KernelMetrics`] per launched kernel plus totals.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Program name the metrics describe.
    pub program: String,
    /// Simulated end-to-end time in seconds.
    pub total_seconds: f64,
    /// Per-kernel records in launch order.
    pub kernels: Vec<KernelMetrics>,
}

impl RunMetrics {
    /// Derive metrics from a finished simulation.
    pub fn of(program: &str, gpu: &GpuSpec, result: &SimResult) -> RunMetrics {
        RunMetrics::from_parts(
            program,
            gpu,
            &result.names,
            &result.shapes,
            &result.costs,
            &result.times,
            result.total_seconds,
        )
    }

    /// Derive metrics from the per-kernel pieces a [`SimResult`] carries
    /// (all slices in launch order, equal length).
    pub fn from_parts(
        program: &str,
        gpu: &GpuSpec,
        names: &[String],
        shapes: &[LaunchShape],
        costs: &[KernelCost],
        times: &[KernelTime],
        total_seconds: f64,
    ) -> RunMetrics {
        let mut kernels = Vec::with_capacity(costs.len());
        let mut start = 0.0f64;
        for i in 0..costs.len() {
            let (shape, cost, time) = (shapes[i], costs[i], times[i]);
            kernels.push(KernelMetrics {
                name: names[i].clone(),
                start_seconds: start,
                shape,
                cost,
                time,
                efficiency: Efficiency::of(gpu, &shape, &cost),
                bound_by: BoundBy::classify(&time).label().to_string(),
            });
            start += time.total;
        }
        RunMetrics {
            program: program.to_string(),
            total_seconds,
            kernels,
        }
    }

    /// Serialize to a JSON value.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("program".to_string(), Json::Str(self.program.clone())),
            ("total_seconds".to_string(), Json::Num(self.total_seconds)),
            (
                "kernels".to_string(),
                Json::Arr(self.kernels.iter().map(kernel_json).collect()),
            ),
        ])
    }

    /// Serialize to compact JSON text.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Deserialize from a JSON value produced by [`RunMetrics::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or mistyped field.
    pub fn from_json(j: &Json) -> Result<RunMetrics, String> {
        let kernels = j
            .get("kernels")
            .and_then(Json::as_arr)
            .ok_or("metrics: missing `kernels` array")?
            .iter()
            .map(kernel_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RunMetrics {
            program: req_str(j, "program")?,
            total_seconds: req_f64(j, "total_seconds")?,
            kernels,
        })
    }

    /// Parse from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or a schema mismatch.
    pub fn parse(text: &str) -> Result<RunMetrics, String> {
        RunMetrics::from_json(&Json::parse(text)?)
    }

    /// Accumulate this run into an observability registry: one counter per
    /// [`KernelCost`] field (`sim_<field>_total`), a kernel-launch counter,
    /// and a histogram of simulated run times. The cost counters reuse
    /// [`cost_fields`], so a new counter added there is exported
    /// automatically.
    pub fn record(&self, registry: &multidim_obs::Registry) {
        registry
            .counter("sim_kernels_total", "kernel launches simulated")
            .add(self.kernels.len() as u64);
        registry
            .histogram(
                "sim_run_seconds",
                "simulated end-to-end run time per request",
            )
            .record(self.total_seconds);
        let mut totals = [0u64; 11];
        for k in &self.kernels {
            for (slot, (_, v)) in totals.iter_mut().zip(cost_fields(&k.cost)) {
                *slot += v;
            }
        }
        let zero = KernelCost::default();
        for ((name, _), total) in cost_fields(&zero).iter().zip(totals) {
            registry
                .counter(
                    &format!("sim_{name}_total"),
                    "simulator cost counter, summed over runs",
                )
                .add(total);
        }
    }

    /// Total dynamic-parallelism child launches and child blocks across
    /// every kernel of the run — `(child_launches, child_blocks)`. The
    /// engine exports these per workload so consolidation wins show up as
    /// labelled metric families, not just global `sim_*_total` counters.
    pub fn child_totals(&self) -> (u64, u64) {
        self.kernels.iter().fold((0, 0), |(launches, blocks), k| {
            (
                launches + k.cost.child_launches,
                blocks + k.cost.child_blocks,
            )
        })
    }
}

fn kernel_json(k: &KernelMetrics) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::Str(k.name.clone())),
        ("start_seconds".to_string(), Json::Num(k.start_seconds)),
        ("bound_by".to_string(), Json::Str(k.bound_by.clone())),
        (
            "shape".to_string(),
            Json::Obj(vec![
                ("blocks".to_string(), Json::Num(k.shape.blocks as f64)),
                (
                    "block_threads".to_string(),
                    Json::Num(f64::from(k.shape.block_threads)),
                ),
                (
                    "smem_bytes".to_string(),
                    Json::Num(f64::from(k.shape.smem_bytes)),
                ),
            ]),
        ),
        (
            "cost".to_string(),
            Json::Obj(
                cost_fields(&k.cost)
                    .into_iter()
                    .map(|(name, v)| (name.to_string(), Json::Num(v as f64)))
                    .collect(),
            ),
        ),
        (
            "time".to_string(),
            Json::Obj(vec![
                ("issue".to_string(), Json::Num(k.time.issue)),
                ("bandwidth".to_string(), Json::Num(k.time.bandwidth)),
                ("latency".to_string(), Json::Num(k.time.latency)),
                ("malloc".to_string(), Json::Num(k.time.malloc)),
                ("overhead".to_string(), Json::Num(k.time.overhead)),
                ("total".to_string(), Json::Num(k.time.total)),
            ]),
        ),
        (
            "efficiency".to_string(),
            Json::Obj(vec![
                (
                    "transactions_per_request".to_string(),
                    Json::Num(k.efficiency.transactions_per_request),
                ),
                (
                    "conflicts_per_access".to_string(),
                    Json::Num(k.efficiency.conflicts_per_access),
                ),
                (
                    "resident_warps".to_string(),
                    Json::Num(f64::from(k.efficiency.resident_warps)),
                ),
            ]),
        ),
    ])
}

fn kernel_from_json(j: &Json) -> Result<KernelMetrics, String> {
    let shape = j.get("shape").ok_or("metrics: missing `shape`")?;
    let cost = j.get("cost").ok_or("metrics: missing `cost`")?;
    let time = j.get("time").ok_or("metrics: missing `time`")?;
    let eff = j.get("efficiency").ok_or("metrics: missing `efficiency`")?;
    Ok(KernelMetrics {
        name: req_str(j, "name")?,
        start_seconds: req_f64(j, "start_seconds")?,
        bound_by: req_str(j, "bound_by")?,
        shape: LaunchShape {
            blocks: req_u64(shape, "blocks")?,
            block_threads: req_u64(shape, "block_threads")? as u32,
            smem_bytes: req_u64(shape, "smem_bytes")? as u32,
        },
        cost: KernelCost {
            warp_instr: req_u64(cost, "warp_instr")?,
            mem_requests: req_u64(cost, "mem_requests")?,
            transactions: req_u64(cost, "transactions")?,
            dram_bytes: req_u64(cost, "dram_bytes")?,
            smem_accesses: req_u64(cost, "smem_accesses")?,
            smem_conflicts: req_u64(cost, "smem_conflicts")?,
            syncs: req_u64(cost, "syncs")?,
            mallocs: req_u64(cost, "mallocs")?,
            atomic_serial: req_u64(cost, "atomic_serial")?,
            // Absent in metrics files written before the dynamic-
            // parallelism counters existed.
            child_launches: opt_u64(cost, "child_launches"),
            child_blocks: opt_u64(cost, "child_blocks"),
        },
        time: KernelTime {
            issue: req_f64(time, "issue")?,
            bandwidth: req_f64(time, "bandwidth")?,
            latency: req_f64(time, "latency")?,
            malloc: req_f64(time, "malloc")?,
            overhead: req_f64(time, "overhead")?,
            total: req_f64(time, "total")?,
        },
        efficiency: Efficiency {
            transactions_per_request: req_f64(eff, "transactions_per_request")?,
            conflicts_per_access: req_f64(eff, "conflicts_per_access")?,
            resident_warps: req_u64(eff, "resident_warps")? as u32,
        },
    })
}

/// The nine [`KernelCost`] counters as (name, value) pairs — the single
/// source of truth shared by serialization and reporting.
pub fn cost_fields(c: &KernelCost) -> [(&'static str, u64); 11] {
    [
        ("warp_instr", c.warp_instr),
        ("mem_requests", c.mem_requests),
        ("transactions", c.transactions),
        ("dram_bytes", c.dram_bytes),
        ("smem_accesses", c.smem_accesses),
        ("smem_conflicts", c.smem_conflicts),
        ("syncs", c.syncs),
        ("mallocs", c.mallocs),
        ("atomic_serial", c.atomic_serial),
        ("child_launches", c.child_launches),
        ("child_blocks", c.child_blocks),
    ]
}

/// A `u64` field that may be missing (counters added after the schema
/// shipped); missing means zero.
fn opt_u64(j: &Json, key: &str) -> u64 {
    j.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn req_f64(j: &Json, key: &str) -> Result<f64, String> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("metrics: missing number `{key}`"))
}

fn req_u64(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("metrics: missing integer `{key}`"))
}

fn req_str(j: &Json, key: &str) -> Result<String, String> {
    j.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("metrics: missing string `{key}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunMetrics {
        RunMetrics {
            program: "dot".to_string(),
            total_seconds: 3.5e-6,
            kernels: vec![KernelMetrics {
                name: "dot_k0".to_string(),
                start_seconds: 0.0,
                shape: LaunchShape {
                    blocks: 40,
                    block_threads: 256,
                    smem_bytes: 1024,
                },
                cost: KernelCost {
                    warp_instr: 1000,
                    mem_requests: 320,
                    transactions: 640,
                    dram_bytes: 81920,
                    smem_accesses: 64,
                    smem_conflicts: 0,
                    syncs: 8,
                    mallocs: 0,
                    atomic_serial: 0,
                    child_launches: 0,
                    child_blocks: 0,
                },
                time: KernelTime {
                    issue: 1e-6,
                    bandwidth: 3e-6,
                    latency: 2e-6,
                    malloc: 0.0,
                    overhead: 5e-7,
                    total: 3.5e-6,
                },
                efficiency: Efficiency {
                    transactions_per_request: 2.0,
                    conflicts_per_access: 0.0,
                    resident_warps: 32,
                },
                bound_by: "bandwidth-bound".to_string(),
            }],
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let m = sample();
        let back = RunMetrics::parse(&m.render()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn missing_field_is_named_in_error() {
        let mut j = sample().to_json();
        if let Json::Obj(fields) = &mut j {
            fields.retain(|(k, _)| k != "total_seconds");
        }
        let err = RunMetrics::from_json(&j).unwrap_err();
        assert!(err.contains("total_seconds"), "error was: {err}");
    }

    #[test]
    fn record_accumulates_into_registry() {
        let registry = multidim_obs::Registry::new();
        let m = sample();
        m.record(&registry);
        m.record(&registry);
        let text = registry.render_text();
        assert!(text.contains("sim_kernels_total 2"), "{text}");
        assert!(text.contains("sim_transactions_total 1280"), "{text}");
        assert!(text.contains("sim_run_seconds_count 2"), "{text}");
    }

    #[test]
    fn cost_fields_cover_every_counter() {
        // Sum of the listed fields must equal the sum of a fully-populated
        // struct — a new counter that is not listed here breaks this.
        let c = KernelCost {
            warp_instr: 1,
            mem_requests: 2,
            transactions: 4,
            dram_bytes: 8,
            smem_accesses: 16,
            smem_conflicts: 32,
            syncs: 64,
            mallocs: 128,
            atomic_serial: 256,
            child_launches: 512,
            child_blocks: 1024,
        };
        let sum: u64 = cost_fields(&c).iter().map(|(_, v)| v).sum();
        assert_eq!(sum, 2047);
    }

    #[test]
    fn child_totals_sum_across_kernels() {
        let mut m = sample();
        assert_eq!(m.child_totals(), (0, 0));
        m.kernels[0].cost.child_launches = 3;
        m.kernels[0].cost.child_blocks = 48;
        let mut second = m.kernels[0].clone();
        second.cost.child_launches = 2;
        second.cost.child_blocks = 16;
        m.kernels.push(second);
        assert_eq!(m.child_totals(), (5, 64));
    }
}
