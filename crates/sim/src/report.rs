//! Human-readable performance reports.
//!
//! Turns a kernel's cost record and timing breakdown into the kind of
//! diagnosis a GPU profiler gives: which pipe bounds the kernel, how well
//! its accesses coalesce, its occupancy, and divergence pressure. Used by
//! the examples and by the figure benches' verbose modes.

use crate::cost::{occupancy, KernelCost, KernelTime, LaunchShape};
use multidim_device::GpuSpec;
use std::fmt::Write as _;

/// What limits a kernel's execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundBy {
    /// DRAM bandwidth (the common case for pattern workloads — the reason
    /// coalescing carries the paper's highest constraint weight).
    Bandwidth,
    /// Memory latency with too few resident warps to hide it.
    Latency,
    /// Instruction issue.
    Issue,
    /// Fixed overheads (launch/dispatch) dominate: the kernel is too small.
    Overhead,
}

impl BoundBy {
    /// Classify from a timing breakdown.
    pub fn classify(t: &KernelTime) -> BoundBy {
        let work = t.issue.max(t.bandwidth).max(t.latency);
        if t.overhead + t.malloc > work {
            return BoundBy::Overhead;
        }
        if t.bandwidth >= t.latency && t.bandwidth >= t.issue {
            BoundBy::Bandwidth
        } else if t.latency >= t.issue {
            BoundBy::Latency
        } else {
            BoundBy::Issue
        }
    }

    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            BoundBy::Bandwidth => "bandwidth-bound",
            BoundBy::Latency => "latency-bound",
            BoundBy::Issue => "issue-bound",
            BoundBy::Overhead => "overhead-bound",
        }
    }
}

/// Aggregate efficiency metrics derived from a cost record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Efficiency {
    /// Average 128 B transactions per warp memory request (1–2 ≈ fully
    /// coalesced; 32 ≈ fully scattered).
    pub transactions_per_request: f64,
    /// Extra shared-memory passes per access from bank conflicts.
    pub conflicts_per_access: f64,
    /// Resident warps per SM (occupancy).
    pub resident_warps: u32,
}

impl Efficiency {
    /// Compute from a cost record and launch shape.
    pub fn of(gpu: &GpuSpec, shape: &LaunchShape, cost: &KernelCost) -> Efficiency {
        let (_, warps) = occupancy(gpu, shape);
        Efficiency {
            transactions_per_request: if cost.mem_requests == 0 {
                0.0
            } else {
                cost.transactions as f64 / cost.mem_requests as f64
            },
            conflicts_per_access: if cost.smem_accesses == 0 {
                0.0
            } else {
                cost.smem_conflicts as f64 / cost.smem_accesses as f64
            },
            resident_warps: warps,
        }
    }
}

/// Render a one-kernel report.
///
/// # Examples
///
/// ```
/// use multidim_sim::{kernel_report, KernelCost, KernelTime, LaunchShape};
/// use multidim_device::GpuSpec;
///
/// let gpu = GpuSpec::tesla_k20c();
/// let shape = LaunchShape { blocks: 1024, block_threads: 256, smem_bytes: 0 };
/// let cost = KernelCost { mem_requests: 1000, transactions: 1000,
///                         dram_bytes: 128_000, ..Default::default() };
/// let time = multidim_sim::kernel_time(&gpu, &shape, &cost);
/// let text = kernel_report(&gpu, "my_kernel", &shape, &cost, &time);
/// assert!(text.contains("my_kernel"));
/// assert!(text.contains("coalescing"));
/// ```
pub fn kernel_report(
    gpu: &GpuSpec,
    name: &str,
    shape: &LaunchShape,
    cost: &KernelCost,
    time: &KernelTime,
) -> String {
    let eff = Efficiency::of(gpu, shape, cost);
    let bound = BoundBy::classify(time);
    let mut s = String::new();
    let _ = writeln!(
        s,
        "kernel `{name}`: {:.3} ms — {}",
        time.total * 1e3,
        bound.label()
    );
    let _ = writeln!(
        s,
        "  launch: {} blocks x {} threads, {} B smem, {} resident warps/SM",
        shape.blocks, shape.block_threads, shape.smem_bytes, eff.resident_warps
    );
    let _ = writeln!(
        s,
        "  memory: {} requests -> {} transactions ({:.2} tx/request coalescing), {:.2} MB DRAM",
        cost.mem_requests,
        cost.transactions,
        eff.transactions_per_request,
        cost.dram_bytes as f64 / 1e6
    );
    let _ = writeln!(
        s,
        "  pipes:  issue {:.3} ms | bandwidth {:.3} ms | latency {:.3} ms | overhead {:.3} ms",
        time.issue * 1e3,
        time.bandwidth * 1e3,
        time.latency * 1e3,
        (time.overhead + time.malloc) * 1e3
    );
    if cost.smem_accesses > 0 {
        let _ = writeln!(
            s,
            "  smem:   {} accesses, {:.2} extra passes/access from bank conflicts",
            cost.smem_accesses, eff.conflicts_per_access
        );
    }
    if cost.mallocs > 0 {
        let _ = writeln!(s, "  mallocs: {} device-heap calls", cost.mallocs);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::kernel_time;

    fn gpu() -> GpuSpec {
        GpuSpec::tesla_k20c()
    }

    #[test]
    fn classifies_bandwidth() {
        let shape = LaunchShape {
            blocks: 4096,
            block_threads: 256,
            smem_bytes: 0,
        };
        let cost = KernelCost {
            mem_requests: 1_000_000,
            transactions: 1_000_000,
            dram_bytes: 512 << 20,
            ..Default::default()
        };
        let t = kernel_time(&gpu(), &shape, &cost);
        assert_eq!(BoundBy::classify(&t), BoundBy::Bandwidth);
    }

    #[test]
    fn classifies_latency_when_starved() {
        let shape = LaunchShape {
            blocks: 2,
            block_threads: 64,
            smem_bytes: 0,
        };
        let cost = KernelCost {
            mem_requests: 500_000,
            transactions: 500_000,
            dram_bytes: 64 << 20,
            ..Default::default()
        };
        let t = kernel_time(&gpu(), &shape, &cost);
        assert_eq!(BoundBy::classify(&t), BoundBy::Latency);
    }

    #[test]
    fn classifies_overhead_for_tiny_kernels() {
        let shape = LaunchShape {
            blocks: 1,
            block_threads: 32,
            smem_bytes: 0,
        };
        let cost = KernelCost {
            warp_instr: 10,
            ..Default::default()
        };
        let t = kernel_time(&gpu(), &shape, &cost);
        assert_eq!(BoundBy::classify(&t), BoundBy::Overhead);
    }

    #[test]
    fn classifies_issue_for_compute_heavy() {
        let shape = LaunchShape {
            blocks: 4096,
            block_threads: 256,
            smem_bytes: 0,
        };
        let cost = KernelCost {
            warp_instr: 500_000_000,
            mem_requests: 1000,
            transactions: 1000,
            dram_bytes: 128_000,
            ..Default::default()
        };
        let t = kernel_time(&gpu(), &shape, &cost);
        assert_eq!(BoundBy::classify(&t), BoundBy::Issue);
    }

    #[test]
    fn overhead_tie_goes_to_the_work_pipes() {
        // overhead + malloc exactly EQUAL to the dominant pipe is not
        // "overhead-bound" — classification requires strict dominance.
        let t = KernelTime {
            issue: 1e-6,
            bandwidth: 4e-6,
            latency: 2e-6,
            malloc: 1e-6,
            overhead: 3e-6,
            total: 5e-6,
        };
        assert_eq!(BoundBy::classify(&t), BoundBy::Bandwidth);
        // One epsilon more and the fixed costs dominate.
        let t = KernelTime {
            overhead: 3.0000001e-6,
            ..t
        };
        assert_eq!(BoundBy::classify(&t), BoundBy::Overhead);
    }

    #[test]
    fn pipe_ties_prefer_bandwidth_then_latency() {
        // Equal pipes resolve Bandwidth >= Latency >= Issue.
        let t = KernelTime {
            issue: 2e-6,
            bandwidth: 2e-6,
            latency: 2e-6,
            malloc: 0.0,
            overhead: 0.0,
            total: 2e-6,
        };
        assert_eq!(BoundBy::classify(&t), BoundBy::Bandwidth);
        let t = KernelTime {
            bandwidth: 1e-6,
            ..t
        };
        assert_eq!(BoundBy::classify(&t), BoundBy::Latency);
    }

    #[test]
    fn efficiency_zero_requests_and_accesses() {
        // A kernel that never touches DRAM or shared memory must not
        // divide by zero.
        let shape = LaunchShape {
            blocks: 4,
            block_threads: 64,
            smem_bytes: 0,
        };
        let cost = KernelCost {
            warp_instr: 100,
            ..Default::default()
        };
        let e = Efficiency::of(&gpu(), &shape, &cost);
        assert_eq!(e.transactions_per_request, 0.0);
        assert_eq!(e.conflicts_per_access, 0.0);
        assert!(e.resident_warps > 0);
    }

    #[test]
    fn efficiency_ratios() {
        let shape = LaunchShape {
            blocks: 64,
            block_threads: 256,
            smem_bytes: 0,
        };
        let cost = KernelCost {
            mem_requests: 100,
            transactions: 3200,
            smem_accesses: 10,
            smem_conflicts: 5,
            ..Default::default()
        };
        let e = Efficiency::of(&gpu(), &shape, &cost);
        assert_eq!(e.transactions_per_request, 32.0);
        assert_eq!(e.conflicts_per_access, 0.5);
    }

    #[test]
    fn report_mentions_everything() {
        let shape = LaunchShape {
            blocks: 8,
            block_threads: 128,
            smem_bytes: 1024,
        };
        let cost = KernelCost {
            mem_requests: 10,
            transactions: 20,
            dram_bytes: 2560,
            smem_accesses: 4,
            mallocs: 3,
            ..Default::default()
        };
        let t = kernel_time(&gpu(), &shape, &cost);
        let r = kernel_report(&gpu(), "k", &shape, &cost, &t);
        assert!(r.contains("kernel `k`"));
        assert!(r.contains("smem"));
        assert!(r.contains("mallocs: 3"));
    }
}
