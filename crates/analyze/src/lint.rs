//! Determinism and nest-shape lints.
//!
//! These never prove anything wrong — they flag constructs whose *result*
//! can vary run to run (floating-point combine order) or whose analysis
//! rests on a shaky representative (disagreeing sibling extents).

use crate::diag::{Code, Diagnostic, Severity};
use multidim_ir::{NestInfo, Pattern, PatternKind, Program, ReduceOp};
use multidim_mapping::{MappingDecision, Span};

/// Is `op` sensitive to combine order under floating point?
fn order_sensitive(op: ReduceOp) -> bool {
    matches!(op, ReduceOp::Add | ReduceOp::Mul)
}

/// Mapping-independent nest lints: extent disagreements (`MD006`),
/// atomic combine-order notes (`MD007`), and dynamic-extent estimate
/// fallbacks (`MD016`).
pub(crate) fn nest_lints(program: &Program, diags: &mut Vec<Diagnostic>) {
    let nest = NestInfo::of(program);
    for (lvl, info) in nest.levels.iter().enumerate() {
        if info.has_dynamic() {
            diags.push(Diagnostic::new(
                Code::DYN_ESTIMATE,
                Severity::Info,
                format!(
                    "nest level {lvl} has a data-dependent extent; the mapper uses the \
                     workload estimate {} as its representative size",
                    info.representative_size()
                ),
            ));
        }
        if let Some((a, b)) = info.extent_disagreement() {
            diags.push(Diagnostic::new(
                Code::EXTENT_MISMATCH,
                Severity::Warn,
                format!(
                    "nest level {lvl} has sibling patterns with incomparable extents \
                     ({a} vs {b}); occupancy estimates use {} as the representative",
                    info.representative_size()
                ),
            ));
        }
    }

    program
        .root
        .visit_patterns(&mut |p: &Pattern, _lvl| match &p.kind {
            PatternKind::GroupBy { op, .. } if order_sensitive(*op) => {
                diags.push(
                    Diagnostic::new(
                        Code::ATOMIC_ORDER,
                        Severity::Info,
                        format!(
                            "groupBy buckets combine through float atomics; {op:?} order \
                         varies run to run"
                        ),
                    )
                    .with_pattern(p.id),
                );
            }
            PatternKind::Filter { .. } => {
                diags.push(
                    Diagnostic::new(
                        Code::ATOMIC_ORDER,
                        Severity::Info,
                        "filter compacts through an atomic cursor; output order is \
                     non-deterministic",
                    )
                    .with_pattern(p.id),
                );
            }
            _ => {}
        });
}

/// Mapping-dependent lints: a float `Reduce` whose level is cut into
/// `Split(k)` partials combines in a schedule-dependent order (`MD005`).
pub fn lint_mapping(program: &Program, mapping: &MappingDecision) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    program.root.visit_patterns(&mut |p: &Pattern, lvl| {
        let PatternKind::Reduce { op } = &p.kind else {
            return;
        };
        if !order_sensitive(*op) || lvl >= mapping.depth() {
            return;
        }
        if let Span::Split(k) = mapping.level(lvl).span {
            if k > 1 {
                diags.push(
                    Diagnostic::new(
                        Code::SPLIT_NONDET,
                        Severity::Warn,
                        format!(
                            "float reduce ({op:?}) at level {lvl} is cut into Split({k}) \
                             partials; combine order differs from the sequential semantics"
                        ),
                    )
                    .with_pattern(p.id),
                );
            }
        }
    });
    diags
}
