//! Unit tests: one positive and one negative case per diagnostic code,
//! plus the verdict lattice and the JSON rendering round-trip.

use crate::diag::{Code, Severity, Verdict};
use crate::{analyze_program, kernel_defect, lint_mapping};
use multidim_codegen::KernelError;
use multidim_ir::{Bindings, Effect, Expr, ProgramBuilder, ReduceOp, ScalarKind, Size};
use multidim_mapping::{Dim, LevelMapping, MappingDecision, Span};
use multidim_trace::json::Json;

fn codes(report: &crate::Report) -> Vec<Code> {
    report.diagnostics.iter().map(|d| d.code).collect()
}

// ---------------------------------------------------------------- MD001

#[test]
fn md001_constant_store_is_a_proven_race() {
    let mut b = ProgramBuilder::new("clash");
    let x = b.input("x", ScalarKind::F32, &[Size::from(4)]);
    let y = b.output("y", ScalarKind::F32, &[Size::from(4)]);
    let root = b.foreach(Size::from(4), |b, i| {
        let v = b.read(x, &[i.into()]);
        vec![Effect::Write {
            cond: None,
            array: y,
            idx: vec![Expr::int(0)],
            value: v,
        }]
    });
    let p = b.finish_foreach(root).unwrap();
    let report = analyze_program(&p, &Bindings::new());
    assert!(report.has_errors());
    assert!(codes(&report).contains(&Code::RACE));
    assert_eq!(report.race_free(y), Verdict::Refuted);
}

#[test]
fn md001_negative_identity_store_is_race_free() {
    let mut b = ProgramBuilder::new("ident");
    let n = b.sym("N");
    let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
    let y = b.output("y", ScalarKind::F32, &[Size::sym(n)]);
    let root = b.foreach(Size::sym(n), |b, i| {
        let v = b.read(x, &[i.into()]);
        vec![Effect::Write {
            cond: None,
            array: y,
            idx: vec![Expr::var(i)],
            value: v,
        }]
    });
    let p = b.finish_foreach(root).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 1024);
    let report = analyze_program(&p, &bind);
    assert!(!report.has_errors());
    assert!(!codes(&report).contains(&Code::RACE));
    assert_eq!(report.race_free(y), Verdict::Proven);
    assert_eq!(report.in_bounds(y), Verdict::Proven);
}

// ---------------------------------------------------------------- MD002

#[test]
fn md002_scatter_through_an_index_array_is_a_maybe_race() {
    let mut b = ProgramBuilder::new("scatter");
    let n = b.sym("N");
    let perm = b.input("perm", ScalarKind::I32, &[Size::sym(n)]);
    let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
    let y = b.output("y", ScalarKind::F32, &[Size::sym(n)]);
    let root = b.foreach(Size::sym(n), |b, i| {
        let tgt = b.read(perm, &[i.into()]);
        let v = b.read(x, &[i.into()]);
        vec![Effect::Write {
            cond: None,
            array: y,
            idx: vec![tgt],
            value: v,
        }]
    });
    let p = b.finish_foreach(root).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 64);
    let report = analyze_program(&p, &bind);
    assert!(!report.has_errors(), "maybe-race must stay a warning");
    let maybe: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == Code::MAYBE_RACE)
        .collect();
    assert_eq!(maybe.len(), 1, "one MD002 per array, not per access");
    assert_eq!(maybe[0].severity, Severity::Warn);
    assert_eq!(report.race_free(y), Verdict::Unknown);
}

#[test]
fn md002_negative_affine_disjoint_store() {
    let mut b = ProgramBuilder::new("stride");
    let n = b.sym("N");
    let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
    let y = b.output("y", ScalarKind::F32, &[Size::sym(n) * Size::from(2)]);
    let root = b.foreach(Size::sym(n), |b, i| {
        let v = b.read(x, &[i.into()]);
        vec![Effect::Write {
            cond: None,
            array: y,
            idx: vec![Expr::var(i) * Expr::int(2)],
            value: v,
        }]
    });
    let p = b.finish_foreach(root).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 100);
    let report = analyze_program(&p, &bind);
    assert!(!codes(&report).contains(&Code::MAYBE_RACE));
    assert_eq!(report.race_free(y), Verdict::Proven);
}

// ---------------------------------------------------------------- MD003

#[test]
fn md003_read_past_the_end_is_refuted() {
    let mut b = ProgramBuilder::new("oob");
    let n = b.sym("N");
    let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
    let root = b.map(Size::sym(n), |b, i| {
        b.read(x, &[Expr::var(i) + Expr::size(Size::sym(n))])
    });
    let p = b.finish_map(root, "y", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 64);
    let report = analyze_program(&p, &bind);
    assert!(report.has_errors());
    let oob: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == Code::OOB)
        .collect();
    assert_eq!(oob.len(), 1);
    assert_eq!(oob[0].severity, Severity::Error);
    assert_eq!(report.in_bounds(x), Verdict::Refuted);
}

#[test]
fn md003_negative_in_bounds_read_is_proven() {
    let mut b = ProgramBuilder::new("inb");
    let n = b.sym("N");
    let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
    let root = b.map(Size::sym(n), |b, i| b.read(x, &[i.into()]));
    let p = b.finish_map(root, "y", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 64);
    let report = analyze_program(&p, &bind);
    assert!(!codes(&report).contains(&Code::OOB));
    assert_eq!(report.in_bounds(x), Verdict::Proven);
}

// ---------------------------------------------------------------- MD004

#[test]
fn md004_guarded_overflow_is_a_warning_not_an_error() {
    let mut b = ProgramBuilder::new("guarded");
    let n = b.sym("N");
    let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
    let y = b.output("y", ScalarKind::F32, &[Size::sym(n)]);
    let root = b.foreach(Size::sym(n), |b, i| {
        let v = b.read(x, &[i.into()]);
        let guard = b.read(x, &[i.into()]).gt(Expr::lit(0.0));
        vec![Effect::Write {
            cond: Some(guard),
            array: y,
            // Out of bounds when taken — but the guard may prevent it.
            idx: vec![Expr::var(i) + Expr::size(Size::sym(n))],
            value: v,
        }]
    });
    let p = b.finish_foreach(root).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 32);
    let report = analyze_program(&p, &bind);
    assert!(!report.has_errors(), "guarded OOB must not abort");
    assert!(codes(&report).contains(&Code::MAYBE_OOB));
    assert_eq!(report.in_bounds(y), Verdict::Unknown);
}

#[test]
fn md004_unbound_sizes_leave_bounds_unknown() {
    let mut b = ProgramBuilder::new("unbound");
    let n = b.sym("N");
    let m = b.sym("M");
    let x = b.input("x", ScalarKind::F32, &[Size::sym(m)]);
    // Reads x[i] over i < N with N, M unbound: nothing provable.
    let root = b.map(Size::sym(n), |b, i| b.read(x, &[i.into()]));
    let p = b.finish_map(root, "y", ScalarKind::F32).unwrap();
    let report = analyze_program(&p, &Bindings::new());
    assert!(!report.has_errors());
    assert!(codes(&report).contains(&Code::MAYBE_OOB));
    assert_eq!(report.in_bounds(x), Verdict::Unknown);
}

#[test]
fn md004_negative_proven_program_has_no_bounds_warning() {
    let mut b = ProgramBuilder::new("clean");
    let n = b.sym("N");
    let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
    let root = b.map(Size::sym(n), |b, i| b.read(x, &[i.into()]) * Expr::lit(2.0));
    let p = b.finish_map(root, "y", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 256);
    let report = analyze_program(&p, &bind);
    assert!(!codes(&report).contains(&Code::MAYBE_OOB));
}

// ---------------------------------------------------------------- MD005

fn float_sum_program() -> multidim_ir::Program {
    let mut b = ProgramBuilder::new("sum");
    let n = b.sym("N");
    let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
    let root = b.reduce(Size::sym(n), ReduceOp::Add, |b, i| b.read(x, &[i.into()]));
    b.finish_reduce(root, "s", ScalarKind::F32).unwrap()
}

#[test]
fn md005_split_float_reduce_is_flagged() {
    let p = float_sum_program();
    let m = MappingDecision::new(vec![LevelMapping {
        dim: Dim::X,
        block_size: 256,
        span: Span::Split(4),
    }]);
    let diags = lint_mapping(&p, &m);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, Code::SPLIT_NONDET);
    assert_eq!(diags[0].severity, Severity::Warn);
}

#[test]
fn md005_negative_span_all_reduce_is_clean() {
    let p = float_sum_program();
    let m = MappingDecision::new(vec![LevelMapping {
        dim: Dim::X,
        block_size: 256,
        span: Span::All,
    }]);
    assert!(lint_mapping(&p, &m).is_empty());
}

#[test]
fn md005_negative_max_reduce_is_order_insensitive() {
    let mut b = ProgramBuilder::new("max");
    let n = b.sym("N");
    let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
    let root = b.reduce(Size::sym(n), ReduceOp::Max, |b, i| b.read(x, &[i.into()]));
    let p = b.finish_reduce(root, "m", ScalarKind::F32).unwrap();
    let m = MappingDecision::new(vec![LevelMapping {
        dim: Dim::X,
        block_size: 256,
        span: Span::Split(8),
    }]);
    assert!(lint_mapping(&p, &m).is_empty());
}

// ---------------------------------------------------------------- MD006

#[test]
fn md006_incomparable_sibling_extents_warn() {
    let mut b = ProgramBuilder::new("ragged");
    let n = b.sym("N");
    let m = b.sym("M");
    let k = b.sym("K");
    let a = b.input("a", ScalarKind::F32, &[Size::sym(m)]);
    let c = b.input("c", ScalarKind::F32, &[Size::sym(k)]);
    let root = b.map(Size::sym(n), |b, _i| {
        let left = b.reduce(Size::sym(m), ReduceOp::Add, |b, j| b.read(a, &[j.into()]));
        let right = b.reduce(Size::sym(k), ReduceOp::Add, |b, j| b.read(c, &[j.into()]));
        left + right
    });
    let p = b.finish_map(root, "y", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 8);
    bind.bind(m, 16);
    bind.bind(k, 32);
    let report = analyze_program(&p, &bind);
    assert!(codes(&report).contains(&Code::EXTENT_MISMATCH));
    assert!(!report.has_errors());
}

#[test]
fn md006_negative_constant_extents_are_comparable() {
    let mut b = ProgramBuilder::new("even");
    let n = b.sym("N");
    let a = b.input("a", ScalarKind::F32, &[Size::from(16)]);
    let root = b.map(Size::sym(n), |b, _i| {
        let left = b.reduce(Size::from(8), ReduceOp::Add, |b, j| b.read(a, &[j.into()]));
        let right = b.reduce(Size::from(16), ReduceOp::Add, |b, j| b.read(a, &[j.into()]));
        left + right
    });
    let p = b.finish_map(root, "y", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 8);
    let report = analyze_program(&p, &bind);
    assert!(!codes(&report).contains(&Code::EXTENT_MISMATCH));
}

// ---------------------------------------------------------------- MD007

#[test]
fn md007_float_group_by_notes_atomic_order() {
    let mut b = ProgramBuilder::new("hist");
    let n = b.sym("N");
    let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
    let root = b.group_by(Size::sym(n), Size::from(4), ReduceOp::Add, |b, i| {
        let key = Expr::var(i).rem(Expr::int(4));
        let val = b.read(x, &[i.into()]);
        (key, val)
    });
    let p = b.finish_group_by(root, "h", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 64);
    let report = analyze_program(&p, &bind);
    let notes: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == Code::ATOMIC_ORDER)
        .collect();
    assert_eq!(notes.len(), 1);
    assert_eq!(notes[0].severity, Severity::Info);
    assert!(!report.has_errors());
}

#[test]
fn md007_negative_max_group_by_is_deterministic() {
    let mut b = ProgramBuilder::new("argmax");
    let n = b.sym("N");
    let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
    let root = b.group_by(Size::sym(n), Size::from(4), ReduceOp::Max, |b, i| {
        let key = Expr::var(i).rem(Expr::int(4));
        let val = b.read(x, &[i.into()]);
        (key, val)
    });
    let p = b.finish_group_by(root, "h", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 64);
    let report = analyze_program(&p, &bind);
    assert!(!codes(&report).contains(&Code::ATOMIC_ORDER));
}

// ---------------------------------------------------------------- MD008

#[test]
fn md008_wraps_kernel_errors() {
    let d = kernel_defect(&KernelError("sync under divergent control".to_string()));
    assert_eq!(d.code, Code::KERNEL_DEFECT);
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("divergent"));
    assert!(d.render_line().starts_with("MD008 error"));
}

// ---------------------------------------------------------------- MD009

#[test]
fn md009_gather_reads_are_data_dependent() {
    let mut b = ProgramBuilder::new("gather");
    let n = b.sym("N");
    let perm = b.input("perm", ScalarKind::I32, &[Size::sym(n)]);
    let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
    let root = b.map(Size::sym(n), |b, i| {
        let j = b.read(perm, &[i.into()]);
        b.read(x, &[j])
    });
    let p = b.finish_map(root, "y", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 64);
    let report = analyze_program(&p, &bind);
    let dynamic: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == Code::DYNAMIC_INDEX)
        .collect();
    assert_eq!(dynamic.len(), 1, "one MD009 per array");
    assert_eq!(dynamic[0].severity, Severity::Info);
    assert_eq!(report.in_bounds(x), Verdict::Unknown);
    // The index array itself is read affinely and stays proven.
    assert_eq!(report.in_bounds(perm), Verdict::Proven);
}

#[test]
fn md009_negative_affine_reads_produce_no_note() {
    let mut b = ProgramBuilder::new("affine");
    let n = b.sym("N");
    let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
    let root = b.map(Size::sym(n), |b, i| b.read(x, &[i.into()]));
    let p = b.finish_map(root, "y", ScalarKind::F32).unwrap();
    let mut bind = Bindings::new();
    bind.bind(n, 64);
    let report = analyze_program(&p, &bind);
    assert!(!codes(&report).contains(&Code::DYNAMIC_INDEX));
}

// ------------------------------------------------------- lattice + JSON

#[test]
fn verdict_meet_is_the_expected_lattice() {
    use Verdict::*;
    assert_eq!(Proven.meet(Proven), Proven);
    assert_eq!(Proven.meet(Unknown), Unknown);
    assert_eq!(Unknown.meet(Proven), Unknown);
    assert_eq!(Unknown.meet(Unknown), Unknown);
    assert_eq!(Refuted.meet(Proven), Refuted);
    assert_eq!(Proven.meet(Refuted), Refuted);
    assert_eq!(Refuted.meet(Unknown), Refuted);
    assert_eq!(Refuted.meet(Refuted), Refuted);
}

#[test]
fn report_json_round_trips_through_the_trace_parser() {
    let mut b = ProgramBuilder::new("clash");
    let x = b.input("x", ScalarKind::F32, &[Size::from(4)]);
    let y = b.output("y", ScalarKind::F32, &[Size::from(4)]);
    let root = b.foreach(Size::from(4), |b, i| {
        let v = b.read(x, &[i.into()]);
        vec![Effect::Write {
            cond: None,
            array: y,
            idx: vec![Expr::int(0)],
            value: v,
        }]
    });
    let p = b.finish_foreach(root).unwrap();
    let report = analyze_program(&p, &Bindings::new());

    let text = report.to_json().render();
    let parsed = Json::parse(&text).expect("rendered report must re-parse");
    assert_eq!(parsed.get("program").and_then(Json::as_str), Some("clash"));
    let diags = parsed
        .get("diagnostics")
        .and_then(Json::as_arr)
        .expect("diagnostics array");
    assert!(!diags.is_empty());
    assert_eq!(diags[0].get("code").and_then(Json::as_str), Some("MD001"));
    let arrays = parsed.get("arrays").and_then(Json::as_arr).unwrap();
    assert_eq!(arrays.len(), 2);
    let yv = arrays
        .iter()
        .find(|a| a.get("name").and_then(Json::as_str) == Some("y"))
        .unwrap();
    assert_eq!(yv.get("race_free").and_then(Json::as_str), Some("refuted"));

    // Terminal rendering carries the same facts.
    let rendered = report.render();
    assert!(rendered.contains("MD001"));
    assert!(rendered.contains("race-free"));
}

/// The `# Diagnostic codes` table in the crate docs is generated from
/// [`crate::diag::CODE_TABLE`]; this pins the two together so a new code
/// (or a reworded description) cannot land in one place without the other.
#[test]
fn crate_docs_code_table_matches_diag_code_table() {
    let docs = include_str!("lib.rs");
    for (code, name, desc) in crate::diag::CODE_TABLE {
        let row = format!("//! | {code} | {name} | {desc} |");
        assert!(
            docs.contains(&row),
            "crate docs are missing or out of date for {code}: expected line\n{row}"
        );
    }
    // And nothing undocumented: every MD row in the docs is in the table.
    let doc_rows = docs.lines().filter(|l| l.starts_with("//! | MD")).count();
    assert_eq!(
        doc_rows,
        crate::diag::CODE_TABLE.len(),
        "crate docs list {doc_rows} MD rows but CODE_TABLE has {}",
        crate::diag::CODE_TABLE.len()
    );
}
