//! Signed, non-clamping evaluation of [`Size`] expressions.
//!
//! `Size::eval` clamps subtraction at zero because extents cannot be
//! negative, but the *same* `Size` values appear as affine constants and
//! coefficients where they stand for real expression arithmetic (`k - 1`
//! evaluates to `-1` in a kernel). Proofs therefore evaluate sizes without
//! the clamp and track whether every leaf was exactly known — an estimate
//! (unbound symbol, dynamic extent) is good enough for heuristics but never
//! for a `Proven`/`Refuted` verdict.

use multidim_ir::{Bindings, Size, DEFAULT_UNKNOWN_SIZE};

/// A signed value plus whether it is exact (no defaults were substituted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Signed {
    pub value: i64,
    pub exact: bool,
}

impl Signed {
    fn new(value: i64, exact: bool) -> Signed {
        Signed { value, exact }
    }
}

/// Evaluate `s` without clamping subtraction, tracking exactness.
pub(crate) fn eval_signed(s: &Size, b: &Bindings) -> Signed {
    match s {
        Size::Const(n) => Signed::new(*n, true),
        Size::Sym(id) => match b.get(*id) {
            Some(v) => Signed::new(v, true),
            None => Signed::new(DEFAULT_UNKNOWN_SIZE, false),
        },
        Size::Dynamic(est) => Signed::new((*est).max(1), false),
        Size::Add(a, c) => {
            let (x, y) = (eval_signed(a, b), eval_signed(c, b));
            Signed::new(x.value + y.value, x.exact && y.exact)
        }
        Size::Sub(a, c) => {
            let (x, y) = (eval_signed(a, b), eval_signed(c, b));
            Signed::new(x.value - y.value, x.exact && y.exact)
        }
        Size::Mul(a, c) => {
            let (x, y) = (eval_signed(a, b), eval_signed(c, b));
            Signed::new(x.value * y.value, x.exact && y.exact)
        }
        Size::CeilDiv(a, c) => {
            let (x, y) = (eval_signed(a, b), eval_signed(c, b));
            if y.value == 0 {
                Signed::new(0, false)
            } else {
                Signed::new(
                    (x.value + y.value - 1).div_euclid(y.value),
                    x.exact && y.exact,
                )
            }
        }
    }
}
