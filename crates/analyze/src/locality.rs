//! Static locality analysis (the paper's Section II premise, made a proof).
//!
//! The mapping analysis *scores* locality; the simulator *measures* it.
//! This module sits between the two: from the affine access summaries in
//! `multidim_ir` it derives, **per candidate mapping**, facts that are
//! sound against the simulator's memory model:
//!
//! * a coalescing class for every global access — coalesced / strided(k) /
//!   broadcast / scattered — with a [`Verdict`] saying whether the class
//!   is proven (all coefficients exactly known) or heuristic;
//! * a **transaction lower bound**: the simulated run must issue at least
//!   this many 128-byte DRAM transactions, no matter what the lowered code
//!   looks like (see "Soundness" below);
//! * a **seconds lower bound** from the roofline memory floor plus the
//!   per-kernel launch/dispatch overhead — the pruning hook used by
//!   [`multidim_mapping::tune_pruned`];
//! * per-kernel shared-memory **footprint proofs** (overflow = `Error`
//!   before the simulator ever faults) and per-access **bank-conflict
//!   degrees**, proven by enumerating the real block's warps;
//! * per-nest-level **reuse summaries** (which reads touch each element
//!   more than once, and whether the Section V-B prefetch stages them).
//!
//! # Soundness of the transaction bound
//!
//! Every warp-level request has at most 32 participating lanes and costs
//! at least one transaction, so a site executed by at least `E` lanes
//! contributes at least `⌈E / C⌉` transactions whenever at most `C` lanes
//! of one warp can ever share one 128-byte segment. `C = 32` needs no
//! addressing knowledge at all; when the address is affine with exactly
//! known coefficients we refine `C` by enumerating the block's warps and
//! sliding a 127-byte window over each warp's per-lane byte offsets.
//! Sites whose execution count is *not* guaranteed (conditional branches,
//! filter bodies, sequential `Iterate` trip estimates, atomics, reads the
//! prefetch may stage through shared memory) contribute zero — dropping a
//! site only lowers the bound, so it is always sound.

use crate::diag::{Code, Diagnostic, Severity, Verdict};
use crate::eval::eval_signed;
use multidim_codegen::{KExpr, Kernel, KernelProgram, LocalId, SmemId, Stmt};
use multidim_device::{GpuSpec, WARP_SIZE};
use multidim_ir::{
    collect_accesses, filter_patterns, AffineForm, BinOp, Bindings, PatternId, Program, UnOp, VarId,
};
use multidim_mapping::{MappingDecision, Span};
use multidim_sim::SimResult;
use std::collections::{BTreeMap, HashMap};

/// Window (bytes) within which two lane addresses can share one aligned
/// 128-byte transaction segment.
const SEGMENT_WINDOW: i128 = 127;

// ---------------------------------------------------------------------------
// Mapping-independent facts
// ---------------------------------------------------------------------------

/// One access site's pre-evaluated facts (see [`LocalityFacts`]).
#[derive(Debug, Clone)]
pub(crate) struct SiteFacts {
    array_name: String,
    has_array: bool,
    flexible: bool,
    elem_bytes: u64,
    is_write: bool,
    /// Innermost enclosing pattern (diagnostic anchor).
    pattern: PatternId,
    /// `true` when every valid index tuple is guaranteed to execute the
    /// access exactly once (no branches, no filter ancestor, no iterate
    /// multiplier, not atomic).
    countable: bool,
    /// Exact product of the chain extents, when all are exactly known.
    executions: Option<u64>,
    nonaffine: bool,
    /// Chain links: `(nest level, var, extent value, extent exact)`.
    chain: Vec<(usize, VarId, i64, bool)>,
    /// Evaluated address coefficient per chain var: `(value, exact)`.
    coeffs: BTreeMap<VarId, (i64, bool)>,
    /// The address mentions a variable outside the pattern chain
    /// (an `Iterate` loop var): per-request-uniform but unmodeled.
    foreign_terms: bool,
    /// Shaped like a Section V-B prefetch candidate (`a[outer]`, read,
    /// single-level chain); whether the prefetch *fires* also depends on
    /// the mapping — see [`locality_of`].
    prefetch_shape: bool,
}

/// Mapping-independent locality facts for one program, pre-evaluated under
/// launch bindings. Compute once, then call [`locality_of`] per candidate
/// mapping — the per-candidate work is a few integer enumerations, cheap
/// enough to run inside the autotune loop.
#[derive(Debug, Clone)]
pub struct LocalityFacts {
    /// Program name (diagnostics).
    pub program: String,
    pub(crate) sites: Vec<SiteFacts>,
}

impl LocalityFacts {
    /// Distill `program`'s access summaries under `bindings`.
    ///
    /// Pass the program that will actually be lowered (i.e. *after*
    /// map→reduce fusion) — the facts describe that program's accesses.
    pub fn of(program: &Program, bindings: &Bindings) -> LocalityFacts {
        let filters = filter_patterns(program);
        let mut sites = Vec::new();
        for a in collect_accesses(program) {
            let under_filter = a.chain.iter().any(|l| filters.contains(&l.pattern));
            let countable =
                a.branch_depth == 0 && a.iterate_factor == 1 && !a.atomic && !under_filter;
            let chain: Vec<(usize, VarId, i64, bool)> = a
                .chain
                .iter()
                .map(|l| {
                    let s = eval_signed(&l.size, bindings);
                    (l.level, l.var, s.value, s.exact)
                })
                .collect();
            let mut executions: Option<u64> = Some(1);
            for &(_, _, v, exact) in &chain {
                executions = match executions {
                    Some(e) if exact && v >= 0 => e.checked_mul(v as u64),
                    _ => None,
                };
            }
            let (coeffs, foreign_terms, nonaffine, const_zero) = match &a.addr {
                AffineForm::Affine { terms, constant } => {
                    let chain_vars: Vec<VarId> = chain.iter().map(|c| c.1).collect();
                    let mut coeffs = BTreeMap::new();
                    let mut foreign = false;
                    for (v, c) in terms {
                        if chain_vars.contains(v) {
                            let s = eval_signed(c, bindings);
                            coeffs.insert(*v, (s.value, s.exact));
                        } else {
                            foreign = true;
                        }
                    }
                    let k = eval_signed(constant, bindings);
                    (coeffs, foreign, false, k.value == 0)
                }
                AffineForm::NonAffine => (BTreeMap::new(), false, true, false),
            };
            // Over-approximates lowering's syntactic `a[outer]` check: a
            // site this flags *might* be staged through shared memory, so
            // the transaction bound must not count it when the prefetch
            // can fire.
            let prefetch_shape = !a.is_write
                && a.array.is_some()
                && chain.len() == 1
                && !nonaffine
                && !foreign_terms
                && const_zero
                && coeffs.len() == 1
                && coeffs.get(&chain[0].1).map(|c| c.0) == Some(1);
            let array_name = match a.array {
                Some(id) => program.array(id).name.clone(),
                None => "<temp>".to_string(),
            };
            sites.push(SiteFacts {
                array_name,
                has_array: a.array.is_some(),
                flexible: a.flexible_layout,
                elem_bytes: a.elem_bytes,
                is_write: a.is_write,
                pattern: a.chain.last().map(|l| l.pattern).unwrap_or(program.root.id),
                countable,
                executions,
                nonaffine,
                chain,
                coeffs,
                foreign_terms,
                prefetch_shape,
            });
        }
        LocalityFacts {
            program: program.name.clone(),
            sites,
        }
    }
}

// ---------------------------------------------------------------------------
// Per-mapping summary
// ---------------------------------------------------------------------------

/// Coalescing class of one global access under one mapping, along the
/// hardware `x` dimension (where coalescing happens).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessClass {
    /// Adjacent `x` lanes touch adjacent elements (stride ±1).
    Coalesced,
    /// Adjacent `x` lanes are `k` elements apart (`|k| ≥ 2`).
    Strided(i64),
    /// The address does not vary with `x` — one segment serves the warp.
    Broadcast,
    /// Data-dependent (non-affine) address: no coalescing provable.
    Scattered,
    /// The stride involves an unbound symbol or dynamic estimate.
    Unknown,
}

impl std::fmt::Display for AccessClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessClass::Coalesced => write!(f, "coalesced"),
            AccessClass::Strided(k) => write!(f, "strided({k})"),
            AccessClass::Broadcast => write!(f, "broadcast"),
            AccessClass::Scattered => write!(f, "scattered"),
            AccessClass::Unknown => write!(f, "unknown"),
        }
    }
}

/// One global access's locality verdict under a candidate mapping.
#[derive(Debug, Clone)]
pub struct AccessLocality {
    /// Array name (`<temp>` for compiler-laid-out temporaries).
    pub array: String,
    /// Innermost enclosing pattern.
    pub pattern: PatternId,
    /// `true` for stores.
    pub is_write: bool,
    /// Coalescing class along `x`.
    pub class: AccessClass,
    /// `Proven` when every coefficient behind the class is exactly known.
    pub verdict: Verdict,
    /// Guaranteed execution count (product of chain extents), if exact.
    pub executions: Option<u64>,
    /// Max lanes of one warp that can share a 128-byte segment here.
    pub segment_capacity: u64,
    /// This site's contribution to [`LocalitySummary::tx_lower_bound`].
    pub transactions_lb: u64,
    /// Why the site contributes zero to the bound, when it does.
    pub dropped: Option<&'static str>,
}

/// Bank-conflict proof for one shared-memory access site.
#[derive(Debug, Clone)]
pub struct BankProof {
    /// Shared array name.
    pub smem: String,
    /// Worst-case serialized passes per request (`1` = conflict-free),
    /// when the lane-affine index could be evaluated.
    pub degree: Option<u64>,
    /// `Proven` = conflict-free for every request; `Refuted` = a full,
    /// unguarded warp provably conflicts; `Unknown` otherwise.
    pub conflict_free: Verdict,
    /// The access sits under a lane-divergent guard or loop.
    pub guarded: bool,
}

/// Shared-memory proof for one kernel: footprint vs. capacity plus the
/// per-site bank-conflict verdicts.
#[derive(Debug, Clone)]
pub struct SmemProof {
    /// Kernel name.
    pub kernel: String,
    /// Static per-block shared-memory footprint (bytes).
    pub bytes: u64,
    /// Device capacity per SM (bytes).
    pub capacity: u64,
    /// Proven overflow: the kernel cannot launch on this device.
    pub overflow: bool,
    /// The footprint limits residency to one block per SM.
    pub pressure: bool,
    /// Bank-conflict proofs, one per static shared-memory access.
    pub banks: Vec<BankProof>,
}

/// Temporal reuse of one read across one nest level.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ReuseSummary {
    /// Array name.
    pub array: String,
    /// Innermost enclosing pattern of the read.
    pub pattern: PatternId,
    /// The nest level whose index the address ignores.
    pub level: usize,
    /// Each element is touched this many times across that level.
    pub factor: u64,
    /// The Section V-B prefetch stages this read through shared memory.
    pub staged: bool,
}

/// Everything the locality analysis proved about one (program, mapping)
/// pair. Produced by [`locality_of`]; consumed by MD010–MD015 diagnostics
/// ([`LocalitySummary::diagnostics`]), the search pruning hook
/// (`seconds_lower_bound`), and the simulator cross-check
/// ([`locality_cross_check`]).
#[derive(Debug, Clone)]
pub struct LocalitySummary {
    /// Program name.
    pub program: String,
    /// Per-global-access classifications, in access-collection order.
    pub accesses: Vec<AccessLocality>,
    /// Per-kernel shared-memory proofs, in kernel order.
    pub smem: Vec<SmemProof>,
    /// Reuse summaries, deduplicated by (array, pattern, level).
    pub reuse: Vec<ReuseSummary>,
    /// Proven lower bound on DRAM transactions for the whole program run.
    pub tx_lower_bound: u64,
    /// Proven lower bound on simulated seconds (memory floor + per-kernel
    /// launch/dispatch overhead).
    pub seconds_lower_bound: f64,
}

/// Analyze one candidate mapping.
///
/// * `facts` — [`LocalityFacts::of`] the (fused) program being lowered;
/// * `kernels` — the lowered [`KernelProgram`] for this mapping (grid
///   sizes and shared arrays come from here, so `Split` demotion and
///   prefetch decisions are reflected faithfully);
/// * `smem_prefetch` — the `CodegenOptions::smem_prefetch` flag used for
///   lowering (decides whether prefetch-shaped reads may be staged).
pub fn locality_of(
    facts: &LocalityFacts,
    mapping: &MappingDecision,
    kernels: &KernelProgram,
    bindings: &Bindings,
    gpu: &GpuSpec,
    smem_prefetch: bool,
) -> LocalitySummary {
    let prefetch_active = smem_prefetch
        && mapping.depth() >= 2
        && !mapping.level(0).dim.is_x()
        && mapping.level(0).span == Span::Span(1)
        && mapping.level(0).block_size >= 2;
    let any_split = mapping
        .levels()
        .iter()
        .any(|l| matches!(l.span, Span::Split(_)));

    // Block dims exactly as lowering assigns them; refuse the refined
    // capacity if two levels share a hardware axis or use a dim ≥ 3.
    let mut dims = [1u64; 3];
    let mut axes_ok = true;
    let mut level_axis: Vec<Option<usize>> = Vec::new();
    for lm in mapping.levels() {
        let a = lm.dim.0 as usize;
        if a >= 3 || dims[a] != 1 {
            axes_ok = false;
            level_axis.push(None);
            continue;
        }
        dims[a] = u64::from(lm.block_size.max(1));
        level_axis.push(Some(a));
    }
    let block_threads = dims[0] * dims[1] * dims[2];

    let x_level: Option<usize> = mapping.levels().iter().position(|l| l.dim.is_x());

    let mut accesses = Vec::new();
    let mut reuse_set: BTreeMap<(String, PatternId, usize), ReuseSummary> = BTreeMap::new();
    let mut tx_lb: u64 = 0;

    for site in &facts.sites {
        // -- classification along x ------------------------------------
        let (class, verdict) = if site.nonaffine {
            (AccessClass::Scattered, Verdict::Proven)
        } else {
            let x_link = site
                .chain
                .iter()
                .find(|(lvl, ..)| x_level == Some(*lvl) && *lvl < mapping.depth());
            match x_link {
                None => (AccessClass::Broadcast, Verdict::Proven),
                Some((_, var, _, _)) => {
                    let (c, exact) = site.coeffs.get(var).copied().unwrap_or((0, true));
                    if !exact {
                        (AccessClass::Unknown, Verdict::Unknown)
                    } else if c == 0 {
                        (AccessClass::Broadcast, Verdict::Proven)
                    } else if c.abs() == 1 {
                        (AccessClass::Coalesced, Verdict::Proven)
                    } else {
                        (AccessClass::Strided(c), Verdict::Proven)
                    }
                }
            }
        };

        // -- reuse (reads only; informational, no exactness needed) ----
        if !site.is_write {
            for &(lvl, var, extent, exact) in &site.chain {
                let coeff_zero =
                    !site.nonaffine && site.coeffs.get(&var).is_none_or(|&(v, e)| e && v == 0);
                if exact && extent >= 2 && coeff_zero {
                    reuse_set
                        .entry((site.array_name.clone(), site.pattern, lvl))
                        .or_insert(ReuseSummary {
                            array: site.array_name.clone(),
                            pattern: site.pattern,
                            level: lvl,
                            factor: extent as u64,
                            staged: site.prefetch_shape && prefetch_active,
                        });
                }
            }
        }

        // -- transaction lower bound -----------------------------------
        let mut dropped: Option<&'static str> = None;
        if !site.countable {
            dropped = Some("conditional, filtered, iterated, or atomic execution");
        } else if site.executions.is_none() {
            dropped = Some("execution count not exactly known");
        } else if site.prefetch_shape && prefetch_active {
            dropped = Some("may be staged through shared memory");
        }

        let refined_ok = dropped.is_none()
            && !site.nonaffine
            && !site.foreign_terms
            && site.coeffs.values().all(|&(_, exact)| exact)
            && site.chain.iter().all(|&(lvl, ..)| lvl < mapping.depth())
            && site.has_array
            && !site.flexible
            && !(site.is_write && any_split)
            && axes_ok
            && block_threads <= 1024;

        let capacity = if refined_ok {
            let mut coeff_bytes = [0i128; 3];
            let mut ok = true;
            for &(lvl, var, _, _) in &site.chain {
                match level_axis.get(lvl).copied().flatten() {
                    Some(a) => {
                        let c = site.coeffs.get(&var).map(|c| c.0).unwrap_or(0);
                        coeff_bytes[a] += i128::from(c) * i128::from(site.elem_bytes);
                    }
                    None => ok = false,
                }
            }
            if ok {
                warp_capacity(dims, coeff_bytes)
            } else {
                u64::from(WARP_SIZE)
            }
        } else {
            u64::from(WARP_SIZE)
        };

        let site_tx = match (dropped, site.executions) {
            (None, Some(e)) => e.div_ceil(capacity.max(1)),
            _ => 0,
        };
        tx_lb += site_tx;

        accesses.push(AccessLocality {
            array: site.array_name.clone(),
            pattern: site.pattern,
            is_write: site.is_write,
            class,
            verdict,
            executions: site.executions,
            segment_capacity: capacity,
            transactions_lb: site_tx,
            dropped,
        });
    }

    // -- per-kernel proofs + seconds floor -----------------------------
    let mut smem = Vec::new();
    let mut overhead_s = 0.0f64;
    for k in &kernels.kernels {
        let mut blocks: u64 = 1;
        let mut blocks_exact = true;
        for axis in &k.grid {
            let s = eval_signed(axis, bindings);
            if s.exact && s.value >= 0 {
                blocks = blocks.saturating_mul(s.value as u64);
            } else {
                blocks_exact = false;
            }
        }
        overhead_s += gpu.kernel_launch_overhead_s;
        if blocks_exact {
            overhead_s += gpu
                .cycles_to_seconds(blocks as f64 * gpu.block_dispatch_cycles / gpu.sm_count as f64);
        }

        let bytes = u64::from(k.smem_bytes());
        let capacity = u64::from(gpu.smem_per_sm);
        smem.push(SmemProof {
            kernel: k.name.clone(),
            bytes,
            capacity,
            overflow: bytes > capacity,
            pressure: bytes.saturating_mul(2) > capacity && bytes <= capacity,
            banks: bank_proofs(k, bindings, gpu),
        });
    }
    let seconds_lb = multidim_sim::memory_floor_seconds(gpu, tx_lb) + overhead_s;

    LocalitySummary {
        program: facts.program.clone(),
        accesses,
        smem,
        reuse: reuse_set.into_values().collect(),
        tx_lower_bound: tx_lb,
        seconds_lower_bound: seconds_lb,
    }
}

/// Max lanes of one warp whose byte offsets fit a 127-byte window, over
/// every warp of a block with the given dims. Lanes are grouped into warps
/// by flat thread id, exactly like the hardware (and the simulator).
fn warp_capacity(dims: [u64; 3], coeff_bytes: [i128; 3]) -> u64 {
    let total = (dims[0] * dims[1] * dims[2]).max(1);
    let mut best: u64 = 1;
    let mut f = 0u64;
    while f < total {
        let end = (f + u64::from(WARP_SIZE)).min(total);
        let mut deltas: Vec<i128> = (f..end)
            .map(|i| {
                let tx = (i % dims[0]) as i128;
                let ty = ((i / dims[0]) % dims[1]) as i128;
                let tz = (i / (dims[0] * dims[1])) as i128;
                coeff_bytes[0] * tx + coeff_bytes[1] * ty + coeff_bytes[2] * tz
            })
            .collect();
        deltas.sort_unstable();
        let mut lo = 0usize;
        for hi in 0..deltas.len() {
            while deltas[hi] - deltas[lo] > SEGMENT_WINDOW {
                lo += 1;
            }
            best = best.max((hi - lo + 1) as u64);
        }
        f = end;
    }
    best
}

// ---------------------------------------------------------------------------
// Lane-affine evaluation of kernel IR (bank-conflict proofs)
// ---------------------------------------------------------------------------

/// A value of the form `base + cx·tid.x + cy·tid.y + cz·tid.z`, uniform
/// across a request up to the thread-index terms. `base = None` means the
/// base is uniform but unknown — bank-conflict structure is invariant
/// under uniform shifts, so proofs survive it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Lane {
    c: [i64; 3],
    base: Option<i64>,
}

impl Lane {
    fn uniform(base: Option<i64>) -> Lane {
        Lane { c: [0; 3], base }
    }
    fn is_uniform(&self) -> bool {
        self.c == [0; 3]
    }
}

type LaneVal = Option<Lane>;

fn la_eval(e: &KExpr, env: &HashMap<LocalId, LaneVal>, kernel: &Kernel, b: &Bindings) -> LaneVal {
    match e {
        KExpr::Imm(v) => {
            if v.fract() == 0.0 && v.abs() < 9e15 {
                Some(Lane::uniform(Some(*v as i64)))
            } else {
                Some(Lane::uniform(None))
            }
        }
        KExpr::Local(id) => env.get(id).copied().flatten(),
        KExpr::Tid(axis) => {
            let mut c = [0i64; 3];
            c[axis.index()] = 1;
            Some(Lane { c, base: Some(0) })
        }
        KExpr::Bid(_) | KExpr::Gdim(_) => Some(Lane::uniform(None)),
        KExpr::Bdim(axis) => Some(Lane::uniform(Some(i64::from(
            kernel.block[axis.index()].max(1),
        )))),
        KExpr::SizeVal(s) => {
            let v = eval_signed(s, b);
            Some(Lane::uniform(if v.exact { Some(v.value) } else { None }))
        }
        KExpr::Load { .. } | KExpr::SmemLoad { .. } => None,
        KExpr::Un(op, a) => {
            let a = la_eval(a, env, kernel, b)?;
            match op {
                UnOp::Neg => Some(Lane {
                    c: [
                        a.c[0].checked_neg()?,
                        a.c[1].checked_neg()?,
                        a.c[2].checked_neg()?,
                    ],
                    base: a.base.and_then(i64::checked_neg),
                }),
                _ if a.is_uniform() => Some(Lane::uniform(None)),
                _ => None,
            }
        }
        KExpr::Bin(op, l, r) => {
            let l = la_eval(l, env, kernel, b)?;
            let r = la_eval(r, env, kernel, b)?;
            match op {
                BinOp::Add | BinOp::Sub => {
                    let sign = if *op == BinOp::Add { 1 } else { -1 };
                    let mut c = [0i64; 3];
                    for (ci, (&li, &ri)) in c.iter_mut().zip(l.c.iter().zip(&r.c)) {
                        *ci = li.checked_add(sign * ri)?;
                    }
                    let base = match (l.base, r.base) {
                        (Some(a), Some(b)) => a.checked_add(sign * b),
                        _ => None,
                    };
                    Some(Lane { c, base })
                }
                BinOp::Mul => {
                    // One side must be a uniform known constant to stay
                    // affine in the thread indices.
                    let scaled = |v: Lane, k: i64| -> LaneVal {
                        let mut c = [0i64; 3];
                        for (ci, &vi) in c.iter_mut().zip(&v.c) {
                            *ci = vi.checked_mul(k)?;
                        }
                        Some(Lane {
                            c,
                            base: v.base.and_then(|x| x.checked_mul(k)),
                        })
                    };
                    match (l.is_uniform(), r.is_uniform()) {
                        (true, true) => Some(Lane::uniform(match (l.base, r.base) {
                            (Some(a), Some(b)) => a.checked_mul(b),
                            _ => None,
                        })),
                        (true, false) => l.base.and_then(|k| scaled(r, k)),
                        (false, true) => r.base.and_then(|k| scaled(l, k)),
                        (false, false) => None,
                    }
                }
                _ => {
                    if l.is_uniform() && r.is_uniform() {
                        Some(Lane::uniform(None))
                    } else {
                        None
                    }
                }
            }
        }
        KExpr::Select(c, t, e) => {
            let c = la_eval(c, env, kernel, b)?;
            let t = la_eval(t, env, kernel, b)?;
            let e = la_eval(e, env, kernel, b)?;
            if c.is_uniform() && t.is_uniform() && e.is_uniform() {
                Some(Lane::uniform(None))
            } else if t == e {
                Some(t)
            } else {
                None
            }
        }
    }
}

/// One statically found shared-memory access.
struct SmemSite {
    arr: SmemId,
    idx: LaneVal,
    guarded: bool,
    in_loop: bool,
}

/// Locals assigned anywhere in `stmts` (recursively).
fn assigned_locals(stmts: &[Stmt], out: &mut Vec<LocalId>) {
    for s in stmts {
        match s {
            Stmt::Assign { dst, .. } => out.push(*dst),
            Stmt::AtomicRmw {
                capture: Some(dst), ..
            } => out.push(*dst),
            Stmt::For { var, body, .. } => {
                out.push(*var);
                assigned_locals(body, out);
            }
            Stmt::If { then, els, .. } => {
                assigned_locals(then, out);
                assigned_locals(els, out);
            }
            _ => {}
        }
    }
}

/// Record every `SmemLoad` inside `e` as a site.
fn scan_expr_sites(
    e: &KExpr,
    env: &HashMap<LocalId, LaneVal>,
    kernel: &Kernel,
    b: &Bindings,
    guard: u32,
    loops: u32,
    sites: &mut Vec<SmemSite>,
) {
    match e {
        KExpr::SmemLoad { arr, idx } => {
            sites.push(SmemSite {
                arr: *arr,
                idx: la_eval(idx, env, kernel, b),
                guarded: guard > 0,
                in_loop: loops > 0,
            });
            scan_expr_sites(idx, env, kernel, b, guard, loops, sites);
        }
        KExpr::Load { idx, .. } => scan_expr_sites(idx, env, kernel, b, guard, loops, sites),
        KExpr::Un(_, a) => scan_expr_sites(a, env, kernel, b, guard, loops, sites),
        KExpr::Bin(_, l, r) => {
            scan_expr_sites(l, env, kernel, b, guard, loops, sites);
            scan_expr_sites(r, env, kernel, b, guard, loops, sites);
        }
        KExpr::Select(c, t, el) => {
            scan_expr_sites(c, env, kernel, b, guard, loops, sites);
            scan_expr_sites(t, env, kernel, b, guard, loops, sites);
            scan_expr_sites(el, env, kernel, b, guard, loops, sites);
        }
        _ => {}
    }
}

#[allow(clippy::too_many_arguments)]
fn walk_stmts(
    stmts: &[Stmt],
    env: &mut HashMap<LocalId, LaneVal>,
    kernel: &Kernel,
    b: &Bindings,
    guard: u32,
    loops: u32,
    sites: &mut Vec<SmemSite>,
) {
    for s in stmts {
        match s {
            Stmt::Assign { dst, value } => {
                scan_expr_sites(value, env, kernel, b, guard, loops, sites);
                let v = la_eval(value, env, kernel, b);
                env.insert(*dst, v);
            }
            Stmt::Store { idx, value, .. } => {
                scan_expr_sites(idx, env, kernel, b, guard, loops, sites);
                scan_expr_sites(value, env, kernel, b, guard, loops, sites);
            }
            Stmt::AtomicRmw {
                idx,
                value,
                capture,
                ..
            } => {
                scan_expr_sites(idx, env, kernel, b, guard, loops, sites);
                scan_expr_sites(value, env, kernel, b, guard, loops, sites);
                if let Some(dst) = capture {
                    env.insert(*dst, None);
                }
            }
            Stmt::SmemStore { arr, idx, value } => {
                sites.push(SmemSite {
                    arr: *arr,
                    idx: la_eval(idx, env, kernel, b),
                    guarded: guard > 0,
                    in_loop: loops > 0,
                });
                scan_expr_sites(idx, env, kernel, b, guard, loops, sites);
                scan_expr_sites(value, env, kernel, b, guard, loops, sites);
            }
            Stmt::For {
                var,
                start,
                end,
                step,
                body,
            } => {
                scan_expr_sites(start, env, kernel, b, guard, loops, sites);
                scan_expr_sites(end, env, kernel, b, guard, loops, sites);
                scan_expr_sites(step, env, kernel, b, guard, loops, sites);
                // Entry state sound for *every* iteration: poison all
                // locals the body assigns, then model the loop var as
                // start's lane coefficients with an unknown uniform base
                // (valid when the step is uniform).
                let mut assigned = vec![*var];
                assigned_locals(body, &mut assigned);
                for id in &assigned {
                    env.insert(*id, None);
                }
                let start_v = la_eval(start, env, kernel, b);
                let step_uniform =
                    matches!(la_eval(step, env, kernel, b), Some(s) if s.is_uniform());
                let var_model = match (start_v, step_uniform) {
                    (Some(l), true) => Some(Lane { c: l.c, base: None }),
                    _ => None,
                };
                env.insert(*var, var_model);
                walk_stmts(body, env, kernel, b, guard, loops + 1, sites);
                for id in &assigned {
                    env.insert(*id, None);
                }
            }
            Stmt::If { cond, then, els } => {
                scan_expr_sites(cond, env, kernel, b, guard, loops, sites);
                let divergent = !matches!(la_eval(cond, env, kernel, b), Some(c) if c.is_uniform());
                let g = guard + u32::from(divergent);
                let mut then_env = env.clone();
                let mut els_env = env.clone();
                walk_stmts(then, &mut then_env, kernel, b, g, loops, sites);
                walk_stmts(els, &mut els_env, kernel, b, g, loops, sites);
                let mut assigned = Vec::new();
                assigned_locals(then, &mut assigned);
                assigned_locals(els, &mut assigned);
                for id in assigned {
                    let t = then_env.get(&id).copied().flatten();
                    let e = els_env.get(&id).copied().flatten();
                    env.insert(id, if t == e { t } else { None });
                }
            }
            Stmt::DeviceMalloc { bytes } => {
                scan_expr_sites(bytes, env, kernel, b, guard, loops, sites);
            }
            // Child kernels have no shared memory in our lowering and run
            // as separate grids; the launch's operand expressions cannot
            // touch shared memory either (they are scalar index math), but
            // scan them anyway for soundness.
            Stmt::ChildLaunch { extent, args, .. } => {
                scan_expr_sites(extent, env, kernel, b, guard, loops, sites);
                for a in args {
                    scan_expr_sites(a, env, kernel, b, guard, loops, sites);
                }
            }
            Stmt::Break | Stmt::Sync => {}
        }
    }
}

/// Prove bank-conflict degrees for every shared-memory access of `kernel`
/// by enumerating the block's real warps.
fn bank_proofs(kernel: &Kernel, bindings: &Bindings, gpu: &GpuSpec) -> Vec<BankProof> {
    let mut env = HashMap::new();
    let mut sites = Vec::new();
    walk_stmts(&kernel.body, &mut env, kernel, bindings, 0, 0, &mut sites);

    let dims = [
        u64::from(kernel.block[0].max(1)),
        u64::from(kernel.block[1].max(1)),
        u64::from(kernel.block[2].max(1)),
    ];
    sites
        .into_iter()
        .map(|site| {
            let name = kernel
                .smem
                .get(site.arr as usize)
                .map(|d| d.name.clone())
                .unwrap_or_else(|| format!("smem{}", site.arr));
            let degree = site.idx.map(|lane| {
                // The uniform base only shifts every lane's bank by the
                // same amount — conflict structure is invariant — so
                // evaluate with base 0 and offset words to non-negative.
                let total = dims[0] * dims[1] * dims[2];
                let mut worst: u64 = 0;
                let mut f = 0u64;
                while f < total {
                    let end = (f + u64::from(WARP_SIZE)).min(total);
                    let raw: Vec<i128> = (f..end)
                        .map(|i| {
                            let tx = (i % dims[0]) as i128;
                            let ty = ((i / dims[0]) % dims[1]) as i128;
                            let tz = (i / (dims[0] * dims[1])) as i128;
                            i128::from(lane.c[0]) * tx
                                + i128::from(lane.c[1]) * ty
                                + i128::from(lane.c[2]) * tz
                        })
                        .collect();
                    let min = raw.iter().copied().min().unwrap_or(0);
                    let words: Vec<u64> = raw.iter().map(|w| (w - min) as u64).collect();
                    worst = worst.max(multidim_sim::bank_conflicts(gpu.smem_banks, &words));
                    f = end;
                }
                worst + 1
            });
            let conflict_free = match degree {
                Some(1) => Verdict::Proven,
                Some(_) if !site.guarded && !site.in_loop => Verdict::Refuted,
                _ => Verdict::Unknown,
            };
            BankProof {
                smem: name,
                degree,
                conflict_free,
                guarded: site.guarded,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

impl LocalitySummary {
    /// Render the summary as MD010–MD015 diagnostics, deterministically
    /// ordered (access order, then kernel order, then reuse order).
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for a in &self.accesses {
            match a.class {
                AccessClass::Strided(s) if a.verdict == Verdict::Proven && s.abs() >= 2 => {
                    let hot = a.executions.is_some_and(|e| e >= 256);
                    let sev = if hot { Severity::Warn } else { Severity::Info };
                    let kind = if a.is_write { "store" } else { "load" };
                    out.push(
                        Diagnostic::new(
                            Code::UNCOALESCED,
                            sev,
                            format!(
                                "global {kind} of `{}` is strided({s}) along x under this \
                                 mapping: each warp touches {s}x the minimum segments",
                                a.array
                            ),
                        )
                        .with_pattern(a.pattern)
                        .with_array(a.array.clone()),
                    );
                }
                AccessClass::Scattered => {
                    let kind = if a.is_write { "store" } else { "load" };
                    out.push(
                        Diagnostic::new(
                            Code::SCATTERED,
                            Severity::Info,
                            format!(
                                "global {kind} of `{}` has a data-dependent address: \
                                 coalescing cannot be proven for any mapping",
                                a.array
                            ),
                        )
                        .with_pattern(a.pattern)
                        .with_array(a.array.clone()),
                    );
                }
                _ => {}
            }
        }
        for proof in &self.smem {
            if proof.overflow {
                out.push(Diagnostic::new(
                    Code::SMEM_OVERFLOW,
                    Severity::Error,
                    format!(
                        "kernel `{}` needs {} B of shared memory per block; the device \
                         has {} B per SM — the launch is proven impossible",
                        proof.kernel, proof.bytes, proof.capacity
                    ),
                ));
            } else if proof.pressure {
                out.push(Diagnostic::new(
                    Code::SMEM_PRESSURE,
                    Severity::Info,
                    format!(
                        "kernel `{}` uses {} B of shared memory per block (more than \
                         half of the {} B capacity): at most one block per SM is resident",
                        proof.kernel, proof.bytes, proof.capacity
                    ),
                ));
            }
            for bank in &proof.banks {
                if bank.conflict_free == Verdict::Refuted {
                    let d = bank.degree.unwrap_or(0);
                    out.push(Diagnostic::new(
                        Code::BANK_CONFLICT,
                        Severity::Warn,
                        format!(
                            "shared array `{}` in kernel `{}` has a proven {d}-way bank \
                             conflict: every request serializes into {d} passes",
                            bank.smem, proof.kernel
                        ),
                    ));
                }
            }
        }
        for r in &self.reuse {
            if r.factor >= 8 && !r.staged {
                out.push(
                    Diagnostic::new(
                        Code::UNEXPLOITED_REUSE,
                        Severity::Info,
                        format!(
                            "read of `{}` touches each element {}x across nest level {} \
                             but is not staged through shared memory",
                            r.array, r.factor, r.level
                        ),
                    )
                    .with_pattern(r.pattern)
                    .with_array(r.array.clone()),
                );
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Simulator cross-check
// ---------------------------------------------------------------------------

/// Validate a [`LocalitySummary`]'s proven claims against what the
/// simulator actually measured, mirroring [`crate::cross_check`] for the
/// race analysis. Returns one human-readable line per disagreement (empty
/// = the static analysis is consistent with the measurement):
///
/// 1. measured DRAM transactions must be ≥ the proven lower bound;
/// 2. measured total seconds must be ≥ the proven seconds floor;
/// 3. a kernel whose shared-memory accesses are all proven conflict-free
///    must have measured `smem_conflicts == 0`, and when every site has a
///    proven degree the measured conflicts must fit
///    `(max_degree − 1) × smem_accesses`.
pub fn locality_cross_check(summary: &LocalitySummary, sim: &SimResult) -> Vec<String> {
    let mut out = Vec::new();
    let measured_tx = sim.total_cost().transactions;
    if measured_tx < summary.tx_lower_bound {
        out.push(format!(
            "{}: measured {} transactions < proven lower bound {}",
            summary.program, measured_tx, summary.tx_lower_bound
        ));
    }
    if sim.total_seconds < summary.seconds_lower_bound * (1.0 - 1e-9) {
        out.push(format!(
            "{}: measured {:.3e} s < proven floor {:.3e} s",
            summary.program, sim.total_seconds, summary.seconds_lower_bound
        ));
    }
    for (i, proof) in summary.smem.iter().enumerate() {
        let Some(cost) = sim.costs.get(i) else {
            out.push(format!(
                "{}: kernel `{}` has no measured counters",
                summary.program, proof.kernel
            ));
            continue;
        };
        if sim.names.get(i).map(String::as_str) != Some(proof.kernel.as_str()) {
            out.push(format!(
                "{}: kernel order mismatch at index {i} (static `{}`, measured `{:?}`)",
                summary.program,
                proof.kernel,
                sim.names.get(i)
            ));
            continue;
        }
        let all_proven = proof
            .banks
            .iter()
            .all(|b| b.conflict_free == Verdict::Proven);
        if all_proven && cost.smem_conflicts != 0 {
            out.push(format!(
                "{}: kernel `{}` proven conflict-free but measured {} bank conflicts",
                summary.program, proof.kernel, cost.smem_conflicts
            ));
        }
        if let Some(max_d) = proof
            .banks
            .iter()
            .map(|b| b.degree)
            .collect::<Option<Vec<u64>>>()
            .and_then(|ds| ds.into_iter().max())
        {
            let bound = (max_d - 1).saturating_mul(cost.smem_accesses);
            if cost.smem_conflicts > bound {
                out.push(format!(
                    "{}: kernel `{}` measured {} bank conflicts > proven bound {} \
                     (max degree {max_d} over {} accesses)",
                    summary.program, proof.kernel, cost.smem_conflicts, bound, cost.smem_accesses
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod unit {
    use super::*;
    use multidim_codegen::Axis;

    #[test]
    fn capacity_coalesced_f32() {
        // 32 consecutive 4-byte elements span 128 bytes: all 32 starts fit
        // a 127-byte window.
        assert_eq!(warp_capacity([32, 1, 1], [4, 0, 0]), 32);
    }

    #[test]
    fn capacity_strided() {
        // Stride 2 × 8 bytes = 16-byte spacing: 8 lanes per window.
        assert_eq!(warp_capacity([32, 1, 1], [16, 0, 0]), 8);
        // Stride 32 × 4 bytes: every lane its own segment.
        assert_eq!(warp_capacity([32, 1, 1], [128, 0, 0]), 1);
    }

    #[test]
    fn capacity_broadcast() {
        assert_eq!(warp_capacity([32, 1, 1], [0, 0, 0]), 32);
    }

    #[test]
    fn capacity_y_blocks() {
        // 8×8 block, address varies only in y by 8 bytes: a warp covers 4
        // full y-rows of 8 lanes each, rows 8 bytes apart — all 32 lanes
        // within 24 bytes ≤ 127.
        assert_eq!(warp_capacity([8, 8, 1], [0, 8, 0]), 32);
        // y-stride 512 bytes: only one row (8 lanes) per window.
        assert_eq!(warp_capacity([8, 8, 1], [0, 512, 0]), 8);
    }

    #[test]
    fn lane_eval_tid_arith() {
        let kernel = Kernel {
            name: "t".into(),
            grid: [
                multidim_ir::Size::from(1),
                multidim_ir::Size::from(1),
                multidim_ir::Size::from(1),
            ],
            block: [32, 2, 1],
            smem: vec![],
            locals: 0,
            body: vec![],
        };
        let env = HashMap::new();
        let b = Bindings::new();
        // tid.x + tid.y * bdim.x
        let e = KExpr::add(
            KExpr::Tid(Axis::X),
            KExpr::mul(KExpr::Tid(Axis::Y), KExpr::Bdim(Axis::X)),
        );
        let v = la_eval(&e, &env, &kernel, &b).unwrap();
        assert_eq!(v.c, [1, 32, 0]);
        assert_eq!(v.base, Some(0));
    }
}
