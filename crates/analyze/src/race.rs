//! Write-write race detection for parallel pattern nests.
//!
//! Every non-atomic store collected by `ir::collect_accesses` carries a
//! linearized [`AffineForm`] address over the enclosing pattern variables.
//! Two *distinct* pattern instances racing means two distinct assignments
//! of those variables produce the same address — so race freedom of a
//! single store site is exactly injectivity of its affine map over the
//! iteration box, and a cross-site race is a non-empty intersection of two
//! such maps' images (excluding the same-instance case, which executes
//! sequentially on one thread).
//!
//! The prover is deliberately three-valued:
//!
//! * **Proven race** (`MD001`, error) only for unguarded stores where a
//!   colliding instance pair is exhibited — a guard subsets the iteration
//!   domain, which can remove a collision but never create one, so guarded
//!   collisions degrade to *maybe*.
//! * **Proven race-free** survives guards for the same reason, and requires
//!   every coefficient and extent to be exactly known.
//! * Everything else is **maybe-race** (`MD002`, warning): non-affine
//!   (data-dependent) scatter indices, dynamic extents, unbound symbols, or
//!   boxes too large to enumerate.

use crate::diag::{Code, Diagnostic, Severity, Verdict};
use crate::eval::eval_signed;
use multidim_ir::{collect_accesses, Access, AffineForm, ArrayId, Bindings, Program, VarId};
use std::collections::{BTreeMap, HashSet};

/// Above this many instances, stop enumerating and report `Unknown`.
const ENUM_LIMIT: i64 = 1 << 16;

/// One parallel dimension of a store site: the pattern variable, its
/// extent, its (signed) address coefficient, and exactness flags.
struct Dim {
    var: VarId,
    extent: i64,
    exact_extent: bool,
    coeff: i64,
    exact_coeff: bool,
}

/// A store site prepared for the solver.
struct Site<'a> {
    access: &'a Access,
    /// Parallel dimensions with extent > 1 (unit extents cannot collide).
    dims: Vec<Dim>,
    /// `Some` when the address is affine purely over pattern variables.
    affine: Option<(Vec<Dim>, i64, bool)>,
}

/// Outcome of one disjointness query.
enum Outcome {
    Disjoint,
    Race(String),
    Unknown(String),
}

/// Analyze all non-atomic writes and fold the results into `diags` and the
/// per-array race verdicts.
pub(crate) fn check(
    program: &Program,
    bindings: &Bindings,
    diags: &mut Vec<Diagnostic>,
    verdicts: &mut BTreeMap<ArrayId, Verdict>,
) {
    let accesses = collect_accesses(program);
    let mut by_array: BTreeMap<ArrayId, Vec<&Access>> = BTreeMap::new();
    for a in &accesses {
        if let Some(id) = a.array {
            if a.is_write && !a.atomic {
                by_array.entry(id).or_default().push(a);
            }
        }
    }

    for (array, writes) in by_array {
        let name = program.array(array).name.clone();
        let sites: Vec<Site<'_>> = writes.iter().map(|w| prepare(w, bindings)).collect();
        let mut verdict = Verdict::Proven;
        let mut unknown_reason: Option<(String, &Access)> = None;

        for site in &sites {
            match self_check(site) {
                Outcome::Disjoint => {}
                Outcome::Race(why) => {
                    verdict = Verdict::Refuted;
                    diags.push(
                        Diagnostic::new(Code::RACE, Severity::Error, format!("data race: {why}"))
                            .with_pattern(innermost(site.access))
                            .with_array(&name),
                    );
                }
                Outcome::Unknown(why) => {
                    if unknown_reason.is_none() {
                        unknown_reason = Some((why, site.access));
                    }
                }
            }
        }
        for (i, a) in sites.iter().enumerate() {
            for b in &sites[i + 1..] {
                match pair_check(a, b) {
                    Outcome::Disjoint => {}
                    // Pairwise collisions are never promoted to proven
                    // races: whether the colliding instances really run on
                    // different threads depends on how codegen schedules
                    // sibling effects.
                    Outcome::Race(why) | Outcome::Unknown(why) => {
                        if unknown_reason.is_none() {
                            unknown_reason = Some((why, a.access));
                        }
                    }
                }
            }
        }

        if verdict != Verdict::Refuted {
            if let Some((why, access)) = unknown_reason {
                verdict = Verdict::Unknown;
                diags.push(
                    Diagnostic::new(
                        Code::MAYBE_RACE,
                        Severity::Warn,
                        format!("possible data race: {why}"),
                    )
                    .with_pattern(innermost(access))
                    .with_array(&name),
                );
            }
        }
        let slot = verdicts.entry(array).or_insert(Verdict::Proven);
        *slot = slot.meet(verdict);
    }
}

fn innermost(a: &Access) -> multidim_ir::PatternId {
    a.chain
        .last()
        .map(|l| l.pattern)
        .unwrap_or(multidim_ir::PatternId(0))
}

/// Resolve a store's chain and address against `bindings`.
fn prepare<'a>(access: &'a Access, bindings: &Bindings) -> Site<'a> {
    let mut dims = Vec::new();
    for link in &access.chain {
        let extent = link.size.eval_or_default(bindings).max(0);
        if extent <= 1 && !link.size.is_dynamic() {
            continue; // a single instance cannot self-collide
        }
        let (coeff, exact_coeff) = match &access.addr {
            AffineForm::Affine { terms, .. } => match terms.get(&link.var) {
                Some(c) => {
                    let s = eval_signed(c, bindings);
                    (s.value, s.exact)
                }
                None => (0, true),
            },
            AffineForm::NonAffine => (0, false),
        };
        dims.push(Dim {
            var: link.var,
            extent,
            exact_extent: !link.size.is_dynamic(),
            coeff,
            exact_coeff,
        });
    }

    let affine = match &access.addr {
        AffineForm::Affine { terms, constant } => {
            let chain_vars: HashSet<VarId> = access.chain.iter().map(|l| l.var).collect();
            if terms.keys().all(|v| chain_vars.contains(v)) {
                let k = eval_signed(constant, bindings);
                let ds: Vec<Dim> = dims
                    .iter()
                    .map(|d| Dim {
                        var: d.var,
                        extent: d.extent,
                        exact_extent: d.exact_extent,
                        coeff: d.coeff,
                        exact_coeff: d.exact_coeff,
                    })
                    .collect();
                Some((ds, k.value, k.exact))
            } else {
                None // address depends on a loop/let variable we can't bound
            }
        }
        AffineForm::NonAffine => None,
    };
    Site {
        access,
        dims,
        affine,
    }
}

/// Is one store site injective over its own instances?
fn self_check(site: &Site<'_>) -> Outcome {
    if site.dims.is_empty() {
        return Outcome::Disjoint; // a single instance
    }
    let Some((dims, _k, _)) = &site.affine else {
        return match &site.access.addr {
            AffineForm::NonAffine => Outcome::Unknown("store index is data-dependent".to_string()),
            _ => Outcome::Unknown(
                "store index depends on a sequential-loop or let variable".to_string(),
            ),
        };
    };

    // A parallel variable the address ignores: every setting of it writes
    // the same location.
    for d in dims {
        if d.coeff == 0 && d.exact_coeff {
            if !d.exact_extent {
                return Outcome::Unknown(format!(
                    "extent of the parallel dimension over v{} is only known at runtime",
                    d.var.0
                ));
            }
            if site.access.branch_depth == 0 {
                return Outcome::Race(format!(
                    "all {} instances of the parallel dimension over v{} write the same element",
                    d.extent, d.var.0
                ));
            }
            return Outcome::Unknown(format!(
                "guarded instances of the parallel dimension over v{} may write the same element",
                d.var.0
            ));
        }
    }
    if dims.iter().any(|d| !d.exact_coeff || !d.exact_extent) {
        return Outcome::Unknown("store address involves unbound or dynamic sizes".to_string());
    }

    // Sufficient mixed-radix condition: sorted by |coeff|, each coefficient
    // dominates the maximal reach of all smaller ones.
    let mut sorted: Vec<(i64, i64)> = dims.iter().map(|d| (d.coeff.abs(), d.extent)).collect();
    sorted.sort_unstable();
    let mut reach: i64 = 0;
    let mut dominated = true;
    for (c, n) in &sorted {
        if *c <= reach {
            dominated = false;
            break;
        }
        reach = reach.saturating_add(c.saturating_mul(n - 1));
    }
    if dominated {
        return Outcome::Disjoint;
    }

    // Exact fallback: enumerate the box.
    let volume: i64 = dims.iter().map(|d| d.extent).product();
    if volume <= ENUM_LIMIT {
        let mut seen = HashSet::with_capacity(volume as usize);
        let mut found = None;
        for_each_addr(dims, 0, |addr| {
            if !seen.insert(addr) && found.is_none() {
                found = Some(addr);
            }
        });
        return match found {
            Some(addr) if site.access.branch_depth == 0 => {
                Outcome::Race(format!("two instances write linearized element {addr}"))
            }
            Some(addr) => Outcome::Unknown(format!(
                "guarded instances may both write linearized element {addr}"
            )),
            None => Outcome::Disjoint,
        };
    }
    Outcome::Unknown("cannot prove the store map injective".to_string())
}

/// Can two different store sites hit the same element from different
/// instances?
fn pair_check(a: &Site<'_>, b: &Site<'_>) -> Outcome {
    let (Some((da, ka, ea)), Some((db, kb, eb))) = (&a.affine, &b.affine) else {
        return Outcome::Unknown(
            "multiple stores to the array cannot be proven disjoint".to_string(),
        );
    };
    if !ea
        || !eb
        || da
            .iter()
            .chain(db.iter())
            .any(|d| !d.exact_coeff || !d.exact_extent)
    {
        return Outcome::Unknown("multiple stores involve unbound or dynamic sizes".to_string());
    }
    // Disjoint address ranges can never collide.
    let ra = range(da, *ka);
    let rb = range(db, *kb);
    if ra.1 < rb.0 || rb.1 < ra.0 {
        return Outcome::Disjoint;
    }
    // Identical form over an identical chain: collisions coincide with the
    // self-injectivity question already answered per site.
    let same_chain = a.access.chain.iter().map(|l| l.pattern).collect::<Vec<_>>()
        == b.access.chain.iter().map(|l| l.pattern).collect::<Vec<_>>();
    let same_form = *ka == *kb
        && da.len() == db.len()
        && da
            .iter()
            .zip(db.iter())
            .all(|(x, y)| x.var == y.var && x.coeff == y.coeff && x.extent == y.extent);
    if same_chain && same_form {
        return Outcome::Disjoint;
    }

    let (va, vb): (i64, i64) = (
        da.iter().map(|d| d.extent).product(),
        db.iter().map(|d| d.extent).product(),
    );
    if va <= ENUM_LIMIT && vb <= ENUM_LIMIT {
        let mut img = HashSet::with_capacity(va as usize);
        for_each_addr(da, *ka, |addr| {
            img.insert(addr);
        });
        let mut hit = None;
        for_each_addr(db, *kb, |addr| {
            if hit.is_none() && img.contains(&addr) {
                hit = Some(addr);
            }
        });
        return match hit {
            Some(addr) => Outcome::Unknown(format!(
                "two store sites can both write linearized element {addr}"
            )),
            None => Outcome::Disjoint,
        };
    }
    Outcome::Unknown("multiple stores to the array cannot be proven disjoint".to_string())
}

/// `[min, max]` of the affine image over the box.
fn range(dims: &[Dim], k: i64) -> (i64, i64) {
    let mut lo = k;
    let mut hi = k;
    for d in dims {
        let reach = d.coeff * (d.extent - 1);
        if reach < 0 {
            lo += reach;
        } else {
            hi += reach;
        }
    }
    (lo, hi)
}

/// Call `f` with every address in the image (box enumeration).
fn for_each_addr(dims: &[Dim], k: i64, mut f: impl FnMut(i64)) {
    let mut idx = vec![0i64; dims.len()];
    loop {
        let addr = k + dims
            .iter()
            .zip(idx.iter())
            .map(|(d, i)| d.coeff * i)
            .sum::<i64>();
        f(addr);
        let mut carry = dims.len();
        while carry > 0 {
            let j = carry - 1;
            idx[j] += 1;
            if idx[j] < dims[j].extent {
                break;
            }
            idx[j] = 0;
            carry -= 1;
        }
        if carry == 0 {
            return;
        }
    }
}
