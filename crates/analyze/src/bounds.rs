//! In-bounds proving against declared array extents.
//!
//! For an affine access `k + Σ c_j · x_j` over pattern variables
//! `x_j ∈ [0, n_j)`, the reachable address interval is
//! `[k + Σ min(0, c_j)(n_j−1), k + Σ max(0, c_j)(n_j−1)]`, and every point
//! of it is achieved (each variable independently hits its extreme). So
//! with exact sizes the interval test is complete: inside the array
//! extent ⇒ *proven* in bounds, outside ⇒ some executed instance really
//! faults ⇒ *refuted* (unless a guard may keep that instance from
//! running). Data-dependent indices and inexact sizes stay *unknown*.

use crate::diag::{Code, Diagnostic, Severity, Verdict};
use crate::eval::eval_signed;
use multidim_ir::{collect_accesses, Access, AffineForm, ArrayId, Bindings, Program, VarId};
use std::collections::{BTreeMap, HashSet};

/// Analyze every array access and fold results into `diags` and the
/// per-array bounds verdicts.
pub(crate) fn check(
    program: &Program,
    bindings: &Bindings,
    diags: &mut Vec<Diagnostic>,
    verdicts: &mut BTreeMap<ArrayId, Verdict>,
) {
    let accesses = collect_accesses(program);
    let mut dynamic_noted: HashSet<ArrayId> = HashSet::new();

    for a in &accesses {
        let Some(array) = a.array else { continue };
        let decl = program.array(array);
        let slot = verdicts.entry(array).or_insert(Verdict::Proven);

        let len = decl.shape.iter().fold((1i64, true), |(v, e), s| {
            let s = eval_signed(s, bindings);
            (v * s.value.max(0), e && s.exact)
        });

        match classify(a, bindings, len) {
            AccessVerdict::Proven => {}
            AccessVerdict::Dynamic => {
                *slot = slot.meet(Verdict::Unknown);
                if dynamic_noted.insert(array) {
                    diags.push(
                        Diagnostic::new(
                            Code::DYNAMIC_INDEX,
                            Severity::Info,
                            "data-dependent index; bounds not statically provable",
                        )
                        .with_pattern(innermost(a))
                        .with_array(&decl.name),
                    );
                }
            }
            AccessVerdict::Unknown(why) => {
                *slot = slot.meet(Verdict::Unknown);
                diags.push(
                    Diagnostic::new(Code::MAYBE_OOB, Severity::Warn, why)
                        .with_pattern(innermost(a))
                        .with_array(&decl.name),
                );
            }
            AccessVerdict::Refuted(why) => {
                if a.branch_depth == 0 {
                    *slot = Verdict::Refuted;
                    diags.push(
                        Diagnostic::new(Code::OOB, Severity::Error, why)
                            .with_pattern(innermost(a))
                            .with_array(&decl.name),
                    );
                } else {
                    // The guard may keep the faulting instance from running.
                    *slot = slot.meet(Verdict::Unknown);
                    diags.push(
                        Diagnostic::new(
                            Code::MAYBE_OOB,
                            Severity::Warn,
                            format!("{why} (guarded; the condition may prevent it)"),
                        )
                        .with_pattern(innermost(a))
                        .with_array(&decl.name),
                    );
                }
            }
        }
    }
}

enum AccessVerdict {
    Proven,
    Refuted(String),
    Unknown(String),
    /// Unknown specifically because the index is data-dependent.
    Dynamic,
}

fn classify(a: &Access, bindings: &Bindings, (len, len_exact): (i64, bool)) -> AccessVerdict {
    let AffineForm::Affine { terms, constant } = &a.addr else {
        return AccessVerdict::Dynamic;
    };
    let chain_vars: HashSet<VarId> = a.chain.iter().map(|l| l.var).collect();
    if !terms.keys().all(|v| chain_vars.contains(v)) {
        return AccessVerdict::Dynamic; // loop/let variables we cannot bound
    }

    let k = eval_signed(constant, bindings);
    let mut lo = k.value;
    let mut hi = k.value;
    let mut exact = k.exact;
    for link in &a.chain {
        let Some(c) = terms.get(&link.var) else {
            continue;
        };
        let c = eval_signed(c, bindings);
        let extent = link.size.eval_or_default(bindings).max(0);
        if extent == 0 {
            return AccessVerdict::Proven; // no instance executes
        }
        exact = exact && c.exact && !link.size.is_dynamic();
        let reach = c.value * (extent - 1);
        if reach < 0 {
            lo += reach;
        } else {
            hi += reach;
        }
    }

    if exact && len_exact {
        if lo >= 0 && hi < len {
            AccessVerdict::Proven
        } else if hi >= len {
            AccessVerdict::Refuted(format!(
                "out-of-bounds {}: element {hi} of a {len}-element array",
                dir(a)
            ))
        } else {
            AccessVerdict::Refuted(format!(
                "out-of-bounds {}: element {lo} of a {len}-element array",
                dir(a)
            ))
        }
    } else if lo >= 0 && hi < len {
        // The interval fits under the *estimated* sizes only.
        AccessVerdict::Unknown(format!(
            "cannot prove {} in bounds: sizes are dynamic or unbound",
            dir(a)
        ))
    } else {
        AccessVerdict::Unknown(format!(
            "possible out-of-bounds {} under estimated sizes",
            dir(a)
        ))
    }
}

fn dir(a: &Access) -> &'static str {
    if a.is_write {
        "write"
    } else {
        "read"
    }
}

fn innermost(a: &Access) -> multidim_ir::PatternId {
    a.chain
        .last()
        .map(|l| l.pattern)
        .unwrap_or(multidim_ir::PatternId(0))
}
