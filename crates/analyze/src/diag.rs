//! Structured diagnostics: stable codes, severities, verdicts, and a
//! per-program report with terminal and JSON renderings.

use multidim_ir::{ArrayId, PatternId};
use multidim_trace::json::Json;
use multidim_trace::{self as trace, Event};
use std::fmt;

/// A stable diagnostic code, displayed as `MD0xx`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Code(pub u16);

impl Code {
    /// Proven write-write race: two pattern instances store to one address.
    pub const RACE: Code = Code(1);
    /// Possible race: a scatter store whose disjointness cannot be proven.
    pub const MAYBE_RACE: Code = Code(2);
    /// Proven out-of-bounds access.
    pub const OOB: Code = Code(3);
    /// Possible out-of-bounds access (affine but unprovable, or guarded).
    pub const MAYBE_OOB: Code = Code(4);
    /// Float reduce combine order depends on a `Split(k)` mapping.
    pub const SPLIT_NONDET: Code = Code(5);
    /// Sibling patterns at one nest level disagree on their extents.
    pub const EXTENT_MISMATCH: Code = Code(6);
    /// Atomic float combine order (groupBy/filter placement) is
    /// non-deterministic.
    pub const ATOMIC_ORDER: Code = Code(7);
    /// Structural kernel defect reported by `codegen::validate`.
    pub const KERNEL_DEFECT: Code = Code(8);
    /// Data-dependent index defeats the static bounds proof.
    pub const DYNAMIC_INDEX: Code = Code(9);
    /// Hot global access is provably uncoalesced (strided) under the
    /// chosen mapping.
    pub const UNCOALESCED: Code = Code(10);
    /// Shared-memory access with a proven bank-conflict degree ≥ 2.
    pub const BANK_CONFLICT: Code = Code(11);
    /// Proven per-block shared-memory footprint exceeds device capacity.
    pub const SMEM_OVERFLOW: Code = Code(12);
    /// High-reuse read not staged through shared memory.
    pub const UNEXPLOITED_REUSE: Code = Code(13);
    /// Data-dependent (non-affine) global access: coalescing unprovable.
    pub const SCATTERED: Code = Code(14);
    /// Shared-memory footprint above half of capacity limits residency.
    pub const SMEM_PRESSURE: Code = Code(15);
    /// A nest level's extent is data-dependent; the mapper falls back to
    /// the workload's estimate for its representative size.
    pub const DYN_ESTIMATE: Code = Code(16);
}

/// One row of the diagnostic-code table: code, short name, description.
pub type CodeRow = (Code, &'static str, &'static str);

/// The complete table of diagnostic codes — the single source of truth
/// used by the `MD0xx` documentation in [`crate`]'s module docs (checked
/// by a test) and by anything that needs to enumerate codes (the obs
/// counter family, the lint example).
pub const CODE_TABLE: &[CodeRow] = &[
    (
        Code::RACE,
        "RACE",
        "proven write-write race: two pattern instances store to one address",
    ),
    (
        Code::MAYBE_RACE,
        "MAYBE_RACE",
        "possible race: a scatter store whose disjointness cannot be proven",
    ),
    (Code::OOB, "OOB", "proven out-of-bounds access"),
    (
        Code::MAYBE_OOB,
        "MAYBE_OOB",
        "possible out-of-bounds access (affine but unprovable, or guarded)",
    ),
    (
        Code::SPLIT_NONDET,
        "SPLIT_NONDET",
        "float reduce combine order depends on a Split(k) mapping",
    ),
    (
        Code::EXTENT_MISMATCH,
        "EXTENT_MISMATCH",
        "sibling patterns at one nest level disagree on their extents",
    ),
    (
        Code::ATOMIC_ORDER,
        "ATOMIC_ORDER",
        "atomic float combine order (groupBy/filter placement) is non-deterministic",
    ),
    (
        Code::KERNEL_DEFECT,
        "KERNEL_DEFECT",
        "structural kernel defect reported by codegen::validate",
    ),
    (
        Code::DYNAMIC_INDEX,
        "DYNAMIC_INDEX",
        "data-dependent index defeats the static bounds proof",
    ),
    (
        Code::UNCOALESCED,
        "UNCOALESCED",
        "hot global access is provably uncoalesced (strided) under the chosen mapping",
    ),
    (
        Code::BANK_CONFLICT,
        "BANK_CONFLICT",
        "shared-memory access with a proven bank-conflict degree >= 2",
    ),
    (
        Code::SMEM_OVERFLOW,
        "SMEM_OVERFLOW",
        "proven per-block shared-memory footprint exceeds device capacity",
    ),
    (
        Code::UNEXPLOITED_REUSE,
        "UNEXPLOITED_REUSE",
        "high-reuse read not staged through shared memory",
    ),
    (
        Code::SCATTERED,
        "SCATTERED",
        "data-dependent (non-affine) global access: coalescing unprovable",
    ),
    (
        Code::SMEM_PRESSURE,
        "SMEM_PRESSURE",
        "shared-memory footprint above half of capacity limits residency",
    ),
    (
        Code::DYN_ESTIMATE,
        "DYN_ESTIMATE",
        "data-dependent extent: the mapper sizes this level from the workload's estimate",
    ),
];

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MD{:03}", self.0)
    }
}

/// How serious a diagnostic is. `Error` aborts compilation when the
/// analyzer runs as a pipeline stage; the rest are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory note.
    Info,
    /// Suspicious but not provably wrong.
    Warn,
    /// Provably wrong; compilation aborts.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Info => "info",
        })
    }
}

/// Outcome of a proof attempt — the three-point verdict lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The property holds for every execution.
    Proven,
    /// The property is violated by some execution.
    Refuted,
    /// Neither provable nor refutable statically.
    Unknown,
}

impl Verdict {
    /// Lattice meet: `Proven` only when both sides are proven, `Refuted`
    /// as soon as either side is.
    pub fn meet(self, other: Verdict) -> Verdict {
        use Verdict::*;
        match (self, other) {
            (Refuted, _) | (_, Refuted) => Refuted,
            (Proven, Proven) => Proven,
            _ => Unknown,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Proven => "proven",
            Verdict::Refuted => "refuted",
            Verdict::Unknown => "unknown",
        })
    }
}

/// One finding: a coded, severity-ranked message anchored to the pattern
/// (and array) it concerns.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code (`MD0xx`).
    pub code: Code,
    /// Severity.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// The pattern the finding anchors to, when known.
    pub pattern: Option<PatternId>,
    /// The array involved, when any (by name, for rendering).
    pub array: Option<String>,
}

impl Diagnostic {
    /// A new diagnostic with no span.
    pub fn new(code: Code, severity: Severity, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            pattern: None,
            array: None,
        }
    }

    /// Anchor to a pattern.
    pub fn with_pattern(mut self, p: PatternId) -> Diagnostic {
        self.pattern = Some(p);
        self
    }

    /// Name the array involved.
    pub fn with_array(mut self, name: impl Into<String>) -> Diagnostic {
        self.array = Some(name.into());
        self
    }

    /// One-line rendering: `MD001 error [p3 @ out] message`.
    pub fn render_line(&self) -> String {
        let mut loc = String::new();
        if let Some(PatternId(p)) = self.pattern {
            loc.push_str(&format!("p{p}"));
        }
        if let Some(a) = &self.array {
            if !loc.is_empty() {
                loc.push_str(" @ ");
            }
            loc.push_str(a);
        }
        if loc.is_empty() {
            format!(
                "{} {:<5} {}",
                self.code,
                self.severity.to_string(),
                self.message
            )
        } else {
            format!(
                "{} {:<5} [{loc}] {}",
                self.code,
                self.severity.to_string(),
                self.message
            )
        }
    }

    /// JSON object rendering.
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("code".to_string(), Json::Str(self.code.to_string())),
            ("severity".to_string(), Json::Str(self.severity.to_string())),
            ("message".to_string(), Json::Str(self.message.clone())),
        ];
        if let Some(PatternId(p)) = self.pattern {
            obj.push(("pattern".to_string(), Json::Num(f64::from(p))));
        }
        if let Some(a) = &self.array {
            obj.push(("array".to_string(), Json::Str(a.clone())));
        }
        Json::Obj(obj)
    }
}

/// The analyzer's verdicts for one array.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayVerdicts {
    /// The array.
    pub array: ArrayId,
    /// Its name (for rendering).
    pub name: String,
    /// Are all non-atomic writes pairwise disjoint?
    pub race_free: Verdict,
    /// Do all accesses stay inside the array's extent?
    pub in_bounds: Verdict,
}

/// Everything the analyzer found for one program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// The analyzed program's name.
    pub program: String,
    /// Findings, in discovery order.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-array verdicts, in declaration order.
    pub arrays: Vec<ArrayVerdicts>,
}

impl Report {
    /// Does the report contain any `Error`-severity diagnostic?
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// All `Error`-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// The race-freedom verdict for `array` (`Proven` when untracked: an
    /// array nobody writes is trivially race-free).
    pub fn race_free(&self, array: ArrayId) -> Verdict {
        self.arrays
            .iter()
            .find(|v| v.array == array)
            .map_or(Verdict::Proven, |v| v.race_free)
    }

    /// The bounds verdict for `array`.
    pub fn in_bounds(&self, array: ArrayId) -> Verdict {
        self.arrays
            .iter()
            .find(|v| v.array == array)
            .map_or(Verdict::Proven, |v| v.in_bounds)
    }

    /// Terminal rendering: a diagnostics list followed by the per-array
    /// verdict table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let errors = self.errors().count();
        let warns = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count();
        out.push_str(&format!(
            "{}: {} error(s), {} warning(s), {} info\n",
            self.program,
            errors,
            warns,
            self.diagnostics.len() - errors - warns
        ));
        for d in &self.diagnostics {
            out.push_str("  ");
            out.push_str(&d.render_line());
            out.push('\n');
        }
        if !self.arrays.is_empty() {
            out.push_str(&format!(
                "  {:<16} {:>10} {:>10}\n",
                "array", "race-free", "in-bounds"
            ));
            for v in &self.arrays {
                out.push_str(&format!(
                    "  {:<16} {:>10} {:>10}\n",
                    v.name,
                    v.race_free.to_string(),
                    v.in_bounds.to_string()
                ));
            }
        }
        out
    }

    /// Machine-readable JSON rendering.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("program".to_string(), Json::Str(self.program.clone())),
            (
                "diagnostics".to_string(),
                Json::Arr(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
            ),
            (
                "arrays".to_string(),
                Json::Arr(
                    self.arrays
                        .iter()
                        .map(|v| {
                            Json::Obj(vec![
                                ("name".to_string(), Json::Str(v.name.clone())),
                                ("race_free".to_string(), Json::Str(v.race_free.to_string())),
                                ("in_bounds".to_string(), Json::Str(v.in_bounds.to_string())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Emit the report as trace events (category `analyze`) so profiling
    /// traces include the static-analysis phase.
    pub fn emit_trace(&self) {
        if !trace::enabled() {
            return;
        }
        for d in &self.diagnostics {
            let mut ev = Event::instant("analyze", d.code.to_string())
                .arg("severity", d.severity.to_string())
                .arg("message", d.message.clone());
            if let Some(a) = &d.array {
                ev = ev.arg("array", a.clone());
            }
            trace::emit(ev);
        }
        for v in &self.arrays {
            trace::emit(
                Event::instant("analyze", "verdict")
                    .arg("array", v.name.clone())
                    .arg("race_free", v.race_free.to_string())
                    .arg("in_bounds", v.in_bounds.to_string()),
            );
        }
    }
}
