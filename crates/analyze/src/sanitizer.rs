//! Cross-validation of static verdicts against the simulator's sanitizer.
//!
//! The simulator's sanitizer mode records, per kernel launch, every
//! non-atomic global store with the global thread id that issued it and
//! reports *conflicts*: one element stored by two different threads within
//! one launch. Static verdicts and dynamic observations then have a simple
//! contract:
//!
//! * `race_free = Proven` ⇒ the sanitizer must observe **zero** conflicts
//!   on buffers materializing that array. A conflict is a soundness bug in
//!   the prover and a test failure.
//! * `in_bounds = Proven` ⇒ the run must complete without a simulator
//!   memory fault (the simulator faults on any out-of-range address, so
//!   successful completion *is* the dynamic confirmation).
//! * `Unknown` and `Refuted` verdicts impose no dynamic constraint — a
//!   HogWild-style workload may race benignly on purpose.

use crate::diag::{Report, Verdict};
use multidim_sim::SanitizerReport;

/// Compare a static [`Report`] with a dynamic [`SanitizerReport`];
/// returns one message per disagreement (empty = verdicts confirmed).
pub fn cross_check(report: &Report, san: &SanitizerReport) -> Vec<String> {
    let mut disagreements = Vec::new();
    for v in &report.arrays {
        if v.race_free != Verdict::Proven {
            continue;
        }
        for c in &san.conflicts {
            if c.array == Some(v.array) {
                disagreements.push(format!(
                    "static analysis proved `{}` race-free, but the sanitizer saw \
                     threads {} and {} both store element {} of buffer `{}` in kernel `{}`",
                    v.name, c.first_tid, c.second_tid, c.index, c.buffer, c.kernel
                ));
            }
        }
    }
    disagreements
}
