//! Static analysis for the multidim pattern IR.
//!
//! The mapping analysis (paper Section IV) derives affine address forms
//! for every access but only *scores* them; this crate turns the same
//! facts into legality and determinism verdicts:
//!
//! * **Race detection**: write-write disjointness of `Foreach` and scatter
//!   effects, proven by solving the affine address maps for index
//!   collisions across pattern instances.
//! * **Bounds proving**: every access's reachable address interval checked
//!   against the declared array extent.
//! * **Lints**: floating-point combine order under `Split(k)` mappings,
//!   atomic placement order, and disagreeing sibling extents.
//! * **Diagnostics**: stable `MD0xx` codes, severities, a
//!   proven/refuted/unknown verdict lattice, terminal + JSON renderings,
//!   and trace-event emission.
//! * **Sanitizer cross-check**: dynamic confirmation of every `Proven`
//!   verdict against the simulator's recorded write sets.
//!
//! ```
//! use multidim_ir::{ProgramBuilder, ScalarKind, Size, Effect, Expr};
//! use multidim_analyze::{analyze_program, Verdict};
//!
//! let mut b = ProgramBuilder::new("scale");
//! let n = b.sym("N");
//! let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
//! let y = b.output("y", ScalarKind::F32, &[Size::sym(n)]);
//! let root = b.foreach(Size::sym(n), |b, i| {
//!     let v = b.read(x, &[i.into()]) * Expr::lit(2.0);
//!     vec![Effect::Write { cond: None, array: y, idx: vec![Expr::var(i)], value: v }]
//! });
//! let p = b.finish_foreach(root).unwrap();
//! let mut bind = multidim_ir::Bindings::new();
//! bind.bind(n, 1024);
//! let report = analyze_program(&p, &bind);
//! assert!(!report.has_errors());
//! assert_eq!(report.race_free(y), Verdict::Proven);
//! ```

#![warn(missing_docs)]

mod bounds;
mod diag;
mod eval;
mod lint;
mod race;
mod sanitizer;

pub use diag::{ArrayVerdicts, Code, Diagnostic, Report, Severity, Verdict};
pub use lint::lint_mapping;
pub use sanitizer::cross_check;

use multidim_codegen::KernelError;
use multidim_ir::{ArrayId, Bindings, Program};
use std::collections::BTreeMap;

/// Run the mapping-independent analyses (races, bounds, nest lints) over
/// `program` and return the structured report.
pub fn analyze_program(program: &Program, bindings: &Bindings) -> Report {
    let mut diags = Vec::new();
    let mut race_verdicts: BTreeMap<ArrayId, Verdict> = BTreeMap::new();
    let mut bounds_verdicts: BTreeMap<ArrayId, Verdict> = BTreeMap::new();

    race::check(program, bindings, &mut diags, &mut race_verdicts);
    bounds::check(program, bindings, &mut diags, &mut bounds_verdicts);
    lint::nest_lints(program, &mut diags);

    let arrays = program
        .arrays
        .iter()
        .map(|decl| ArrayVerdicts {
            array: decl.id,
            name: decl.name.clone(),
            race_free: race_verdicts
                .get(&decl.id)
                .copied()
                .unwrap_or(Verdict::Proven),
            in_bounds: bounds_verdicts
                .get(&decl.id)
                .copied()
                .unwrap_or(Verdict::Proven),
        })
        .collect();

    Report {
        program: program.name.clone(),
        diagnostics: diags,
        arrays,
    }
}

/// Wrap a structural kernel defect from `codegen::validate` in the
/// diagnostics vocabulary (`MD008`, error).
pub fn kernel_defect(err: &KernelError) -> Diagnostic {
    Diagnostic::new(Code::KERNEL_DEFECT, Severity::Error, err.0.clone())
}

#[cfg(test)]
mod tests;
