//! Static analysis for the multidim pattern IR.
//!
//! The mapping analysis (paper Section IV) derives affine address forms
//! for every access but only *scores* them; this crate turns the same
//! facts into legality and determinism verdicts:
//!
//! * **Race detection**: write-write disjointness of `Foreach` and scatter
//!   effects, proven by solving the affine address maps for index
//!   collisions across pattern instances.
//! * **Bounds proving**: every access's reachable address interval checked
//!   against the declared array extent.
//! * **Lints**: floating-point combine order under `Split(k)` mappings,
//!   atomic placement order, and disagreeing sibling extents.
//! * **Locality analysis**: per-candidate-mapping classification of every
//!   global access (coalesced / strided / broadcast / scattered), proven
//!   shared-memory bank-conflict degrees and per-block footprints, reuse
//!   summaries, and a sound memory-transaction lower bound that prunes the
//!   mapping search ([`locality_of`], [`LocalitySummary`]).
//! * **Diagnostics**: stable `MD0xx` codes, severities, a
//!   proven/refuted/unknown verdict lattice, terminal + JSON renderings,
//!   and trace-event emission.
//! * **Sanitizer cross-check**: dynamic confirmation of every `Proven`
//!   verdict against the simulator's recorded write sets; the locality
//!   stage has an equivalent check ([`locality_cross_check`]) against the
//!   simulator's measured memory counters.
//!
//! # Diagnostic codes
//!
//! The table below is generated from [`CODE_TABLE`] (the single source of
//! truth, kept in sync by a test):
//!
//! | Code | Name | Description |
//! |------|------|-------------|
//! | MD001 | RACE | proven write-write race: two pattern instances store to one address |
//! | MD002 | MAYBE_RACE | possible race: a scatter store whose disjointness cannot be proven |
//! | MD003 | OOB | proven out-of-bounds access |
//! | MD004 | MAYBE_OOB | possible out-of-bounds access (affine but unprovable, or guarded) |
//! | MD005 | SPLIT_NONDET | float reduce combine order depends on a Split(k) mapping |
//! | MD006 | EXTENT_MISMATCH | sibling patterns at one nest level disagree on their extents |
//! | MD007 | ATOMIC_ORDER | atomic float combine order (groupBy/filter placement) is non-deterministic |
//! | MD008 | KERNEL_DEFECT | structural kernel defect reported by codegen::validate |
//! | MD009 | DYNAMIC_INDEX | data-dependent index defeats the static bounds proof |
//! | MD010 | UNCOALESCED | hot global access is provably uncoalesced (strided) under the chosen mapping |
//! | MD011 | BANK_CONFLICT | shared-memory access with a proven bank-conflict degree >= 2 |
//! | MD012 | SMEM_OVERFLOW | proven per-block shared-memory footprint exceeds device capacity |
//! | MD013 | UNEXPLOITED_REUSE | high-reuse read not staged through shared memory |
//! | MD014 | SCATTERED | data-dependent (non-affine) global access: coalescing unprovable |
//! | MD015 | SMEM_PRESSURE | shared-memory footprint above half of capacity limits residency |
//! | MD016 | DYN_ESTIMATE | data-dependent extent: the mapper sizes this level from the workload's estimate |
//!
//! ```
//! use multidim_ir::{ProgramBuilder, ScalarKind, Size, Effect, Expr};
//! use multidim_analyze::{analyze_program, Verdict};
//!
//! let mut b = ProgramBuilder::new("scale");
//! let n = b.sym("N");
//! let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
//! let y = b.output("y", ScalarKind::F32, &[Size::sym(n)]);
//! let root = b.foreach(Size::sym(n), |b, i| {
//!     let v = b.read(x, &[i.into()]) * Expr::lit(2.0);
//!     vec![Effect::Write { cond: None, array: y, idx: vec![Expr::var(i)], value: v }]
//! });
//! let p = b.finish_foreach(root).unwrap();
//! let mut bind = multidim_ir::Bindings::new();
//! bind.bind(n, 1024);
//! let report = analyze_program(&p, &bind);
//! assert!(!report.has_errors());
//! assert_eq!(report.race_free(y), Verdict::Proven);
//! ```

#![warn(missing_docs)]

mod bounds;
mod diag;
mod eval;
mod lint;
mod locality;
mod race;
mod sanitizer;

pub use diag::{ArrayVerdicts, Code, CodeRow, Diagnostic, Report, Severity, Verdict, CODE_TABLE};
pub use lint::lint_mapping;
pub use locality::{
    locality_cross_check, locality_of, AccessClass, AccessLocality, BankProof, LocalityFacts,
    LocalitySummary, ReuseSummary, SmemProof,
};
pub use sanitizer::cross_check;

use multidim_codegen::KernelError;
use multidim_ir::{ArrayId, Bindings, Program};
use std::collections::BTreeMap;

/// Run the mapping-independent analyses (races, bounds, nest lints) over
/// `program` and return the structured report.
pub fn analyze_program(program: &Program, bindings: &Bindings) -> Report {
    let mut diags = Vec::new();
    let mut race_verdicts: BTreeMap<ArrayId, Verdict> = BTreeMap::new();
    let mut bounds_verdicts: BTreeMap<ArrayId, Verdict> = BTreeMap::new();

    race::check(program, bindings, &mut diags, &mut race_verdicts);
    bounds::check(program, bindings, &mut diags, &mut bounds_verdicts);
    lint::nest_lints(program, &mut diags);

    let arrays = program
        .arrays
        .iter()
        .map(|decl| ArrayVerdicts {
            array: decl.id,
            name: decl.name.clone(),
            race_free: race_verdicts
                .get(&decl.id)
                .copied()
                .unwrap_or(Verdict::Proven),
            in_bounds: bounds_verdicts
                .get(&decl.id)
                .copied()
                .unwrap_or(Verdict::Proven),
        })
        .collect();

    Report {
        program: program.name.clone(),
        diagnostics: diags,
        arrays,
    }
}

/// Wrap a structural kernel defect from `codegen::validate` in the
/// diagnostics vocabulary (`MD008`, error).
pub fn kernel_defect(err: &KernelError) -> Diagnostic {
    Diagnostic::new(Code::KERNEL_DEFECT, Severity::Error, err.0.clone())
}

#[cfg(test)]
mod tests;
