//! The paper's running example (Figures 1, 3, 15, 16): `sumRows`,
//! `sumCols`, and their weighted variants.

use crate::data;
use crate::runner::{HostRun, Outcome, WorkloadError};
use multidim::prelude::*;
use multidim_ir::{ArrayId, ReduceOp, SymId};
use std::collections::HashMap;

/// Which of the Figure 1 kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SumKind {
    /// Sum each row (`m mapRows { r => r reduce + }`).
    Rows,
    /// Sum each column.
    Cols,
}

/// `sumRows`/`sumCols` as a pattern program. Returns the program plus the
/// ids needed to bind sizes and provide the matrix.
pub fn sum_program(kind: SumKind) -> (Program, SymId, SymId, ArrayId) {
    let name = match kind {
        SumKind::Rows => "sumRows",
        SumKind::Cols => "sumCols",
    };
    let mut b = ProgramBuilder::new(name);
    let r = b.sym("R");
    let c = b.sym("C");
    let m = b.input("m", ScalarKind::F32, &[Size::sym(r), Size::sym(c)]);
    let root = match kind {
        SumKind::Rows => b.map(Size::sym(r), |b, row| {
            b.reduce(Size::sym(c), ReduceOp::Add, |b, col| {
                b.read(m, &[row.into(), col.into()])
            })
        }),
        SumKind::Cols => b.map(Size::sym(c), |b, col| {
            b.reduce(Size::sym(r), ReduceOp::Add, |b, row| {
                b.read(m, &[row.into(), col.into()])
            })
        }),
    };
    let p = b
        .finish_map(root, "sums", ScalarKind::F32)
        .expect("valid sums program");
    (p, r, c, m)
}

/// Run `sumRows`/`sumCols` on an `rows × cols` matrix under `strategy`.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run_sum(
    kind: SumKind,
    strategy: Strategy,
    rows: usize,
    cols: usize,
) -> Result<Outcome, WorkloadError> {
    let (p, rs, cs, m) = sum_program(kind);
    let mut bind = Bindings::new();
    bind.bind(rs, rows as i64);
    bind.bind(cs, cols as i64);
    let inputs: HashMap<_, _> = [(m, data::matrix(rows, cols, 42))].into_iter().collect();
    let mut run = HostRun::with_strategy(strategy);
    let out = run.launch(&p, &bind, &inputs)?;
    Ok(run.finish(out))
}

/// The Figure 15 variant: multiply a weight vector before reducing. The
/// `zipWith` creates a per-iteration temporary, exercising the Section V-A
/// preallocation machinery when fusion is disabled.
pub fn sum_weighted_program(kind: SumKind) -> (Program, SymId, SymId, ArrayId, ArrayId) {
    let name = match kind {
        SumKind::Rows => "sumWeightedRows",
        SumKind::Cols => "sumWeightedCols",
    };
    let mut b = ProgramBuilder::new(name);
    let r = b.sym("R");
    let c = b.sym("C");
    let m = b.input("m", ScalarKind::F32, &[Size::sym(r), Size::sym(c)]);
    // Weight vector spans the reduced dimension.
    let (outer, inner) = match kind {
        SumKind::Rows => (Size::sym(r), Size::sym(c)),
        SumKind::Cols => (Size::sym(c), Size::sym(r)),
    };
    let v = b.input("v", ScalarKind::F32, std::slice::from_ref(&inner));
    let root = b.map(outer, |b, o| {
        // temp = slice zipWith v { (a, b) => a * b }
        let inner2 = inner.clone();
        let temp = b.map(inner.clone(), |b, i| {
            let elem = match kind {
                SumKind::Rows => b.read(m, &[o.into(), i.into()]),
                SumKind::Cols => b.read(m, &[i.into(), o.into()]),
            };
            elem * b.read(v, &[i.into()])
        });
        b.let_(temp, |b, t| {
            b.reduce(inner2, ReduceOp::Add, |b, j| b.read_var(t, &[j.into()]))
        })
    });
    let p = b
        .finish_map(root, "sums", ScalarKind::F32)
        .expect("valid weighted sums program");
    (p, r, c, m, v)
}

/// Which Figure 16 configuration to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocMode {
    /// Preallocated temporary with the mapping-chosen layout (Section V-A).
    PreallocOptimizedLayout,
    /// Preallocated with a fixed row-major layout ("w/o layout opt").
    PreallocRowMajor,
    /// Per-thread device malloc (the unoptimized baseline).
    Malloc,
}

/// Run the Figure 16 microbenchmark (fusion disabled so the temporary is
/// really materialized).
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run_sum_weighted(
    kind: SumKind,
    mode: AllocMode,
    rows: usize,
    cols: usize,
) -> Result<Outcome, WorkloadError> {
    let (p, rs, cs, m, v) = sum_weighted_program(kind);
    let mut bind = Bindings::new();
    bind.bind(rs, rows as i64);
    bind.bind(cs, cols as i64);
    let weights_len = match kind {
        SumKind::Rows => cols,
        SumKind::Cols => rows,
    };
    let inputs: HashMap<_, _> = [
        (m, data::matrix(rows, cols, 42)),
        (v, data::vector(weights_len, 7)),
    ]
    .into_iter()
    .collect();

    let options = match mode {
        AllocMode::PreallocOptimizedLayout => CodegenOptions::default(),
        AllocMode::PreallocRowMajor => CodegenOptions {
            layout: LayoutPolicy::ForceRowMajor,
            ..CodegenOptions::default()
        },
        AllocMode::Malloc => CodegenOptions {
            layout: LayoutPolicy::ForceRowMajor,
            device_malloc: true,
            ..CodegenOptions::default()
        },
    };
    let compiler = Compiler::new().fusion(false).options(options);
    let mut run = HostRun::new(compiler);
    let out = run.launch(&p, &bind, &inputs)?;
    Ok(run.finish(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_all_strategies_agree() {
        let mut checks = Vec::new();
        for kind in [SumKind::Rows, SumKind::Cols] {
            for s in [
                Strategy::MultiDim,
                Strategy::OneD,
                Strategy::ThreadBlockThread,
                Strategy::WarpBased,
            ] {
                let o = run_sum(kind, s, 33, 65).unwrap();
                checks.push(o.checksum);
            }
        }
        // Same data: all rows-strategies agree, all cols-strategies agree,
        // and the two kinds agree with each other (total sum identical).
        for w in checks.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-6, "checksums diverge: {checks:?}");
        }
    }

    #[test]
    fn multidim_beats_bad_fixed_mapping_on_skew() {
        // sumRows with long rows: 1D must be much slower (few threads,
        // strided access).
        let best = run_sum(SumKind::Rows, Strategy::MultiDim, 64, 16384).unwrap();
        let one_d = run_sum(SumKind::Rows, Strategy::OneD, 64, 16384).unwrap();
        assert!(
            one_d.gpu_seconds > 3.0 * best.gpu_seconds,
            "1D {} vs MultiDim {}",
            one_d.gpu_seconds,
            best.gpu_seconds
        );
    }

    #[test]
    fn weighted_sums_verify() {
        for kind in [SumKind::Rows, SumKind::Cols] {
            for mode in [
                AllocMode::PreallocOptimizedLayout,
                AllocMode::PreallocRowMajor,
                AllocMode::Malloc,
            ] {
                let (p, rs, cs, m, v) = sum_weighted_program(kind);
                let mut bind = Bindings::new();
                bind.bind(rs, 17);
                bind.bind(cs, 33);
                let wl = match kind {
                    SumKind::Rows => 33,
                    SumKind::Cols => 17,
                };
                let inputs: HashMap<_, _> =
                    [(m, data::matrix(17, 33, 1)), (v, data::vector(wl, 2))]
                        .into_iter()
                        .collect();
                let options = match mode {
                    AllocMode::PreallocOptimizedLayout => CodegenOptions::default(),
                    AllocMode::PreallocRowMajor => CodegenOptions {
                        layout: LayoutPolicy::ForceRowMajor,
                        ..CodegenOptions::default()
                    },
                    AllocMode::Malloc => CodegenOptions {
                        layout: LayoutPolicy::ForceRowMajor,
                        device_malloc: true,
                        ..CodegenOptions::default()
                    },
                };
                let mut run =
                    HostRun::new(Compiler::new().fusion(false).options(options)).verifying();
                run.launch(&p, &bind, &inputs).unwrap();
            }
        }
    }

    #[test]
    fn malloc_is_slowest_layout_matters() {
        let n = (256, 256);
        let opt =
            run_sum_weighted(SumKind::Cols, AllocMode::PreallocOptimizedLayout, n.0, n.1).unwrap();
        let row = run_sum_weighted(SumKind::Cols, AllocMode::PreallocRowMajor, n.0, n.1).unwrap();
        let mal = run_sum_weighted(SumKind::Cols, AllocMode::Malloc, n.0, n.1).unwrap();
        assert!(
            row.gpu_seconds > opt.gpu_seconds,
            "row {} opt {}",
            row.gpu_seconds,
            opt.gpu_seconds
        );
        assert!(
            mal.gpu_seconds > row.gpu_seconds,
            "mal {} row {}",
            mal.gpu_seconds,
            row.gpu_seconds
        );
    }
}
