//! Hand-written kernel-IR baselines.
//!
//! These stand in for the *hand-optimized CUDA* the paper compares against
//! (Figure 12). They are built directly in the kernel IR — no pattern DSL,
//! no mapping analysis — and express the expert tricks the paper credits
//! manual code with:
//!
//! * [`nn_manual`] — raw-pointer-style flat indexing (no per-access index
//!   arithmetic beyond the minimum);
//! * [`pathfinder_fused`] — several DP rows fused into one kernel through
//!   shared memory, trading halo recomputation for fewer launches and
//!   main-memory passes (Section VI-C's Pathfinder discussion);
//! * [`lud_blocked`] — right-looking blocked LU whose trailing update is a
//!   shared-memory tiled GEMM (Section VI-C's LUD discussion).

use crate::data;

use crate::runner::{Outcome, WorkloadError};
use multidim::prelude::*;
use multidim_codegen::{
    Axis, BufId, BufferDecl, BufferInit, KExpr, Kernel, KernelProgram, SmemDecl, Stmt,
};
use multidim_ir::{ArrayId, Bindings as IrBindings, Size as IrSize};
use std::collections::HashMap;

fn imm(v: i64) -> KExpr {
    KExpr::imm(v)
}

fn local(l: u32) -> KExpr {
    KExpr::Local(l)
}

fn clamp0(e: KExpr, hi: KExpr) -> KExpr {
    KExpr::Bin(
        multidim_ir::BinOp::Min,
        Box::new(KExpr::Bin(
            multidim_ir::BinOp::Max,
            Box::new(e),
            Box::new(imm(0)),
        )),
        Box::new(hi),
    )
}

fn min3(a: KExpr, b: KExpr, c: KExpr) -> KExpr {
    KExpr::Bin(
        multidim_ir::BinOp::Min,
        Box::new(KExpr::Bin(
            multidim_ir::BinOp::Min,
            Box::new(a),
            Box::new(b),
        )),
        Box::new(c),
    )
}

/// Run a hand-built kernel program on the simulator.
fn simulate(
    kp: &KernelProgram,
    inputs: &HashMap<ArrayId, Vec<f64>>,
) -> Result<(HashMap<ArrayId, Vec<f64>>, f64), WorkloadError> {
    let gpu = GpuSpec::tesla_k20c();
    let sim = multidim_sim::run_program(kp, &gpu, &IrBindings::new(), inputs)
        .map_err(|e| WorkloadError(e.to_string()))?;
    Ok((sim.arrays, sim.total_seconds))
}

// ---------------------------------------------------------------------
// Nearest Neighbor
// ---------------------------------------------------------------------

/// Hand-written NN: one thread per record, flat float4-style addressing.
pub fn nn_manual(n: usize) -> Result<Outcome, WorkloadError> {
    let records = ArrayId(0);
    let out = ArrayId(1);
    let i = 0u32;
    let body = vec![
        Stmt::Assign {
            dst: i,
            value: KExpr::global_tid(Axis::X),
        },
        Stmt::If {
            cond: KExpr::lt(local(i), imm(n as i64)),
            then: vec![
                Stmt::Assign {
                    dst: 1,
                    value: KExpr::sub(
                        KExpr::Load {
                            buf: BufId(0),
                            idx: Box::new(KExpr::mul(local(i), imm(2))),
                        },
                        KExpr::Imm(30.0),
                    ),
                },
                Stmt::Assign {
                    dst: 2,
                    value: KExpr::sub(
                        KExpr::Load {
                            buf: BufId(0),
                            idx: Box::new(KExpr::add(KExpr::mul(local(i), imm(2)), imm(1))),
                        },
                        KExpr::Imm(-90.0),
                    ),
                },
                Stmt::Store {
                    buf: BufId(1),
                    idx: local(i),
                    value: KExpr::Un(
                        multidim_ir::UnOp::Sqrt,
                        Box::new(KExpr::add(
                            KExpr::mul(local(1), local(1)),
                            KExpr::mul(local(2), local(2)),
                        )),
                    ),
                },
            ],
            els: vec![],
        },
    ];
    let kp = KernelProgram {
        name: "nn_manual".into(),
        buffers: vec![
            BufferDecl {
                name: "records".into(),
                elem_bytes: 4,
                len: IrSize::from(2 * n as i64),
                init: BufferInit::FromArray(records),
                array: Some(records),
            },
            BufferDecl {
                name: "distances".into(),
                elem_bytes: 4,
                len: IrSize::from(n as i64),
                init: BufferInit::Zero,
                array: Some(out),
            },
        ],
        kernels: vec![Kernel {
            name: "nn_manual".into(),
            grid: [
                IrSize::from((n as i64 + 255) / 256),
                IrSize::from(1),
                IrSize::from(1),
            ],
            block: [256, 1, 1],
            smem: vec![],
            locals: 3,
            body,
        }],
        children: vec![],
        notes: vec![],
    };
    let recs: Vec<f64> = data::matrix(n, 2, 11)
        .iter()
        .map(|v| v * 180.0 - 90.0)
        .collect();
    let inputs: HashMap<_, _> = [(records, recs)].into_iter().collect();
    let (outputs, seconds) = simulate(&kp, &inputs)?;
    let checksum = outputs.values().flat_map(|v| v.iter()).sum();
    Ok(Outcome {
        gpu_seconds: seconds,
        launches: 1,
        checksum,
        outputs,
        metrics: Vec::new(),
    })
}

// ---------------------------------------------------------------------
// Pathfinder (fused rows)
// ---------------------------------------------------------------------

/// Hand-written Pathfinder: `p` DP rows per kernel, staged in shared
/// memory with a `p`-wide halo (Rodinia's `dynproc_kernel`).
pub fn pathfinder_fused(rows: usize, cols: usize, p: usize) -> Result<Outcome, WorkloadError> {
    const TILE: i64 = 256;
    assert!(p >= 1 && (2 * p as i64) < TILE, "halo must fit the tile");
    let wall_id = ArrayId(0);
    let src_id = ArrayId(1);
    let dst_id = ArrayId(2);

    let wall = data::matrix(rows, cols, 6);
    let mut costs: Vec<f64> = wall[..cols].to_vec();
    let mut total = 0.0f64;
    let mut launches = 0usize;

    let mut r = 1usize;
    while r < rows {
        let steps = p.min(rows - r);
        let kp = fused_kernel(rows, cols, r, steps, TILE, wall_id, src_id, dst_id);
        let inputs: HashMap<_, _> = [(wall_id, wall.clone()), (src_id, costs.clone())]
            .into_iter()
            .collect();
        let (outputs, secs) = simulate(&kp, &inputs)?;
        total += secs;
        launches += 1;
        costs = outputs[&dst_id].clone();
        r += steps;
    }
    let checksum = costs.iter().sum();
    let outputs: HashMap<_, _> = [(dst_id, costs)].into_iter().collect();
    Ok(Outcome {
        gpu_seconds: total,
        launches,
        checksum,
        outputs,
        metrics: Vec::new(),
    })
}

/// Build the fused kernel for `steps` rows starting at row `r0`.
#[allow(clippy::too_many_arguments)]
fn fused_kernel(
    rows: usize,
    cols: usize,
    r0: usize,
    steps: usize,
    tile: i64,
    wall_id: ArrayId,
    src_id: ArrayId,
    dst_id: ArrayId,
) -> KernelProgram {
    let halo = steps as i64;
    let len = tile + 2 * halo; // smem slots
    let coln = cols as i64;
    // Locals: 0 = scratch pos, 1 = global col for pos, 2 = scratch value.
    let pos_of = |load_i: i64| KExpr::add(KExpr::Tid(Axis::X), imm(load_i * tile));
    let gcol_of = |pos: KExpr| {
        clamp0(
            KExpr::add(
                KExpr::sub(KExpr::mul(KExpr::Bid(Axis::X), imm(tile)), imm(halo)),
                pos,
            ),
            imm(coln - 1),
        )
    };

    let mut body = Vec::new();
    // Stage the src chunk (+halo) into smem 0.
    for load_i in 0..2 {
        let pos = pos_of(load_i);
        body.push(Stmt::If {
            cond: KExpr::lt(pos.clone(), imm(len)),
            then: vec![Stmt::SmemStore {
                arr: 0,
                idx: pos.clone(),
                value: KExpr::Load {
                    buf: BufId(1),
                    idx: Box::new(gcol_of(pos)),
                },
            }],
            els: vec![],
        });
    }
    body.push(Stmt::Sync);

    // `steps` unrolled DP iterations, ping-ponging between smem 0 and 1.
    for s in 0..steps {
        let (cur, next) = ((s % 2) as u32, ((s + 1) % 2) as u32);
        let row = (r0 + s) as i64;
        let mut step_stmts = Vec::new();
        for load_i in 0..2 {
            let pos = pos_of(load_i);
            let interior = KExpr::and(
                KExpr::ge(pos.clone(), imm(1)),
                KExpr::lt(pos.clone(), imm(len - 1)),
            );
            let best = min3(
                KExpr::SmemLoad {
                    arr: cur,
                    idx: Box::new(KExpr::sub(pos.clone(), imm(1))),
                },
                KExpr::SmemLoad {
                    arr: cur,
                    idx: Box::new(pos.clone()),
                },
                KExpr::SmemLoad {
                    arr: cur,
                    idx: Box::new(KExpr::add(pos.clone(), imm(1))),
                },
            );
            let wall_v = KExpr::Load {
                buf: BufId(0),
                idx: Box::new(KExpr::add(imm(row * coln), gcol_of(pos.clone()))),
            };
            step_stmts.push(Stmt::If {
                cond: interior,
                then: vec![Stmt::SmemStore {
                    arr: next,
                    idx: pos.clone(),
                    value: KExpr::add(wall_v, best),
                }],
                els: vec![Stmt::If {
                    cond: KExpr::lt(pos.clone(), imm(len)),
                    then: vec![Stmt::SmemStore {
                        arr: next,
                        idx: pos.clone(),
                        value: KExpr::SmemLoad {
                            arr: cur,
                            idx: Box::new(pos.clone()),
                        },
                    }],
                    els: vec![],
                }],
            });
        }
        body.extend(step_stmts);
        body.push(Stmt::Sync);
    }

    // Write the block's tile of final costs.
    let final_arr = (steps % 2) as u32;
    let out_col = KExpr::add(
        KExpr::mul(KExpr::Bid(Axis::X), imm(tile)),
        KExpr::Tid(Axis::X),
    );
    body.push(Stmt::If {
        cond: KExpr::lt(out_col.clone(), imm(coln)),
        then: vec![Stmt::Store {
            buf: BufId(2),
            idx: out_col,
            value: KExpr::SmemLoad {
                arr: final_arr,
                idx: Box::new(KExpr::add(KExpr::Tid(Axis::X), imm(halo))),
            },
        }],
        els: vec![],
    });

    KernelProgram {
        name: "pathfinder_fused".into(),
        buffers: vec![
            BufferDecl {
                name: "wall".into(),
                elem_bytes: 4,
                len: IrSize::from(rows as i64 * coln),
                init: BufferInit::FromArray(wall_id),
                array: Some(wall_id),
            },
            BufferDecl {
                name: "src".into(),
                elem_bytes: 4,
                len: IrSize::from(coln),
                init: BufferInit::FromArray(src_id),
                array: Some(src_id),
            },
            BufferDecl {
                name: "dst".into(),
                elem_bytes: 4,
                len: IrSize::from(coln),
                init: BufferInit::Zero,
                array: Some(dst_id),
            },
        ],
        kernels: vec![Kernel {
            name: format!("dynproc_{steps}rows"),
            grid: [
                IrSize::from((coln + tile - 1) / tile),
                IrSize::from(1),
                IrSize::from(1),
            ],
            block: [tile as u32, 1, 1],
            smem: vec![
                SmemDecl {
                    name: "prev".into(),
                    len: len as u32,
                },
                SmemDecl {
                    name: "next".into(),
                    len: len as u32,
                },
            ],
            locals: 1,
            body,
        }],
        children: vec![],
        notes: vec![],
    }
}

// ---------------------------------------------------------------------
// LUD (blocked, tiled-GEMM trailing update)
// ---------------------------------------------------------------------

/// Hand-written blocked LU: one *panel-factor* kernel per 16-wide panel
/// (a single cooperating block), one *U12 solve* kernel, and a tiled-GEMM
/// trailing update — three launches per 16 pivots instead of the naive
/// code's two per pivot (the expert structure Rodinia's `lud_cuda` uses).
pub fn lud_blocked(n: usize) -> Result<Outcome, WorkloadError> {
    const B: usize = 16;
    let mut m = data::spd_matrix(n, 8);
    let mut total = 0.0f64;
    let mut launches = 0usize;

    let mut kb = 0usize;
    while kb < n - 1 {
        let pend = (kb + B).min(n);
        for kp in [
            Some(panel_factor_kernel(n, kb, pend)),
            (pend < n).then(|| u12_solve_kernel(n, kb, pend)),
            (pend < n).then(|| gemm_update_kernel(n, kb, pend)),
        ]
        .into_iter()
        .flatten()
        {
            let inputs: HashMap<_, _> = [(ArrayId(0), m.clone())].into_iter().collect();
            let (outputs, secs) = simulate(&kp, &inputs)?;
            total += secs;
            launches += 1;
            m = outputs[&ArrayId(0)].clone();
        }
        kb = pend;
    }
    let checksum = m.iter().sum();
    let outputs: HashMap<_, _> = [(ArrayId(0), m)].into_iter().collect();
    Ok(Outcome {
        gpu_seconds: total,
        launches,
        checksum,
        outputs,
        metrics: Vec::new(),
    })
}

fn matrix_buffer(n: usize) -> Vec<BufferDecl> {
    vec![BufferDecl {
        name: "m".into(),
        elem_bytes: 4,
        len: IrSize::from((n * n) as i64),
        init: BufferInit::FromArray(ArrayId(0)),
        array: Some(ArrayId(0)),
    }]
}

/// One 16×16 block factorizes the panel columns `kb..pend` over the full
/// trailing height: threads are (panel column, row-phase), so warp lanes
/// walk *along* rows and every access coalesces — the layout trick
/// Rodinia's perimeter kernels use. Per pivot: scale the column, then
/// update the panel-width submatrix, synchronizing between pivots.
fn panel_factor_kernel(n: usize, kb: usize, pend: usize) -> KernelProgram {
    let nn = n as i64;
    const B: i64 = 16;
    let kbi = kb as i64;
    // Locals: 0 = k_rel (uniform loop), 1 = r (row loop), 2 = k abs.
    let k_abs = KExpr::add(imm(kbi), local(0));
    let col = KExpr::add(imm(kbi), KExpr::Tid(Axis::X));
    let row_start = KExpr::add(KExpr::add(k_abs.clone(), imm(1)), KExpr::Tid(Axis::Y));
    let addr = |r: KExpr, c: KExpr| KExpr::add(KExpr::mul(r, imm(nn)), c);
    let body = vec![Stmt::For {
        var: 0,
        start: imm(0),
        end: imm((pend.min(n - 1) - kb) as i64),
        step: imm(1),
        body: vec![
            // Scale the pivot column (only the tx == k_rel lane column).
            Stmt::For {
                var: 1,
                start: row_start.clone(),
                end: imm(nn),
                step: imm(B),
                body: vec![Stmt::If {
                    cond: KExpr::eq(KExpr::Tid(Axis::X), local(0)),
                    then: vec![Stmt::Store {
                        buf: BufId(0),
                        idx: addr(local(1), k_abs.clone()),
                        value: KExpr::div(
                            KExpr::Load {
                                buf: BufId(0),
                                idx: Box::new(addr(local(1), k_abs.clone())),
                            },
                            KExpr::Load {
                                buf: BufId(0),
                                idx: Box::new(addr(k_abs.clone(), k_abs.clone())),
                            },
                        ),
                    }],
                    els: vec![],
                }],
            },
            Stmt::Sync,
            // Panel-width update: each thread owns column kb+tx of its rows.
            Stmt::For {
                var: 1,
                start: row_start.clone(),
                end: imm(nn),
                step: imm(B),
                body: vec![Stmt::If {
                    cond: KExpr::and(
                        KExpr::Bin(
                            multidim_ir::BinOp::Gt,
                            Box::new(KExpr::Tid(Axis::X)),
                            Box::new(local(0)),
                        ),
                        // Partial final panels are narrower than the block.
                        KExpr::lt(KExpr::Tid(Axis::X), imm((pend - kb) as i64)),
                    ),
                    then: vec![Stmt::Store {
                        buf: BufId(0),
                        idx: addr(local(1), col.clone()),
                        value: KExpr::sub(
                            KExpr::Load {
                                buf: BufId(0),
                                idx: Box::new(addr(local(1), col.clone())),
                            },
                            KExpr::mul(
                                KExpr::Load {
                                    buf: BufId(0),
                                    idx: Box::new(addr(local(1), k_abs.clone())),
                                },
                                KExpr::Load {
                                    buf: BufId(0),
                                    idx: Box::new(addr(k_abs.clone(), col.clone())),
                                },
                            ),
                        ),
                    }],
                    els: vec![],
                }],
            },
            Stmt::Sync,
        ],
    }];
    KernelProgram {
        name: "lud_panel_factor".into(),
        buffers: matrix_buffer(n),
        kernels: vec![Kernel {
            name: "panel_factor".into(),
            grid: [IrSize::from(1), IrSize::from(1), IrSize::from(1)],
            block: [B as u32, B as u32, 1],
            smem: vec![],
            locals: 2,
            body,
        }],
        children: vec![],
        notes: vec![],
    }
}

/// Triangular solve for the U12 block: one thread per trailing column `j`,
/// applying the panel pivots in order.
fn u12_solve_kernel(n: usize, kb: usize, pend: usize) -> KernelProgram {
    let nn = n as i64;
    const BT: i64 = 256;
    let rem = nn - pend as i64;
    // Locals: 0 = j (column), 1 = k, 2 = r.
    let j = KExpr::add(imm(pend as i64), KExpr::global_tid(Axis::X));
    let body = vec![
        Stmt::Assign {
            dst: 0,
            value: j.clone(),
        },
        Stmt::If {
            cond: KExpr::lt(local(0), imm(nn)),
            then: vec![Stmt::For {
                var: 1,
                start: imm(kb as i64),
                end: imm(pend as i64 - 1),
                step: imm(1),
                body: vec![Stmt::For {
                    var: 2,
                    start: KExpr::add(local(1), imm(1)),
                    end: imm(pend as i64),
                    step: imm(1),
                    body: vec![Stmt::Store {
                        buf: BufId(0),
                        idx: KExpr::add(KExpr::mul(local(2), imm(nn)), local(0)),
                        value: KExpr::sub(
                            KExpr::Load {
                                buf: BufId(0),
                                idx: Box::new(KExpr::add(KExpr::mul(local(2), imm(nn)), local(0))),
                            },
                            KExpr::mul(
                                KExpr::Load {
                                    buf: BufId(0),
                                    idx: Box::new(KExpr::add(
                                        KExpr::mul(local(2), imm(nn)),
                                        local(1),
                                    )),
                                },
                                KExpr::Load {
                                    buf: BufId(0),
                                    idx: Box::new(KExpr::add(
                                        KExpr::mul(local(1), imm(nn)),
                                        local(0),
                                    )),
                                },
                            ),
                        ),
                    }],
                }],
            }],
            els: vec![],
        },
    ];
    KernelProgram {
        name: "lud_u12".into(),
        buffers: matrix_buffer(n),
        kernels: vec![Kernel {
            name: "u12_solve".into(),
            grid: [
                IrSize::from((rem + BT - 1) / BT),
                IrSize::from(1),
                IrSize::from(1),
            ],
            block: [BT as u32, 1, 1],
            smem: vec![],
            locals: 3,
            body,
        }],
        children: vec![],
        notes: vec![],
    }
}

/// `m[i][j] -= Σ_{k∈[kb,pend)} m[i][k]·m[k][j]` for `i, j ≥ pend`, with
/// 16×16 shared-memory tiles.
fn gemm_update_kernel(n: usize, kb: usize, pend: usize) -> KernelProgram {
    const T: i64 = 16;
    let nn = n as i64;
    let kb = kb as i64;
    let pend = pend as i64;
    let rem = nn - pend; // trailing size
    let kw = pend - kb; // panel width (≤ 16)

    // Locals: 0=i, 1=j, 2=acc, 3=kk (loop var).
    let i_e = KExpr::add(
        imm(pend),
        KExpr::add(KExpr::mul(KExpr::Bid(Axis::Y), imm(T)), KExpr::Tid(Axis::Y)),
    );
    let j_e = KExpr::add(
        imm(pend),
        KExpr::add(KExpr::mul(KExpr::Bid(Axis::X), imm(T)), KExpr::Tid(Axis::X)),
    );
    let clamp_n = |e: KExpr| clamp0(e, imm(nn - 1));

    let slot = KExpr::add(KExpr::mul(KExpr::Tid(Axis::Y), imm(T)), KExpr::Tid(Axis::X));
    let body = vec![
        Stmt::Assign {
            dst: 0,
            value: clamp_n(i_e.clone()),
        },
        Stmt::Assign {
            dst: 1,
            value: clamp_n(j_e.clone()),
        },
        // sA[ty][tx] = m[i][kb+tx] (clamped k-column), sB[ty][tx] = m[kb+ty][j].
        Stmt::SmemStore {
            arr: 0,
            idx: slot.clone(),
            value: KExpr::Load {
                buf: BufId(0),
                idx: Box::new(KExpr::add(
                    KExpr::mul(local(0), imm(nn)),
                    clamp0(KExpr::add(imm(kb), KExpr::Tid(Axis::X)), imm(nn - 1)),
                )),
            },
        },
        Stmt::SmemStore {
            arr: 1,
            idx: slot.clone(),
            value: KExpr::Load {
                buf: BufId(0),
                idx: Box::new(KExpr::add(
                    KExpr::mul(
                        clamp0(KExpr::add(imm(kb), KExpr::Tid(Axis::Y)), imm(nn - 1)),
                        imm(nn),
                    ),
                    local(1),
                )),
            },
        },
        Stmt::Sync,
        Stmt::Assign {
            dst: 2,
            value: KExpr::Imm(0.0),
        },
        Stmt::For {
            var: 3,
            start: imm(0),
            end: imm(kw),
            step: imm(1),
            body: vec![Stmt::Assign {
                dst: 2,
                value: KExpr::add(
                    local(2),
                    KExpr::mul(
                        KExpr::SmemLoad {
                            arr: 0,
                            idx: Box::new(KExpr::add(
                                KExpr::mul(KExpr::Tid(Axis::Y), imm(T)),
                                local(3),
                            )),
                        },
                        KExpr::SmemLoad {
                            arr: 1,
                            idx: Box::new(KExpr::add(
                                KExpr::mul(local(3), imm(T)),
                                KExpr::Tid(Axis::X),
                            )),
                        },
                    ),
                ),
            }],
        },
        Stmt::If {
            cond: KExpr::and(KExpr::lt(i_e, imm(nn)), KExpr::lt(j_e, imm(nn))),
            then: vec![Stmt::Store {
                buf: BufId(0),
                idx: KExpr::add(KExpr::mul(local(0), imm(nn)), local(1)),
                value: KExpr::sub(
                    KExpr::Load {
                        buf: BufId(0),
                        idx: Box::new(KExpr::add(KExpr::mul(local(0), imm(nn)), local(1))),
                    },
                    local(2),
                ),
            }],
            els: vec![],
        },
    ];

    let blocks = (rem + T - 1) / T;
    KernelProgram {
        name: "lud_gemm_update".into(),
        buffers: matrix_buffer(n),
        kernels: vec![Kernel {
            name: "gemm_update".into(),
            grid: [IrSize::from(blocks), IrSize::from(blocks), IrSize::from(1)],
            block: [T as u32, T as u32, 1],
            smem: vec![
                SmemDecl {
                    name: "sA".into(),
                    len: (T * T) as u32,
                },
                SmemDecl {
                    name: "sB".into(),
                    len: (T * T) as u32,
                },
            ],
            locals: 4,
            body,
        }],
        children: vec![],
        notes: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rodinia::{lud, pathfinder};

    #[test]
    fn nn_manual_matches_generated() {
        let manual = nn_manual(500).unwrap();
        let generated = crate::rodinia::nn::run(Strategy::MultiDim, 500).unwrap();
        assert!(
            (manual.checksum - generated.checksum).abs() < 1e-6 * manual.checksum.abs(),
            "{} vs {}",
            manual.checksum,
            generated.checksum
        );
        // Manual code is never slower.
        assert!(manual.gpu_seconds <= generated.gpu_seconds * 1.05);
    }

    #[test]
    fn pathfinder_fused_matches_reference() {
        let (rows, cols) = (13, 700);
        let o = pathfinder_fused(rows, cols, 4).unwrap();
        let want = pathfinder::reference(rows, cols);
        let got = &o.outputs[&ArrayId(2)];
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!((g - w).abs() < 1e-9, "[{i}] {g} vs {w}");
        }
    }

    #[test]
    fn pathfinder_fused_launches_fewer_kernels() {
        let o = pathfinder_fused(17, 512, 4).unwrap();
        assert_eq!(o.launches, 4); // 16 steps / 4 per kernel
    }

    #[test]
    fn lud_blocked_matches_reference() {
        let n = 40;
        let o = lud_blocked(n).unwrap();
        let want = lud::reference(n);
        let got = &o.outputs[&ArrayId(0)];
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!((g - w).abs() < 1e-6 * w.abs().max(1.0), "[{i}] {g} vs {w}");
        }
    }
}
