//! Shared execution helpers for the benchmark applications.
//!
//! Every workload in this crate reduces to a *host program*: a sequence of
//! pattern-program launches with data flowing between them. [`HostRun`]
//! drives the `multidim` pipeline for each launch (compiling once per
//! distinct program), accumulates simulated GPU time, and can verify every
//! intermediate against the reference interpreter.

use multidim::prelude::*;
use multidim::{CompileError, RunError};
use multidim_ir::{ArrayId, InterpError};
use multidim_sim::RunMetrics;
use std::collections::HashMap;
use std::fmt;

/// A workload execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadError(pub String);

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "workload error: {}", self.0)
    }
}

impl std::error::Error for WorkloadError {}

impl From<CompileError> for WorkloadError {
    fn from(e: CompileError) -> Self {
        WorkloadError(e.to_string())
    }
}

impl From<RunError> for WorkloadError {
    fn from(e: RunError) -> Self {
        WorkloadError(e.to_string())
    }
}

impl From<InterpError> for WorkloadError {
    fn from(e: InterpError) -> Self {
        WorkloadError(e.to_string())
    }
}

/// Outcome of a workload run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Total simulated GPU seconds across every launch.
    pub gpu_seconds: f64,
    /// Number of kernel launches performed.
    pub launches: usize,
    /// A checksum over the final outputs (for regression tests).
    pub checksum: f64,
    /// Final outputs of the last step.
    pub outputs: HashMap<ArrayId, Vec<f64>>,
    /// Machine-readable per-launch metrics (one [`RunMetrics`] per
    /// [`HostRun::launch`]; empty for hand-written kernel baselines).
    pub metrics: Vec<RunMetrics>,
}

/// Drives a sequence of launches under one compiler configuration.
pub struct HostRun {
    compiler: Compiler,
    /// When set, every launch's outputs are compared against the reference
    /// interpreter (used by tests; expensive).
    pub verify: bool,
    gpu_seconds: f64,
    launches: usize,
    metrics: Vec<RunMetrics>,
}

impl HostRun {
    /// Start a host run under `compiler`'s configuration.
    pub fn new(compiler: Compiler) -> Self {
        HostRun {
            compiler,
            verify: false,
            gpu_seconds: 0.0,
            launches: 0,
            metrics: Vec::new(),
        }
    }

    /// A host run for `strategy` with default settings.
    pub fn with_strategy(strategy: Strategy) -> Self {
        HostRun::new(Compiler::new().strategy(strategy))
    }

    /// Enable per-launch verification against the interpreter.
    pub fn verifying(mut self) -> Self {
        self.verify = true;
        self
    }

    /// Compile and run one program; returns its outputs.
    ///
    /// # Errors
    ///
    /// Propagates compile/run failures and verification mismatches.
    pub fn launch(
        &mut self,
        program: &Program,
        bindings: &Bindings,
        inputs: &HashMap<ArrayId, Vec<f64>>,
    ) -> Result<HashMap<ArrayId, Vec<f64>>, WorkloadError> {
        let exe = self.compiler.compile(program, bindings)?;
        let report = exe.run(inputs)?;
        self.gpu_seconds += report.gpu_seconds;
        self.launches += exe.kernels.kernels.len();
        self.metrics.push(exe.metrics(&report));
        if self.verify {
            verify_outputs(program, bindings, inputs, &report.outputs)?;
        }
        Ok(report.outputs)
    }

    /// Accumulated simulated GPU time.
    pub fn gpu_seconds(&self) -> f64 {
        self.gpu_seconds
    }

    /// Kernel launches so far.
    pub fn launches(&self) -> usize {
        self.launches
    }

    /// Charge additional simulated time (e.g. a hand-written kernel or a
    /// PCIe transfer).
    pub fn charge_seconds(&mut self, seconds: f64) {
        self.gpu_seconds += seconds;
    }

    /// Wrap up with a checksum of `outputs`.
    pub fn finish(self, outputs: HashMap<ArrayId, Vec<f64>>) -> Outcome {
        let checksum = outputs.values().flat_map(|v| v.iter()).sum();
        Outcome {
            gpu_seconds: self.gpu_seconds,
            launches: self.launches,
            checksum,
            outputs,
            metrics: self.metrics,
        }
    }
}

/// Compare simulated outputs with the reference interpreter, element-wise
/// within a tolerance (reductions reassociate).
pub fn verify_outputs(
    program: &Program,
    bindings: &Bindings,
    inputs: &HashMap<ArrayId, Vec<f64>>,
    got: &HashMap<ArrayId, Vec<f64>>,
) -> Result<(), WorkloadError> {
    let expect = multidim_ir::interpret(program, bindings, inputs)?;
    let unordered = matches!(program.root.kind, multidim_ir::PatternKind::Filter { .. });
    for (id, data) in got {
        let want = &expect.array(*id).data;
        if unordered && Some(*id) == program.output {
            // Atomic compaction permutes filter output; compare the kept
            // prefix as multisets.
            let n = expect.filter_count.unwrap_or(0);
            let mut a: Vec<f64> = data[..n].to_vec();
            let mut b: Vec<f64> = want[..n].to_vec();
            a.sort_by(f64::total_cmp);
            b.sort_by(f64::total_cmp);
            if a != b {
                return Err(WorkloadError(format!(
                    "`{}`: filter outputs differ as multisets",
                    program.name
                )));
            }
            continue;
        }
        if data.len() != want.len() {
            return Err(WorkloadError(format!(
                "`{}` array {id:?}: length {} vs reference {}",
                program.name,
                data.len(),
                want.len()
            )));
        }
        for (i, (g, w)) in data.iter().zip(want).enumerate() {
            let tol = 1e-6 * w.abs().max(1.0);
            if (g - w).abs() > tol {
                return Err(WorkloadError(format!(
                    "`{}` array {id:?} [{i}]: {g} vs reference {w}",
                    program.name
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use multidim_ir::{ProgramBuilder, ReduceOp, ScalarKind};

    #[test]
    fn host_run_accumulates() {
        let mut b = ProgramBuilder::new("sum");
        let n = b.sym("N");
        let a = b.input("a", ScalarKind::F32, &[Size::sym(n)]);
        let root = b.reduce(Size::sym(n), ReduceOp::Add, |b, i| b.read(a, &[i.into()]));
        let p = b.finish_reduce(root, "total", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 256);
        let inputs: HashMap<_, _> = [(a, vec![1.0; 256])].into_iter().collect();

        let mut run = HostRun::with_strategy(Strategy::MultiDim).verifying();
        let out1 = run.launch(&p, &bind, &inputs).unwrap();
        let _ = run.launch(&p, &bind, &inputs).unwrap();
        assert!(run.gpu_seconds() > 0.0);
        assert!(run.launches() >= 2);
        let outcome = run.finish(out1);
        assert_eq!(outcome.outputs[&p.output.unwrap()][0], 256.0);
    }
}
