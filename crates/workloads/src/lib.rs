//! Benchmark applications for the `multidim` framework.
//!
//! Every workload the paper evaluates, written as nested parallel patterns
//! against the `multidim` DSL:
//!
//! * [`sums`] — the running example (`sumRows`/`sumCols`, Figures 1 and 3)
//!   and the weighted variants used by the allocation study (Figures 15
//!   and 16);
//! * [`rodinia`] — the Rodinia subset of Figures 12 and 13 (Nearest
//!   Neighbor, Gaussian Elimination, Hotspot, Mandelbrot, SRAD,
//!   Pathfinder, LUD, BFS), each with row-major and column-major
//!   traversals where the paper uses both;
//! * [`apps`] — the real-world applications of Figure 14 (QPSCD HogWild!,
//!   MSMBuilder trajectory clustering, Naive Bayes spam training);
//! * [`manual`] — hand-written kernel-IR baselines standing in for the
//!   hand-optimized CUDA the paper compares against;
//! * [`data`] — synthetic input generators;
//! * [`catalog`] — every program above at a representative size, ready for
//!   the static analyzer and the sanitizer sweep;
//! * [`runner`] — shared host-program execution helpers.

#![warn(missing_docs)]

pub mod apps;
pub mod catalog;
pub mod data;
pub mod manual;
pub mod pagerank;
pub mod rodinia;
pub mod runner;
pub mod sums;
