//! A flat catalog of every shipped workload program, with representative
//! bindings and inputs.
//!
//! The static analyzer, the sanitizer cross-check, and `examples/lint.rs`
//! all want the same thing: "every program this crate can build, ready to
//! compile and run". Each entry carries a small but non-degenerate problem
//! size — big enough to exercise the multi-level mappings, small enough
//! that running all of them stays fast.

use crate::data::{self, CsrGraph};
use crate::rodinia::Traversal;
use crate::sums::SumKind;
use crate::{apps, pagerank, rodinia, sums};
use multidim_ir::{ArrayId, Bindings, Program};
use std::collections::HashMap;

/// One ready-to-analyze (and ready-to-run) workload instance.
pub struct CatalogEntry {
    /// The program; its `name` field labels reports.
    pub program: Program,
    /// Symbol bindings for the representative problem size.
    pub bindings: Bindings,
    /// Input arrays matching those bindings.
    pub inputs: HashMap<ArrayId, Vec<f64>>,
}

impl CatalogEntry {
    /// The program's name.
    pub fn name(&self) -> &str {
        &self.program.name
    }
}

fn entry(
    program: Program,
    bindings: Bindings,
    inputs: impl IntoIterator<Item = (ArrayId, Vec<f64>)>,
) -> CatalogEntry {
    CatalogEntry {
        program,
        bindings,
        inputs: inputs.into_iter().collect(),
    }
}

/// Every shipped workload program at a representative problem size.
pub fn catalog() -> Vec<CatalogEntry> {
    let mut out = Vec::new();

    // --- sums (Figures 1/3/15) ---
    for kind in [SumKind::Rows, SumKind::Cols] {
        let (p, r, c, m) = sums::sum_program(kind);
        let mut b = Bindings::new();
        b.bind(r, 12);
        b.bind(c, 20);
        out.push(entry(p, b, [(m, data::matrix(12, 20, 42))]));

        let (p, r, c, m, v) = sums::sum_weighted_program(kind);
        let mut b = Bindings::new();
        b.bind(r, 12);
        b.bind(c, 20);
        let wlen = match kind {
            SumKind::Rows => 20,
            SumKind::Cols => 12,
        };
        out.push(entry(
            p,
            b,
            [(m, data::matrix(12, 20, 42)), (v, data::vector(wlen, 7))],
        ));
    }

    // --- Rodinia (Figures 12/13) ---
    let (p, rs, cs, temp, power) = rodinia::hotspot::step_program(Traversal::RowMajor);
    let mut b = Bindings::new();
    b.bind(rs, 12);
    b.bind(cs, 20);
    out.push(entry(
        p,
        b,
        [
            (temp, data::matrix(12, 20, 3)),
            (power, data::matrix(12, 20, 4)),
        ],
    ));

    let (p, cs, src, wall_row) = rodinia::pathfinder::step_program();
    let mut b = Bindings::new();
    b.bind(cs, 20);
    let wall = data::matrix(2, 20, 6);
    out.push(entry(
        p,
        b,
        [(src, wall[..20].to_vec()), (wall_row, wall[20..].to_vec())],
    ));

    let (p, n, k, m) = rodinia::gaussian::fan1_program();
    let mut b = Bindings::new();
    b.bind(n, 12);
    b.bind(k, 3);
    out.push(entry(p, b, [(m, data::spd_matrix(12, 5))]));

    let (p, n, k, m, mult) = rodinia::gaussian::fan2_program(Traversal::RowMajor);
    let mut b = Bindings::new();
    b.bind(n, 12);
    b.bind(k, 3);
    out.push(entry(
        p,
        b,
        [(m, data::spd_matrix(12, 5)), (mult, data::vector(12, 2))],
    ));

    let (p, n, k, m) = rodinia::lud::scale_program();
    let mut b = Bindings::new();
    b.bind(n, 12);
    b.bind(k, 2);
    out.push(entry(p, b, [(m, data::spd_matrix(12, 8))]));

    let (p, n, k, m) = rodinia::lud::update_program();
    let mut b = Bindings::new();
    b.bind(n, 12);
    b.bind(k, 2);
    out.push(entry(p, b, [(m, data::spd_matrix(12, 8))]));

    let (p, rs, cs, img) = rodinia::srad::coeff_program(Traversal::RowMajor);
    let mut b = Bindings::new();
    b.bind(rs, 10);
    b.bind(cs, 14);
    let image: Vec<f64> = data::matrix(10, 14, 9).iter().map(|v| v + 0.5).collect();
    out.push(entry(p, b, [(img, image.clone())]));

    let (p, rs, cs, img, coeff) = rodinia::srad::update_program(Traversal::RowMajor);
    let mut b = Bindings::new();
    b.bind(rs, 10);
    b.bind(cs, 14);
    out.push(entry(
        p,
        b,
        [(img, image), (coeff, data::matrix(10, 14, 2))],
    ));

    let (p, hs, ws) = rodinia::mandelbrot::program(Traversal::RowMajor);
    let mut b = Bindings::new();
    b.bind(hs, 16);
    b.bind(ws, 24);
    out.push(entry(p, b, []));

    let (p, ns, records) = rodinia::nn::program();
    let mut b = Bindings::new();
    b.bind(ns, 100);
    let recs: Vec<f64> = data::matrix(100, 2, 11)
        .iter()
        .map(|v| v * 180.0 - 90.0)
        .collect();
    out.push(entry(p, b, [(records, recs)]));

    let g = CsrGraph::power_law(64, 4, 13);
    let mean = (g.edges / g.nodes.max(1)).max(1) as i64;
    let (p, ns, es, row_ptr, col_idx, fr, vis, _next, cost) = rodinia::bfs::step_program(mean);
    let level = p.symbol_by_name("LEVEL").expect("bfs LEVEL symbol").id;
    let mut b = Bindings::new();
    b.bind(ns, g.nodes as i64);
    b.bind(es, g.edges as i64);
    b.bind(level, 1);
    let mut frontier = vec![0.0; g.nodes];
    let mut visited = vec![0.0; g.nodes];
    frontier[0] = 1.0;
    visited[0] = 1.0;
    out.push(entry(
        p,
        b,
        [
            (row_ptr, g.row_ptr.clone()),
            (col_idx, g.col_idx.clone()),
            (fr, frontier),
            (vis, visited),
            (cost, vec![0.0; g.nodes]),
        ],
    ));

    // --- graph kernels ---
    let g = CsrGraph::power_law(64, 6, 3);
    let mean = (g.edges / g.nodes.max(1)).max(1) as i64;
    let (p, ns, es, row_ptr, col_idx, prev, degree) = pagerank::step_program(mean);
    let mut b = Bindings::new();
    b.bind(ns, g.nodes as i64);
    b.bind(es, g.edges as i64);
    let degrees: Vec<f64> = (0..g.nodes).map(|i| g.degree(i).max(1) as f64).collect();
    out.push(entry(
        p,
        b,
        [
            (row_ptr, g.row_ptr.clone()),
            (col_idx, g.col_idx.clone()),
            (prev, vec![1.0 / g.nodes as f64; g.nodes]),
            (degree, degrees),
        ],
    ));

    let g = CsrGraph::power_law(64, 6, 51);
    let mean = (g.edges / g.nodes.max(1)).max(1) as i64;
    let (p, n, e, row_ptr, col_idx, vals, x) = apps::spmv::program(mean);
    let mut b = Bindings::new();
    b.bind(n, g.nodes as i64);
    b.bind(e, g.edges as i64);
    let vs: Vec<f64> = (0..g.edges).map(|i| 1.0 + (i % 3) as f64 * 0.5).collect();
    let xs: Vec<f64> = (0..g.nodes).map(|i| (i % 7) as f64 * 0.25).collect();
    out.push(entry(
        p,
        b,
        [
            (row_ptr, g.row_ptr.clone()),
            (col_idx, g.col_idx.clone()),
            (vals, vs),
            (x, xs),
        ],
    ));

    // --- irregular / dynamic-parallelism workloads ---
    // Zipf-degree SpMV, sized so the Auto consolidation policy actually
    // consolidates (1024 rows × mean 16 ≈ 16k inner elements clears the
    // 12k work floor and the warp-filling rows pick coarsening) while
    // staying cheap enough for the catalog-sweeping tests and benches.
    let g = CsrGraph::zipf(1024, 16, 1.0, 91);
    let (p, n, e, row_ptr, col_idx, vals, x) = apps::spmv::zipf_program(g.mean_degree());
    let mut b = Bindings::new();
    b.bind(n, g.nodes as i64);
    b.bind(e, g.edges as i64);
    let vs: Vec<f64> = (0..g.edges).map(|i| 1.0 + (i % 3) as f64 * 0.5).collect();
    let xs: Vec<f64> = (0..g.nodes).map(|i| (i % 7) as f64 * 0.25).collect();
    out.push(entry(
        p,
        b,
        [
            (row_ptr, g.row_ptr.clone()),
            (col_idx, g.col_idx.clone()),
            (vals, vs),
            (x, xs),
        ],
    ));

    // Ragged filter-then-map over Zipf segment lengths (the effects-only
    // consolidation site shape), at a small below-threshold size.
    let g = CsrGraph::zipf(192, 6, 1.0, 29);
    let (p, n, e, seg_ptr, data, _out, _counts) = apps::ragged::program(g.mean_degree());
    let mut b = Bindings::new();
    b.bind(n, g.nodes as i64);
    b.bind(e, g.edges as i64);
    out.push(entry(
        p,
        b,
        [
            (seg_ptr, g.row_ptr.clone()),
            (data, apps::ragged::element_data(g.edges)),
        ],
    ));

    // --- applications (Figure 14) ---
    let (points, clusters, dims) = (32, 4, 3);
    let (xs, centroids) = data::trajectories(points, clusters, dims, 77);

    let (p, p_, k_, d_, x, c) = apps::kmeans::assign_program();
    let mut b = Bindings::new();
    b.bind(p_, points as i64);
    b.bind(k_, clusters as i64);
    b.bind(d_, dims as i64);
    out.push(entry(p, b, [(x, xs.clone()), (c, centroids)]));

    let (p, p_, k_, dsel, x, assign) = apps::kmeans::accumulate_program();
    let d_ = p.symbol_by_name("D").expect("kmeans D symbol").id;
    let mut b = Bindings::new();
    b.bind(p_, points as i64);
    b.bind(k_, clusters as i64);
    b.bind(dsel, 1);
    b.bind(d_, dims as i64);
    let assignment = data::indices(points, clusters, 5);
    out.push(entry(p, b, [(x, xs), (assign, assignment.clone())]));

    let (p, p_, k_, assign) = apps::kmeans::count_program();
    let mut b = Bindings::new();
    b.bind(p_, points as i64);
    b.bind(k_, clusters as i64);
    out.push(entry(p, b, [(assign, assignment)]));

    let (frames, clusters, dims) = (16, 4, 3);
    let (fx, fc) = data::trajectories(frames, clusters, dims, 23);
    let (p, p_, k_, d_, x, c) = apps::msm::distance_program();
    let mut b = Bindings::new();
    b.bind(p_, frames as i64);
    b.bind(k_, clusters as i64);
    b.bind(d_, dims as i64);
    out.push(entry(p, b, [(x, fx), (c, fc)]));

    let (p, p_, k_, dist) = apps::msm::assign_program();
    let mut b = Bindings::new();
    b.bind(p_, frames as i64);
    b.bind(k_, clusters as i64);
    out.push(entry(p, b, [(dist, data::matrix(frames, clusters, 12))]));

    let (docs, words) = (16, 32);
    let (m, labels) = data::document_matrix(docs, words, 0.1, 31);
    let (p, d_, w_, m1) = apps::naive_bayes::words_per_doc_program();
    let mut b = Bindings::new();
    b.bind(d_, docs as i64);
    b.bind(w_, words as i64);
    out.push(entry(p, b, [(m1, m.clone())]));

    let (p, d_, w_, m2, lab) = apps::naive_bayes::docs_per_word_program();
    let mut b = Bindings::new();
    b.bind(d_, docs as i64);
    b.bind(w_, words as i64);
    out.push(entry(p, b, [(m2, m), (lab, labels)]));

    let n = 16;
    let (p, ns, ss, q, bvec, perm, x) = apps::qpscd::epoch_program();
    let mut b = Bindings::new();
    b.bind(ns, n as i64);
    b.bind(ss, n as i64);
    let bv: Vec<f64> = data::vector(n, 18).iter().map(|v| v - 0.5).collect();
    out.push(entry(
        p,
        b,
        [
            (q, data::spd_matrix(n, 17)),
            (bvec, bv),
            (perm, data::indices(n, n, 100)),
            (x, vec![0.0; n]),
        ],
    ));

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_complete_and_well_formed() {
        let entries = catalog();
        assert!(entries.len() >= 20, "expected the full workload sweep");
        for e in &entries {
            assert!(!e.name().is_empty());
            // Every input array the program declares is provided.
            for decl in &e.program.arrays {
                if matches!(decl.role, multidim_ir::ArrayRole::Input) {
                    assert!(
                        e.inputs.contains_key(&decl.id),
                        "{}: missing input `{}`",
                        e.name(),
                        decl.name
                    );
                }
            }
        }
        // Names are unique, so reports are unambiguous.
        let mut names: Vec<_> = entries.iter().map(|e| e.name().to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), entries.len());
    }
}
