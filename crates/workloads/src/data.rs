//! Synthetic input generators.
//!
//! The paper's evaluation uses Rodinia inputs, MSMBuilder molecular
//! trajectories, and a spam corpus — none of which we can ship. These
//! generators produce inputs with the same *shapes* and access-relevant
//! statistics (matrix dimensions, power-law graph degrees, sparse word
//! counts), which is all the mapping analysis and the timing model observe.

/// A small deterministic generator (SplitMix64) so the workload inputs are
/// reproducible without any external dependency — the statistics the mapping
/// analysis and timing model observe (shapes, degree skew, density) do not
/// need a cryptographic source.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seed a generator.
    pub fn new(seed: u64) -> Rng {
        // Avoid the all-zero fixed point and decorrelate small seeds.
        Rng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 mantissa bits of the raw draw.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, max)`; returns 0 for `max == 0`.
    pub fn below(&mut self, max: usize) -> usize {
        if max == 0 {
            0
        } else {
            (self.next_u64() % max as u64) as usize
        }
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Uniform i64 in `[lo, hi)` (for randomized tests).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo).max(1) as u64) as i64
    }
}

/// Deterministic RNG for reproducible experiments.
pub fn rng(seed: u64) -> Rng {
    Rng::new(seed)
}

/// A row-major matrix of uniform values in `[0, 1)`.
pub fn matrix(rows: usize, cols: usize, seed: u64) -> Vec<f64> {
    let mut r = rng(seed);
    (0..rows * cols).map(|_| r.f64()).collect()
}

/// A vector of uniform values in `[0, 1)`.
pub fn vector(n: usize, seed: u64) -> Vec<f64> {
    matrix(n, 1, seed)
}

/// A vector of uniform integers in `[0, max)` stored as `f64`.
pub fn indices(n: usize, max: usize, seed: u64) -> Vec<f64> {
    let mut r = rng(seed);
    (0..n).map(|_| r.below(max) as f64).collect()
}

/// A CSR graph with a skewed (approximate power-law) degree distribution —
/// the workload shape that motivated warp-based mapping (Hong et al.).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrGraph {
    /// `row_ptr[n]..row_ptr[n+1]` bounds node `n`'s neighbor list.
    pub row_ptr: Vec<f64>,
    /// Flattened neighbor ids.
    pub col_idx: Vec<f64>,
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
}

impl CsrGraph {
    /// Generate a graph with `nodes` nodes and mean degree `mean_degree`,
    /// degrees drawn from a discrete Pareto-like distribution.
    pub fn power_law(nodes: usize, mean_degree: usize, seed: u64) -> CsrGraph {
        let mut r = rng(seed);
        let mut row_ptr = Vec::with_capacity(nodes + 1);
        let mut col_idx = Vec::new();
        row_ptr.push(0.0);
        for _ in 0..nodes {
            // Pareto(alpha≈1.8) truncated; scaled to the requested mean.
            let u: f64 = r.range_f64(0.02, 1.0);
            let deg = ((mean_degree as f64 * 0.45) / u.powf(0.55)).round() as usize;
            let deg = deg.min(nodes.saturating_sub(1)).max(1);
            for _ in 0..deg {
                col_idx.push(r.below(nodes) as f64);
            }
            row_ptr.push(col_idx.len() as f64);
        }
        let edges = col_idx.len();
        CsrGraph {
            row_ptr,
            col_idx,
            nodes,
            edges,
        }
    }

    /// Generate a graph whose degree sequence follows a Zipf law with
    /// exponent `alpha`, scaled so the mean degree is ≈ `mean_degree`:
    /// node of rank `r` (1-based) gets degree ∝ `1/r^alpha`. Larger
    /// `alpha` means heavier skew — a handful of hub nodes own most of
    /// the edges while the tail degenerates to degree 0 — which is
    /// exactly the regime where launch consolidation choices diverge.
    /// Ranks are scattered over node ids deterministically so the hubs
    /// are not clustered at the front of the CSR.
    pub fn zipf(nodes: usize, mean_degree: usize, alpha: f64, seed: u64) -> CsrGraph {
        let mut r = rng(seed);
        // Unnormalized Zipf weights by rank, then scale to the target
        // edge total.
        let weights: Vec<f64> = (1..=nodes).map(|rank| (rank as f64).powf(-alpha)).collect();
        let wsum: f64 = weights.iter().sum();
        let target = (nodes * mean_degree) as f64;
        // Deterministic rank→node scatter: stride by a coprime of
        // `nodes` so consecutive ranks land far apart.
        let stride = (nodes / 2 + 1) | 1;
        let mut degree = vec![0usize; nodes];
        for (rank, w) in weights.iter().enumerate() {
            let node = (rank * stride) % nodes;
            degree[node] = (target * w / wsum).round() as usize;
        }
        let mut row_ptr = Vec::with_capacity(nodes + 1);
        let mut col_idx = Vec::new();
        row_ptr.push(0.0);
        for &deg in &degree {
            for _ in 0..deg.min(nodes) {
                col_idx.push(r.below(nodes) as f64);
            }
            row_ptr.push(col_idx.len() as f64);
        }
        let edges = col_idx.len();
        CsrGraph {
            row_ptr,
            col_idx,
            nodes,
            edges,
        }
    }

    /// The degree of node `n`.
    pub fn degree(&self, n: usize) -> usize {
        (self.row_ptr[n + 1] - self.row_ptr[n]) as usize
    }

    /// Mean degree, rounded to at least 1 (the estimate hint fed to
    /// `reduce_dyn`/`foreach_dyn` so the mapper has a representative
    /// size for the dynamic level).
    pub fn mean_degree(&self) -> i64 {
        ((self.edges / self.nodes.max(1)) as i64).max(1)
    }
}

/// A sparse binary document–term matrix: `docs × words` with `density`
/// fraction of nonzero (word present) entries, plus labels (spam = 1).
pub fn document_matrix(docs: usize, words: usize, density: f64, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut r = rng(seed);
    let m: Vec<f64> = (0..docs * words)
        .map(|_| if r.f64() < density { 1.0 } else { 0.0 })
        .collect();
    let labels: Vec<f64> = (0..docs)
        .map(|_| if r.f64() < 0.4 { 1.0 } else { 0.0 })
        .collect();
    (m, labels)
}

/// Symmetric positive-definite-ish matrix for the QP solver: diagonally
/// dominant so coordinate descent converges.
pub fn spd_matrix(n: usize, seed: u64) -> Vec<f64> {
    let mut m = matrix(n, n, seed);
    for i in 0..n {
        for j in 0..i {
            let v = (m[i * n + j] + m[j * n + i]) / 2.0;
            m[i * n + j] = v;
            m[j * n + i] = v;
        }
        m[i * n + i] = n as f64; // dominance
    }
    m
}

/// Trajectory data for the MSMBuilder clustering kernel: `points` frames of
/// `dims` coordinates, and `clusters` centers of the same dimensionality.
pub fn trajectories(
    points: usize,
    clusters: usize,
    dims: usize,
    seed: u64,
) -> (Vec<f64>, Vec<f64>) {
    (
        matrix(points, dims, seed),
        matrix(clusters, dims, seed ^ 0x9e37_79b9),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(matrix(4, 4, 7), matrix(4, 4, 7));
        assert_ne!(matrix(4, 4, 7), matrix(4, 4, 8));
    }

    #[test]
    fn graph_is_well_formed() {
        let g = CsrGraph::power_law(200, 8, 1);
        assert_eq!(g.row_ptr.len(), 201);
        assert_eq!(g.row_ptr[200] as usize, g.edges);
        assert!(g.col_idx.iter().all(|&c| (c as usize) < 200));
        // Skew: max degree well above the mean.
        let max_deg = (0..200).map(|n| g.degree(n)).max().unwrap();
        let mean = g.edges / 200;
        assert!(max_deg >= 3 * mean, "max {max_deg} mean {mean}");
    }

    #[test]
    fn zipf_graph_matches_requested_statistics() {
        let g = CsrGraph::zipf(256, 8, 1.0, 7);
        assert_eq!(g.row_ptr.len(), 257);
        assert_eq!(g.row_ptr[256] as usize, g.edges);
        assert!(g.col_idx.iter().all(|&c| (c as usize) < 256));
        // Mean lands near the request (rounding each rank's share costs
        // a little mass in the tail).
        let mean = g.edges as f64 / 256.0;
        assert!((4.0..=9.0).contains(&mean), "mean {mean}");
        // Heavier alpha concentrates more edges in the hubs. The top hub
        // saturates at the node-count cap, so the second-largest degree
        // is the robust skew signal.
        let heavy = CsrGraph::zipf(256, 8, 1.2, 7);
        let second = |g: &CsrGraph| {
            let mut d: Vec<usize> = (0..256).map(|n| g.degree(n)).collect();
            d.sort_unstable_by(|a, b| b.cmp(a));
            d[1]
        };
        assert!(second(&heavy) > second(&g), "skew should grow with alpha");
        // Same seed and parameters reproduce bit-identically.
        assert_eq!(g, CsrGraph::zipf(256, 8, 1.0, 7));
    }

    #[test]
    fn document_matrix_density() {
        let (m, labels) = document_matrix(100, 100, 0.1, 3);
        let nnz: f64 = m.iter().sum();
        assert!(nnz > 500.0 && nnz < 1500.0);
        assert_eq!(labels.len(), 100);
        assert!(labels.iter().all(|&l| l == 0.0 || l == 1.0));
    }

    #[test]
    fn spd_is_symmetric_dominant() {
        let n = 16;
        let m = spd_matrix(n, 2);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(m[i * n + j], m[j * n + i]);
            }
            let off: f64 = (0..n).filter(|&j| j != i).map(|j| m[i * n + j].abs()).sum();
            assert!(m[i * n + i] > off / 2.0);
        }
    }

    #[test]
    fn indices_in_range() {
        let ix = indices(1000, 37, 5);
        assert!(ix
            .iter()
            .all(|&i| (0.0..37.0).contains(&i) && i.fract() == 0.0));
    }
}
