//! K-means clustering — an extension workload exercising `groupBy` (the
//! Table I pattern no other benchmark stresses) together with nested
//! map/reduce, in the style the paper's introduction motivates for
//! machine-learning pipelines.
//!
//! Each iteration: (1) assign every point to its nearest centroid
//! (map × map × reduce — the MSMBuilder shape); (2) accumulate per-cluster
//! coordinate sums and counts with `groupBy` (atomics on the GPU);
//! (3) host divides to form the new centroids.

use crate::data;
use crate::runner::{HostRun, Outcome, WorkloadError};
use multidim::prelude::*;
use multidim_ir::{ArrayId, ReduceOp, SymId};
use std::collections::HashMap;

/// Assignment kernel: `best[p] = argmin_k Σ_d (x[p][d] - c[k][d])²`,
/// computed as an index-encoded min-reduce (`dist * K + k`).
pub fn assign_program() -> (Program, SymId, SymId, SymId, ArrayId, ArrayId) {
    let mut b = ProgramBuilder::new("kmeans_assign");
    let p_ = b.sym("P");
    let k_ = b.sym("K");
    let d_ = b.sym("D");
    let x = b.input("points", ScalarKind::F32, &[Size::sym(p_), Size::sym(d_)]);
    let c = b.input(
        "centroids",
        ScalarKind::F32,
        &[Size::sym(k_), Size::sym(d_)],
    );
    let root = b.map(Size::sym(p_), |b, p| {
        // Encode (distance, cluster) as floor(dist·1e4)·1e3 + k: an exact
        // integer, so min carries the argmin and k decodes exactly.
        let enc = b.map(Size::sym(k_), |b, k| {
            let dist = b.reduce(Size::sym(d_), ReduceOp::Add, |b, d| {
                let diff = b.read(x, &[p.into(), d.into()]) - b.read(c, &[k.into(), d.into()]);
                diff.clone() * diff
            });
            (dist * Expr::lit(1e4)).floor() * Expr::lit(1e3) + Expr::var(k)
        });
        let min_enc = b.let_(enc, |b, t| {
            b.reduce(Size::sym(k_), ReduceOp::Min, |b, k| {
                b.read_var(t, &[k.into()])
            })
        });
        // Decode: k = enc mod 1000. Bind the reduce result once —
        // duplicating the expression would duplicate the nested patterns.
        b.let_(min_enc, |_, best| Expr::var(best).rem(Expr::lit(1e3)))
    });
    let p = b
        .finish_map(root, "assignment", ScalarKind::I32)
        .expect("valid kmeans assign");
    (p, p_, k_, d_, x, c)
}

/// Accumulation kernel for one coordinate `d`: per-cluster sums of that
/// coordinate via `groupBy` (plus a count histogram from `values = 1`).
pub fn accumulate_program() -> (Program, SymId, SymId, SymId, ArrayId, ArrayId) {
    let mut b = ProgramBuilder::new("kmeans_accumulate");
    let p_ = b.sym("P");
    let k_ = b.sym("K");
    let dsel = b.sym("DSEL"); // which coordinate this launch accumulates
    let d_ = b.sym("D");
    let x = b.input("points", ScalarKind::F32, &[Size::sym(p_), Size::sym(d_)]);
    let assign = b.input("assignment", ScalarKind::I32, &[Size::sym(p_)]);
    let root = b.group_by(Size::sym(p_), Size::sym(k_), ReduceOp::Add, |b, p| {
        (
            b.read(assign, &[p.into()]),
            b.read(x, &[p.into(), Expr::size(Size::sym(dsel))]),
        )
    });
    let p = b
        .finish_group_by(root, "sums", ScalarKind::F32)
        .expect("valid kmeans accumulate");
    (p, p_, k_, dsel, x, assign)
}

/// Count kernel: cluster sizes.
pub fn count_program() -> (Program, SymId, SymId, ArrayId) {
    let mut b = ProgramBuilder::new("kmeans_count");
    let p_ = b.sym("P");
    let k_ = b.sym("K");
    let assign = b.input("assignment", ScalarKind::I32, &[Size::sym(p_)]);
    let root = b.group_by(Size::sym(p_), Size::sym(k_), ReduceOp::Add, |b, p| {
        (b.read(assign, &[p.into()]), Expr::lit(1.0))
    });
    let p = b
        .finish_group_by(root, "counts", ScalarKind::F32)
        .expect("valid kmeans count");
    (p, p_, k_, assign)
}

/// Run `iters` K-means iterations; returns the outcome plus the final
/// centroids.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(
    strategy: Strategy,
    points: usize,
    clusters: usize,
    dims: usize,
    iters: usize,
) -> Result<(Outcome, Vec<f64>), WorkloadError> {
    let (ap, ap_p, ap_k, ap_d, ax, ac) = assign_program();
    let (sp, sp_p, sp_k, sp_dsel, sx, sassign) = accumulate_program();
    let (cp, cp_p, cp_k, cassign) = count_program();

    let (xs, mut centroids) = data::trajectories(points, clusters, dims, 77);
    let mut run = HostRun::with_strategy(strategy);
    let mut last_assign = vec![0.0; points];

    for _ in 0..iters {
        // 1. assign
        let mut b1 = Bindings::new();
        b1.bind(ap_p, points as i64);
        b1.bind(ap_k, clusters as i64);
        b1.bind(ap_d, dims as i64);
        let i1: HashMap<_, _> = [(ax, xs.clone()), (ac, centroids.clone())]
            .into_iter()
            .collect();
        let o1 = run.launch(&ap, &b1, &i1)?;
        last_assign = o1[&ap.output.unwrap()].clone();

        // 2. counts
        let mut b3 = Bindings::new();
        b3.bind(cp_p, points as i64);
        b3.bind(cp_k, clusters as i64);
        let i3: HashMap<_, _> = [(cassign, last_assign.clone())].into_iter().collect();
        let o3 = run.launch(&cp, &b3, &i3)?;
        let counts = o3[&cp.output.unwrap()].clone();

        // 3. per-coordinate sums -> new centroids
        for d in 0..dims {
            let mut b2 = Bindings::new();
            b2.bind(sp_p, points as i64);
            b2.bind(sp_k, clusters as i64);
            b2.bind(sp_dsel, d as i64);
            b2.bind(sx_dim_sym(&sp), dims as i64);
            let i2: HashMap<_, _> = [(sx, xs.clone()), (sassign, last_assign.clone())]
                .into_iter()
                .collect();
            let o2 = run.launch(&sp, &b2, &i2)?;
            let sums = &o2[&sp.output.unwrap()];
            for k in 0..clusters {
                if counts[k] > 0.0 {
                    centroids[k * dims + d] = sums[k] / counts[k];
                }
            }
        }
    }
    let outputs: HashMap<_, _> = [(ap.output.unwrap(), last_assign)].into_iter().collect();
    Ok((run.finish(outputs), centroids))
}

fn sx_dim_sym(p: &Program) -> multidim_ir::SymId {
    p.symbol_by_name("D").expect("D symbol").id
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignments_are_valid_cluster_ids() {
        let (o, _) = run(Strategy::MultiDim, 200, 5, 4, 2).unwrap();
        let (ap, ..) = assign_program();
        let a = &o.outputs[&ap.output.unwrap()];
        assert!(
            a.iter()
                .all(|&k| (0.0..5.0).contains(&k) && k.fract() == 0.0),
            "{a:?}"
        );
    }

    #[test]
    fn assign_matches_reference() {
        let (ap, p_, k_, d_, x, c) = assign_program();
        let mut bind = Bindings::new();
        bind.bind(p_, 40);
        bind.bind(k_, 4);
        bind.bind(d_, 6);
        let (xs, cs) = data::trajectories(40, 4, 6, 77);
        let inputs: HashMap<_, _> = [(x, xs), (c, cs)].into_iter().collect();
        let mut run = HostRun::with_strategy(Strategy::MultiDim).verifying();
        run.launch(&ap, &bind, &inputs).unwrap();
    }

    #[test]
    fn iterations_reduce_distortion() {
        let (points, clusters, dims) = (300, 4, 3);
        let (xs, _) = data::trajectories(points, clusters, dims, 77);
        let distortion = |centroids: &[f64], assign: &[f64]| -> f64 {
            (0..points)
                .map(|p| {
                    let k = assign[p] as usize;
                    (0..dims)
                        .map(|d| (xs[p * dims + d] - centroids[k * dims + d]).powi(2))
                        .sum::<f64>()
                })
                .sum()
        };
        let (o1, c1) = run(Strategy::MultiDim, points, clusters, dims, 1).unwrap();
        let (o5, c5) = run(Strategy::MultiDim, points, clusters, dims, 5).unwrap();
        let (ap, ..) = assign_program();
        let d1 = distortion(&c1, &o1.outputs[&ap.output.unwrap()]);
        let d5 = distortion(&c5, &o5.outputs[&ap.output.unwrap()]);
        assert!(d5 <= d1 * 1.0001, "distortion went up: {d1} -> {d5}");
    }
}
