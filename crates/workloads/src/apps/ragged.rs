//! Ragged filter-then-map: per-segment stream compaction statistics.
//!
//! Segments of wildly different lengths (a CSR-style `row_ptr` bounds
//! each one) are scanned in parallel: values above a threshold are
//! rescaled in place and counted per segment. The outer `foreach` walks
//! segments, the inner *dynamically sized* `foreach` walks one segment's
//! elements — the second launch-consolidation site shape (effects-only
//! child work: a guarded write plus an atomic per-segment counter, no
//! reduction tree).

use crate::data::CsrGraph;
use crate::runner::{HostRun, Outcome, WorkloadError};
use multidim::prelude::*;
use multidim_ir::{ArrayId, Effect, SymId};
use std::collections::HashMap;

/// Threshold above which an element is kept (exactly representable, as
/// is every input value, so any execution order matches the reference
/// bit-for-bit).
const CUTOFF: f64 = 0.75;

/// The ragged filter-then-map program. Arrays: `seg_ptr` (segment
/// bounds), `data` (flattened elements); outputs `out` (rescaled kept
/// elements, zero elsewhere) and `counts` (kept elements per segment).
#[allow(clippy::type_complexity)]
pub fn program(mean_len_hint: i64) -> (Program, SymId, SymId, ArrayId, ArrayId, ArrayId, ArrayId) {
    let mut b = ProgramBuilder::new("ragged_filter");
    let n = b.sym("N");
    let e = b.sym("E");
    let seg_ptr = b.input("seg_ptr", ScalarKind::I32, &[Size::sym(n) + Size::from(1)]);
    let data = b.input("data", ScalarKind::F32, &[Size::sym(e)]);
    let out = b.output("out", ScalarKind::F32, &[Size::sym(e)]);
    let counts = b.output("counts", ScalarKind::F32, &[Size::sym(n)]);

    let root = b.foreach(Size::sym(n), |b, seg| {
        let start = b.read(seg_ptr, &[seg.into()]);
        let end = b.read(seg_ptr, &[Expr::var(seg) + Expr::lit(1.0)]);
        let inner = b.foreach_dyn(end - start.clone(), mean_len_hint, |b, j| {
            let at = start.clone() + Expr::var(j);
            let v = b.read(data, std::slice::from_ref(&at));
            let keep = v.clone().gt(Expr::lit(CUTOFF));
            vec![
                Effect::Write {
                    cond: Some(keep.clone()),
                    array: out,
                    idx: vec![at],
                    value: v * Expr::lit(2.0),
                },
                Effect::AtomicRmw {
                    cond: Some(keep),
                    array: counts,
                    idx: vec![seg.into()],
                    op: ReduceOp::Add,
                    value: Expr::lit(1.0),
                },
            ]
        });
        vec![b.nested_effect(inner)]
    });
    let p = b.finish_foreach(root).expect("valid ragged program");
    (p, n, e, seg_ptr, data, out, counts)
}

/// Deterministic dyadic element data for `edges` flattened elements.
pub fn element_data(edges: usize) -> Vec<f64> {
    (0..edges).map(|i| (i % 9) as f64 * 0.25).collect()
}

/// Host-side reference: `(out, counts)`.
pub fn reference(seg_ptr: &[f64], data: &[f64], segments: usize) -> (Vec<f64>, Vec<f64>) {
    let mut out = vec![0.0; data.len()];
    let mut counts = vec![0.0; segments];
    for s in 0..segments {
        for k in seg_ptr[s] as usize..seg_ptr[s + 1] as usize {
            if data[k] > CUTOFF {
                out[k] = data[k] * 2.0;
                counts[s] += 1.0;
            }
        }
    }
    (out, counts)
}

/// Run the workload over a Zipf-length segment structure.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(strategy: Strategy, segments: usize, mean_len: usize) -> Result<Outcome, WorkloadError> {
    let g = CsrGraph::zipf(segments, mean_len, 1.0, 29);
    let (p, n, e, seg_ptr, data, _out, _counts) = program(g.mean_degree());
    let mut bind = Bindings::new();
    bind.bind(n, g.nodes as i64);
    bind.bind(e, g.edges as i64);
    let inputs: HashMap<_, _> = [(seg_ptr, g.row_ptr.clone()), (data, element_data(g.edges))]
        .into_iter()
        .collect();
    let mut run = HostRun::with_strategy(strategy);
    let out = run.launch(&p, &bind, &inputs)?;
    Ok(run.finish(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_exactly() {
        let g = CsrGraph::zipf(180, 7, 1.0, 29);
        let (p, n, e, seg_ptr, data, out, counts) = program(g.mean_degree());
        let mut bind = Bindings::new();
        bind.bind(n, g.nodes as i64);
        bind.bind(e, g.edges as i64);
        let d = element_data(g.edges);
        let inputs: HashMap<_, _> = [(seg_ptr, g.row_ptr.clone()), (data, d.clone())]
            .into_iter()
            .collect();
        let mut run = HostRun::with_strategy(Strategy::MultiDim).verifying();
        let got = run.launch(&p, &bind, &inputs).unwrap();
        let (want_out, want_counts) = reference(&g.row_ptr, &d, g.nodes);
        assert_eq!(got[&out], want_out);
        assert_eq!(got[&counts], want_counts);
    }

    #[test]
    fn strategies_agree_on_skewed_segments() {
        let a = run(Strategy::MultiDim, 200, 10).unwrap();
        let b = run(Strategy::OneD, 200, 10).unwrap();
        let c = run(Strategy::WarpBased, 200, 10).unwrap();
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.checksum, c.checksum);
    }
}
