//! The real-world applications of Figure 14.

pub mod kmeans;
pub mod msm;
pub mod spmv;
pub mod naive_bayes;
pub mod qpscd;
