//! The real-world applications of Figure 14.

pub mod kmeans;
pub mod msm;
pub mod naive_bayes;
pub mod qpscd;
pub mod ragged;
pub mod spmv;
