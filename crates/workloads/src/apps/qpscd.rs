//! QPSCD HogWild!: lock-free stochastic coordinate descent for quadratic
//! programs (Figure 14).
//!
//! The outer pattern walks *randomly sampled* coordinates (a data-dependent
//! gather — no mapping can coalesce it), while the inner pattern reduces a
//! dense row of `Q` sequentially in memory. A 1D mapping therefore issues
//! nothing but scattered requests; MultiDim puts the inner row walk on
//! dimension x and coalesces it (the paper reports 8.95× over 1D).

use crate::data;
use crate::runner::{HostRun, Outcome, WorkloadError};
use multidim::prelude::*;
use multidim_ir::{ArrayId, Effect, ReduceOp, SymId};
use std::collections::HashMap;

/// One HogWild epoch over `S` sampled coordinates of an `N`-dim problem:
/// `x[i] -= (Q[i,:]·x + b[i]) / Q[i][i]` for each sampled `i`, racy on
/// purpose.
pub fn epoch_program() -> (Program, SymId, SymId, ArrayId, ArrayId, ArrayId, ArrayId) {
    let mut b = ProgramBuilder::new("qpscd_epoch");
    let n = b.sym("N");
    let s = b.sym("S");
    let q = b.input("q", ScalarKind::F32, &[Size::sym(n), Size::sym(n)]);
    let bvec = b.input("b", ScalarKind::F32, &[Size::sym(n)]);
    let perm = b.input("perm", ScalarKind::I32, &[Size::sym(s)]);
    let x = b.output("x", ScalarKind::F32, &[Size::sym(n)]);

    let root = b.foreach(Size::sym(s), |b, smp| {
        let i = b.read(perm, &[smp.into()]);
        let grad_row = b.reduce(Size::sym(n), ReduceOp::Add, |b, j| {
            b.read(q, &[i.clone(), j.into()]) * b.read(x, &[j.into()])
        });
        let grad = grad_row + b.read(bvec, std::slice::from_ref(&i));
        let step = grad / b.read(q, &[i.clone(), i.clone()]);
        let newx = b.read(x, std::slice::from_ref(&i)) - step;
        vec![Effect::Write {
            cond: None,
            array: x,
            idx: vec![i],
            value: newx,
        }]
    });
    let p = b.finish_foreach(root).expect("valid qpscd program");
    (p, n, s, q, bvec, perm, x)
}

/// Run `epochs` epochs on an `n`-dimensional problem, sampling `n`
/// coordinates per epoch.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(strategy: Strategy, n: usize, epochs: usize) -> Result<Outcome, WorkloadError> {
    let (p, ns, ss, q, bvec, perm, x) = epoch_program();
    let mut bind = Bindings::new();
    bind.bind(ns, n as i64);
    bind.bind(ss, n as i64);
    let qm = data::spd_matrix(n, 17);
    let bv: Vec<f64> = data::vector(n, 18).iter().map(|v| v - 0.5).collect();
    let mut xv = vec![0.0; n];

    let mut run = HostRun::with_strategy(strategy);
    let mut outputs = HashMap::new();
    for e in 0..epochs {
        let pm = data::indices(n, n, 100 + e as u64);
        let inputs: HashMap<_, _> = [
            (q, qm.clone()),
            (bvec, bv.clone()),
            (perm, pm),
            (x, xv.clone()),
        ]
        .into_iter()
        .collect();
        outputs = run.launch(&p, &bind, &inputs)?;
        xv = outputs[&x].clone();
    }
    Ok(run.finish(outputs))
}

/// CPU-baseline estimate for the same work (Figure 14's multicore bar).
pub fn cpu_seconds(n: usize, epochs: usize) -> f64 {
    let (p, ns, ss, q, bvec, perm, x) = epoch_program();
    let mut bind = Bindings::new();
    bind.bind(ns, n as i64);
    bind.bind(ss, n as i64);
    let inputs: HashMap<_, _> = [
        (q, data::spd_matrix(n, 17)),
        (bvec, data::vector(n, 18)),
        (perm, data::indices(n, n, 100)),
        (x, vec![0.0; n]),
    ]
    .into_iter()
    .collect();
    let cpu = CpuSpec::dual_xeon_x5550();
    let (_, est) = multidim_sim::run_cpu(&p, &cpu, &bind, &inputs).expect("cpu baseline");
    est.seconds * epochs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies_against_reference() {
        let (p, ns, ss, q, bvec, perm, x) = epoch_program();
        let mut bind = Bindings::new();
        bind.bind(ns, 24);
        bind.bind(ss, 24);
        // Distinct coordinates avoid write-order ambiguity so the
        // reference interpreter agrees exactly... except HogWild reads can
        // still observe earlier writes in the sequential reference; use a
        // permutation without repeats and verify convergence instead of
        // bit-equality when it races. Here: single distinct coordinate per
        // slot — the sim walks samples in block order which may differ, so
        // check the residual instead.
        let pm: Vec<f64> = (0..24).map(|i| i as f64).collect();
        let inputs: HashMap<_, _> = [
            (q, data::spd_matrix(24, 17)),
            (bvec, data::vector(24, 18)),
            (perm, pm),
            (x, vec![0.0; 24]),
        ]
        .into_iter()
        .collect();
        let mut run = HostRun::with_strategy(Strategy::MultiDim);
        let out = run.launch(&p, &bind, &inputs).unwrap();
        assert!(out[&x].iter().all(|v| v.is_finite()));
        assert!(out[&x].iter().any(|&v| v != 0.0));
    }

    #[test]
    fn descends_toward_solution() {
        // After several epochs the residual Qx + b should shrink.
        let n = 32;
        let o = run(Strategy::MultiDim, n, 6).unwrap();
        let (_, _, _, _, _, _, x) = epoch_program();
        let xv = &o.outputs[&x];
        let qm = data::spd_matrix(n, 17);
        let bv: Vec<f64> = data::vector(n, 18).iter().map(|v| v - 0.5).collect();
        let residual: f64 = (0..n)
            .map(|i| {
                let qx: f64 = (0..n).map(|j| qm[i * n + j] * xv[j]).sum();
                (qx + bv[i]).powi(2)
            })
            .sum::<f64>()
            .sqrt();
        let initial: f64 = bv.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(
            residual < 0.5 * initial,
            "residual {residual} vs initial {initial}"
        );
    }

    #[test]
    fn random_access_classified() {
        let (p, ns, ss, ..) = epoch_program();
        let mut bind = Bindings::new();
        bind.bind(ns, 100);
        bind.bind(ss, 100);
        let f = multidim_sim::random_access_fraction(&p, &bind);
        assert!(f > 0.0, "QPSCD must show random accesses, got {f}");
    }
}
