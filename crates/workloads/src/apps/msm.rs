//! MSMBuilder trajectory clustering (Figure 14).
//!
//! The performance-critical kernel assigns every trajectory frame to its
//! nearest cluster center: a *triply* nested pattern (frames × centers ×
//! coordinates) where each individual domain is small (~100 elements, per
//! the paper). A 1D mapping launches only `frames` threads and starves the
//! GPU; MultiDim parallelizes the product of the domains.

use crate::data;
use crate::runner::{HostRun, Outcome, WorkloadError};
use multidim::prelude::*;
use multidim_ir::{ArrayId, ReduceOp, SymId};
use std::collections::HashMap;

/// Distance matrix `dist[p][k] = Σ_d (x[p][d] - c[k][d])²` — the clustering
/// inner loop (squared Euclidean, as MSMBuilder's RMSD stand-in).
pub fn distance_program() -> (Program, SymId, SymId, SymId, ArrayId, ArrayId) {
    let mut b = ProgramBuilder::new("msm_distances");
    let p_ = b.sym("P");
    let k_ = b.sym("K");
    let d_ = b.sym("D");
    let x = b.input("frames", ScalarKind::F32, &[Size::sym(p_), Size::sym(d_)]);
    let c = b.input("centers", ScalarKind::F32, &[Size::sym(k_), Size::sym(d_)]);
    let root = b.map(Size::sym(p_), |b, p| {
        b.map(Size::sym(k_), |b, k| {
            b.reduce(Size::sym(d_), ReduceOp::Add, |b, d| {
                let diff = b.read(x, &[p.into(), d.into()]) - b.read(c, &[k.into(), d.into()]);
                diff.clone() * diff
            })
        })
    });
    let prog = b
        .finish_map(root, "dist", ScalarKind::F32)
        .expect("valid msm program");
    (prog, p_, k_, d_, x, c)
}

/// Assignment: nearest center per frame (min-reduce over the distance row).
pub fn assign_program() -> (Program, SymId, SymId, ArrayId) {
    let mut b = ProgramBuilder::new("msm_assign");
    let p_ = b.sym("P");
    let k_ = b.sym("K");
    let dist = b.input("dist", ScalarKind::F32, &[Size::sym(p_), Size::sym(k_)]);
    let root = b.map(Size::sym(p_), |b, p| {
        b.reduce(Size::sym(k_), ReduceOp::Min, |b, k| {
            b.read(dist, &[p.into(), k.into()])
        })
    });
    let prog = b
        .finish_map(root, "best", ScalarKind::F32)
        .expect("valid assign program");
    (prog, p_, k_, dist)
}

/// Run one clustering iteration (distances + assignment).
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(
    strategy: Strategy,
    frames: usize,
    clusters: usize,
    dims: usize,
) -> Result<Outcome, WorkloadError> {
    let (dp, p_, k_, d_, x, c) = distance_program();
    let (ap, ap_p, ap_k, dist_in) = assign_program();
    let (fx, fc) = data::trajectories(frames, clusters, dims, 23);

    let mut bind = Bindings::new();
    bind.bind(p_, frames as i64);
    bind.bind(k_, clusters as i64);
    bind.bind(d_, dims as i64);

    let mut run = HostRun::with_strategy(strategy);
    let inputs: HashMap<_, _> = [(x, fx), (c, fc)].into_iter().collect();
    let o1 = run.launch(&dp, &bind, &inputs)?;
    let dist = o1[&dp.output.unwrap()].clone();

    let mut bind2 = Bindings::new();
    bind2.bind(ap_p, frames as i64);
    bind2.bind(ap_k, clusters as i64);
    let i2: HashMap<_, _> = [(dist_in, dist)].into_iter().collect();
    let o2 = run.launch(&ap, &bind2, &i2)?;
    Ok(run.finish(o2))
}

/// CPU-baseline estimate (Figure 14's multicore bar; the real reference is
/// hand-vectorized SSE3 C++ — our [`CpuSpec`] models that throughput).
pub fn cpu_seconds(frames: usize, clusters: usize, dims: usize) -> f64 {
    let (dp, p_, k_, d_, x, c) = distance_program();
    let mut bind = Bindings::new();
    bind.bind(p_, frames as i64);
    bind.bind(k_, clusters as i64);
    bind.bind(d_, dims as i64);
    let (fx, fc) = data::trajectories(frames, clusters, dims, 23);
    let inputs: HashMap<_, _> = [(x, fx), (c, fc)].into_iter().collect();
    let cpu = CpuSpec::dual_xeon_x5550();
    let (_, est) = multidim_sim::run_cpu(&dp, &cpu, &bind, &inputs).expect("cpu baseline");
    est.seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_level_nest_verifies() {
        let (dp, p_, k_, d_, x, c) = distance_program();
        let mut bind = Bindings::new();
        bind.bind(p_, 12);
        bind.bind(k_, 8);
        bind.bind(d_, 10);
        let (fx, fc) = data::trajectories(12, 8, 10, 23);
        let inputs: HashMap<_, _> = [(x, fx), (c, fc)].into_iter().collect();
        let mut run = HostRun::with_strategy(Strategy::MultiDim).verifying();
        run.launch(&dp, &bind, &inputs).unwrap();
    }

    #[test]
    fn assignment_picks_minimum() {
        let o = run(Strategy::MultiDim, 16, 6, 8).unwrap();
        let (ap, ..) = assign_program();
        let best = &o.outputs[&ap.output.unwrap()];
        assert_eq!(best.len(), 16);
        assert!(best.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn small_domains_starve_1d() {
        // frames=96 threads only under 1D: far below device capacity.
        let m = run(Strategy::MultiDim, 96, 64, 64).unwrap();
        let o = run(Strategy::OneD, 96, 64, 64).unwrap();
        assert!(
            o.gpu_seconds > 2.0 * m.gpu_seconds,
            "1D {} vs MultiDim {}",
            o.gpu_seconds,
            m.gpu_seconds
        );
    }
}
