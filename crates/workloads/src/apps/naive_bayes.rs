//! Naive Bayes spam-classifier training (Figure 14).
//!
//! Two statistics over the same document–term matrix with *opposite*
//! optimal access orders: words-per-document walks rows (sequential in the
//! word index), documents-per-word walks columns (sequential in the
//! document index only if the *outer* pattern is the word). A 1D mapping
//! can satisfy at most one of them; MultiDim flips dimensions per kernel.
//! This experiment also charges the one-time PCIe transfer of the training
//! matrix (Section VI-E).

use crate::data;
use crate::runner::{HostRun, Outcome, WorkloadError};
use multidim::prelude::*;
use multidim_ir::{ArrayId, ReduceOp, SymId};
use std::collections::HashMap;

/// Kernel 1: `wordsPerDoc[d] = Σ_w m[d][w]`.
pub fn words_per_doc_program() -> (Program, SymId, SymId, ArrayId) {
    let mut b = ProgramBuilder::new("nb_words_per_doc");
    let d = b.sym("D");
    let w = b.sym("W");
    let m = b.input("m", ScalarKind::F32, &[Size::sym(d), Size::sym(w)]);
    let root = b.map(Size::sym(d), |b, doc| {
        b.reduce(Size::sym(w), ReduceOp::Add, |b, word| {
            b.read(m, &[doc.into(), word.into()])
        })
    });
    let p = b
        .finish_map(root, "words_per_doc", ScalarKind::F32)
        .expect("valid nb program");
    (p, d, w, m)
}

/// Kernel 2: per-word spam/ham document counts:
/// `spam[w] = Σ_d m[d][w]·label[d]` (and ham via `1-label`).
pub fn docs_per_word_program() -> (Program, SymId, SymId, ArrayId, ArrayId) {
    let mut b = ProgramBuilder::new("nb_docs_per_word");
    let d = b.sym("D");
    let w = b.sym("W");
    let m = b.input("m", ScalarKind::F32, &[Size::sym(d), Size::sym(w)]);
    let labels = b.input("labels", ScalarKind::F32, &[Size::sym(d)]);
    let root = b.map(Size::sym(w), |b, word| {
        b.reduce(Size::sym(d), ReduceOp::Add, |b, doc| {
            b.read(m, &[doc.into(), word.into()]) * b.read(labels, &[doc.into()])
        })
    });
    let p = b
        .finish_map(root, "spam_counts", ScalarKind::F32)
        .expect("valid nb program");
    (p, d, w, m, labels)
}

/// Result of a training run.
#[derive(Debug, Clone)]
pub struct NbOutcome {
    /// Kernel time only.
    pub gpu_seconds: f64,
    /// Kernel time plus the input-matrix PCIe transfer (Figure 14's
    /// "Data Transfer" stack).
    pub gpu_seconds_with_transfer: f64,
    /// Checksum over both outputs.
    pub checksum: f64,
}

/// Train over a `docs × words` corpus.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(strategy: Strategy, docs: usize, words: usize) -> Result<NbOutcome, WorkloadError> {
    let (p1, d1, w1, m1) = words_per_doc_program();
    let (p2, d2, w2, m2, lab2) = docs_per_word_program();
    let (m, labels) = data::document_matrix(docs, words, 0.1, 31);

    let mut run = HostRun::with_strategy(strategy);
    let mut b1 = Bindings::new();
    b1.bind(d1, docs as i64);
    b1.bind(w1, words as i64);
    let i1: HashMap<_, _> = [(m1, m.clone())].into_iter().collect();
    let o1 = run.launch(&p1, &b1, &i1)?;

    let mut b2 = Bindings::new();
    b2.bind(d2, docs as i64);
    b2.bind(w2, words as i64);
    let i2: HashMap<_, _> = [(m2, m.clone()), (lab2, labels)].into_iter().collect();
    let o2 = run.launch(&p2, &b2, &i2)?;

    let gpu_seconds = run.gpu_seconds();
    let transfer = multidim_sim::transfer_seconds((docs * words) as u64 * 4);
    let checksum: f64 =
        o1[&p1.output.unwrap()].iter().sum::<f64>() + o2[&p2.output.unwrap()].iter().sum::<f64>();
    Ok(NbOutcome {
        gpu_seconds,
        gpu_seconds_with_transfer: gpu_seconds + transfer,
        checksum,
    })
}

/// CPU-baseline estimate for both kernels.
pub fn cpu_seconds(docs: usize, words: usize) -> f64 {
    let cpu = CpuSpec::dual_xeon_x5550();
    let (m, labels) = data::document_matrix(docs, words, 0.1, 31);

    let (p1, d1, w1, m1) = words_per_doc_program();
    let mut b1 = Bindings::new();
    b1.bind(d1, docs as i64);
    b1.bind(w1, words as i64);
    let i1: HashMap<_, _> = [(m1, m.clone())].into_iter().collect();
    let (_, e1) = multidim_sim::run_cpu(&p1, &cpu, &b1, &i1).expect("cpu baseline");

    let (p2, d2, w2, m2, lab2) = docs_per_word_program();
    let mut b2 = Bindings::new();
    b2.bind(d2, docs as i64);
    b2.bind(w2, words as i64);
    let i2: HashMap<_, _> = [(m2, m), (lab2, labels)].into_iter().collect();
    let (_, e2) = multidim_sim::run_cpu(&p2, &cpu, &b2, &i2).expect("cpu baseline");
    e1.seconds + e2.seconds
}

/// Convenience wrapper matching the other apps' signature (no transfer).
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run_outcome(
    strategy: Strategy,
    docs: usize,
    words: usize,
) -> Result<Outcome, WorkloadError> {
    let nb = run(strategy, docs, words)?;
    Ok(Outcome {
        gpu_seconds: nb.gpu_seconds,
        launches: 2,
        checksum: nb.checksum,
        outputs: HashMap::new(),
        metrics: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_verify() {
        let (p2, d2, w2, m2, lab2) = docs_per_word_program();
        let mut bind = Bindings::new();
        bind.bind(d2, 20);
        bind.bind(w2, 30);
        let (m, labels) = data::document_matrix(20, 30, 0.2, 31);
        let inputs: HashMap<_, _> = [(m2, m), (lab2, labels)].into_iter().collect();
        let mut run = HostRun::with_strategy(Strategy::MultiDim).verifying();
        run.launch(&p2, &bind, &inputs).unwrap();
    }

    #[test]
    fn opposite_dims_chosen_per_kernel() {
        use multidim_mapping::analyze;
        let gpu = GpuSpec::tesla_k20c();
        let (p1, d1, w1, _) = words_per_doc_program();
        let mut b1 = Bindings::new();
        b1.bind(d1, 2048);
        b1.bind(w1, 4096);
        let a1 = analyze(&p1, &b1, &gpu);
        // Rows walk: inner (word) index sequential -> level 1 on x.
        assert!(a1.decision.level(1).dim.is_x());

        let (p2, d2, w2, _, _) = docs_per_word_program();
        let mut b2 = Bindings::new();
        b2.bind(d2, 2048);
        b2.bind(w2, 4096);
        let a2 = analyze(&p2, &b2, &gpu);
        // Column walk: outer (word) index sequential -> level 0 on x.
        assert!(a2.decision.level(0).dim.is_x());
    }

    #[test]
    fn transfer_included() {
        let nb = run(Strategy::MultiDim, 64, 128).unwrap();
        assert!(nb.gpu_seconds_with_transfer > nb.gpu_seconds);
    }
}
