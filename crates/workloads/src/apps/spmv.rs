//! Sparse matrix–vector multiply (CSR) — the canonical skewed nested
//! pattern (an extension workload; the same shape underlies PageRank and
//! the graph kernels of Hong et al.).
//!
//! `y[i] = Σ_j vals[j] · x[col[j]]` over row `i`'s nonzeros: the outer map
//! walks rows, the inner reduce walks a dynamically sized nonzero range
//! with a *gather* from `x` — coalescible on the CSR arrays, random on
//! `x`.

use crate::data::CsrGraph;
use crate::runner::{HostRun, Outcome, WorkloadError};
use multidim::prelude::*;
use multidim_ir::{ArrayId, ReduceOp, SymId};
use std::collections::HashMap;

/// The SpMV program. Arrays: CSR (`row_ptr`, `col_idx`, `vals`) and the
/// dense vector `x`.
#[allow(clippy::type_complexity)]
pub fn program(mean_nnz_hint: i64) -> (Program, SymId, SymId, ArrayId, ArrayId, ArrayId, ArrayId) {
    named_program("spmv", mean_nnz_hint)
}

/// The same program under the name `spmv_zipf` — the catalog's
/// Zipf-degree instance, sized so the launch-consolidation stage
/// triggers (catalog names must be unique for unambiguous reports).
#[allow(clippy::type_complexity)]
pub fn zipf_program(
    mean_nnz_hint: i64,
) -> (Program, SymId, SymId, ArrayId, ArrayId, ArrayId, ArrayId) {
    named_program("spmv_zipf", mean_nnz_hint)
}

#[allow(clippy::type_complexity)]
fn named_program(
    name: &str,
    mean_nnz_hint: i64,
) -> (Program, SymId, SymId, ArrayId, ArrayId, ArrayId, ArrayId) {
    let mut b = ProgramBuilder::new(name);
    let n = b.sym("N");
    let e = b.sym("E");
    let row_ptr = b.input("row_ptr", ScalarKind::I32, &[Size::sym(n) + Size::from(1)]);
    let col_idx = b.input("col_idx", ScalarKind::I32, &[Size::sym(e)]);
    let vals = b.input("vals", ScalarKind::F32, &[Size::sym(e)]);
    let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
    let root = b.map(Size::sym(n), |b, row| {
        let start = b.read(row_ptr, &[row.into()]);
        let end = b.read(row_ptr, &[Expr::var(row) + Expr::lit(1.0)]);
        b.reduce_dyn(end - start.clone(), mean_nnz_hint, ReduceOp::Add, |b, j| {
            let nz = start.clone() + Expr::var(j);
            b.read(vals, std::slice::from_ref(&nz)) * b.read(x, &[b.read(col_idx, &[nz])])
        })
    });
    let p = b
        .finish_map(root, "y", ScalarKind::F32)
        .expect("valid spmv");
    (p, n, e, row_ptr, col_idx, vals, x)
}

/// Run SpMV over a synthetic power-law sparsity structure.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(strategy: Strategy, rows: usize, mean_nnz: usize) -> Result<Outcome, WorkloadError> {
    let g = CsrGraph::power_law(rows, mean_nnz, 51);
    let mean = (g.edges / g.nodes.max(1)).max(1) as i64;
    let (p, n, e, row_ptr, col_idx, vals, x) = program(mean);
    let mut bind = Bindings::new();
    bind.bind(n, g.nodes as i64);
    bind.bind(e, g.edges as i64);
    let vs: Vec<f64> = (0..g.edges).map(|i| 1.0 + (i % 3) as f64 * 0.5).collect();
    let xs: Vec<f64> = (0..g.nodes).map(|i| (i % 7) as f64 * 0.25).collect();
    let inputs: HashMap<_, _> = [
        (row_ptr, g.row_ptr.clone()),
        (col_idx, g.col_idx.clone()),
        (vals, vs),
        (x, xs),
    ]
    .into_iter()
    .collect();
    let mut run = HostRun::with_strategy(strategy);
    let out = run.launch(&p, &bind, &inputs)?;
    Ok(run.finish(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference() {
        let g = CsrGraph::power_law(150, 6, 51);
        let mean = (g.edges / g.nodes).max(1) as i64;
        let (p, n, e, row_ptr, col_idx, vals, x) = program(mean);
        let mut bind = Bindings::new();
        bind.bind(n, g.nodes as i64);
        bind.bind(e, g.edges as i64);
        let vs: Vec<f64> = (0..g.edges).map(|i| 1.0 + (i % 3) as f64 * 0.5).collect();
        let xs: Vec<f64> = (0..g.nodes).map(|i| (i % 7) as f64 * 0.25).collect();
        let inputs: HashMap<_, _> = [
            (row_ptr, g.row_ptr.clone()),
            (col_idx, g.col_idx.clone()),
            (vals, vs),
            (x, xs),
        ]
        .into_iter()
        .collect();
        let mut run = HostRun::with_strategy(Strategy::MultiDim).verifying();
        run.launch(&p, &bind, &inputs).unwrap();
    }

    #[test]
    fn strategies_agree_on_skewed_structure() {
        let a = run(Strategy::MultiDim, 400, 12).unwrap();
        let b = run(Strategy::OneD, 400, 12).unwrap();
        let c = run(Strategy::WarpBased, 400, 12).unwrap();
        assert!((a.checksum - b.checksum).abs() < 1e-6 * a.checksum.abs().max(1.0));
        assert!((a.checksum - c.checksum).abs() < 1e-6 * a.checksum.abs().max(1.0));
    }

    #[test]
    fn dynamic_inner_forces_span_all() {
        let (p, n, e, ..) = program(8);
        let mut bind = Bindings::new();
        bind.bind(n, 100);
        bind.bind(e, 800);
        let exe = Compiler::new().compile(&p, &bind).unwrap();
        assert!(matches!(exe.mapping.level(1).span, Span::All));
    }
}
