//! Nearest Neighbor: the one-dimensional baseline of Figure 12.
//!
//! Computes the Euclidean distance from every record (latitude, longitude)
//! to a query point. Only one level of parallelism exists, so every
//! strategy degenerates to the same 1-D mapping; the paper uses it to
//! gauge raw generated-code quality against hand-written CUDA.

use crate::data;
use crate::runner::{HostRun, Outcome, WorkloadError};
use multidim::prelude::*;
use multidim_ir::{ArrayId, SymId};
use std::collections::HashMap;

/// The NN distance program over `N` (lat, lng) records.
pub fn program() -> (Program, SymId, ArrayId) {
    let mut b = ProgramBuilder::new("nn");
    let n = b.sym("N");
    let records = b.input("records", ScalarKind::F32, &[Size::sym(n), Size::from(2)]);
    let target_lat = 30.0;
    let target_lng = -90.0;
    let root = b.map(Size::sym(n), |b, i| {
        let dlat = b.read(records, &[i.into(), Expr::int(0)]) - Expr::lit(target_lat);
        let dlng = b.read(records, &[i.into(), Expr::int(1)]) - Expr::lit(target_lng);
        (dlat.clone() * dlat + dlng.clone() * dlng).sqrt()
    });
    let p = b
        .finish_map(root, "distances", ScalarKind::F32)
        .expect("valid nn program");
    (p, n, records)
}

/// Run NN over `n` records under `strategy`.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(strategy: Strategy, n: usize) -> Result<Outcome, WorkloadError> {
    let (p, ns, records) = program();
    let mut bind = Bindings::new();
    bind.bind(ns, n as i64);
    let recs: Vec<f64> = data::matrix(n, 2, 11)
        .iter()
        .map(|v| v * 180.0 - 90.0)
        .collect();
    let inputs: HashMap<_, _> = [(records, recs)].into_iter().collect();
    let mut run = HostRun::with_strategy(strategy);
    let out = run.launch(&p, &bind, &inputs)?;
    Ok(run.finish(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies_against_reference() {
        let (p, ns, records) = program();
        let mut bind = Bindings::new();
        bind.bind(ns, 100);
        let recs: Vec<f64> = data::matrix(100, 2, 11)
            .iter()
            .map(|v| v * 180.0 - 90.0)
            .collect();
        let inputs: HashMap<_, _> = [(records, recs)].into_iter().collect();
        let mut run = HostRun::with_strategy(Strategy::MultiDim).verifying();
        run.launch(&p, &bind, &inputs).unwrap();
    }

    #[test]
    fn one_level_strategies_tie() {
        let a = run(Strategy::MultiDim, 4096).unwrap();
        let b = run(Strategy::OneD, 4096).unwrap();
        let ratio = a.gpu_seconds / b.gpu_seconds;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }
}
