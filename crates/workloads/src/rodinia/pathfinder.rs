//! Pathfinder: dynamic-programming grid walk (Figure 12).
//!
//! Each DP row computes `dst[c] = wall[r][c] + min(src[c-1], src[c],
//! src[c+1])`; rows depend on each other, so the generated code launches
//! one kernel per row. The hand-optimized Rodinia version fuses `P` rows
//! per kernel through shared memory, trading duplicated halo work for
//! far fewer kernel launches and main-memory passes — the transformation
//! the paper explicitly leaves to the expert (Section VI-C). The fused
//! baseline lives in [`crate::manual::pathfinder_fused`].

use crate::data;
use crate::runner::{HostRun, Outcome, WorkloadError};
use multidim::prelude::*;
use multidim_ir::{ArrayId, SymId};
use std::collections::HashMap;

/// One DP row step over `C` columns: reads the previous row's costs and
/// this row's wall values.
pub fn step_program() -> (Program, SymId, ArrayId, ArrayId) {
    let mut b = ProgramBuilder::new("pathfinder_step");
    let c = b.sym("C");
    let src = b.input("src", ScalarKind::F32, &[Size::sym(c)]);
    let wall_row = b.input("wall_row", ScalarKind::F32, &[Size::sym(c)]);
    let root = b.map(Size::sym(c), |b, x| {
        let left = Expr::var(x).max(Expr::lit(1.0)) - Expr::lit(1.0);
        let right = (Expr::var(x) + Expr::lit(1.0)).min(Expr::size(Size::sym(c)) - Expr::lit(1.0));
        let best = b
            .read(src, &[left])
            .min(b.read(src, &[x.into()]))
            .min(b.read(src, &[right]));
        b.read(wall_row, &[x.into()]) + best
    });
    let p = b
        .finish_map(root, "dst", ScalarKind::F32)
        .expect("valid pathfinder program");
    (p, c, src, wall_row)
}

/// Run the DP over a `rows × cols` wall.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(strategy: Strategy, rows: usize, cols: usize) -> Result<Outcome, WorkloadError> {
    let (p, cs, src, wall_row) = step_program();
    let mut bind = Bindings::new();
    bind.bind(cs, cols as i64);
    let wall = data::matrix(rows, cols, 6);
    let mut costs: Vec<f64> = wall[..cols].to_vec();

    let mut run = HostRun::with_strategy(strategy);
    let mut outputs = HashMap::new();
    for r in 1..rows {
        let inputs: HashMap<_, _> = [
            (src, costs.clone()),
            (wall_row, wall[r * cols..(r + 1) * cols].to_vec()),
        ]
        .into_iter()
        .collect();
        outputs = run.launch(&p, &bind, &inputs)?;
        costs = outputs[&p.output.unwrap()].clone();
    }
    Ok(run.finish(outputs))
}

/// Host-side reference DP (for tests and the manual-baseline check).
pub fn reference(rows: usize, cols: usize) -> Vec<f64> {
    let wall = data::matrix(rows, cols, 6);
    let mut costs: Vec<f64> = wall[..cols].to_vec();
    for r in 1..rows {
        let prev = costs.clone();
        for x in 0..cols {
            let l = prev[x.saturating_sub(1)];
            let m = prev[x];
            let rr = prev[(x + 1).min(cols - 1)];
            costs[x] = wall[r * cols + x] + l.min(m).min(rr);
        }
    }
    costs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_dp() {
        let o = run(Strategy::MultiDim, 10, 64).unwrap();
        let (p, ..) = step_program();
        let got = &o.outputs[&p.output.unwrap()];
        let want = reference(10, 64);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9, "{g} vs {w}");
        }
    }

    #[test]
    fn launches_one_kernel_per_row() {
        let o = run(Strategy::MultiDim, 16, 32).unwrap();
        assert_eq!(o.launches, 15);
    }
}
