//! Gaussian Elimination (Figures 12 and 13).
//!
//! Rodinia's structure: for each pivot `k`, kernel *Fan1* computes the
//! column of multipliers below the pivot, and kernel *Fan2* updates the
//! trailing submatrix (a two-level nest). The paper highlights that the
//! *hand-optimized* Rodinia Fan2 was written with a non-coalescing index
//! order, which the analysis fixes automatically (Section VI-C) — we model
//! that manual version by forcing the flipped dimension assignment.

use crate::data;
use crate::rodinia::Traversal;
use crate::runner::{HostRun, Outcome, WorkloadError};
use multidim::prelude::*;
use multidim_ir::{ArrayId, Effect, SymId};
use std::collections::HashMap;

/// Fan1 for pivot step `k`: `mult[i] = m[i+k+1][k] / m[k][k]` over
/// `i ∈ 0..N-k-1`.
pub fn fan1_program() -> (Program, SymId, SymId, ArrayId) {
    let mut b = ProgramBuilder::new("gaussian_fan1");
    let n = b.sym("N");
    let k = b.sym("K");
    let m = b.input("m", ScalarKind::F32, &[Size::sym(n), Size::sym(n)]);
    let rows = Size::sym(n) - Size::sym(k) - Size::from(1);
    let root = b.map(rows, |b, i| {
        let row = Expr::var(i) + Expr::size(Size::sym(k)) + Expr::lit(1.0);
        let pivot = b.read(m, &[Expr::size(Size::sym(k)), Expr::size(Size::sym(k))]);
        b.read(m, &[row, Expr::size(Size::sym(k))]) / pivot
    });
    let p = b
        .finish_map(root, "mult", ScalarKind::F32)
        .expect("valid fan1 program");
    (p, n, k, m)
}

/// Fan2 for pivot step `k`: update the trailing `(N-k-1) × (N-k)`
/// submatrix in place. `traversal` selects which index the outer pattern
/// iterates (the paper's R/C variants).
pub fn fan2_program(traversal: Traversal) -> (Program, SymId, SymId, ArrayId, ArrayId) {
    let mut b = ProgramBuilder::new(match traversal {
        Traversal::RowMajor => "gaussian_fan2",
        Traversal::ColMajor => "gaussian_fan2_c",
    });
    let n = b.sym("N");
    let k = b.sym("K");
    // Updated in place: seeded output.
    let m = b.output("m", ScalarKind::F32, &[Size::sym(n), Size::sym(n)]);
    let mult = b.input("mult", ScalarKind::F32, &[Size::sym(n)]);
    let rows = Size::sym(n) - Size::sym(k) - Size::from(1);
    let cols = Size::sym(n) - Size::sym(k);

    let eff = |b: &mut ProgramBuilder, i: multidim_ir::VarId, j: multidim_ir::VarId| {
        let row = Expr::var(i) + Expr::size(Size::sym(k)) + Expr::lit(1.0);
        let col = Expr::var(j) + Expr::size(Size::sym(k));
        let update = b.read(m, &[row.clone(), col.clone()])
            - b.read(mult, &[i.into()]) * b.read(m, &[Expr::size(Size::sym(k)), col.clone()]);
        vec![Effect::Write {
            cond: None,
            array: m,
            idx: vec![row, col],
            value: update,
        }]
    };

    let root = match traversal {
        Traversal::RowMajor => b.foreach(rows, |b, i| {
            let inner = b.foreach(cols, |b, j| eff(b, i, j));
            vec![b.nested_effect(inner)]
        }),
        Traversal::ColMajor => b.foreach(cols, |b, j| {
            let inner = b.foreach(rows, |b, i| eff(b, i, j));
            vec![b.nested_effect(inner)]
        }),
    };
    let p = b.finish_foreach(root).expect("valid fan2 program");
    (p, n, k, m, mult)
}

/// How the Fan2 kernel is mapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaussianMode {
    /// The compiler's choice.
    Strategy(Strategy),
    /// The hand-optimized Rodinia kernel: MultiDim-like blocking but with
    /// the dimension assignment the original authors wrote — which does
    /// not coalesce (Section VI-C's "expert programmers can make incorrect
    /// decisions").
    ManualRodinia,
}

/// Run Gaussian elimination on an `n × n` system.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(traversal: Traversal, mode: GaussianMode, n: usize) -> Result<Outcome, WorkloadError> {
    let (p1, n1, k1, m1) = fan1_program();
    let (p2, n2, k2, m2, mult2) = fan2_program(traversal);

    let mut m = data::spd_matrix(n, 5);
    let compiler = match mode {
        GaussianMode::Strategy(s) => Compiler::new().strategy(s),
        GaussianMode::ManualRodinia => Compiler::new(),
    };
    let mut run = HostRun::new(compiler);

    let mut outputs = HashMap::new();
    for k in 0..n - 1 {
        let mut b1 = Bindings::new();
        b1.bind(n1, n as i64);
        b1.bind(k1, k as i64);
        let i1: HashMap<_, _> = [(m1, m.clone())].into_iter().collect();
        let o1 = run.launch(&p1, &b1, &i1)?;
        let mut mult = o1[&p1.output.unwrap()].clone();
        mult.resize(n, 0.0);

        let mut b2 = Bindings::new();
        b2.bind(n2, n as i64);
        b2.bind(k2, k as i64);
        let i2: HashMap<_, _> = [(m2, m.clone()), (mult2, mult)].into_iter().collect();
        outputs = match mode {
            GaussianMode::Strategy(_) => run.launch(&p2, &b2, &i2)?,
            GaussianMode::ManualRodinia => {
                // Flip the compiler-chosen dimensions to reproduce the
                // Rodinia kernel's non-coalescing assignment.
                let auto = Compiler::new().compile(&p2, &b2)?;
                let mut levels = auto.mapping.levels().to_vec();
                let d0 = levels[0].dim;
                levels[0].dim = levels[1].dim;
                levels[1].dim = d0;
                let flipped = MappingDecision::new(levels);
                let exe = Compiler::new().compile_with_mapping(&p2, &b2, flipped)?;
                let rep = exe
                    .run(&i2)
                    .map_err(|e| crate::runner::WorkloadError(e.to_string()))?;
                run.charge_seconds(rep.gpu_seconds);
                rep.outputs
            }
        };
        m = outputs[&m2].clone();
    }
    Ok(run.finish(outputs))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Full pipeline vs a plain host-side elimination.
    #[test]
    fn eliminates_below_diagonal() {
        let n = 12;
        let o = run(
            Traversal::RowMajor,
            GaussianMode::Strategy(Strategy::MultiDim),
            n,
        )
        .unwrap();
        let (_, _, _, m2, _) = fan2_program(Traversal::RowMajor);
        let m = &o.outputs[&m2];
        for i in 1..n {
            for j in 0..i.min(n) {
                assert!(
                    m[i * n + j].abs() < 1e-6,
                    "m[{i}][{j}] = {} not eliminated",
                    m[i * n + j]
                );
            }
        }
    }

    #[test]
    fn fan2_verifies() {
        for t in [Traversal::RowMajor, Traversal::ColMajor] {
            let (p2, n2, k2, m2, mult2) = fan2_program(t);
            let mut bind = Bindings::new();
            bind.bind(n2, 10);
            bind.bind(k2, 3);
            let inputs: HashMap<_, _> =
                [(m2, data::spd_matrix(10, 1)), (mult2, data::vector(10, 2))]
                    .into_iter()
                    .collect();
            let mut run = HostRun::with_strategy(Strategy::MultiDim).verifying();
            run.launch(&p2, &bind, &inputs).unwrap();
        }
    }

    #[test]
    fn all_modes_agree_numerically() {
        let n = 10;
        let a = run(
            Traversal::RowMajor,
            GaussianMode::Strategy(Strategy::MultiDim),
            n,
        )
        .unwrap();
        let b = run(
            Traversal::RowMajor,
            GaussianMode::Strategy(Strategy::OneD),
            n,
        )
        .unwrap();
        let c = run(Traversal::RowMajor, GaussianMode::ManualRodinia, n).unwrap();
        assert!((a.checksum - b.checksum).abs() < 1e-6);
        assert!((a.checksum - c.checksum).abs() < 1e-6);
    }
}
