//! Mandelbrot: a two-level map with a data-dependent sequential escape
//! iteration per pixel (Figures 12, 13, and the Figure 17 score sweep).

use crate::rodinia::Traversal;
use crate::runner::{HostRun, Outcome, WorkloadError};
use multidim::prelude::*;
use multidim_ir::{SymId, VarId};
use std::collections::HashMap;

/// Maximum escape iterations.
pub const MAX_ITER: i64 = 64;

/// The Mandelbrot program over an `H × W` pixel grid. `traversal` selects
/// which axis the outer map walks.
pub fn program(traversal: Traversal) -> (Program, SymId, SymId) {
    let mut b = ProgramBuilder::new(match traversal {
        Traversal::RowMajor => "mandelbrot",
        Traversal::ColMajor => "mandelbrot_c",
    });
    let h = b.sym("H");
    let w = b.sym("W");

    let body = |b: &mut ProgramBuilder, y: VarId, x: VarId| {
        // c = (x/W * 3.5 - 2.5, y/H * 2 - 1)
        let cr = Expr::var(x) / Expr::size(Size::sym(w)) * Expr::lit(3.5) - Expr::lit(2.5);
        let ci = Expr::var(y) / Expr::size(Size::sym(h)) * Expr::lit(2.0) - Expr::lit(1.0);
        b.iterate(
            Expr::int(MAX_ITER),
            vec![Expr::lit(0.0), Expr::lit(0.0), Expr::lit(0.0)],
            |_, vars| {
                let (zr, zi, k) = (Expr::var(vars[0]), Expr::var(vars[1]), Expr::var(vars[2]));
                let cond = (zr.clone() * zr.clone() + zi.clone() * zi.clone()).lt(Expr::lit(4.0));
                let nzr = zr.clone() * zr.clone() - zi.clone() * zi.clone() + cr.clone();
                let nzi = Expr::lit(2.0) * zr * zi + ci.clone();
                (cond, vec![nzr, nzi, k.clone() + Expr::lit(1.0)], k)
            },
        )
    };

    let root = match traversal {
        Traversal::RowMajor => b.map(Size::sym(h), |b, y| {
            b.map(Size::sym(w), |b, x| body(b, y, x))
        }),
        Traversal::ColMajor => b.map(Size::sym(w), |b, x| {
            b.map(Size::sym(h), |b, y| body(b, y, x))
        }),
    };
    let p = b
        .finish_map(root, "iters", ScalarKind::I32)
        .expect("valid mandelbrot program");
    (p, h, w)
}

/// Run Mandelbrot on an `h × w` grid under `strategy`.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(
    traversal: Traversal,
    strategy: Strategy,
    h: usize,
    w: usize,
) -> Result<Outcome, WorkloadError> {
    let (p, hs, ws) = program(traversal);
    let mut bind = Bindings::new();
    bind.bind(hs, h as i64);
    bind.bind(ws, w as i64);
    let mut run = HostRun::with_strategy(strategy);
    let out = run.launch(&p, &bind, &HashMap::new())?;
    Ok(run.finish(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies_against_reference() {
        for t in [Traversal::RowMajor, Traversal::ColMajor] {
            let (p, hs, ws) = program(t);
            let mut bind = Bindings::new();
            bind.bind(hs, 16);
            bind.bind(ws, 24);
            let mut run = HostRun::with_strategy(Strategy::MultiDim).verifying();
            run.launch(&p, &bind, &HashMap::new()).unwrap();
        }
    }

    #[test]
    fn interior_points_cap_out() {
        // Pixel at c ≈ (-0.5, 0): inside the set, must reach MAX_ITER.
        let o = run(Traversal::RowMajor, Strategy::MultiDim, 8, 8).unwrap();
        let (p, ..) = program(Traversal::RowMajor);
        let out = &o.outputs[&p.output.unwrap()];
        assert!(out.contains(&(MAX_ITER as f64)), "{out:?}");
        assert!(out.iter().any(|&v| v < MAX_ITER as f64));
    }

    #[test]
    fn traversals_compute_transposes() {
        let r = run(Traversal::RowMajor, Strategy::MultiDim, 12, 20).unwrap();
        let c = run(Traversal::ColMajor, Strategy::MultiDim, 12, 20).unwrap();
        assert!((r.checksum - c.checksum).abs() < 1e-9);
    }
}
