//! The Rodinia benchmark subset of Figures 12 and 13.
//!
//! Each application is written in the pattern DSL; where the paper
//! evaluates both a row-major (R) and column-major (C) traversal
//! (Figure 13), the modules take a [`Traversal`] parameter.

pub mod bfs;
pub mod gaussian;
pub mod hotspot;
pub mod lud;
pub mod mandelbrot;
pub mod nn;
pub mod pathfinder;
pub mod srad;

/// The order an application's nest walks a 2-D domain (Figure 13's R/C
/// variants): the data layout stays row-major; what changes is which index
/// the *outer* pattern iterates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Traversal {
    /// Outer pattern over rows (accesses sequential in the inner index).
    RowMajor,
    /// Outer pattern over columns (accesses sequential in the *outer*
    /// index — the case fixed strategies cannot coalesce).
    ColMajor,
}

impl Traversal {
    /// Suffix used in figure labels: `(R)` / `(C)`.
    pub fn label(self) -> &'static str {
        match self {
            Traversal::RowMajor => "(R)",
            Traversal::ColMajor => "(C)",
        }
    }
}
