//! Hotspot: iterative 2-D thermal stencil (Figures 12 and 13).
//!
//! Each step computes `out[r][c]` from the 5-point neighborhood of `temp`
//! plus a power term; the host loop swaps buffers between steps. The
//! hand-optimized Rodinia version fuses several steps into one kernel with
//! shared memory — a transformation the paper's compiler deliberately does
//! not attempt (Section VI-C), so the generated code launches one kernel
//! per step.

use crate::data;
use crate::rodinia::Traversal;
use crate::runner::{HostRun, Outcome, WorkloadError};
use multidim::prelude::*;
use multidim_ir::{ArrayId, SymId, VarId};
use std::collections::HashMap;

/// One stencil step over an `R × C` grid.
pub fn step_program(traversal: Traversal) -> (Program, SymId, SymId, ArrayId, ArrayId) {
    let mut b = ProgramBuilder::new(match traversal {
        Traversal::RowMajor => "hotspot",
        Traversal::ColMajor => "hotspot_c",
    });
    let r = b.sym("R");
    let c = b.sym("C");
    let temp = b.input("temp", ScalarKind::F32, &[Size::sym(r), Size::sym(c)]);
    let power = b.input("power", ScalarKind::F32, &[Size::sym(r), Size::sym(c)]);

    let body = |b: &mut ProgramBuilder, y: VarId, x: VarId| {
        // Clamped neighbor indices (boundary replication).
        let up = Expr::var(y).max(Expr::lit(1.0)) - Expr::lit(1.0);
        let down = (Expr::var(y) + Expr::lit(1.0)).min(Expr::size(Size::sym(r)) - Expr::lit(1.0));
        let left = Expr::var(x).max(Expr::lit(1.0)) - Expr::lit(1.0);
        let right = (Expr::var(x) + Expr::lit(1.0)).min(Expr::size(Size::sym(c)) - Expr::lit(1.0));
        let center = b.read(temp, &[y.into(), x.into()]);
        let n = b.read(temp, &[up, Expr::var(x)]);
        let s = b.read(temp, &[down, Expr::var(x)]);
        let w2 = b.read(temp, &[Expr::var(y), left]);
        let e = b.read(temp, &[Expr::var(y), right]);
        let p = b.read(power, &[y.into(), x.into()]);
        center.clone() + Expr::lit(0.1) * (n + s + w2 + e - Expr::lit(4.0) * center + p)
    };

    let root = match traversal {
        Traversal::RowMajor => b.map(Size::sym(r), |b, y| {
            b.map(Size::sym(c), |b, x| body(b, y, x))
        }),
        Traversal::ColMajor => b.map(Size::sym(c), |b, x| {
            b.map(Size::sym(r), |b, y| body(b, y, x))
        }),
    };
    let p = b
        .finish_map(root, "temp_out", ScalarKind::F32)
        .expect("valid hotspot program");
    (p, r, c, temp, power)
}

/// Run `steps` stencil iterations on an `rows × cols` grid.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(
    traversal: Traversal,
    strategy: Strategy,
    rows: usize,
    cols: usize,
    steps: usize,
) -> Result<Outcome, WorkloadError> {
    let (p, rs, cs, temp, power) = step_program(traversal);
    let mut bind = Bindings::new();
    bind.bind(rs, rows as i64);
    bind.bind(cs, cols as i64);
    let mut t = data::matrix(rows, cols, 3);
    let pw = data::matrix(rows, cols, 4);
    let out_id = p.output.expect("map output");

    let mut run = HostRun::with_strategy(strategy);
    let mut outputs = HashMap::new();
    for _ in 0..steps {
        let inputs: HashMap<_, _> = [(temp, t.clone()), (power, pw.clone())]
            .into_iter()
            .collect();
        outputs = run.launch(&p, &bind, &inputs)?;
        let next = match traversal {
            Traversal::RowMajor => outputs[&out_id].clone(),
            // Column traversal produces a transposed grid; transpose back
            // on the host (free — the next launch re-reads row-major).
            Traversal::ColMajor => transpose(&outputs[&out_id], cols, rows),
        };
        t = next;
    }
    Ok(run.finish(outputs))
}

fn transpose(m: &[f64], rows: usize, cols: usize) -> Vec<f64> {
    let mut out = vec![0.0; m.len()];
    for i in 0..rows {
        for j in 0..cols {
            out[j * rows + i] = m[i * cols + j];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies_against_reference() {
        for t in [Traversal::RowMajor, Traversal::ColMajor] {
            let (p, rs, cs, temp, power) = step_program(t);
            let mut bind = Bindings::new();
            bind.bind(rs, 12);
            bind.bind(cs, 20);
            let inputs: HashMap<_, _> = [
                (temp, data::matrix(12, 20, 3)),
                (power, data::matrix(12, 20, 4)),
            ]
            .into_iter()
            .collect();
            let mut run = HostRun::with_strategy(Strategy::MultiDim).verifying();
            run.launch(&p, &bind, &inputs).unwrap();
        }
    }

    #[test]
    fn traversals_agree_after_steps() {
        let a = run(Traversal::RowMajor, Strategy::MultiDim, 16, 16, 3).unwrap();
        let b = run(Traversal::ColMajor, Strategy::MultiDim, 16, 16, 3).unwrap();
        assert!((a.checksum - b.checksum).abs() < 1e-6 * a.checksum.abs().max(1.0));
    }

    #[test]
    fn heat_diffuses() {
        let o = run(Traversal::RowMajor, Strategy::MultiDim, 8, 8, 2).unwrap();
        assert!(o.checksum.is_finite());
        assert!(o.checksum > 0.0);
    }
}
