//! BFS: level-synchronous breadth-first search (Figure 12's text).
//!
//! Each level expands the frontier: for every frontier node, visit its
//! neighbors (a *dynamically sized* inner pattern — the CSR degree). The
//! Rodinia manual kernel only parallelizes over nodes (equivalent to the
//! 1D strategy); the analysis additionally parallelizes the neighbor loop,
//! improving load balance on skewed graphs (Section VI-C).

use crate::data::CsrGraph;
use crate::runner::{HostRun, Outcome, WorkloadError};
use multidim::prelude::*;
use multidim_ir::{ArrayId, Effect, SymId};
use std::collections::HashMap;

/// One frontier-expansion step. Arrays: CSR (`row_ptr`, `col_idx`),
/// `frontier` (0/1 mask), `visited` (0/1), `next` (output mask),
/// `cost` (distance labels, updated for newly reached nodes).
#[allow(clippy::type_complexity)]
pub fn step_program(
    mean_degree_hint: i64,
) -> (
    Program,
    SymId,
    SymId,
    ArrayId,
    ArrayId,
    ArrayId,
    ArrayId,
    ArrayId,
    ArrayId,
) {
    let mut b = ProgramBuilder::new("bfs_step");
    let n = b.sym("N");
    let e = b.sym("E");
    let row_ptr = b.input("row_ptr", ScalarKind::I32, &[Size::sym(n) + Size::from(1)]);
    let col_idx = b.input("col_idx", ScalarKind::I32, &[Size::sym(e)]);
    let frontier = b.input("frontier", ScalarKind::Bool, &[Size::sym(n)]);
    let visited = b.input("visited", ScalarKind::Bool, &[Size::sym(n)]);
    let next = b.output("next", ScalarKind::Bool, &[Size::sym(n)]);
    let cost = b.output("cost", ScalarKind::F32, &[Size::sym(n)]);
    let level = b.sym("LEVEL");

    let root = b.foreach(Size::sym(n), |b, node| {
        let start = b.read(row_ptr, &[node.into()]);
        let end = b.read(row_ptr, &[Expr::var(node) + Expr::lit(1.0)]);
        let in_frontier = b.read(frontier, &[node.into()]);
        let degree = end - start.clone();
        // Only frontier nodes expand; the guard discounts the inner work.
        let extent = in_frontier.clone() * degree;
        let inner = b.foreach_dyn(extent, mean_degree_hint, |b, j| {
            let nbr = b.read(col_idx, &[start.clone() + Expr::var(j)]);
            let unseen = Expr::lit(1.0) - b.read(visited, std::slice::from_ref(&nbr));
            vec![
                Effect::Write {
                    cond: Some(unseen.clone()),
                    array: next,
                    idx: vec![nbr.clone()],
                    value: Expr::lit(1.0),
                },
                Effect::Write {
                    cond: Some(unseen),
                    array: cost,
                    idx: vec![nbr],
                    value: Expr::size(Size::sym(level)),
                },
            ]
        });
        vec![b.nested_effect(inner)]
    });
    let p = b.finish_foreach(root).expect("valid bfs program");
    (p, n, e, row_ptr, col_idx, frontier, visited, next, cost)
}

/// Run BFS from node 0 over a power-law graph.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(strategy: Strategy, nodes: usize, mean_degree: usize) -> Result<Outcome, WorkloadError> {
    let g = CsrGraph::power_law(nodes, mean_degree, 13);
    run_on(strategy, &g)
}

/// Run BFS on a prepared graph.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run_on(strategy: Strategy, g: &CsrGraph) -> Result<Outcome, WorkloadError> {
    let mean = (g.edges / g.nodes.max(1)).max(1) as i64;
    let (p, ns, es, row_ptr, col_idx, fr, vis, next, cost) = step_program(mean);
    let level_sym = p.symbol_by_name("LEVEL").expect("level symbol").id;

    let mut frontier = vec![0.0; g.nodes];
    let mut visited = vec![0.0; g.nodes];
    let mut costs = vec![0.0; g.nodes];
    frontier[0] = 1.0;
    visited[0] = 1.0;

    let mut run = HostRun::with_strategy(strategy);
    let mut outputs;
    let mut level = 1i64;
    loop {
        let mut bind = Bindings::new();
        bind.bind(ns, g.nodes as i64);
        bind.bind(es, g.edges as i64);
        bind.bind(level_sym, level);
        let inputs: HashMap<_, _> = [
            (row_ptr, g.row_ptr.clone()),
            (col_idx, g.col_idx.clone()),
            (fr, frontier.clone()),
            (vis, visited.clone()),
            (cost, costs.clone()),
        ]
        .into_iter()
        .collect();
        outputs = run.launch(&p, &bind, &inputs)?;
        let next_mask = outputs[&next].clone();
        costs = outputs[&cost].clone();
        // Host-side frontier bookkeeping (Rodinia does the same).
        let mut any = false;
        for i in 0..g.nodes {
            let newly = next_mask[i] != 0.0 && visited[i] == 0.0;
            frontier[i] = if newly { 1.0 } else { 0.0 };
            if newly {
                visited[i] = 1.0;
                any = true;
            }
        }
        if !any || level > g.nodes as i64 {
            break;
        }
        level += 1;
    }
    outputs.insert(cost, costs);
    Ok(run.finish(outputs))
}

/// Host-side reference BFS distances.
pub fn reference(g: &CsrGraph) -> Vec<f64> {
    let mut dist = vec![0.0; g.nodes];
    let mut seen = vec![false; g.nodes];
    let mut q = std::collections::VecDeque::new();
    seen[0] = true;
    q.push_back(0usize);
    while let Some(u) = q.pop_front() {
        let (s, e) = (g.row_ptr[u] as usize, g.row_ptr[u + 1] as usize);
        for k in s..e {
            let v = g.col_idx[k] as usize;
            if !seen[v] {
                seen[v] = true;
                dist[v] = dist[u] + 1.0;
                q.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_match_reference() {
        let g = CsrGraph::power_law(120, 4, 13);
        let o = run_on(Strategy::MultiDim, &g).unwrap();
        let (p, .., cost) = step_program(4);
        let _ = p;
        let got = &o.outputs[&cost];
        let want = reference(&g);
        assert_eq!(got.len(), want.len());
        for (i, (gv, wv)) in got.iter().zip(&want).enumerate() {
            assert_eq!(gv, wv, "node {i}");
        }
    }

    #[test]
    fn strategies_agree() {
        let g = CsrGraph::power_law(80, 5, 21);
        let a = run_on(Strategy::MultiDim, &g).unwrap();
        let b = run_on(Strategy::OneD, &g).unwrap();
        assert_eq!(a.checksum, b.checksum);
    }
}
