//! SRAD: speckle-reducing anisotropic diffusion (Figures 12 and 13).
//!
//! Each iteration has two data-parallel phases over the image: (1) compute
//! the diffusion coefficient from local derivatives, (2) apply the
//! divergence update. Both are two-level nests over the image grid.

use crate::data;
use crate::rodinia::Traversal;
use crate::runner::{HostRun, Outcome, WorkloadError};
use multidim::prelude::*;
use multidim_ir::{ArrayId, SymId, VarId};
use std::collections::HashMap;

/// Phase 1: diffusion coefficient `c[r][cx]` from the image gradients.
pub fn coeff_program(traversal: Traversal) -> (Program, SymId, SymId, ArrayId) {
    let mut b = ProgramBuilder::new(match traversal {
        Traversal::RowMajor => "srad_coeff",
        Traversal::ColMajor => "srad_coeff_c",
    });
    let r = b.sym("R");
    let c = b.sym("C");
    let img = b.input("img", ScalarKind::F32, &[Size::sym(r), Size::sym(c)]);

    let body = |b: &mut ProgramBuilder, y: VarId, x: VarId| {
        let up = Expr::var(y).max(Expr::lit(1.0)) - Expr::lit(1.0);
        let down = (Expr::var(y) + Expr::lit(1.0)).min(Expr::size(Size::sym(r)) - Expr::lit(1.0));
        let left = Expr::var(x).max(Expr::lit(1.0)) - Expr::lit(1.0);
        let right = (Expr::var(x) + Expr::lit(1.0)).min(Expr::size(Size::sym(c)) - Expr::lit(1.0));
        let jc = b.read(img, &[y.into(), x.into()]);
        let dn = b.read(img, &[up, Expr::var(x)]) - jc.clone();
        let ds = b.read(img, &[down, Expr::var(x)]) - jc.clone();
        let dw = b.read(img, &[Expr::var(y), left]) - jc.clone();
        let de = b.read(img, &[Expr::var(y), right]) - jc.clone();
        let g2 = (dn.clone() * dn + ds.clone() * ds + dw.clone() * dw + de.clone() * de)
            / (jc.clone() * jc + Expr::lit(1e-6));
        // c = 1 / (1 + g2)
        Expr::lit(1.0) / (Expr::lit(1.0) + g2)
    };

    let root = match traversal {
        Traversal::RowMajor => b.map(Size::sym(r), |b, y| {
            b.map(Size::sym(c), |b, x| body(b, y, x))
        }),
        Traversal::ColMajor => b.map(Size::sym(c), |b, x| {
            b.map(Size::sym(r), |b, y| body(b, y, x))
        }),
    };
    let p = b
        .finish_map(root, "coeff", ScalarKind::F32)
        .expect("valid srad coeff program");
    (p, r, c, img)
}

/// Phase 2: divergence update `img'[r][c] = img + λ·div`.
pub fn update_program(traversal: Traversal) -> (Program, SymId, SymId, ArrayId, ArrayId) {
    let mut b = ProgramBuilder::new(match traversal {
        Traversal::RowMajor => "srad_update",
        Traversal::ColMajor => "srad_update_c",
    });
    let r = b.sym("R");
    let c = b.sym("C");
    let img = b.input("img", ScalarKind::F32, &[Size::sym(r), Size::sym(c)]);
    // Phase 1's coefficient grid; logically [R, C] regardless of traversal
    // (the host transposes when needed).
    let coeff = b.input("coeff", ScalarKind::F32, &[Size::sym(r), Size::sym(c)]);

    let body = |b: &mut ProgramBuilder, y: VarId, x: VarId| {
        let down = (Expr::var(y) + Expr::lit(1.0)).min(Expr::size(Size::sym(r)) - Expr::lit(1.0));
        let right = (Expr::var(x) + Expr::lit(1.0)).min(Expr::size(Size::sym(c)) - Expr::lit(1.0));
        let jc = b.read(img, &[y.into(), x.into()]);
        let cc = b.read(coeff, &[y.into(), x.into()]);
        let cs = b.read(coeff, &[down.clone(), Expr::var(x)]);
        let ce = b.read(coeff, &[Expr::var(y), right.clone()]);
        let js = b.read(img, &[down, Expr::var(x)]);
        let je = b.read(img, &[Expr::var(y), right]);
        let div = (cs + cc.clone()) * Expr::lit(0.5) * (js - jc.clone())
            + (ce + cc) * Expr::lit(0.5) * (je - jc.clone());
        jc + Expr::lit(0.125) * div
    };

    let root = match traversal {
        Traversal::RowMajor => b.map(Size::sym(r), |b, y| {
            b.map(Size::sym(c), |b, x| body(b, y, x))
        }),
        Traversal::ColMajor => b.map(Size::sym(c), |b, x| {
            b.map(Size::sym(r), |b, y| body(b, y, x))
        }),
    };
    let p = b
        .finish_map(root, "img_out", ScalarKind::F32)
        .expect("valid srad update program");
    (p, r, c, img, coeff)
}

/// Run `iters` SRAD iterations on an `rows × cols` image.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(
    traversal: Traversal,
    strategy: Strategy,
    rows: usize,
    cols: usize,
    iters: usize,
) -> Result<Outcome, WorkloadError> {
    let (cp, crs, ccs, cimg) = coeff_program(traversal);
    let (up, urs, ucs, uimg, ucoeff) = update_program(traversal);
    let mut cbind = Bindings::new();
    cbind.bind(crs, rows as i64);
    cbind.bind(ccs, cols as i64);
    let mut ubind = Bindings::new();
    ubind.bind(urs, rows as i64);
    ubind.bind(ucs, cols as i64);

    let mut img: Vec<f64> = data::matrix(rows, cols, 9)
        .iter()
        .map(|v| v + 0.5)
        .collect();
    let mut run = HostRun::with_strategy(strategy);
    let mut outputs = HashMap::new();
    for _ in 0..iters {
        let ci: HashMap<_, _> = [(cimg, img.clone())].into_iter().collect();
        let co = run.launch(&cp, &cbind, &ci)?;
        let coeff_grid = match traversal {
            Traversal::RowMajor => co[&cp.output.unwrap()].clone(),
            Traversal::ColMajor => transpose(&co[&cp.output.unwrap()], cols, rows),
        };
        let ui: HashMap<_, _> = [(uimg, img.clone()), (ucoeff, coeff_grid)]
            .into_iter()
            .collect();
        outputs = run.launch(&up, &ubind, &ui)?;
        img = match traversal {
            Traversal::RowMajor => outputs[&up.output.unwrap()].clone(),
            Traversal::ColMajor => transpose(&outputs[&up.output.unwrap()], cols, rows),
        };
    }
    Ok(run.finish(outputs))
}

fn transpose(m: &[f64], rows: usize, cols: usize) -> Vec<f64> {
    let mut out = vec![0.0; m.len()];
    for i in 0..rows {
        for j in 0..cols {
            out[j * rows + i] = m[i * cols + j];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_verify() {
        for t in [Traversal::RowMajor, Traversal::ColMajor] {
            let (cp, rs, cs, img) = coeff_program(t);
            let mut bind = Bindings::new();
            bind.bind(rs, 10);
            bind.bind(cs, 14);
            let inputs: HashMap<_, _> = [(img, data::matrix(10, 14, 9))].into_iter().collect();
            let mut run = HostRun::with_strategy(Strategy::MultiDim).verifying();
            run.launch(&cp, &bind, &inputs).unwrap();
        }
    }

    #[test]
    fn traversals_agree() {
        let a = run(Traversal::RowMajor, Strategy::MultiDim, 12, 12, 2).unwrap();
        let b = run(Traversal::ColMajor, Strategy::MultiDim, 12, 12, 2).unwrap();
        assert!((a.checksum - b.checksum).abs() < 1e-6 * a.checksum.abs().max(1.0));
    }

    #[test]
    fn coefficients_bounded() {
        let (cp, rs, cs, img) = coeff_program(Traversal::RowMajor);
        let mut bind = Bindings::new();
        bind.bind(rs, 8);
        bind.bind(cs, 8);
        let inputs: HashMap<_, _> = [(img, data::matrix(8, 8, 1))].into_iter().collect();
        let mut run = HostRun::with_strategy(Strategy::MultiDim);
        let o = run.launch(&cp, &bind, &inputs).unwrap();
        assert!(o[&cp.output.unwrap()]
            .iter()
            .all(|&c| (0.0..=1.0).contains(&c)));
    }
}
