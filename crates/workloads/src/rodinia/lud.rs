//! LUD: in-place LU decomposition (Figure 12).
//!
//! Per pivot `k`: scale the column below the pivot, then rank-1 update the
//! trailing submatrix. The generated code launches two kernels per pivot
//! and re-reads the submatrix from main memory each time; Rodinia's manual
//! version processes the matrix in shared-memory blocks
//! ([`crate::manual::lud_blocked`] models that).

use crate::data;
use crate::runner::{HostRun, Outcome, WorkloadError};
use multidim::prelude::*;
use multidim_ir::{ArrayId, Effect, SymId};
use std::collections::HashMap;

/// Column scaling for pivot `k`: `m[i+k+1][k] /= m[k][k]`.
pub fn scale_program() -> (Program, SymId, SymId, ArrayId) {
    let mut b = ProgramBuilder::new("lud_scale");
    let n = b.sym("N");
    let k = b.sym("K");
    let m = b.output("m", ScalarKind::F32, &[Size::sym(n), Size::sym(n)]);
    let rows = Size::sym(n) - Size::sym(k) - Size::from(1);
    let root = b.foreach(rows, |b, i| {
        let row = Expr::var(i) + Expr::size(Size::sym(k)) + Expr::lit(1.0);
        let kk = Expr::size(Size::sym(k));
        let v = b.read(m, &[row.clone(), kk.clone()]) / b.read(m, &[kk.clone(), kk.clone()]);
        vec![Effect::Write {
            cond: None,
            array: m,
            idx: vec![row, kk],
            value: v,
        }]
    });
    let p = b.finish_foreach(root).expect("valid lud scale program");
    (p, n, k, m)
}

/// Trailing update for pivot `k`:
/// `m[i][j] -= m[i][k] * m[k][j]` over the `(N-k-1)²` submatrix.
pub fn update_program() -> (Program, SymId, SymId, ArrayId) {
    let mut b = ProgramBuilder::new("lud_update");
    let n = b.sym("N");
    let k = b.sym("K");
    let m = b.output("m", ScalarKind::F32, &[Size::sym(n), Size::sym(n)]);
    let rows = Size::sym(n) - Size::sym(k) - Size::from(1);
    let root = b.foreach(rows.clone(), |b, i| {
        let inner = b.foreach(rows.clone(), |b, j| {
            let row = Expr::var(i) + Expr::size(Size::sym(k)) + Expr::lit(1.0);
            let col = Expr::var(j) + Expr::size(Size::sym(k)) + Expr::lit(1.0);
            let kk = Expr::size(Size::sym(k));
            let v = b.read(m, &[row.clone(), col.clone()])
                - b.read(m, &[row.clone(), kk.clone()]) * b.read(m, &[kk, col.clone()]);
            vec![Effect::Write {
                cond: None,
                array: m,
                idx: vec![row, col],
                value: v,
            }]
        });
        vec![b.nested_effect(inner)]
    });
    let p = b.finish_foreach(root).expect("valid lud update program");
    (p, n, k, m)
}

/// Panel-limited trailing update for blocked LU: like
/// [`update_program`] but columns stop at the panel edge `PEND`
/// (`m[i][j] -= m[i][k]·m[k][j]` for `j ∈ (k, PEND)`); rows still span the
/// whole trailing range. Used by the manual blocked baseline.
pub fn panel_update_program() -> (Program, SymId, SymId, SymId, ArrayId) {
    let mut b = ProgramBuilder::new("lud_panel_update");
    let n = b.sym("N");
    let k = b.sym("K");
    let pend = b.sym("PEND");
    let m = b.output("m", ScalarKind::F32, &[Size::sym(n), Size::sym(n)]);
    let rows = Size::sym(n) - Size::sym(k) - Size::from(1);
    let cols = Size::sym(pend) - Size::sym(k) - Size::from(1);
    let root = b.foreach(rows, |b, i| {
        let inner = b.foreach(cols.clone(), |b, j| {
            let row = Expr::var(i) + Expr::size(Size::sym(k)) + Expr::lit(1.0);
            let col = Expr::var(j) + Expr::size(Size::sym(k)) + Expr::lit(1.0);
            let kk = Expr::size(Size::sym(k));
            let v = b.read(m, &[row.clone(), col.clone()])
                - b.read(m, &[row.clone(), kk.clone()]) * b.read(m, &[kk, col.clone()]);
            vec![Effect::Write {
                cond: None,
                array: m,
                idx: vec![row, col],
                value: v,
            }]
        });
        vec![b.nested_effect(inner)]
    });
    let p = b.finish_foreach(root).expect("valid panel update program");
    (p, n, k, pend, m)
}

/// U-block update for blocked LU: rows *inside* the panel
/// (`r ∈ (k, PEND)`), columns *beyond* it (`j ∈ [PEND, N)`):
/// `m[r][j] -= m[r][k]·m[k][j]`.
pub fn u_update_program() -> (Program, SymId, SymId, SymId, ArrayId) {
    let mut b = ProgramBuilder::new("lud_u_update");
    let n = b.sym("N");
    let k = b.sym("K");
    let pend = b.sym("PEND");
    let m = b.output("m", ScalarKind::F32, &[Size::sym(n), Size::sym(n)]);
    let rows = Size::sym(pend) - Size::sym(k) - Size::from(1);
    let cols = Size::sym(n) - Size::sym(pend);
    let root = b.foreach(rows, |b, i| {
        let inner = b.foreach(cols.clone(), |b, j| {
            let row = Expr::var(i) + Expr::size(Size::sym(k)) + Expr::lit(1.0);
            let col = Expr::var(j) + Expr::size(Size::sym(pend));
            let kk = Expr::size(Size::sym(k));
            let v = b.read(m, &[row.clone(), col.clone()])
                - b.read(m, &[row.clone(), kk.clone()]) * b.read(m, &[kk, col.clone()]);
            vec![Effect::Write {
                cond: None,
                array: m,
                idx: vec![row, col],
                value: v,
            }]
        });
        vec![b.nested_effect(inner)]
    });
    let p = b.finish_foreach(root).expect("valid u update program");
    (p, n, k, pend, m)
}

/// Run the full decomposition of an `n × n` SPD matrix.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(strategy: Strategy, n: usize) -> Result<Outcome, WorkloadError> {
    let (sp, sn, sk, sm) = scale_program();
    let (up, un, uk, um) = update_program();
    let mut m = data::spd_matrix(n, 8);
    let mut run = HostRun::with_strategy(strategy);
    let mut outputs = HashMap::new();
    for k in 0..n - 1 {
        let mut b1 = Bindings::new();
        b1.bind(sn, n as i64);
        b1.bind(sk, k as i64);
        let i1: HashMap<_, _> = [(sm, m.clone())].into_iter().collect();
        let o1 = run.launch(&sp, &b1, &i1)?;
        m = o1[&sm].clone();

        let mut b2 = Bindings::new();
        b2.bind(un, n as i64);
        b2.bind(uk, k as i64);
        let i2: HashMap<_, _> = [(um, m.clone())].into_iter().collect();
        outputs = run.launch(&up, &b2, &i2)?;
        m = outputs[&um].clone();
    }
    Ok(run.finish(outputs))
}

/// Host-side reference LU (Doolittle, in place) for validation.
pub fn reference(n: usize) -> Vec<f64> {
    let mut m = data::spd_matrix(n, 8);
    for k in 0..n - 1 {
        for i in k + 1..n {
            m[i * n + k] /= m[k * n + k];
        }
        for i in k + 1..n {
            for j in k + 1..n {
                m[i * n + j] -= m[i * n + k] * m[k * n + j];
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_lu() {
        let n = 12;
        let o = run(Strategy::MultiDim, n).unwrap();
        let (_, _, _, um) = update_program();
        let got = &o.outputs[&um];
        let want = reference(n);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!((g - w).abs() < 1e-6 * w.abs().max(1.0), "[{i}] {g} vs {w}");
        }
    }

    #[test]
    fn update_verifies_under_fixed_strategies() {
        let (up, un, uk, um) = update_program();
        let mut bind = Bindings::new();
        bind.bind(un, 9);
        bind.bind(uk, 2);
        let inputs: HashMap<_, _> = [(um, data::spd_matrix(9, 8))].into_iter().collect();
        for s in [
            Strategy::MultiDim,
            Strategy::ThreadBlockThread,
            Strategy::WarpBased,
        ] {
            let mut run = HostRun::with_strategy(s).verifying();
            run.launch(&up, &bind, &inputs).unwrap();
        }
    }
}
