//! PageRank — the paper's Figure 5 motivating example.
//!
//! ```text
//! nodes map { n =>
//!     nbrsWeights = n.nbrs map { w => getPrevPageRank(w) / w.degree }
//!     sumWeights  = nbrsWeights reduce { (a,b) => a + b }
//!     ((1 - damp) / numNodes) + damp * sumWeights
//! }
//! ```
//!
//! The graph is CSR (a struct of arrays, per Section III); the inner
//! patterns' extent is each node's degree — known only at run time, so the
//! inner level is hard-constrained to `Span(all)`. Fusion removes the
//! `nbrsWeights` temporary before the analysis runs.

use crate::data::CsrGraph;
use crate::runner::{HostRun, Outcome, WorkloadError};
use multidim::prelude::*;
use multidim_ir::{ArrayId, ReduceOp, SymId};
use std::collections::HashMap;

/// Damping factor.
pub const DAMP: f64 = 0.85;

/// One PageRank iteration.
#[allow(clippy::type_complexity)]
pub fn step_program(
    mean_degree_hint: i64,
) -> (Program, SymId, SymId, ArrayId, ArrayId, ArrayId, ArrayId) {
    let mut b = ProgramBuilder::new("pagerank_step");
    let n = b.sym("N");
    let e = b.sym("E");
    let row_ptr = b.input("row_ptr", ScalarKind::I32, &[Size::sym(n) + Size::from(1)]);
    let col_idx = b.input("col_idx", ScalarKind::I32, &[Size::sym(e)]);
    let prev = b.input("prev_rank", ScalarKind::F32, &[Size::sym(n)]);
    let degree = b.input("degree", ScalarKind::F32, &[Size::sym(n)]);

    let root = b.map(Size::sym(n), |b, node| {
        let start = b.read(row_ptr, &[node.into()]);
        let end = b.read(row_ptr, &[Expr::var(node) + Expr::lit(1.0)]);
        let extent = end - start.clone();
        // nbrsWeights (inner map) reduced to a sum — written exactly as in
        // Figure 5; the compiler's fusion pass eliminates the temporary.
        let sum = b.reduce_dyn(extent, mean_degree_hint, ReduceOp::Add, |b, j| {
            let w = b.read(col_idx, &[start.clone() + Expr::var(j)]);
            b.read(prev, std::slice::from_ref(&w)) / b.read(degree, &[w])
        });
        Expr::lit(1.0 - DAMP) / Expr::size(Size::sym(n)) + Expr::lit(DAMP) * sum
    });
    let p = b
        .finish_map(root, "rank", ScalarKind::F32)
        .expect("valid pagerank program");
    (p, n, e, row_ptr, col_idx, prev, degree)
}

/// Run `iters` PageRank iterations over `g`.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run_on(strategy: Strategy, g: &CsrGraph, iters: usize) -> Result<Outcome, WorkloadError> {
    let mean = (g.edges / g.nodes.max(1)).max(1) as i64;
    let (p, ns, es, row_ptr, col_idx, prev, degree) = step_program(mean);
    let mut bind = Bindings::new();
    bind.bind(ns, g.nodes as i64);
    bind.bind(es, g.edges as i64);
    let degrees: Vec<f64> = (0..g.nodes).map(|i| g.degree(i).max(1) as f64).collect();
    let mut rank = vec![1.0 / g.nodes as f64; g.nodes];

    let mut run = HostRun::with_strategy(strategy);
    let mut outputs = HashMap::new();
    for _ in 0..iters {
        let inputs: HashMap<_, _> = [
            (row_ptr, g.row_ptr.clone()),
            (col_idx, g.col_idx.clone()),
            (prev, rank.clone()),
            (degree, degrees.clone()),
        ]
        .into_iter()
        .collect();
        outputs = run.launch(&p, &bind, &inputs)?;
        rank = outputs[&p.output.unwrap()].clone();
    }
    Ok(run.finish(outputs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_positive_finite() {
        let g = CsrGraph::power_law(100, 6, 3);
        let o = run_on(Strategy::MultiDim, &g, 5).unwrap();
        let (p, ..) = step_program(6);
        let rank = &o.outputs[&p.output.unwrap()];
        assert!(rank.iter().all(|&r| r > 0.0 && r.is_finite()));
    }

    #[test]
    fn verifies_against_reference() {
        let g = CsrGraph::power_law(60, 4, 5);
        let mean = (g.edges / g.nodes).max(1) as i64;
        let (p, ns, es, row_ptr, col_idx, prev, degree) = step_program(mean);
        let mut bind = Bindings::new();
        bind.bind(ns, g.nodes as i64);
        bind.bind(es, g.edges as i64);
        let degrees: Vec<f64> = (0..g.nodes).map(|i| g.degree(i).max(1) as f64).collect();
        let inputs: HashMap<_, _> = [
            (row_ptr, g.row_ptr.clone()),
            (col_idx, g.col_idx.clone()),
            (prev, vec![1.0 / 60.0; 60]),
            (degree, degrees),
        ]
        .into_iter()
        .collect();
        let mut run = HostRun::with_strategy(Strategy::MultiDim).verifying();
        run.launch(&p, &bind, &inputs).unwrap();
    }

    #[test]
    fn inner_level_is_span_all() {
        let g = CsrGraph::power_law(50, 4, 5);
        let (p, ns, es, ..) = step_program(4);
        let mut bind = Bindings::new();
        bind.bind(ns, g.nodes as i64);
        bind.bind(es, g.edges as i64);
        let exe = Compiler::new().compile(&p, &bind).unwrap();
        assert!(matches!(exe.mapping.level(1).span, Span::All));
    }
}
