//! Stable content fingerprints for compilation requests.
//!
//! The service layer (`multidim-engine`) keys its compilation cache and
//! its persistent tuning store on a *content address*: a hash of
//! everything that determines the compiled artifact — the program
//! structure, the size bindings it is specialized for, the target
//! [`GpuSpec`](multidim_device::GpuSpec), and the compiler configuration
//! (strategy, codegen options, soft-constraint weights, fusion and checks
//! switches). Two requests with equal fingerprints compile to
//! interchangeable executables; the fingerprint survives process restarts,
//! so on-disk tuning entries written yesterday still match today.
//!
//! The hash is a hand-rolled 128-bit FNV-1a variant (two independent
//! 64-bit lanes over the same byte stream) — the container ships no hash
//! crates, and cache keying needs speed and stability, not adversarial
//! collision resistance.

use multidim_ir::{pretty, Bindings, Program};
use std::fmt;

/// A 128-bit content address, rendered as 32 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub [u64; 2]);

impl Fingerprint {
    /// Parse the 32-hex-digit rendering back into a fingerprint.
    pub fn parse(text: &str) -> Option<Fingerprint> {
        if text.len() != 32 {
            return None;
        }
        let hi = u64::from_str_radix(&text[..16], 16).ok()?;
        let lo = u64::from_str_radix(&text[16..], 16).ok()?;
        Some(Fingerprint([hi, lo]))
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0[0], self.0[1])
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
// Decorrelates the second lane: same stream, different starting state.
const LANE2_TWEAK: u64 = 0x9e37_79b9_7f4a_7c15;

/// Incremental FNV-1a over two 64-bit lanes.
#[derive(Debug, Clone)]
pub struct Hasher {
    lanes: [u64; 2],
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

impl Hasher {
    /// A fresh hasher.
    pub fn new() -> Hasher {
        Hasher {
            lanes: [FNV_OFFSET, FNV_OFFSET ^ LANE2_TWEAK],
        }
    }

    /// Feed raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            for lane in &mut self.lanes {
                *lane ^= b as u64;
                *lane = lane.wrapping_mul(FNV_PRIME);
            }
        }
    }

    /// Feed a length-delimited field (prevents `"ab"+"c"` colliding with
    /// `"a"+"bc"` across field boundaries).
    pub fn field(&mut self, bytes: &[u8]) {
        self.write(&(bytes.len() as u64).to_le_bytes());
        self.write(bytes);
    }

    /// Feed an integer.
    pub fn int(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    /// The final fingerprint.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.lanes)
    }
}

/// Fingerprint one compilation request.
///
/// `config` is an opaque, stable rendering of the compiler configuration
/// (the [`Compiler`](crate::Compiler) produces it from its strategy,
/// options, weights and switches). The program is hashed through its
/// [`pretty`] rendering — a complete structural serialization (arrays,
/// symbols, pattern nest, expressions, effects, ids) that is deterministic
/// for a given builder sequence — plus the output wiring and allocation
/// counters. Bindings are hashed only for symbols the program declares, in
/// id order, so an unrelated stray binding does not split the cache.
pub fn fingerprint(
    program: &Program,
    bindings: &Bindings,
    gpu: &multidim_device::GpuSpec,
    config: &str,
) -> Fingerprint {
    let mut h = Hasher::new();
    h.field(b"multidim-fingerprint-v1");
    h.field(pretty(program).as_bytes());
    h.int(program.var_count as i64);
    h.int(program.pattern_count as i64);
    h.int(program.output.map(|a| a.0 as i64).unwrap_or(-1));
    h.int(program.output_count.map(|a| a.0 as i64).unwrap_or(-1));
    for sym in &program.symbols {
        h.int(sym.id.0 as i64);
        h.int(bindings.get(sym.id).unwrap_or(i64::MIN));
    }
    h.field(format!("{gpu:?}").as_bytes());
    h.field(config.as_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use multidim_device::GpuSpec;
    use multidim_ir::{ProgramBuilder, ReduceOp, ScalarKind, Size};

    fn sum(name: &str, r: i64, c: i64) -> (Program, Bindings) {
        let mut b = ProgramBuilder::new(name);
        let rs = b.sym("R");
        let cs = b.sym("C");
        let m = b.input("m", ScalarKind::F32, &[Size::sym(rs), Size::sym(cs)]);
        let root = b.map(Size::sym(rs), |b, row| {
            b.reduce(Size::sym(cs), ReduceOp::Add, |b, col| {
                b.read(m, &[row.into(), col.into()])
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(rs, r);
        bind.bind(cs, c);
        (p, bind)
    }

    #[test]
    fn identical_requests_collide_on_purpose() {
        let (p1, b1) = sum("s", 64, 128);
        let (p2, b2) = sum("s", 64, 128);
        let gpu = GpuSpec::tesla_k20c();
        assert_eq!(
            fingerprint(&p1, &b1, &gpu, "cfg"),
            fingerprint(&p2, &b2, &gpu, "cfg")
        );
    }

    #[test]
    fn every_input_perturbs_the_hash() {
        let (p, b) = sum("s", 64, 128);
        let gpu = GpuSpec::tesla_k20c();
        let base = fingerprint(&p, &b, &gpu, "cfg");

        let (p2, _) = sum("other", 64, 128);
        assert_ne!(base, fingerprint(&p2, &b, &gpu, "cfg"));

        let (_, b2) = sum("s", 64, 256);
        assert_ne!(base, fingerprint(&p, &b2, &gpu, "cfg"));

        assert_ne!(base, fingerprint(&p, &b, &GpuSpec::tesla_c2050(), "cfg"));
        assert_ne!(base, fingerprint(&p, &b, &gpu, "cfg2"));
    }

    #[test]
    fn stray_bindings_do_not_split_the_cache() {
        let (p, b) = sum("s", 64, 128);
        let mut b2 = b.clone();
        b2.bind(multidim_ir::SymId(99), 7);
        let gpu = GpuSpec::tesla_k20c();
        assert_eq!(
            fingerprint(&p, &b, &gpu, "cfg"),
            fingerprint(&p, &b2, &gpu, "cfg")
        );
    }

    #[test]
    fn display_parse_round_trip() {
        let (p, b) = sum("s", 64, 128);
        let fp = fingerprint(&p, &b, &GpuSpec::tesla_k20c(), "cfg");
        let text = fp.to_string();
        assert_eq!(text.len(), 32);
        assert_eq!(Fingerprint::parse(&text), Some(fp));
        assert_eq!(Fingerprint::parse("zz"), None);
        assert_eq!(Fingerprint::parse(&"0".repeat(31)), None);
    }

    #[test]
    fn field_boundaries_are_unambiguous() {
        let mut a = Hasher::new();
        a.field(b"ab");
        a.field(b"c");
        let mut b = Hasher::new();
        b.field(b"a");
        b.field(b"bc");
        assert_ne!(a.finish(), b.finish());
    }
}
