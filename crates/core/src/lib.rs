//! `multidim` — locality-aware mapping of nested parallel patterns on GPUs.
//!
//! This is the facade crate of a full reproduction of *Locality-Aware
//! Mapping of Nested Parallel Patterns on GPUs* (MICRO 2014). It wires the
//! pipeline together:
//!
//! 1. write an application as nested parallel patterns
//!    ([`prelude::ProgramBuilder`], Section III of the paper);
//! 2. run the mapping analysis ([`multidim_mapping::analyze`], Section IV)
//!    or pick a fixed baseline [`prelude::Strategy`];
//! 3. lower to CUDA-shaped kernels with the Section V optimizations
//!    ([`multidim_codegen::lower`]);
//! 4. execute on the warp-synchronous GPU simulator
//!    ([`multidim_sim::run_program`]) for both *results* and *time*.
//!
//! # Examples
//!
//! ```
//! use multidim::prelude::*;
//! use std::collections::HashMap;
//!
//! // Figure 1's sumRows.
//! let mut b = ProgramBuilder::new("sumRows");
//! let r = b.sym("R");
//! let c = b.sym("C");
//! let m = b.input("m", ScalarKind::F32, &[Size::sym(r), Size::sym(c)]);
//! let root = b.map(Size::sym(r), |b, row| {
//!     b.reduce(Size::sym(c), ReduceOp::Add, |b, col| {
//!         b.read(m, &[row.into(), col.into()])
//!     })
//! });
//! let program = b.finish_map(root, "sums", ScalarKind::F32)?;
//!
//! let mut bind = Bindings::new();
//! bind.bind(r, 64);
//! bind.bind(c, 128);
//!
//! let exe = Compiler::new().compile(&program, &bind)?;
//! // The analysis puts the inner (column) loop on dimension x.
//! assert!(exe.mapping.level(1).dim.is_x());
//!
//! let inputs: HashMap<_, _> = [(m, vec![1.0f64; 64 * 128])].into_iter().collect();
//! let report = exe.run(&inputs)?;
//! assert_eq!(report.outputs[&program.output.unwrap()][0], 128.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod fingerprint;

use multidim_codegen::{
    emit_cuda, fuse_map_reduce, lower_planned, CodegenOptions, DynParPlan, KernelProgram,
};
use multidim_device::GpuSpec;
use multidim_dynpar::{choose, DynParConfig};
use multidim_ir::{ArrayId, Bindings, NestInfo, Program};
use multidim_mapping::{
    analyze_with, collect_constraints, fixed_mapping, Analysis, MappingDecision, Strategy, Weights,
};
use multidim_sim::{run_program, KernelCost, KernelTime, LaunchShape, RunMetrics};
use multidim_trace as trace;
use std::collections::HashMap;
use std::fmt;

pub use fingerprint::Fingerprint;
pub use multidim_analyze::{
    analyze_program, cross_check, kernel_defect, lint_mapping, locality_cross_check, locality_of,
    AccessClass, AccessLocality, BankProof, Code, Diagnostic, LocalityFacts, LocalitySummary,
    Report as AnalysisReport, ReuseSummary, Severity, SmemProof, Verdict,
};
pub use multidim_codegen::{LaunchStrategy, LayoutPolicy, SiteDecision};
pub use multidim_dynpar::DynParPolicy;
pub use multidim_mapping::{Dim, Span};
pub use multidim_sim::SanitizerReport;

/// Commonly used items, re-exported for applications.
pub mod prelude {
    pub use crate::{Compiler, Executable, RunReport};
    pub use multidim_codegen::{CodegenOptions, LaunchStrategy, LayoutPolicy};
    pub use multidim_device::{CpuSpec, GpuSpec, PcieSpec};
    pub use multidim_dynpar::{DynParConfig, DynParPolicy};
    pub use multidim_ir::{
        Bindings, Effect, Expr, Program, ProgramBuilder, ReduceOp, ScalarKind, Size, SymId,
    };
    pub use multidim_mapping::{Dim, MappingDecision, Span, Strategy};
}

/// A compilation failure anywhere in the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError(pub String);

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.0)
    }
}

impl std::error::Error for CompileError {}

impl From<multidim_ir::ValidateError> for CompileError {
    fn from(e: multidim_ir::ValidateError) -> CompileError {
        CompileError(e.to_string())
    }
}

impl From<multidim_codegen::LowerError> for CompileError {
    fn from(e: multidim_codegen::LowerError) -> CompileError {
        CompileError(e.to_string())
    }
}

impl From<multidim_codegen::KernelError> for CompileError {
    fn from(e: multidim_codegen::KernelError) -> CompileError {
        CompileError(e.to_string())
    }
}

/// An execution failure on the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunError(pub String);

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "run error: {}", self.0)
    }
}

impl std::error::Error for RunError {}

impl From<multidim_sim::SimError> for RunError {
    fn from(e: multidim_sim::SimError) -> RunError {
        RunError(e.to_string())
    }
}

/// The pipeline driver: configure once, compile many programs.
///
/// Defaults: Tesla K20c, the paper's *MultiDim* analysis, fusion on, all
/// Section V optimizations on.
#[derive(Debug, Clone)]
pub struct Compiler {
    gpu: GpuSpec,
    strategy: Strategy,
    options: CodegenOptions,
    weights: Weights,
    fusion: bool,
    checks: bool,
    prune: bool,
    dynpar: DynParConfig,
}

impl Default for Compiler {
    fn default() -> Self {
        Compiler::new()
    }
}

impl Compiler {
    /// A compiler with the paper's evaluation configuration.
    pub fn new() -> Self {
        Compiler {
            gpu: GpuSpec::tesla_k20c(),
            strategy: Strategy::MultiDim,
            options: CodegenOptions::default(),
            weights: Weights::default(),
            fusion: true,
            checks: true,
            prune: true,
            dynpar: DynParConfig::default(),
        }
    }

    /// Target a different device.
    pub fn gpu(mut self, gpu: GpuSpec) -> Self {
        self.gpu = gpu;
        self
    }

    /// Use a fixed mapping strategy instead of the analysis (the paper's
    /// baselines: 1D, thread-block/thread, warp-based).
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Code-generation options (Section V optimizations).
    pub fn options(mut self, options: CodegenOptions) -> Self {
        self.options = options;
        self
    }

    /// Soft-constraint weights for the analysis.
    pub fn weights(mut self, weights: Weights) -> Self {
        self.weights = weights;
        self
    }

    /// Enable/disable map→reduce fusion (on by default; Figure 16's
    /// preallocation study runs with it off).
    pub fn fusion(mut self, on: bool) -> Self {
        self.fusion = on;
        self
    }

    /// Configure the dynamic-parallelism consolidation stage (enabled
    /// with the `Auto` policy by default). Programs whose inner nest
    /// extent is data-dependent get a per-site choice between inlining
    /// (thresholding), launch coarsening, and launch aggregation; see
    /// `multidim-dynpar` for the policy and cost model.
    pub fn dynpar(mut self, config: DynParConfig) -> Self {
        self.dynpar = config;
        self
    }

    /// Wrap this compiler in an [`Arc`](std::sync::Arc) for cheap sharing
    /// across service threads. Compilation takes `&self`, and every field
    /// is immutable configuration, so one shared compiler serves any
    /// number of concurrent requests without redoing per-request setup
    /// (device spec, weights, codegen options are constructed exactly
    /// once).
    pub fn shared(self) -> std::sync::Arc<Compiler> {
        std::sync::Arc::new(self)
    }

    /// A stable rendering of this compiler's configuration, folded into
    /// [`Compiler::fingerprint`] so that e.g. a fusion-off compiler never
    /// shares cache entries with a fusion-on one.
    pub fn config_digest(&self) -> String {
        format!(
            "strategy={:?};options={:?};weights={:?};fusion={};checks={};dynpar={:?}",
            self.strategy, self.options, self.weights, self.fusion, self.checks, self.dynpar
        )
    }

    /// The content address of compiling `program` under `bindings` with
    /// this compiler: equal fingerprints ⇒ interchangeable executables.
    /// This is the key of `multidim-engine`'s compilation cache and
    /// persistent tuning store; see [`fingerprint`] for what is hashed.
    pub fn fingerprint(&self, program: &Program, bindings: &Bindings) -> Fingerprint {
        fingerprint::fingerprint(program, bindings, &self.gpu, &self.config_digest())
    }

    /// Enable/disable the static-analysis stage (on by default).
    /// Error-severity diagnostics — proven races, proven out-of-bounds
    /// accesses — abort compilation; turn the stage off to compile a
    /// deliberately racy program (e.g. to watch the simulator's sanitizer
    /// catch it).
    pub fn checks(mut self, on: bool) -> Self {
        self.checks = on;
        self
    }

    /// Enable/disable lower-bound pruning inside [`Compiler::autotune`]
    /// (on by default). Pruning discards candidates whose proven locality
    /// lower bound already exceeds the best measured cost; selection is
    /// bit-identical to the unpruned loop (see
    /// [`multidim_mapping::tune_pruned`]), so this knob exists for A/B
    /// verification, not correctness.
    pub fn prune(mut self, on: bool) -> Self {
        self.prune = on;
        self
    }

    /// The codegen options actually passed to lowering: the user's
    /// options with the shared-memory budget defaulted to the target
    /// device's capacity, so the Section V-B prefetch skips itself instead
    /// of emitting a kernel the footprint proof rejects.
    fn effective_options(&self) -> CodegenOptions {
        let mut opts = self.options.clone();
        opts.smem_budget = opts.smem_budget.or(Some(self.gpu.smem_per_sm));
        opts
    }

    /// Compile `program` for the sizes in `bindings`.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] if validation or lowering fails.
    pub fn compile(
        &self,
        program: &Program,
        bindings: &Bindings,
    ) -> Result<Executable, CompileError> {
        let mut sp = trace::span("core", "compile");
        if let Some(sp) = sp.as_mut() {
            sp.arg("program", program.name.as_str());
        }
        let (program, fused) = if self.fusion {
            fuse_map_reduce(program)
        } else {
            (program.clone(), 0)
        };
        program.validate()?;

        let (mapping, analysis) = match self.strategy {
            Strategy::MultiDim => {
                let a = analyze_with(&program, bindings, &self.gpu, &self.weights);
                (a.decision.clone(), Some(a))
            }
            fixed => {
                let nest = NestInfo::of(&program);
                let cs = collect_constraints(&program, &nest, bindings, &self.gpu, &self.weights);
                (fixed_mapping(fixed, &nest, &cs), None)
            }
        };
        self.compile_mapped(program, bindings, mapping, analysis, fused)
    }

    /// Empirically auto-tune the mapping: enumerate the hard-valid
    /// candidates (optionally score-pruned), simulate each with the given
    /// inputs, and return the executable for the fastest one.
    ///
    /// This recovers the Figure 17 "region C" false negatives the static
    /// score misses, at the cost of one simulation per candidate.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] when no candidate both compiles and runs.
    pub fn autotune(
        &self,
        program: &Program,
        bindings: &Bindings,
        inputs: &HashMap<ArrayId, Vec<f64>>,
        options: &multidim_mapping::TuneOptions,
    ) -> Result<(Executable, multidim_mapping::TuneResult), CompileError> {
        let prepared = self.prepare_tune(program, bindings, options)?;
        let result = if self.prune {
            // Locality-proof pruning: a candidate whose *proven* memory
            // transaction / launch-overhead floor already exceeds the best
            // simulated time so far cannot win, so skip its simulation.
            // Selection stays bit-identical to the unpruned loop because
            // the bound is sound (`cost >= lower bound > best so far`) and
            // pruning only triggers on a strict comparison.
            let facts = LocalityFacts::of(&prepared.program, bindings);
            multidim_mapping::tune_pruned(
                &prepared.plan,
                options.max_measurements,
                |cand| self.candidate_bound(&prepared, bindings, &facts, &cand.mapping),
                |cand| self.measure_candidate(&prepared, bindings, inputs, &cand.mapping),
            )
        } else {
            let mut costs = Vec::new();
            let mut successes = 0usize;
            for cand in &prepared.plan.candidates {
                if successes >= options.max_measurements {
                    break;
                }
                let cost = self.measure_candidate(&prepared, bindings, inputs, &cand.mapping);
                if cost.is_some() {
                    successes += 1;
                }
                costs.push(cost);
            }
            multidim_mapping::select(&prepared.plan, &costs)
        }
        .ok_or_else(|| CompileError("no mapping candidate was executable".into()))?;
        let exe = self.compile_tuned(&prepared, bindings, result.best.clone())?;
        Ok((exe, result))
    }

    /// Proven lower bound (simulated seconds) for one tuning candidate, or
    /// `None` when the candidate does not lower/validate (it then falls
    /// through to measurement, which fails the same way and records the
    /// failure exactly as the unpruned loop would).
    fn candidate_bound(
        &self,
        prepared: &TunePrepared,
        bindings: &Bindings,
        facts: &LocalityFacts,
        mapping: &MappingDecision,
    ) -> Option<f64> {
        let opts = self.effective_options();
        let kernels = lower_planned(&prepared.program, mapping, &opts, &prepared.dynpar).ok()?;
        multidim_codegen::validate_kernels(&kernels, self.gpu.smem_per_sm).ok()?;
        let summary = locality_of(
            facts,
            mapping,
            &kernels,
            bindings,
            &self.gpu,
            opts.smem_prefetch,
        );
        Some(summary.seconds_lower_bound)
    }

    /// The serial front half of [`Compiler::autotune`]: fuse + validate the
    /// program once and enumerate the score-ordered candidate plan. The
    /// measurements over the plan are independent of each other, so a
    /// service layer can fan them out across worker threads and fold them
    /// back with [`multidim_mapping::select`] — selection tie-breaks on
    /// candidate index, so the parallel outcome is identical to the serial
    /// one.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] if the (fused) program fails validation.
    pub fn prepare_tune(
        &self,
        program: &Program,
        bindings: &Bindings,
        options: &multidim_mapping::TuneOptions,
    ) -> Result<TunePrepared, CompileError> {
        let (program, _) = if self.fusion {
            fuse_map_reduce(program)
        } else {
            (program.clone(), 0)
        };
        program.validate()?;
        let plan = multidim_mapping::plan(&program, bindings, &self.gpu, &self.weights, options);
        // One consolidation decision shared by every candidate: the plan
        // depends only on the program, sizes, and device, so measuring
        // candidates with it keeps tuning consistent with the final
        // compile_tuned artifact.
        let dynpar = choose(&program, bindings, &self.gpu, &self.dynpar);
        Ok(TunePrepared {
            program,
            plan,
            dynpar,
        })
    }

    /// Measure one candidate of a prepared tuning plan: lower, validate
    /// against device limits, and simulate with `inputs`. Returns the
    /// simulated seconds, or `None` when the candidate is not executable.
    /// Thread-safe: takes `&self` and touches no shared mutable state, so
    /// any number of candidates can be measured concurrently.
    pub fn measure_candidate(
        &self,
        prepared: &TunePrepared,
        bindings: &Bindings,
        inputs: &HashMap<ArrayId, Vec<f64>>,
        mapping: &MappingDecision,
    ) -> Option<f64> {
        let kernels = lower_planned(
            &prepared.program,
            mapping,
            &self.effective_options(),
            &prepared.dynpar,
        )
        .ok()?;
        multidim_codegen::validate_kernels(&kernels, self.gpu.smem_per_sm).ok()?;
        let sim = run_program(&kernels, &self.gpu, bindings, inputs).ok()?;
        Some(sim.total_seconds)
    }

    /// Compile the winning mapping of a prepared tuning run. The program
    /// inside `prepared` is already fused and validated, so this skips
    /// both (re-fusing an already-fused program would be wasted work).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] if lowering fails.
    pub fn compile_tuned(
        &self,
        prepared: &TunePrepared,
        bindings: &Bindings,
        mapping: MappingDecision,
    ) -> Result<Executable, CompileError> {
        self.compile_mapped(prepared.program.clone(), bindings, mapping, None, 0)
    }

    /// Compile with an explicit mapping decision (used by the Figure 17
    /// score/performance sweep and by auto-tuners).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] if validation or lowering fails.
    pub fn compile_with_mapping(
        &self,
        program: &Program,
        bindings: &Bindings,
        mapping: MappingDecision,
    ) -> Result<Executable, CompileError> {
        let (program, fused) = if self.fusion {
            fuse_map_reduce(program)
        } else {
            (program.clone(), 0)
        };
        program.validate()?;
        self.compile_mapped(program, bindings, mapping, None, fused)
    }

    fn compile_mapped(
        &self,
        program: Program,
        bindings: &Bindings,
        mapping: MappingDecision,
        analysis: Option<Analysis>,
        fused_patterns: usize,
    ) -> Result<Executable, CompileError> {
        let mut diagnostics = if self.checks {
            self.check_program(&program, bindings, &mapping)?
        } else {
            multidim_analyze::Report::default()
        };
        let opts = self.effective_options();
        let dynpar = choose(&program, bindings, &self.gpu, &self.dynpar);
        let kernels = lower_planned(&program, &mapping, &opts, &dynpar)?;
        multidim_codegen::validate_kernels(&kernels, self.gpu.smem_per_sm)
            .map_err(|e| CompileError(multidim_analyze::kernel_defect(&e).render_line()))?;
        let locality = if self.checks {
            let facts = LocalityFacts::of(&program, bindings);
            let summary = locality_of(
                &facts,
                &mapping,
                &kernels,
                bindings,
                &self.gpu,
                opts.smem_prefetch,
            );
            // Render MD010–MD015 through the same report machinery as the
            // pre-lowering stage: trace events, then abort on errors
            // (proven smem overflow), then ride along as diagnostics.
            let report = multidim_analyze::Report {
                program: program.name.clone(),
                diagnostics: summary.diagnostics(),
                arrays: Vec::new(),
            };
            report.emit_trace();
            if report.has_errors() {
                let lines: Vec<String> = report.errors().map(|d| d.render_line()).collect();
                return Err(CompileError(format!(
                    "locality analysis rejected `{}`:\n  {}",
                    report.program,
                    lines.join("\n  ")
                )));
            }
            diagnostics.diagnostics.extend(report.diagnostics);
            Some(summary)
        } else {
            None
        };
        Ok(Executable {
            program,
            mapping,
            analysis,
            diagnostics,
            locality,
            kernels,
            fused_patterns,
            dynpar,
            gpu: self.gpu.clone(),
            bindings: bindings.clone(),
        })
    }

    /// The static-analysis stage: race/bounds proofs, nest lints, and
    /// mapping-dependent determinism lints. Errors abort compilation with
    /// their `MD` codes; warnings and infos ride along as trace events and
    /// in [`Executable::diagnostics`].
    fn check_program(
        &self,
        program: &Program,
        bindings: &Bindings,
        mapping: &MappingDecision,
    ) -> Result<multidim_analyze::Report, CompileError> {
        let mut sp = trace::span("analyze", "static_analysis");
        let mut report = multidim_analyze::analyze_program(program, bindings);
        report
            .diagnostics
            .extend(multidim_analyze::lint_mapping(program, mapping));
        if let Some(sp) = sp.as_mut() {
            sp.arg("diagnostics", report.diagnostics.len() as u64);
            sp.arg("errors", report.errors().count() as u64);
        }
        report.emit_trace();
        if report.has_errors() {
            let lines: Vec<String> = report.errors().map(|d| d.render_line()).collect();
            return Err(CompileError(format!(
                "static analysis rejected `{}`:\n  {}",
                report.program,
                lines.join("\n  ")
            )));
        }
        Ok(report)
    }
}

/// The reusable front half of a tuning run: the fused, validated program
/// and its score-ordered candidate plan. Produced by
/// [`Compiler::prepare_tune`]; constraint collection and candidate
/// enumeration happen exactly once here no matter how many threads then
/// measure candidates.
#[derive(Debug, Clone)]
pub struct TunePrepared {
    /// The program after fusion and validation.
    pub program: Program,
    /// Candidates to measure, best static score first.
    pub plan: multidim_mapping::TunePlan,
    /// The launch-consolidation decision shared by every candidate.
    pub dynpar: DynParPlan,
}

/// A compiled program, ready to run on the simulator.
#[derive(Debug, Clone)]
pub struct Executable {
    /// The (possibly fused) program that was compiled.
    pub program: Program,
    /// The selected mapping decision.
    pub mapping: MappingDecision,
    /// The full analysis result when the *MultiDim* strategy ran.
    pub analysis: Option<Analysis>,
    /// Static-analysis diagnostics (empty when checks were disabled);
    /// error-severity findings never reach here — they abort compilation.
    pub diagnostics: multidim_analyze::Report,
    /// Locality proofs for the selected mapping (coalescing classes,
    /// bank-conflict degrees, shared-memory footprint, reuse, and the
    /// transaction/seconds lower bounds). `None` when checks were disabled.
    pub locality: Option<LocalitySummary>,
    /// The generated kernels and buffer plan.
    pub kernels: KernelProgram,
    /// Number of map→reduce fusions applied before analysis.
    pub fused_patterns: usize,
    /// The dynamic-parallelism consolidation decision (`site: None` when
    /// the program has no data-dependent launch site or the stage is off).
    pub dynpar: DynParPlan,
    gpu: GpuSpec,
    bindings: Bindings,
}

impl Executable {
    /// Execute on the simulator with host `inputs` (keyed by array id).
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] for missing inputs or kernel faults.
    pub fn run(&self, inputs: &HashMap<ArrayId, Vec<f64>>) -> Result<RunReport, RunError> {
        let mut sp = trace::span("core", "run");
        if let Some(sp) = sp.as_mut() {
            sp.arg("program", self.kernels.name.as_str());
        }
        let sim = run_program(&self.kernels, &self.gpu, &self.bindings, inputs)?;
        Ok(RunReport {
            outputs: sim.arrays,
            gpu_seconds: sim.total_seconds,
            kernel_names: sim.names,
            kernel_shapes: sim.shapes,
            kernel_times: sim.times,
            kernel_costs: sim.costs,
        })
    }

    /// Execute with the simulator's sanitizer on: every non-atomic global
    /// store is recorded per kernel, and elements written by two different
    /// threads in one launch come back as conflicts. Use
    /// [`cross_check`] to compare the
    /// observations against [`Executable::diagnostics`].
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] for missing inputs or kernel faults.
    pub fn run_sanitized(
        &self,
        inputs: &HashMap<ArrayId, Vec<f64>>,
    ) -> Result<(RunReport, SanitizerReport), RunError> {
        let mut sp = trace::span("core", "run_sanitized");
        if let Some(sp) = sp.as_mut() {
            sp.arg("program", self.kernels.name.as_str());
        }
        let (sim, san) =
            multidim_sim::run_program_sanitized(&self.kernels, &self.gpu, &self.bindings, inputs)?;
        Ok((
            RunReport {
                outputs: sim.arrays,
                gpu_seconds: sim.total_seconds,
                kernel_names: sim.names,
                kernel_shapes: sim.shapes,
                kernel_times: sim.times,
                kernel_costs: sim.costs,
            },
            san,
        ))
    }

    /// Machine-readable metrics for a finished run — the export format
    /// behind `metrics.json` and the benches' `--report` flag.
    pub fn metrics(&self, run: &RunReport) -> RunMetrics {
        RunMetrics::from_parts(
            &self.kernels.name,
            &self.gpu,
            &run.kernel_names,
            &run.kernel_shapes,
            &run.kernel_costs,
            &run.kernel_times,
            run.gpu_seconds,
        )
    }

    /// The generated CUDA C source (Figure 9's shape), for inspection.
    pub fn cuda_source(&self) -> String {
        emit_cuda(&self.kernels)
    }

    /// A profiler-style report for a finished run: per-kernel bound-by
    /// classification, coalescing ratios, and occupancy.
    pub fn report(&self, run: &RunReport) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "program `{}` under {}", self.kernels.name, self.mapping);
        for (((name, shape), cost), time) in run
            .kernel_names
            .iter()
            .zip(&run.kernel_shapes)
            .zip(&run.kernel_costs)
            .zip(&run.kernel_times)
        {
            s.push_str(&multidim_sim::kernel_report(
                &self.gpu, name, shape, cost, time,
            ));
        }
        let _ = writeln!(s, "total: {:.3} ms", run.gpu_seconds * 1e3);
        s
    }

    /// The launch-time size bindings this executable was specialized for.
    pub fn bindings(&self) -> &Bindings {
        &self.bindings
    }

    /// The target device.
    pub fn device(&self) -> &GpuSpec {
        &self.gpu
    }
}

/// The outcome of one simulated execution.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Final contents of every materialized program array.
    pub outputs: HashMap<ArrayId, Vec<f64>>,
    /// Total simulated GPU time (sum over kernels), seconds.
    pub gpu_seconds: f64,
    /// Kernel names in launch order.
    pub kernel_names: Vec<String>,
    /// Per-kernel launch shapes.
    pub kernel_shapes: Vec<LaunchShape>,
    /// Per-kernel timing breakdowns.
    pub kernel_times: Vec<KernelTime>,
    /// Per-kernel cost records.
    pub kernel_costs: Vec<KernelCost>,
}

impl RunReport {
    /// The output array for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not an output of the program.
    pub fn output(&self, id: ArrayId) -> &[f64] {
        &self.outputs[&id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multidim_ir::{ProgramBuilder, ReduceOp, ScalarKind, Size};

    fn sum_cols(r: i64, c: i64) -> (Program, Bindings, ArrayId) {
        let mut b = ProgramBuilder::new("sumCols");
        let rs = b.sym("R");
        let cs = b.sym("C");
        let m = b.input("m", ScalarKind::F32, &[Size::sym(rs), Size::sym(cs)]);
        let root = b.map(Size::sym(cs), |b, col| {
            b.reduce(Size::sym(rs), ReduceOp::Add, |b, row| {
                b.read(m, &[row.into(), col.into()])
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(rs, r);
        bind.bind(cs, c);
        (p, bind, m)
    }

    #[test]
    fn pipeline_end_to_end() {
        let (p, bind, m) = sum_cols(32, 48);
        let exe = Compiler::new().compile(&p, &bind).unwrap();
        let data: Vec<f64> = (0..32 * 48).map(|x| (x % 7) as f64).collect();
        let inputs: HashMap<_, _> = [(m, data.clone())].into_iter().collect();
        let report = exe.run(&inputs).unwrap();

        let r = multidim_ir::interpret(&p, &bind, &inputs).unwrap();
        assert_eq!(
            report.output(p.output.unwrap()),
            &r.array(p.output.unwrap()).data[..]
        );
        assert!(report.gpu_seconds > 0.0);
    }

    #[test]
    fn fixed_strategy_pipeline() {
        let (p, bind, m) = sum_cols(16, 16);
        for s in [
            Strategy::OneD,
            Strategy::ThreadBlockThread,
            Strategy::WarpBased,
        ] {
            let exe = Compiler::new().strategy(s).compile(&p, &bind).unwrap();
            let inputs: HashMap<_, _> = [(m, vec![1.0f64; 16 * 16])].into_iter().collect();
            let report = exe.run(&inputs).unwrap();
            assert!(
                report.output(p.output.unwrap()).iter().all(|&v| v == 16.0),
                "{s} wrong"
            );
        }
    }

    #[test]
    fn launch_policy_splits_the_fingerprint() {
        // Same program, same sizes, same device: compilers differing only
        // in the consolidation policy must not share cache entries (they
        // generate different kernels).
        let (p, bind, _) = sum_cols(32, 48);
        let auto = Compiler::new();
        let forced = Compiler::new().dynpar(multidim_dynpar::DynParConfig {
            policy: DynParPolicy::Force(LaunchStrategy::Aggregate),
            ..Default::default()
        });
        let off = Compiler::new().dynpar(multidim_dynpar::DynParConfig {
            enabled: false,
            ..Default::default()
        });
        let threshold = Compiler::new().dynpar(multidim_dynpar::DynParConfig {
            threshold: 64,
            ..Default::default()
        });
        let base = auto.fingerprint(&p, &bind);
        assert_ne!(base, forced.fingerprint(&p, &bind));
        assert_ne!(base, off.fingerprint(&p, &bind));
        assert_ne!(base, threshold.fingerprint(&p, &bind));
    }

    #[test]
    fn dynamic_estimate_hint_splits_the_fingerprint() {
        // Two programs identical except for the mean inner-extent hint:
        // the hint steers the consolidation choice, so the fingerprints
        // must differ.
        let build = |hint: i64| {
            let mut b = ProgramBuilder::new("hinted");
            let n = b.sym("N");
            let rp = b.input("rp", ScalarKind::I32, &[Size::sym(n) + Size::from(1)]);
            let root = b.map(Size::sym(n), |b, i| {
                let start = b.read(rp, &[i.into()]);
                let end = b.read(
                    rp,
                    &[multidim_ir::Expr::var(i) + multidim_ir::Expr::lit(1.0)],
                );
                b.reduce_dyn(end - start, hint, ReduceOp::Add, |_b, _j| {
                    multidim_ir::Expr::lit(1.0)
                })
            });
            let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
            let mut bind = Bindings::new();
            bind.bind(n, 64);
            (p, bind)
        };
        let (p3, b3) = build(3);
        let (p9, b9) = build(9);
        let c = Compiler::new();
        assert_ne!(c.fingerprint(&p3, &b3), c.fingerprint(&p9, &b9));
    }

    #[test]
    fn cuda_source_is_emitted() {
        let (p, bind, _) = sum_cols(8, 8);
        let exe = Compiler::new().compile(&p, &bind).unwrap();
        let src = exe.cuda_source();
        assert!(src.contains("__global__"));
        assert!(src.contains("sumCols"));
    }

    #[test]
    fn explicit_mapping_respected() {
        use multidim_mapping::LevelMapping;
        let (p, bind, m) = sum_cols(16, 64);
        let mapping = MappingDecision::new(vec![
            LevelMapping {
                dim: Dim::Y,
                block_size: 8,
                span: Span::ONE,
            },
            LevelMapping {
                dim: Dim::X,
                block_size: 32,
                span: Span::All,
            },
        ]);
        let exe = Compiler::new()
            .compile_with_mapping(&p, &bind, mapping.clone())
            .unwrap();
        assert_eq!(exe.mapping, mapping);
        let inputs: HashMap<_, _> = [(m, vec![2.0f64; 16 * 64])].into_iter().collect();
        let report = exe.run(&inputs).unwrap();
        assert!(report.output(p.output.unwrap()).iter().all(|&v| v == 32.0));
    }
}

#[cfg(test)]
mod report_tests {
    use super::*;
    use multidim_ir::{ProgramBuilder, ReduceOp, ScalarKind, Size};

    #[test]
    fn report_renders_per_kernel_diagnosis() {
        let mut b = ProgramBuilder::new("sumRows");
        let r = b.sym("R");
        let c = b.sym("C");
        let m = b.input("m", ScalarKind::F32, &[Size::sym(r), Size::sym(c)]);
        let root = b.map(Size::sym(r), |b, row| {
            b.reduce(Size::sym(c), ReduceOp::Add, |b, col| {
                b.read(m, &[row.into(), col.into()])
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(r, 128);
        bind.bind(c, 256);
        let exe = Compiler::new().compile(&p, &bind).unwrap();
        let inputs: HashMap<_, _> = [(m, vec![1.0; 128 * 256])].into_iter().collect();
        let run = exe.run(&inputs).unwrap();
        let text = exe.report(&run);
        assert!(text.contains("sumRows_kernel"), "{text}");
        assert!(text.contains("coalescing"), "{text}");
        assert!(text.contains("total:"), "{text}");
    }
}
