//! CUDA C source emission.
//!
//! Renders a [`KernelProgram`] as compilable-looking CUDA, matching the
//! structure of the paper's Figure 9 (kernel signature, shared-memory
//! declarations, strided loops, `__syncthreads`, guarded stores). This
//! output is for inspection and golden tests; execution happens on the
//! simulator.

use crate::kernel::{BufferInit, KExpr, Kernel, KernelProgram, Stmt};
use multidim_ir::{BinOp, Size, UnOp};
use std::fmt::Write as _;

/// Render the whole program: buffer table plus each kernel.
pub fn emit_cuda(kp: &KernelProgram) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "// generated from program `{}`", kp.name);
    for note in &kp.notes {
        let _ = writeln!(s, "// note: {note}");
    }
    let _ = writeln!(s, "// buffers:");
    for (i, b) in kp.buffers.iter().enumerate() {
        let init = match b.init {
            BufferInit::Zero => "zero".to_string(),
            BufferInit::FromArray(a) => format!("host array {}", a.0),
            BufferInit::FromArrayOrZero(a) => format!("host array {} or zero", a.0),
            BufferInit::Fill(v) => format!("fill {v}"),
        };
        let _ = writeln!(
            s,
            "//   b{i}: {} [{} elems x {}B] init={init}",
            b.name, b.len, b.elem_bytes
        );
    }
    let _ = writeln!(s);
    for c in &kp.children {
        let _ = writeln!(
            s,
            "// device-launchable child (grid chosen per launch; leading locals are launch args)"
        );
        emit_kernel(&mut s, kp, c);
        let _ = writeln!(s);
    }
    for k in &kp.kernels {
        emit_kernel(&mut s, kp, k);
        let _ = writeln!(s);
    }
    s
}

/// Render a single kernel.
pub fn emit_kernel(s: &mut String, kp: &KernelProgram, k: &Kernel) {
    let params: Vec<String> = kp
        .buffers
        .iter()
        .enumerate()
        .map(|(i, b)| format!("{}* b{i}_{}", ctype(b.elem_bytes), b.name))
        .collect();
    let _ = writeln!(
        s,
        "// launch: grid=({}, {}, {}), block=({}, {}, {})",
        k.grid[0], k.grid[1], k.grid[2], k.block[0], k.block[1], k.block[2]
    );
    let _ = writeln!(s, "__global__ void {}({}) {{", k.name, params.join(", "));
    for sm in &k.smem {
        let _ = writeln!(s, "  __shared__ double {}[{}];", sm.name, sm.len);
    }
    if k.locals > 0 {
        let names: Vec<String> = (0..k.locals).map(|i| format!("r{i}")).collect();
        let _ = writeln!(s, "  double {};", names.join(", "));
    }
    emit_stmts(s, kp, &k.body, 1);
    let _ = writeln!(s, "}}");
}

fn ctype(bytes: u64) -> &'static str {
    match bytes {
        4 => "float",
        1 => "bool",
        _ => "double",
    }
}

fn indent(s: &mut String, depth: usize) {
    for _ in 0..depth {
        s.push_str("  ");
    }
}

fn emit_stmts(s: &mut String, kp: &KernelProgram, stmts: &[Stmt], depth: usize) {
    for st in stmts {
        emit_stmt(s, kp, st, depth);
    }
}

fn emit_stmt(s: &mut String, kp: &KernelProgram, st: &Stmt, depth: usize) {
    indent(s, depth);
    match st {
        Stmt::Assign { dst, value } => {
            let _ = writeln!(s, "r{dst} = {};", expr(kp, value));
        }
        Stmt::Store { buf, idx, value } => {
            let b = kp.buffer(*buf);
            let _ = writeln!(
                s,
                "b{}_{}[(int)({})] = {};",
                buf.0,
                b.name,
                expr(kp, idx),
                expr(kp, value)
            );
        }
        Stmt::AtomicRmw {
            buf,
            idx,
            op,
            value,
            capture,
        } => {
            let b = kp.buffer(*buf);
            let f = match op {
                multidim_ir::ReduceOp::Add => "atomicAdd",
                multidim_ir::ReduceOp::Mul => "atomicMul",
                multidim_ir::ReduceOp::Min => "atomicMin",
                multidim_ir::ReduceOp::Max => "atomicMax",
            };
            let call = format!(
                "{f}(&b{}_{}[(int)({})], {})",
                buf.0,
                b.name,
                expr(kp, idx),
                expr(kp, value)
            );
            match capture {
                Some(c) => {
                    let _ = writeln!(s, "r{c} = {call};");
                }
                None => {
                    let _ = writeln!(s, "{call};");
                }
            }
        }
        Stmt::SmemStore { arr, idx, value } => {
            let _ = writeln!(
                s,
                "smem{arr}[(int)({})] = {};",
                expr(kp, idx),
                expr(kp, value)
            );
        }
        Stmt::For {
            var,
            start,
            end,
            step,
            body,
        } => {
            let _ = writeln!(
                s,
                "for (int r{var} = {}; r{var} < {}; r{var} += {}) {{",
                expr(kp, start),
                expr(kp, end),
                expr(kp, step)
            );
            emit_stmts(s, kp, body, depth + 1);
            indent(s, depth);
            let _ = writeln!(s, "}}");
        }
        Stmt::Break => {
            let _ = writeln!(s, "break;");
        }
        Stmt::If { cond, then, els } => {
            let _ = writeln!(s, "if ({}) {{", expr(kp, cond));
            emit_stmts(s, kp, then, depth + 1);
            if !els.is_empty() {
                indent(s, depth);
                let _ = writeln!(s, "}} else {{");
                emit_stmts(s, kp, els, depth + 1);
            }
            indent(s, depth);
            let _ = writeln!(s, "}}");
        }
        Stmt::Sync => {
            let _ = writeln!(s, "__syncthreads();");
        }
        Stmt::DeviceMalloc { bytes } => {
            let _ = writeln!(
                s,
                "malloc((size_t)({})); // per-thread temporary",
                expr(kp, bytes)
            );
        }
        Stmt::ChildLaunch {
            kernel,
            extent,
            args,
        } => {
            let child = &kp.children[*kernel as usize];
            let block = child.block_threads();
            let child_args: Vec<String> = args.iter().map(|a| expr(kp, a)).collect();
            let _ = writeln!(
                s,
                "{}<<<(int)ceil(({}) / {block}.0), {block}>>>({}); // device-side launch",
                child.name,
                expr(kp, extent),
                child_args.join(", ")
            );
        }
    }
}

fn expr(kp: &KernelProgram, e: &KExpr) -> String {
    match e {
        KExpr::Imm(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{}", *v as i64)
            } else {
                format!("{v}")
            }
        }
        KExpr::Local(l) => format!("r{l}"),
        KExpr::Tid(a) => format!("threadIdx.{}", a.name()),
        KExpr::Bid(a) => format!("blockIdx.{}", a.name()),
        KExpr::Bdim(a) => format!("blockDim.{}", a.name()),
        KExpr::Gdim(a) => format!("gridDim.{}", a.name()),
        KExpr::SizeVal(sz) => size_expr(sz),
        KExpr::Load { buf, idx } => {
            let b = kp.buffer(*buf);
            format!("b{}_{}[(int)({})]", buf.0, b.name, expr(kp, idx))
        }
        KExpr::SmemLoad { arr, idx } => format!("smem{arr}[(int)({})]", expr(kp, idx)),
        KExpr::Bin(op, a, b) => {
            let (x, y) = (expr(kp, a), expr(kp, b));
            match op {
                BinOp::Add => format!("({x} + {y})"),
                BinOp::Sub => format!("({x} - {y})"),
                BinOp::Mul => format!("({x} * {y})"),
                BinOp::Div => format!("({x} / {y})"),
                BinOp::Rem => format!("((int){x} % (int){y})"),
                BinOp::Min => format!("min({x}, {y})"),
                BinOp::Max => format!("max({x}, {y})"),
                BinOp::Lt => format!("({x} < {y})"),
                BinOp::Le => format!("({x} <= {y})"),
                BinOp::Gt => format!("({x} > {y})"),
                BinOp::Ge => format!("({x} >= {y})"),
                BinOp::Eq => format!("({x} == {y})"),
                BinOp::Ne => format!("({x} != {y})"),
                BinOp::And => format!("({x} && {y})"),
                BinOp::Or => format!("({x} || {y})"),
            }
        }
        KExpr::Un(op, a) => {
            let x = expr(kp, a);
            match op {
                UnOp::Neg => format!("(-{x})"),
                UnOp::Not => format!("(!{x})"),
                UnOp::Sqrt => format!("sqrt({x})"),
                UnOp::Exp => format!("exp({x})"),
                UnOp::Log => format!("log({x})"),
                UnOp::Abs => format!("fabs({x})"),
                UnOp::Floor => format!("floor({x})"),
            }
        }
        KExpr::Select(c, t, f) => {
            format!("({} ? {} : {})", expr(kp, c), expr(kp, t), expr(kp, f))
        }
    }
}

fn size_expr(s: &Size) -> String {
    match s {
        Size::Const(n) => format!("{n}"),
        Size::Sym(id) => format!("s{}", id.0),
        Size::Dynamic(e) => format!("/*dyn*/{e}"),
        Size::Add(a, b) => format!("({} + {})", size_expr(a), size_expr(b)),
        Size::Sub(a, b) => format!("max(0, {} - {})", size_expr(a), size_expr(b)),
        Size::Mul(a, b) => format!("({} * {})", size_expr(a), size_expr(b)),
        Size::CeilDiv(a, b) => {
            format!(
                "(({} + {} - 1) / {})",
                size_expr(a),
                size_expr(b),
                size_expr(b)
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Axis, BufId, BufferDecl, SmemDecl};
    use multidim_ir::{ReduceOp, SymId};

    fn sample_program() -> KernelProgram {
        KernelProgram {
            name: "sample".into(),
            buffers: vec![
                BufferDecl {
                    name: "in".into(),
                    elem_bytes: 4,
                    len: Size::sym(SymId(0)) * Size::from(2),
                    init: BufferInit::FromArray(multidim_ir::ArrayId(0)),
                    array: Some(multidim_ir::ArrayId(0)),
                },
                BufferDecl {
                    name: "out".into(),
                    elem_bytes: 8,
                    len: Size::from(10),
                    init: BufferInit::Fill(1.5),
                    array: None,
                },
            ],
            kernels: vec![Kernel {
                name: "k".into(),
                grid: [Size::from(4), Size::from(1), Size::from(1)],
                block: [64, 1, 1],
                smem: vec![SmemDecl {
                    name: "tile".into(),
                    len: 64,
                }],
                locals: 2,
                body: vec![
                    Stmt::Assign {
                        dst: 0,
                        value: KExpr::global_tid(Axis::X),
                    },
                    Stmt::For {
                        var: 1,
                        start: KExpr::imm(0),
                        end: KExpr::SizeVal(Size::sym(SymId(0))),
                        step: KExpr::imm(1),
                        body: vec![Stmt::If {
                            cond: KExpr::lt(KExpr::Local(1), KExpr::imm(5)),
                            then: vec![Stmt::Break],
                            els: vec![Stmt::SmemStore {
                                arr: 0,
                                idx: KExpr::Tid(Axis::X),
                                value: KExpr::Load {
                                    buf: BufId(0),
                                    idx: Box::new(KExpr::Local(0)),
                                },
                            }],
                        }],
                    },
                    Stmt::Sync,
                    Stmt::AtomicRmw {
                        buf: BufId(1),
                        idx: KExpr::imm(0),
                        op: ReduceOp::Add,
                        value: KExpr::Imm(1.0),
                        capture: Some(1),
                    },
                    Stmt::DeviceMalloc {
                        bytes: KExpr::imm(256),
                    },
                ],
            }],
            children: vec![],
            notes: vec!["demo note".into()],
        }
    }

    #[test]
    fn emits_signature_and_types() {
        let text = emit_cuda(&sample_program());
        assert!(
            text.contains("__global__ void k(float* b0_in, double* b1_out)"),
            "{text}"
        );
        assert!(text.contains("__shared__ double tile[64];"));
        assert!(text.contains("double r0, r1;"));
    }

    #[test]
    fn emits_control_flow() {
        let text = emit_cuda(&sample_program());
        assert!(
            text.contains("for (int r1 = 0; r1 < s0; r1 += 1) {"),
            "{text}"
        );
        assert!(text.contains("break;"));
        assert!(text.contains("} else {"));
        assert!(text.contains("__syncthreads();"));
    }

    #[test]
    fn emits_atomics_and_malloc() {
        let text = emit_cuda(&sample_program());
        assert!(
            text.contains("r1 = atomicAdd(&b1_out[(int)(0)], 1);"),
            "{text}"
        );
        assert!(text.contains("malloc((size_t)(256));"));
    }

    #[test]
    fn emits_buffer_table_and_notes() {
        let text = emit_cuda(&sample_program());
        assert!(text.contains("// note: demo note"));
        assert!(text.contains("init=host array 0"));
        assert!(text.contains("init=fill 1.5"));
        assert!(text.contains("(s0 * 2)"));
    }

    #[test]
    fn size_expressions_render() {
        assert_eq!(
            size_expr(&(Size::sym(SymId(1)) / Size::from(4))),
            "((s1 + 4 - 1) / 4)"
        );
        assert_eq!(size_expr(&(Size::from(8) - Size::from(3))), "max(0, 8 - 3)");
        assert_eq!(size_expr(&Size::Dynamic(100)), "/*dyn*/100");
    }
}
