//! Kernel IR and code generation for the `multidim` framework.
//!
//! Lowers a pattern [`Program`](multidim_ir::Program) plus a
//! [`MappingDecision`](multidim_mapping::MappingDecision) into a
//! [`KernelProgram`]: CUDA-shaped kernels (Section IV-E of the paper) with
//! the Section V optimizations — temporary **preallocation with
//! mapping-directed layout** (no per-thread `malloc`) and **shared-memory
//! prefetch** of outer-level reads in imperfect nests — plus `Split(k)`
//! combiner kernels for cross-block reductions.
//!
//! The produced kernels are executed by `multidim-sim` and can be rendered
//! as CUDA C via [`emit_cuda`] (Figure 9's shape).
//!
//! # Examples
//!
//! ```
//! use multidim_ir::*;
//! use multidim_mapping::analyze;
//! use multidim_codegen::{lower, CodegenOptions, emit_cuda};
//! use multidim_device::GpuSpec;
//!
//! let mut b = ProgramBuilder::new("sumRows");
//! let r = b.sym("R");
//! let c = b.sym("C");
//! let m = b.input("m", ScalarKind::F32, &[Size::sym(r), Size::sym(c)]);
//! let root = b.map(Size::sym(r), |b, row| {
//!     b.reduce(Size::sym(c), ReduceOp::Add, |b, col| {
//!         b.read(m, &[row.into(), col.into()])
//!     })
//! });
//! let p = b.finish_map(root, "out", ScalarKind::F32)?;
//! let mut bind = Bindings::new();
//! bind.bind(r, 4096);
//! bind.bind(c, 4096);
//! let analysis = analyze(&p, &bind, &GpuSpec::tesla_k20c());
//! let kp = lower(&p, &analysis.decision, &CodegenOptions::default())?;
//! let cuda = emit_cuda(&kp);
//! assert!(cuda.contains("__global__"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod cuda;
mod dynpar;
mod fusion;
mod kernel;
mod lower;
mod validate;

pub use cuda::{emit_cuda, emit_kernel};
pub use dynpar::{
    find_site, lower_planned, DynParPlan, LaunchSite, LaunchStrategy, SiteDecision, SiteShape,
};
pub use fusion::{fuse_map_reduce, substitute_var};
pub use kernel::{
    Axis, BufId, BufferDecl, BufferInit, KExpr, Kernel, KernelProgram, LocalId, SmemDecl, SmemId,
    Stmt,
};
pub use lower::{lower, CodegenOptions, LayoutPolicy, LowerError, TempLayout};
pub use validate::{validate_kernel, validate_kernels, KernelError};
