//! Dynamic-parallelism launch consolidation.
//!
//! Nests whose inner extent is *data-dependent* (`Pattern::dyn_extent`,
//! e.g. a CSR row's nonzero count) cannot influence the launch
//! configuration, so the baseline lowering inlines them as `Span(all)`
//! loops. Device-side child launches (CUDA dynamic parallelism) are the
//! alternative: the parent kernel launches one child grid per outer index.
//! Naively that pays one launch overhead *per outer element* — the classic
//! CDP pitfall — so a consolidation stage chooses per launch site between:
//!
//! * **thresholding** — inner nests below a work cutoff stay inlined
//!   (the existing `Span(all)` serial-per-block path);
//! * **coarsening** — a single kernel where each block handles `k`
//!   consecutive outer indices with one warp striding the inner extent;
//! * **aggregation** — the inner extents are prefix-summed into a work
//!   queue (`off[]`) by a three-kernel scan, and *one* consolidated child
//!   grid over the queue's total executes every inner element, locating
//!   its outer index by binary search over `off[]`.
//!
//! This module owns the plan types ([`DynParPlan`], [`LaunchStrategy`]),
//! launch-site discovery ([`find_site`]), and the strategy lowerings
//! ([`lower_planned`]). The cost-model *chooser* that builds a plan lives
//! in the `multidim-dynpar` crate.

use crate::kernel::{
    Axis, BufId, BufferDecl, BufferInit, KExpr, Kernel, KernelProgram, LocalId, SmemDecl, Stmt,
};
use crate::lower::{lower, CodegenOptions, LowerError};
use multidim_ir::{
    ArrayId, ArrayRole, BinOp, Body, Effect, Expr, Pattern, PatternKind, Program, ReadSrc,
    ReduceOp, Size, UnOp, VarId,
};
use multidim_mapping::MappingDecision;
use multidim_trace as trace;
use std::collections::HashMap;

/// How one dynamic-extent launch site is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LaunchStrategy {
    /// Keep the baseline lowering: the inner nest is a serial
    /// (`Span(all)`) loop inside the parent kernel.
    Inline,
    /// One device-side child launch per outer element (the unconsolidated
    /// baseline; pays per-element launch overhead).
    Naive,
    /// One kernel; each block owns `k` consecutive outer elements, one
    /// warp strides each inner extent.
    Coarsen(u32),
    /// Prefix-sum the inner extents into a work queue and launch a single
    /// consolidated child grid over the total.
    Aggregate,
}

impl LaunchStrategy {
    /// Short name for reports and traces.
    pub fn name(&self) -> &'static str {
        match self {
            LaunchStrategy::Inline => "inline",
            LaunchStrategy::Naive => "naive",
            LaunchStrategy::Coarsen(_) => "coarsen",
            LaunchStrategy::Aggregate => "aggregate",
        }
    }
}

/// The consolidation decision for one launch site (recorded in the
/// compiled executable's metadata and in traces).
#[derive(Debug, Clone, PartialEq)]
pub struct SiteDecision {
    /// `PatternId` of the inner (dynamic-extent) pattern.
    pub pattern: u32,
    /// Nest level of the inner pattern (currently always 1).
    pub level: usize,
    /// The chosen strategy.
    pub strategy: LaunchStrategy,
    /// Outer extent `P` evaluated under the launch bindings.
    pub outer: i64,
    /// Estimated mean inner extent (from the workload's size hint).
    pub estimate: i64,
    /// Child/worker block width.
    pub child_block: u32,
    /// Modeled seconds per strategy, `(name, seconds)`, for reports.
    pub modeled: Vec<(String, f64)>,
    /// One-line human rationale.
    pub reason: String,
}

/// The per-program consolidation plan. `site: None` means the program has
/// no supported dynamic-parallelism launch site (lowering proceeds
/// unchanged).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DynParPlan {
    /// The single supported site's decision, if any.
    pub site: Option<SiteDecision>,
}

impl DynParPlan {
    /// Does this plan change lowering at all?
    pub fn consolidates(&self) -> bool {
        self.site
            .as_ref()
            .is_some_and(|s| s.strategy != LaunchStrategy::Inline)
    }
}

/// What the site's inner pattern does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteShape {
    /// `map(P) { reduce_dyn(d(i), op) { body(i, j) } }` — e.g. SpMV.
    MapReduce(ReduceOp),
    /// `foreach(P) { lets…; foreach_dyn(d(i)) { effects(i, j) } }` —
    /// e.g. a BFS step or a ragged filter-then-map.
    ForeachForeach,
}

/// A discovered launch site: borrowed views into the program's nest.
#[derive(Debug, Clone)]
pub struct LaunchSite<'p> {
    /// The outer (static-extent) pattern.
    pub outer: &'p Pattern,
    /// The inner (dynamic-extent) pattern.
    pub inner: &'p Pattern,
    /// Outer-scope scalar lets preceding the inner pattern (shape B).
    pub lets: Vec<(VarId, &'p Expr)>,
    /// Which shape matched.
    pub shape: SiteShape,
}

/// Expressions our standalone kernel builder can lower: scalar math over
/// literals, bound variables, and *array* reads. Patterns, `Iterate`, and
/// collection temporaries are out (those sites fall back to `Inline`).
fn expr_ok(e: &Expr) -> bool {
    match e {
        Expr::Lit(_) | Expr::Var(_) | Expr::SizeOf(_) => true,
        Expr::LengthOf(ReadSrc::Array(_), _) => true,
        Expr::LengthOf(ReadSrc::Var(_), _) => false,
        Expr::Read(ReadSrc::Array(_), idxs) => idxs.iter().all(expr_ok),
        Expr::Read(ReadSrc::Var(_), _) => false,
        Expr::Bin(_, a, b) => expr_ok(a) && expr_ok(b),
        Expr::Un(_, a) => expr_ok(a),
        Expr::Select(c, t, f) => expr_ok(c) && expr_ok(t) && expr_ok(f),
        Expr::Let(_, v, b) => !matches!(**v, Expr::Pat(_)) && expr_ok(v) && expr_ok(b),
        Expr::Iterate { .. } | Expr::Pat(_) => false,
    }
}

/// Find the program's dynamic-parallelism launch site, if its nest matches
/// one of the supported shapes (see [`SiteShape`]). Anything else returns
/// `None` and keeps the baseline lowering.
pub fn find_site(program: &Program) -> Option<LaunchSite<'_>> {
    let root = &program.root;
    if root.size.is_dynamic() || root.dyn_extent.is_some() {
        return None;
    }
    match &root.kind {
        // Shape A: map whose body is directly a dynamic reduce with a
        // pattern-free body, storing to the program output.
        PatternKind::Map => {
            let Body::Value(Expr::Pat(inner)) = &root.body else {
                return None;
            };
            let PatternKind::Reduce { op } = &inner.kind else {
                return None;
            };
            let dyn_e = inner.dyn_extent.as_ref()?;
            let Body::Value(body) = &inner.body else {
                return None;
            };
            program.output?;
            if !expr_ok(dyn_e) || !expr_ok(body) {
                return None;
            }
            Some(LaunchSite {
                outer: root,
                inner,
                lets: Vec::new(),
                shape: SiteShape::MapReduce(*op),
            })
        }
        // Shape B: foreach whose effects are scalar lets followed by
        // exactly one nested dynamic foreach of plain write/atomic
        // effects.
        PatternKind::Foreach => {
            let Body::Effects(effs) = &root.body else {
                return None;
            };
            let mut lets = Vec::new();
            let mut nested: Option<&Pattern> = None;
            for eff in effs {
                match eff {
                    Effect::LetScalar(v, e) if nested.is_none() => {
                        if !expr_ok(e) {
                            return None;
                        }
                        lets.push((*v, e));
                    }
                    Effect::Nested(p) if nested.is_none() => nested = Some(p),
                    _ => return None,
                }
            }
            let inner = nested?;
            if !matches!(inner.kind, PatternKind::Foreach) {
                return None;
            }
            let dyn_e = inner.dyn_extent.as_ref()?;
            if !expr_ok(dyn_e) {
                return None;
            }
            let Body::Effects(inner_effs) = &inner.body else {
                return None;
            };
            for eff in inner_effs {
                match eff {
                    Effect::Write {
                        cond, idx, value, ..
                    }
                    | Effect::AtomicRmw {
                        cond, idx, value, ..
                    } => {
                        if cond.as_ref().is_some_and(|c| !expr_ok(c))
                            || idx.iter().any(|i| !expr_ok(i))
                            || !expr_ok(value)
                        {
                            return None;
                        }
                    }
                    Effect::LetScalar(_, e) => {
                        if !expr_ok(e) {
                            return None;
                        }
                    }
                    Effect::Nested(_) => return None,
                }
            }
            Some(LaunchSite {
                outer: root,
                inner,
                lets,
                shape: SiteShape::ForeachForeach,
            })
        }
        _ => None,
    }
}

/// Lower `program` honoring a consolidation `plan`. With no site (or an
/// `Inline` decision) this is exactly [`lower`]; otherwise the site's nest
/// is compiled into the chosen consolidated kernel structure and the
/// mapping decision is ignored (the kernels are launch-shaped by the
/// strategy, not by the per-level span analysis).
///
/// # Errors
///
/// Returns [`LowerError`] if the planned site no longer matches the
/// program (stale plan) or a body expression is outside the supported
/// subset.
pub fn lower_planned(
    program: &Program,
    mapping: &MappingDecision,
    opts: &CodegenOptions,
    plan: &DynParPlan,
) -> Result<KernelProgram, LowerError> {
    let Some(site_decision) = plan.site.as_ref() else {
        return lower(program, mapping, opts);
    };
    if site_decision.strategy == LaunchStrategy::Inline {
        return lower(program, mapping, opts);
    }
    let site = find_site(program).ok_or_else(|| {
        LowerError("dynpar plan refers to a launch site the program no longer has".into())
    })?;
    if site.inner.id.0 != site_decision.pattern {
        return Err(LowerError(format!(
            "dynpar plan targets pattern {} but the site is pattern {}",
            site_decision.pattern, site.inner.id.0
        )));
    }
    if trace::enabled() {
        trace::emit(
            trace::Event::instant("codegen", "dynpar_consolidate")
                .arg("program", program.name.as_str())
                .arg("strategy", site_decision.strategy.name())
                .arg("outer", site_decision.outer as u64)
                .arg("estimate", site_decision.estimate as u64),
        );
    }
    let mut b = SiteBuilder {
        program,
        site: &site,
        cb: site_decision.child_block.max(32),
        buffers: declare_buffers(program),
        notes: vec![format!(
            "dynpar: {} consolidation at level {} (P={}, ~{} inner)",
            site_decision.strategy.name(),
            site_decision.level,
            site_decision.outer,
            site_decision.estimate
        )],
    };
    // Reduce-shape accumulation is order-free only from the identity:
    // seed the output with it (rows the site never touches stay identity).
    if let SiteShape::MapReduce(op) = site.shape {
        let out = program.output.expect("shape A has an output");
        b.buffers[out.0 as usize].init = BufferInit::Fill(op.identity());
    }
    let (kernels, children) = match site_decision.strategy {
        LaunchStrategy::Naive => b.naive()?,
        LaunchStrategy::Coarsen(k) => b.coarsen(k.max(1))?,
        LaunchStrategy::Aggregate => b.aggregate()?,
        LaunchStrategy::Inline => unreachable!("handled above"),
    };
    Ok(KernelProgram {
        name: program.name.clone(),
        buffers: b.buffers,
        kernels,
        children,
        notes: b.notes,
    })
}

/// Device buffers for the program's declared arrays (mirrors `lower`).
fn declare_buffers(program: &Program) -> Vec<BufferDecl> {
    program
        .arrays
        .iter()
        .map(|decl| {
            let mut len = Size::from(1);
            for d in &decl.shape {
                len = len * d.clone();
            }
            let init = match decl.role {
                ArrayRole::Input => BufferInit::FromArray(decl.id),
                _ => BufferInit::FromArrayOrZero(decl.id),
            };
            BufferDecl {
                name: decl.name.clone(),
                elem_bytes: decl.elem.bytes(),
                len,
                init,
                array: Some(decl.id),
            }
        })
        .collect()
}

/// Standalone scalar-expression lowering context (no mapping, no shared
/// memory, no nest chain — launch sites guarantee pattern-free bodies).
struct Ctx<'p> {
    program: &'p Program,
    vars: HashMap<VarId, KExpr>,
    next_local: u32,
}

impl<'p> Ctx<'p> {
    fn new(program: &'p Program, first_local: u32) -> Self {
        Ctx {
            program,
            vars: HashMap::new(),
            next_local: first_local,
        }
    }

    fn local(&mut self) -> LocalId {
        let l = self.next_local;
        self.next_local += 1;
        l
    }

    fn addr(
        &mut self,
        array: ArrayId,
        idxs: &'p [Expr],
        sink: &mut Vec<Stmt>,
    ) -> Result<KExpr, LowerError> {
        let shape = self.program.array(array).shape.clone();
        let mut addr = KExpr::imm(0);
        for (k, ie) in idxs.iter().enumerate() {
            let i = self.lower(ie, sink)?;
            let mut stride = Size::from(1);
            for s in &shape[k + 1..] {
                stride = stride * s.clone();
            }
            let term = if matches!(stride, Size::Const(1)) {
                i
            } else {
                KExpr::mul(i, KExpr::SizeVal(stride))
            };
            addr = if k == 0 { term } else { KExpr::add(addr, term) };
        }
        Ok(addr)
    }

    fn lower(&mut self, e: &'p Expr, sink: &mut Vec<Stmt>) -> Result<KExpr, LowerError> {
        match e {
            Expr::Lit(v) => Ok(KExpr::Imm(*v)),
            Expr::Var(v) => self
                .vars
                .get(v)
                .cloned()
                .ok_or_else(|| LowerError(format!("unbound variable {v:?} in dynpar site"))),
            Expr::SizeOf(s) => Ok(KExpr::SizeVal(s.clone())),
            Expr::LengthOf(ReadSrc::Array(a), dim) => {
                let shape = &self.program.array(*a).shape;
                shape
                    .get(*dim)
                    .map(|s| KExpr::SizeVal(s.clone()))
                    .ok_or_else(|| LowerError("lengthOf out of rank".into()))
            }
            Expr::Read(ReadSrc::Array(a), idxs) => {
                let addr = self.addr(*a, idxs, sink)?;
                Ok(KExpr::Load {
                    buf: BufId(a.0),
                    idx: Box::new(addr),
                })
            }
            Expr::Bin(op, a, bx) => {
                let x = self.lower(a, sink)?;
                let y = self.lower(bx, sink)?;
                Ok(KExpr::Bin(*op, Box::new(x), Box::new(y)))
            }
            Expr::Un(op, a) => {
                let x = self.lower(a, sink)?;
                Ok(KExpr::Un(*op, Box::new(x)))
            }
            Expr::Select(c, t, f) => {
                let cv = self.lower(c, sink)?;
                let tv = self.lower(t, sink)?;
                let fv = self.lower(f, sink)?;
                Ok(KExpr::Select(Box::new(cv), Box::new(tv), Box::new(fv)))
            }
            Expr::Let(v, val, body) => {
                let sv = self.lower(val, sink)?;
                let l = self.local();
                sink.push(Stmt::Assign { dst: l, value: sv });
                self.vars.insert(*v, KExpr::Local(l));
                let r = self.lower(body, sink);
                self.vars.remove(v);
                r
            }
            other => Err(LowerError(format!(
                "unsupported expression in dynpar site: {other:?}"
            ))),
        }
    }

    /// Lower the site's outer scalar lets (each bound for the remainder of
    /// the kernel body).
    fn bind_lets(
        &mut self,
        lets: &[(VarId, &'p Expr)],
        sink: &mut Vec<Stmt>,
    ) -> Result<(), LowerError> {
        for (v, e) in lets {
            let val = self.lower(e, sink)?;
            let l = self.local();
            sink.push(Stmt::Assign { dst: l, value: val });
            self.vars.insert(*v, KExpr::Local(l));
        }
        Ok(())
    }

    /// Lower shape-B inner effects.
    fn lower_effects(
        &mut self,
        effs: &'p [Effect],
        sink: &mut Vec<Stmt>,
    ) -> Result<(), LowerError> {
        for eff in effs {
            match eff {
                Effect::Write {
                    cond,
                    array,
                    idx,
                    value,
                } => {
                    let v = self.lower(value, sink)?;
                    let addr = self.addr(*array, idx, sink)?;
                    let st = Stmt::Store {
                        buf: BufId(array.0),
                        idx: addr,
                        value: v,
                    };
                    match cond {
                        Some(c) => {
                            let cv = self.lower(c, sink)?;
                            sink.push(Stmt::If {
                                cond: cv,
                                then: vec![st],
                                els: vec![],
                            });
                        }
                        None => sink.push(st),
                    }
                }
                Effect::AtomicRmw {
                    cond,
                    array,
                    idx,
                    op,
                    value,
                } => {
                    let v = self.lower(value, sink)?;
                    let addr = self.addr(*array, idx, sink)?;
                    let st = Stmt::AtomicRmw {
                        buf: BufId(array.0),
                        idx: addr,
                        op: *op,
                        value: v,
                        capture: None,
                    };
                    match cond {
                        Some(c) => {
                            let cv = self.lower(c, sink)?;
                            sink.push(Stmt::If {
                                cond: cv,
                                then: vec![st],
                                els: vec![],
                            });
                        }
                        None => sink.push(st),
                    }
                }
                Effect::LetScalar(v, e) => {
                    let val = self.lower(e, sink)?;
                    let l = self.local();
                    sink.push(Stmt::Assign { dst: l, value: val });
                    self.vars.insert(*v, KExpr::Local(l));
                }
                Effect::Nested(_) => {
                    return Err(LowerError("nested pattern in dynpar inner body".into()))
                }
            }
        }
        Ok(())
    }
}

/// `op(a, b)` as a kernel expression.
fn combine(op: ReduceOp, a: KExpr, b: KExpr) -> KExpr {
    let bo = match op {
        ReduceOp::Add => BinOp::Add,
        ReduceOp::Mul => BinOp::Mul,
        ReduceOp::Min => BinOp::Min,
        ReduceOp::Max => BinOp::Max,
    };
    KExpr::Bin(bo, Box::new(a), Box::new(b))
}

fn kmin(a: KExpr, b: KExpr) -> KExpr {
    KExpr::Bin(BinOp::Min, Box::new(a), Box::new(b))
}

fn kmax(a: KExpr, b: KExpr) -> KExpr {
    KExpr::Bin(BinOp::Max, Box::new(a), Box::new(b))
}

fn kle(a: KExpr, b: KExpr) -> KExpr {
    KExpr::Bin(BinOp::Le, Box::new(a), Box::new(b))
}

/// Builds the consolidated kernels for one site.
struct SiteBuilder<'p> {
    program: &'p Program,
    site: &'p LaunchSite<'p>,
    /// Child/worker block width.
    cb: u32,
    buffers: Vec<BufferDecl>,
    notes: Vec<String>,
}

/// Width of the per-site scan blocks (also the chunk count of the serial
/// block-sum scan, so one block always suffices for the second phase).
const SCAN_B: u32 = 128;
/// Warp width used by the coarsened kernel.
const WARP: u32 = 32;
/// Binary-search iteration cap: supports outer extents up to 2^47.
const SEARCH_ITERS: i64 = 48;

impl<'p> SiteBuilder<'p> {
    fn outer_size(&self) -> Size {
        self.site.outer.size.clone()
    }

    fn out_buf(&self) -> Result<BufId, LowerError> {
        self.program
            .output
            .map(|o| BufId(o.0))
            .ok_or_else(|| LowerError("dynpar shape A requires an output array".into()))
    }

    fn add_buffer(&mut self, name: String, len: Size) -> BufId {
        let id = BufId(self.buffers.len() as u32);
        self.buffers.push(BufferDecl {
            name,
            elem_bytes: 8,
            len,
            init: BufferInit::Zero,
            array: None,
        });
        id
    }

    /// The inner-element body at `(i, j)`: accumulate-or-effects,
    /// appended to `sink`. `i`/`j` are the outer/inner index expressions.
    fn element_body(
        &self,
        ctx: &mut Ctx<'p>,
        i: KExpr,
        j: KExpr,
        sink: &mut Vec<Stmt>,
    ) -> Result<(), LowerError> {
        ctx.vars.insert(self.site.outer.var, i.clone());
        ctx.bind_lets(&self.site.lets, sink)?;
        ctx.vars.insert(self.site.inner.var, j);
        match self.site.shape {
            SiteShape::MapReduce(op) => {
                let Body::Value(body) = &self.site.inner.body else {
                    return Err(LowerError("shape A inner body is not a value".into()));
                };
                let v = ctx.lower(body, sink)?;
                sink.push(Stmt::AtomicRmw {
                    buf: self.out_buf()?,
                    idx: i,
                    op,
                    value: v,
                    capture: None,
                });
            }
            SiteShape::ForeachForeach => {
                let Body::Effects(effs) = &self.site.inner.body else {
                    return Err(LowerError("shape B inner body is not effects".into()));
                };
                ctx.lower_effects(effs, sink)?;
            }
        }
        Ok(())
    }

    /// The clamped inner extent `max(d(i), 0)` assigned to a fresh local.
    fn extent_local(
        &self,
        ctx: &mut Ctx<'p>,
        i: KExpr,
        sink: &mut Vec<Stmt>,
    ) -> Result<LocalId, LowerError> {
        ctx.vars.insert(self.site.outer.var, i);
        ctx.bind_lets(&self.site.lets, sink)?;
        let dyn_e = self
            .site
            .inner
            .dyn_extent
            .as_ref()
            .expect("site has a dynamic extent");
        let d = ctx.lower(dyn_e, sink)?;
        let l = ctx.local();
        sink.push(Stmt::Assign {
            dst: l,
            value: kmax(d, KExpr::imm(0)),
        });
        Ok(l)
    }

    // ------------------------------------------------------------------
    // Naive: one child launch per outer element.
    // ------------------------------------------------------------------

    fn naive(&mut self) -> Result<(Vec<Kernel>, Vec<Kernel>), LowerError> {
        let p = self.outer_size();
        let cb = self.cb;

        // Parent: i = gtid; if i < P { d = extent(i); launch(child, d, [d, i]) }
        let mut ctx = Ctx::new(self.program, 0);
        let i = ctx.local();
        let mut then = Vec::new();
        let d = self.extent_local(&mut ctx, KExpr::Local(i), &mut then)?;
        then.push(Stmt::ChildLaunch {
            kernel: 0,
            extent: KExpr::Local(d),
            args: vec![KExpr::Local(d), KExpr::Local(i)],
        });
        let parent = Kernel {
            name: format!("{}_launcher", self.program.name),
            grid: [
                p.clone() / Size::from(i64::from(cb)),
                Size::from(1),
                Size::from(1),
            ],
            block: [cb, 1, 1],
            smem: vec![],
            locals: ctx.next_local,
            body: vec![
                Stmt::Assign {
                    dst: i,
                    value: KExpr::global_tid(Axis::X),
                },
                Stmt::If {
                    cond: KExpr::lt(KExpr::Local(i), KExpr::SizeVal(p)),
                    then,
                    els: vec![],
                },
            ],
        };

        // Child: locals 0 = d, 1 = i (launch args); j = gtid; body(i, j).
        let mut cctx = Ctx::new(self.program, 2);
        let j = cctx.local();
        let mut cthen = Vec::new();
        self.element_body(&mut cctx, KExpr::Local(1), KExpr::Local(j), &mut cthen)?;
        let child = Kernel {
            name: format!("{}_child", self.program.name),
            grid: [Size::from(1), Size::from(1), Size::from(1)],
            block: [cb, 1, 1],
            smem: vec![],
            locals: cctx.next_local,
            body: vec![
                Stmt::Assign {
                    dst: j,
                    value: KExpr::global_tid(Axis::X),
                },
                Stmt::If {
                    cond: KExpr::lt(KExpr::Local(j), KExpr::Local(0)),
                    then: cthen,
                    els: vec![],
                },
            ],
        };
        self.notes
            .push("dynpar naive: one device-side child grid per outer element".into());
        Ok((vec![parent], vec![child]))
    }

    // ------------------------------------------------------------------
    // Coarsen(k): one kernel, each block serially owns k outer elements,
    // one warp strides each inner extent (warp-synchronous combine).
    // ------------------------------------------------------------------

    fn coarsen(&mut self, k: u32) -> Result<(Vec<Kernel>, Vec<Kernel>), LowerError> {
        let p = self.outer_size();
        let mut ctx = Ctx::new(self.program, 0);
        let s = ctx.local();
        let i = ctx.local();

        let mut per_i = vec![Stmt::Assign {
            dst: i,
            value: KExpr::add(
                KExpr::mul(KExpr::Bid(Axis::X), KExpr::imm(i64::from(k))),
                KExpr::Local(s),
            ),
        }];
        let mut then = Vec::new();
        let d = self.extent_local(&mut ctx, KExpr::Local(i), &mut then)?;

        let mut smem = Vec::new();
        match self.site.shape {
            SiteShape::MapReduce(op) => {
                // acc = identity; for (j = tid; j < d; j += 32) acc ⊕= body;
                // then a warp-synchronous shared-memory tree, lane 0 stores.
                let acc = ctx.local();
                then.push(Stmt::Assign {
                    dst: acc,
                    value: KExpr::Imm(op.identity()),
                });
                let j = ctx.local();
                let mut loop_body = Vec::new();
                let mut bctx = Ctx::new(self.program, ctx.next_local);
                bctx.vars.clone_from(&ctx.vars);
                let Body::Value(body) = &self.site.inner.body else {
                    return Err(LowerError("shape A inner body is not a value".into()));
                };
                bctx.vars.insert(self.site.inner.var, KExpr::Local(j));
                bctx.vars.insert(self.site.outer.var, KExpr::Local(i));
                let v = bctx.lower(body, &mut loop_body)?;
                ctx.next_local = bctx.next_local;
                loop_body.push(Stmt::Assign {
                    dst: acc,
                    value: combine(op, KExpr::Local(acc), v),
                });
                then.push(Stmt::For {
                    var: j,
                    start: KExpr::Tid(Axis::X),
                    end: KExpr::Local(d),
                    step: KExpr::imm(i64::from(WARP)),
                    body: loop_body,
                });
                let red = smem.len() as u32;
                smem.push(SmemDecl {
                    name: "red".into(),
                    len: WARP,
                });
                then.push(Stmt::SmemStore {
                    arr: red,
                    idx: KExpr::Tid(Axis::X),
                    value: KExpr::Local(acc),
                });
                let slot = |e: KExpr| KExpr::SmemLoad {
                    arr: red,
                    idx: Box::new(e),
                };
                let mut stride = WARP / 2;
                while stride >= 1 {
                    then.push(Stmt::If {
                        cond: KExpr::lt(KExpr::Tid(Axis::X), KExpr::imm(i64::from(stride))),
                        then: vec![Stmt::SmemStore {
                            arr: red,
                            idx: KExpr::Tid(Axis::X),
                            value: combine(
                                op,
                                slot(KExpr::Tid(Axis::X)),
                                slot(KExpr::add(
                                    KExpr::Tid(Axis::X),
                                    KExpr::imm(i64::from(stride)),
                                )),
                            ),
                        }],
                        els: vec![],
                    });
                    stride /= 2;
                }
                then.push(Stmt::If {
                    cond: KExpr::eq(KExpr::Tid(Axis::X), KExpr::imm(0)),
                    then: vec![Stmt::Store {
                        buf: self.out_buf()?,
                        idx: KExpr::Local(i),
                        value: slot(KExpr::imm(0)),
                    }],
                    els: vec![],
                });
            }
            SiteShape::ForeachForeach => {
                let j = ctx.local();
                let mut loop_body = Vec::new();
                let mut bctx = Ctx::new(self.program, ctx.next_local);
                bctx.vars.clone_from(&ctx.vars);
                let Body::Effects(effs) = &self.site.inner.body else {
                    return Err(LowerError("shape B inner body is not effects".into()));
                };
                bctx.vars.insert(self.site.inner.var, KExpr::Local(j));
                bctx.vars.insert(self.site.outer.var, KExpr::Local(i));
                bctx.lower_effects(effs, &mut loop_body)?;
                ctx.next_local = bctx.next_local;
                then.push(Stmt::For {
                    var: j,
                    start: KExpr::Tid(Axis::X),
                    end: KExpr::Local(d),
                    step: KExpr::imm(i64::from(WARP)),
                    body: loop_body,
                });
            }
        }
        per_i.push(Stmt::If {
            cond: KExpr::lt(KExpr::Local(i), KExpr::SizeVal(p.clone())),
            then,
            els: vec![],
        });

        let kernel = Kernel {
            name: format!("{}_coarsen", self.program.name),
            grid: [p / Size::from(i64::from(k)), Size::from(1), Size::from(1)],
            block: [WARP, 1, 1],
            smem,
            locals: ctx.next_local,
            body: vec![Stmt::For {
                var: s,
                start: KExpr::imm(0),
                end: KExpr::imm(i64::from(k)),
                step: KExpr::imm(1),
                body: per_i,
            }],
        };
        self.notes.push(format!(
            "dynpar coarsen: {k} outer elements per block, one warp per inner extent"
        ));
        Ok((vec![kernel], vec![]))
    }

    // ------------------------------------------------------------------
    // Aggregate: three-kernel prefix scan of the inner extents into a
    // work queue, then ONE consolidated child grid over the total.
    // ------------------------------------------------------------------

    fn aggregate(&mut self) -> Result<(Vec<Kernel>, Vec<Kernel>), LowerError> {
        let p = self.outer_size();
        let name = &self.program.name;
        let off = self.add_buffer(format!("{name}_off"), p.clone() + Size::from(1));
        let nblocks = p.clone() / Size::from(i64::from(SCAN_B));
        let bs = self.add_buffer(format!("{name}_blocksums"), nblocks.clone());

        // k1: per-block exclusive scan of the extents. Each block loads
        // its SCAN_B extents into shared memory, thread 0 serially
        // prefix-sums them (blocks run concurrently, so the serial walk is
        // hidden by occupancy), every thread writes its exclusive prefix
        // to off[i], and thread 0 stores the block total to bs[bid].
        let mut c1 = Ctx::new(self.program, 0);
        let i1 = c1.local();
        let d1 = c1.local();
        let mut body1 = vec![
            Stmt::Assign {
                dst: i1,
                value: KExpr::global_tid(Axis::X),
            },
            Stmt::Assign {
                dst: d1,
                value: KExpr::imm(0),
            },
        ];
        let mut ext1 = Vec::new();
        let dl = self.extent_local(&mut c1, KExpr::Local(i1), &mut ext1)?;
        ext1.push(Stmt::Assign {
            dst: d1,
            value: KExpr::Local(dl),
        });
        body1.push(Stmt::If {
            cond: KExpr::lt(KExpr::Local(i1), KExpr::SizeVal(p.clone())),
            then: ext1,
            els: vec![],
        });
        let sums = 0u32;
        body1.push(Stmt::SmemStore {
            arr: sums,
            idx: KExpr::Tid(Axis::X),
            value: KExpr::Local(d1),
        });
        body1.push(Stmt::Sync);
        let run1 = c1.local();
        let cvar1 = c1.local();
        let tmp1 = c1.local();
        body1.push(Stmt::If {
            cond: KExpr::eq(KExpr::Tid(Axis::X), KExpr::imm(0)),
            then: vec![
                Stmt::Assign {
                    dst: run1,
                    value: KExpr::imm(0),
                },
                Stmt::For {
                    var: cvar1,
                    start: KExpr::imm(0),
                    end: KExpr::imm(i64::from(SCAN_B)),
                    step: KExpr::imm(1),
                    body: vec![
                        Stmt::Assign {
                            dst: tmp1,
                            value: KExpr::SmemLoad {
                                arr: sums,
                                idx: Box::new(KExpr::Local(cvar1)),
                            },
                        },
                        Stmt::SmemStore {
                            arr: sums,
                            idx: KExpr::Local(cvar1),
                            value: KExpr::Local(run1),
                        },
                        Stmt::Assign {
                            dst: run1,
                            value: KExpr::add(KExpr::Local(run1), KExpr::Local(tmp1)),
                        },
                    ],
                },
                Stmt::Store {
                    buf: bs,
                    idx: KExpr::Bid(Axis::X),
                    value: KExpr::Local(run1),
                },
            ],
            els: vec![],
        });
        body1.push(Stmt::Sync);
        body1.push(Stmt::If {
            cond: KExpr::lt(KExpr::Local(i1), KExpr::SizeVal(p.clone())),
            then: vec![Stmt::Store {
                buf: off,
                idx: KExpr::Local(i1),
                value: KExpr::SmemLoad {
                    arr: sums,
                    idx: Box::new(KExpr::Tid(Axis::X)),
                },
            }],
            els: vec![],
        });
        let k1 = Kernel {
            name: format!("{name}_scan_blocks"),
            grid: [nblocks.clone(), Size::from(1), Size::from(1)],
            block: [SCAN_B, 1, 1],
            smem: vec![SmemDecl {
                name: "sums".into(),
                len: SCAN_B,
            }],
            locals: c1.next_local,
            body: body1,
        };

        // k2: one SCAN_B-thread block turns bs[] into exclusive prefixes
        // of the block totals (chunked three-phase scan) and stores the
        // grand total at off[P].
        let k2 = self.scan_block_sums(bs, off, &nblocks, &p);

        // k3: off[i] += bs[bid] finalizes the global exclusive prefix;
        // thread 0 launches the single consolidated worker grid over the
        // total (children execute after this kernel completes).
        let mut c3 = Ctx::new(self.program, 0);
        let i3 = c3.local();
        let t3 = c3.local();
        let body3 = vec![
            Stmt::Assign {
                dst: i3,
                value: KExpr::global_tid(Axis::X),
            },
            Stmt::If {
                cond: KExpr::lt(KExpr::Local(i3), KExpr::SizeVal(p.clone())),
                then: vec![Stmt::Store {
                    buf: off,
                    idx: KExpr::Local(i3),
                    value: KExpr::add(
                        KExpr::Load {
                            buf: off,
                            idx: Box::new(KExpr::Local(i3)),
                        },
                        KExpr::Load {
                            buf: bs,
                            idx: Box::new(KExpr::Bid(Axis::X)),
                        },
                    ),
                }],
                els: vec![],
            },
            Stmt::If {
                cond: KExpr::eq(KExpr::global_tid(Axis::X), KExpr::imm(0)),
                then: vec![
                    Stmt::Assign {
                        dst: t3,
                        value: KExpr::Load {
                            buf: off,
                            idx: Box::new(KExpr::SizeVal(p.clone())),
                        },
                    },
                    Stmt::ChildLaunch {
                        kernel: 0,
                        extent: KExpr::Local(t3),
                        args: vec![KExpr::Local(t3)],
                    },
                ],
                els: vec![],
            },
        ];
        let k3 = Kernel {
            name: format!("{name}_scan_apply"),
            grid: [nblocks, Size::from(1), Size::from(1)],
            block: [SCAN_B, 1, 1],
            smem: vec![],
            locals: c3.next_local,
            body: body3,
        };

        let worker = self.aggregate_worker(off, &p)?;
        self.notes
            .push("dynpar aggregate: prefix-summed work queue, one consolidated child grid".into());
        Ok((vec![k1, k2, k3], vec![worker]))
    }

    /// k2 of the aggregation scan: a single block scans the NB block sums
    /// in place (exclusive) and stores the grand total at `off[P]`.
    /// Three-phase chunked scan: per-thread chunk sums → thread-0 serial
    /// scan of the SCAN_B chunk sums → per-thread chunk rewrite.
    fn scan_block_sums(&self, bs: BufId, off: BufId, nblocks: &Size, p: &Size) -> Kernel {
        let mut c = Ctx::new(self.program, 0);
        let chunk = KExpr::SizeVal(nblocks.clone() / Size::from(i64::from(SCAN_B)));
        let lo = c.local();
        let hi = c.local();
        let s = c.local();
        let iv = c.local();
        let run = c.local();
        let cv = c.local();
        let tmp = c.local();
        let run2 = c.local();
        let i2 = c.local();
        let dt = c.local();
        let sums = 0u32;
        let body = vec![
            Stmt::Assign {
                dst: lo,
                value: KExpr::mul(KExpr::Tid(Axis::X), chunk.clone()),
            },
            Stmt::Assign {
                dst: hi,
                value: kmin(
                    KExpr::mul(KExpr::add(KExpr::Tid(Axis::X), KExpr::imm(1)), chunk),
                    KExpr::SizeVal(nblocks.clone()),
                ),
            },
            Stmt::Assign {
                dst: s,
                value: KExpr::imm(0),
            },
            Stmt::For {
                var: iv,
                start: KExpr::Local(lo),
                end: KExpr::Local(hi),
                step: KExpr::imm(1),
                body: vec![Stmt::Assign {
                    dst: s,
                    value: KExpr::add(
                        KExpr::Local(s),
                        KExpr::Load {
                            buf: bs,
                            idx: Box::new(KExpr::Local(iv)),
                        },
                    ),
                }],
            },
            Stmt::SmemStore {
                arr: sums,
                idx: KExpr::Tid(Axis::X),
                value: KExpr::Local(s),
            },
            Stmt::Sync,
            Stmt::If {
                cond: KExpr::eq(KExpr::Tid(Axis::X), KExpr::imm(0)),
                then: vec![
                    Stmt::Assign {
                        dst: run,
                        value: KExpr::imm(0),
                    },
                    Stmt::For {
                        var: cv,
                        start: KExpr::imm(0),
                        end: KExpr::imm(i64::from(SCAN_B)),
                        step: KExpr::imm(1),
                        body: vec![
                            Stmt::Assign {
                                dst: tmp,
                                value: KExpr::SmemLoad {
                                    arr: sums,
                                    idx: Box::new(KExpr::Local(cv)),
                                },
                            },
                            Stmt::SmemStore {
                                arr: sums,
                                idx: KExpr::Local(cv),
                                value: KExpr::Local(run),
                            },
                            Stmt::Assign {
                                dst: run,
                                value: KExpr::add(KExpr::Local(run), KExpr::Local(tmp)),
                            },
                        ],
                    },
                    Stmt::Store {
                        buf: off,
                        idx: KExpr::SizeVal(p.clone()),
                        value: KExpr::Local(run),
                    },
                ],
                els: vec![],
            },
            Stmt::Sync,
            Stmt::Assign {
                dst: run2,
                value: KExpr::SmemLoad {
                    arr: sums,
                    idx: Box::new(KExpr::Tid(Axis::X)),
                },
            },
            Stmt::For {
                var: i2,
                start: KExpr::Local(lo),
                end: KExpr::Local(hi),
                step: KExpr::imm(1),
                body: vec![
                    Stmt::Assign {
                        dst: dt,
                        value: KExpr::Load {
                            buf: bs,
                            idx: Box::new(KExpr::Local(i2)),
                        },
                    },
                    Stmt::Store {
                        buf: bs,
                        idx: KExpr::Local(i2),
                        value: KExpr::Local(run2),
                    },
                    Stmt::Assign {
                        dst: run2,
                        value: KExpr::add(KExpr::Local(run2), KExpr::Local(dt)),
                    },
                ],
            },
        ];
        Kernel {
            name: format!("{}_scan_sums", self.program.name),
            grid: [Size::from(1), Size::from(1), Size::from(1)],
            block: [SCAN_B, 1, 1],
            smem: vec![SmemDecl {
                name: "sums".into(),
                len: SCAN_B,
            }],
            locals: c.next_local,
            body,
        }
    }

    /// The consolidated worker: thread `t` of the single child grid binary
    /// searches `off[]` for the largest `i` with `off[i] <= t`, recovers
    /// `j = t - off[i]`, and executes the element body.
    fn aggregate_worker(&self, off: BufId, p: &Size) -> Result<Kernel, LowerError> {
        let mut ctx = Ctx::new(self.program, 1); // local 0 = T (launch arg)
        let t = ctx.local();
        let lo = ctx.local();
        let hi = ctx.local();
        let mid = ctx.local();
        let it = ctx.local();
        let i = ctx.local();
        let j = ctx.local();
        let offload = |e: KExpr| KExpr::Load {
            buf: off,
            idx: Box::new(e),
        };
        let mut then = vec![
            Stmt::Assign {
                dst: lo,
                value: KExpr::imm(0),
            },
            Stmt::Assign {
                dst: hi,
                value: KExpr::sub(KExpr::SizeVal(p.clone()), KExpr::imm(1)),
            },
            Stmt::For {
                var: it,
                start: KExpr::imm(0),
                end: KExpr::imm(SEARCH_ITERS),
                step: KExpr::imm(1),
                body: vec![
                    Stmt::If {
                        cond: KExpr::ge(KExpr::Local(lo), KExpr::Local(hi)),
                        then: vec![Stmt::Break],
                        els: vec![],
                    },
                    Stmt::Assign {
                        dst: mid,
                        value: KExpr::Un(
                            UnOp::Floor,
                            Box::new(KExpr::div(
                                KExpr::add(
                                    KExpr::add(KExpr::Local(lo), KExpr::Local(hi)),
                                    KExpr::imm(1),
                                ),
                                KExpr::imm(2),
                            )),
                        ),
                    },
                    Stmt::If {
                        cond: kle(offload(KExpr::Local(mid)), KExpr::Local(t)),
                        then: vec![Stmt::Assign {
                            dst: lo,
                            value: KExpr::Local(mid),
                        }],
                        els: vec![Stmt::Assign {
                            dst: hi,
                            value: KExpr::sub(KExpr::Local(mid), KExpr::imm(1)),
                        }],
                    },
                ],
            },
            Stmt::Assign {
                dst: i,
                value: KExpr::Local(lo),
            },
            Stmt::Assign {
                dst: j,
                value: KExpr::sub(KExpr::Local(t), offload(KExpr::Local(i))),
            },
        ];
        self.element_body(&mut ctx, KExpr::Local(i), KExpr::Local(j), &mut then)?;
        Ok(Kernel {
            name: format!("{}_worker", self.program.name),
            grid: [Size::from(1), Size::from(1), Size::from(1)],
            block: [self.cb, 1, 1],
            smem: vec![],
            locals: ctx.next_local,
            body: vec![
                Stmt::Assign {
                    dst: t,
                    value: KExpr::global_tid(Axis::X),
                },
                Stmt::If {
                    cond: KExpr::lt(KExpr::Local(t), KExpr::Local(0)),
                    then,
                    els: vec![],
                },
            ],
        })
    }
}
