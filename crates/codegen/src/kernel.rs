//! CUDA-like kernel IR.
//!
//! The code generator lowers a pattern program plus a mapping decision into
//! a [`KernelProgram`]: a set of device buffers and a sequence of kernel
//! launches. Kernels are structured statement trees over per-thread scalar
//! locals, global-buffer loads/stores (linear element indices), shared
//! memory, block synchronization, and atomics — exactly the vocabulary of
//! the paper's generated CUDA (Figure 9).
//!
//! The same IR is executed warp-synchronously by `multidim-sim` and
//! pretty-printed as CUDA C by [`crate::emit_cuda`].

use multidim_ir::{ArrayId, BinOp, ReduceOp, Size, UnOp};

/// Identifier of a device buffer within a [`KernelProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufId(pub u32);

/// How a buffer is initialized before the first launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BufferInit {
    /// Zero-filled.
    Zero,
    /// Copied from the program array with the same id (host input,
    /// required).
    FromArray(ArrayId),
    /// Seeded from the host when provided (in-place algorithms), else
    /// zero-filled.
    FromArrayOrZero(ArrayId),
    /// Filled with a constant (reduction identities).
    Fill(f64),
}

/// A device buffer declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferDecl {
    /// Diagnostic name.
    pub name: String,
    /// Element width in bytes (drives coalescing/bandwidth accounting).
    pub elem_bytes: u64,
    /// Element count (symbolic; evaluated with the launch bindings).
    pub len: Size,
    /// Initialization.
    pub init: BufferInit,
    /// The program array this buffer materializes, if any (used to copy
    /// results back to the host).
    pub array: Option<ArrayId>,
}

/// Hardware axes of the thread hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Fastest-varying: lanes of a warp differ in x first.
    X,
    /// Second axis.
    Y,
    /// Third axis.
    Z,
}

impl Axis {
    /// Axis for a logical dimension index (0 = x).
    ///
    /// # Panics
    ///
    /// Panics for indices ≥ 3 (the code generator restricts nests to three
    /// parallel dimensions, like CUDA itself).
    pub fn from_index(i: u8) -> Axis {
        match i {
            0 => Axis::X,
            1 => Axis::Y,
            2 => Axis::Z,
            other => panic!("no hardware axis for logical dimension {other}"),
        }
    }

    /// 0, 1 or 2.
    pub fn index(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        }
    }

    /// CUDA member name (`x`/`y`/`z`).
    pub fn name(self) -> &'static str {
        match self {
            Axis::X => "x",
            Axis::Y => "y",
            Axis::Z => "z",
        }
    }
}

/// Identifier of a per-thread scalar local (a "register").
pub type LocalId = u32;

/// Identifier of a shared-memory array within a kernel.
pub type SmemId = u32;

/// A kernel-level scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum KExpr {
    /// Immediate constant.
    Imm(f64),
    /// Per-thread local.
    Local(LocalId),
    /// `threadIdx.<axis>`.
    Tid(Axis),
    /// `blockIdx.<axis>`.
    Bid(Axis),
    /// `blockDim.<axis>`.
    Bdim(Axis),
    /// `gridDim.<axis>`.
    Gdim(Axis),
    /// The launch-time value of a symbolic size (passed as a kernel
    /// parameter in real CUDA).
    SizeVal(Size),
    /// Global load at a linear element index.
    Load {
        /// Source buffer.
        buf: BufId,
        /// Linear element index.
        idx: Box<KExpr>,
    },
    /// Shared-memory load.
    SmemLoad {
        /// Shared array.
        arr: SmemId,
        /// Element index.
        idx: Box<KExpr>,
    },
    /// Binary operation.
    Bin(BinOp, Box<KExpr>, Box<KExpr>),
    /// Unary operation.
    Un(UnOp, Box<KExpr>),
    /// Pure conditional value (both sides evaluated; no lane divergence).
    Select(Box<KExpr>, Box<KExpr>, Box<KExpr>),
}

// `add`/`mul`/`sub`/`div` are two-argument AST constructors, not in-place
// arithmetic; implementing the `std::ops` traits would change their shape.
#[allow(clippy::should_implement_trait)]
impl KExpr {
    /// `a + b`
    pub fn add(a: KExpr, b: KExpr) -> KExpr {
        KExpr::Bin(BinOp::Add, Box::new(a), Box::new(b))
    }
    /// `a * b`
    pub fn mul(a: KExpr, b: KExpr) -> KExpr {
        KExpr::Bin(BinOp::Mul, Box::new(a), Box::new(b))
    }
    /// `a - b`
    pub fn sub(a: KExpr, b: KExpr) -> KExpr {
        KExpr::Bin(BinOp::Sub, Box::new(a), Box::new(b))
    }
    /// `a / b`
    pub fn div(a: KExpr, b: KExpr) -> KExpr {
        KExpr::Bin(BinOp::Div, Box::new(a), Box::new(b))
    }
    /// `a < b`
    pub fn lt(a: KExpr, b: KExpr) -> KExpr {
        KExpr::Bin(BinOp::Lt, Box::new(a), Box::new(b))
    }
    /// `a >= b`
    pub fn ge(a: KExpr, b: KExpr) -> KExpr {
        KExpr::Bin(BinOp::Ge, Box::new(a), Box::new(b))
    }
    /// `a == b`
    pub fn eq(a: KExpr, b: KExpr) -> KExpr {
        KExpr::Bin(BinOp::Eq, Box::new(a), Box::new(b))
    }
    /// `a && b`
    pub fn and(a: KExpr, b: KExpr) -> KExpr {
        KExpr::Bin(BinOp::And, Box::new(a), Box::new(b))
    }
    /// Global thread index along `axis`: `blockIdx*blockDim + threadIdx`.
    pub fn global_tid(axis: Axis) -> KExpr {
        KExpr::add(
            KExpr::mul(KExpr::Bid(axis), KExpr::Bdim(axis)),
            KExpr::Tid(axis),
        )
    }
    /// Integer immediate helper.
    pub fn imm(v: i64) -> KExpr {
        KExpr::Imm(v as f64)
    }
}

/// A kernel statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `local = value`.
    Assign {
        /// Destination local.
        dst: LocalId,
        /// Value.
        value: KExpr,
    },
    /// Global store `buf[idx] = value`.
    Store {
        /// Destination buffer.
        buf: BufId,
        /// Linear element index.
        idx: KExpr,
        /// Stored value.
        value: KExpr,
    },
    /// Atomic `buf[idx] = op(buf[idx], value)`; when `capture` is set, the
    /// *old* value is written to that local (compaction counters).
    AtomicRmw {
        /// Destination buffer.
        buf: BufId,
        /// Linear element index.
        idx: KExpr,
        /// Combine.
        op: ReduceOp,
        /// Operand.
        value: KExpr,
        /// Local receiving the pre-update value.
        capture: Option<LocalId>,
    },
    /// Shared store `smem[idx] = value`.
    SmemStore {
        /// Destination shared array.
        arr: SmemId,
        /// Element index.
        idx: KExpr,
        /// Stored value.
        value: KExpr,
    },
    /// `for (var = start; var < end; var += step) body` — `step` must be
    /// positive.
    For {
        /// Loop variable local.
        var: LocalId,
        /// Initial value.
        start: KExpr,
        /// Exclusive bound.
        end: KExpr,
        /// Increment.
        step: KExpr,
        /// Body.
        body: Vec<Stmt>,
    },
    /// Exit the innermost enclosing `For` (per lane).
    Break,
    /// `if (cond) then else els` (lane-divergent allowed).
    If {
        /// Condition (non-zero = taken).
        cond: KExpr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch.
        els: Vec<Stmt>,
    },
    /// `__syncthreads()`.
    Sync,
    /// Models a per-thread device-heap allocation of `bytes` — pure cost
    /// (the Figure 16 "Malloc" baseline); storage itself is preassigned.
    DeviceMalloc {
        /// Allocation size in bytes.
        bytes: KExpr,
    },
    /// Device-side kernel launch (CUDA dynamic parallelism): the executing
    /// thread launches `kernel` (an index into
    /// [`KernelProgram::children`]) over `ceil(extent / child.block)`
    /// one-dimensional blocks. `args` are evaluated in the launching
    /// thread and become the child's locals `0..args.len()` (uniform
    /// across all child threads — kernel parameters). An `extent ≤ 0`
    /// launches nothing. Child grids execute after the parent kernel's
    /// body completes (fire-and-forget semantics: the parent must not
    /// read what the child writes).
    ChildLaunch {
        /// Index into [`KernelProgram::children`].
        kernel: u32,
        /// Total child threads wanted (grid = `ceil(extent / block)`).
        extent: KExpr,
        /// Launch arguments, copied into child locals `0..n`.
        args: Vec<KExpr>,
    },
}

/// A shared-memory array declaration (element = 8-byte slot).
#[derive(Debug, Clone, PartialEq)]
pub struct SmemDecl {
    /// Diagnostic name.
    pub name: String,
    /// Element count (must be launch-constant).
    pub len: u32,
}

/// One kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Diagnostic name.
    pub name: String,
    /// Blocks along each hardware axis (symbolic; launch-evaluated).
    pub grid: [Size; 3],
    /// Threads per block along each hardware axis.
    pub block: [u32; 3],
    /// Shared-memory arrays.
    pub smem: Vec<SmemDecl>,
    /// Number of per-thread locals.
    pub locals: u32,
    /// Body statements.
    pub body: Vec<Stmt>,
}

impl Kernel {
    /// Threads per block.
    pub fn block_threads(&self) -> u32 {
        self.block.iter().product()
    }

    /// Shared-memory bytes per block (8-byte slots).
    pub fn smem_bytes(&self) -> u32 {
        self.smem.iter().map(|s| s.len * 8).sum()
    }

    /// Does the body contain a `Sync` (forces block-lockstep simulation)?
    pub fn has_sync(&self) -> bool {
        fn any_sync(stmts: &[Stmt]) -> bool {
            stmts.iter().any(|s| match s {
                Stmt::Sync => true,
                Stmt::For { body, .. } => any_sync(body),
                Stmt::If { then, els, .. } => any_sync(then) || any_sync(els),
                _ => false,
            })
        }
        any_sync(&self.body)
    }
}

/// A compiled program: buffers plus an ordered list of kernels to launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProgram {
    /// Diagnostic name (usually the source program's).
    pub name: String,
    /// Device buffers.
    pub buffers: Vec<BufferDecl>,
    /// Kernels, launched in order.
    pub kernels: Vec<Kernel>,
    /// Device-launchable child kernels, referenced by
    /// [`Stmt::ChildLaunch`]. A child's `grid` field is ignored — the
    /// grid is computed per launch from the site's `extent` — and its
    /// leading locals are filled from the launch arguments.
    pub children: Vec<Kernel>,
    /// Human-readable notes from lowering (demotions, layout choices).
    pub notes: Vec<String>,
}

impl KernelProgram {
    /// Find the buffer materializing `array`.
    pub fn buffer_for_array(&self, array: ArrayId) -> Option<BufId> {
        self.buffers
            .iter()
            .position(|b| b.array == Some(array))
            .map(|i| BufId(i as u32))
    }

    /// The declaration of `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is not declared.
    pub fn buffer(&self, buf: BufId) -> &BufferDecl {
        &self.buffers[buf.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_round_trip() {
        for i in 0..3u8 {
            assert_eq!(Axis::from_index(i).index(), i as usize);
        }
        assert_eq!(Axis::X.name(), "x");
    }

    #[test]
    #[should_panic(expected = "no hardware axis")]
    fn axis_limit() {
        Axis::from_index(3);
    }

    #[test]
    fn kernel_queries() {
        let k = Kernel {
            name: "t".into(),
            grid: [Size::from(4), Size::from(1), Size::from(1)],
            block: [32, 4, 1],
            smem: vec![SmemDecl {
                name: "s".into(),
                len: 128,
            }],
            locals: 2,
            body: vec![Stmt::Sync],
        };
        assert_eq!(k.block_threads(), 128);
        assert_eq!(k.smem_bytes(), 1024);
        assert!(k.has_sync());
    }

    #[test]
    fn sync_detection_descends() {
        let k = Kernel {
            name: "t".into(),
            grid: [Size::from(1), Size::from(1), Size::from(1)],
            block: [32, 1, 1],
            smem: vec![],
            locals: 1,
            body: vec![Stmt::For {
                var: 0,
                start: KExpr::imm(0),
                end: KExpr::imm(4),
                step: KExpr::imm(1),
                body: vec![Stmt::If {
                    cond: KExpr::imm(1),
                    then: vec![Stmt::Sync],
                    els: vec![],
                }],
            }],
        };
        assert!(k.has_sync());
    }

    #[test]
    fn global_tid_shape() {
        let e = KExpr::global_tid(Axis::Y);
        assert!(matches!(e, KExpr::Bin(BinOp::Add, _, _)));
    }
}
