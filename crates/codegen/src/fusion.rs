//! Vertical pattern fusion.
//!
//! A `let t = map { j => f(j) }` whose collection is consumed by exactly
//! one element read needs no materialized temporary: the map's body is
//! inlined at the read (chains of maps collapse bottom-up). The paper's
//! compiler stack (Delite) performs this fusion before the mapping
//! analysis; we provide it as a standalone pre-pass so the *unfused* path
//! (which exercises the Section V-A preallocation machinery, Figure 16)
//! remains reachable by switching it off. Multi-use temporaries are left
//! materialized (inlining them would duplicate work and nested-pattern
//! ids).

use multidim_ir::{Body, Expr, Pattern, PatternKind, Program, ReadSrc, VarId};
use multidim_trace as trace;

/// Fuse `let t = map …; reduce over t` chains throughout `program`.
///
/// Returns the rewritten program and the number of fusions applied.
pub fn fuse_map_reduce(program: &Program) -> (Program, usize) {
    let mut count = 0usize;
    let mut out = program.clone();
    out.root = fuse_pattern(&program.root, &mut count);
    if trace::enabled() {
        trace::emit(
            trace::Event::instant("codegen", "fusion")
                .arg("program", program.name.as_str())
                .arg("fused", count),
        );
    }
    (out, count)
}

fn fuse_pattern(p: &Pattern, count: &mut usize) -> Pattern {
    let mut out = p.clone();
    if let Body::Value(e) = &p.body {
        out.body = Body::Value(fuse_expr(e, count));
    }
    out
}

fn fuse_expr(e: &Expr, count: &mut usize) -> Expr {
    // Fuse bottom-up: rewrite children first so chains collapse.
    if let Expr::Let(v, val, body) = e {
        let val_f = fuse_expr(val, count);
        let body_f = fuse_expr(body, count);
        if let Expr::Pat(m) = &val_f {
            if matches!(m.kind, PatternKind::Map) {
                if let Body::Value(map_body) = &m.body {
                    // Inline when the collection is consumed by exactly one
                    // element read (no length queries, no other uses): the
                    // map body feeds the consumer directly and the
                    // temporary vanishes.
                    if count_reads(&body_f, *v) == 1 && !has_other_uses(&body_f, *v) {
                        *count += 1;
                        return inline_read(&body_f, *v, m.var, map_body);
                    }
                }
            }
        }
        return Expr::Let(*v, Box::new(val_f), Box::new(body_f));
    }
    // Otherwise recurse structurally.
    match e {
        Expr::Lit(_) | Expr::Var(_) | Expr::SizeOf(_) | Expr::LengthOf(..) => e.clone(),
        Expr::Read(src, idxs) => {
            Expr::Read(*src, idxs.iter().map(|i| fuse_expr(i, count)).collect())
        }
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(fuse_expr(a, count)),
            Box::new(fuse_expr(b, count)),
        ),
        Expr::Un(op, a) => Expr::Un(*op, Box::new(fuse_expr(a, count))),
        Expr::Select(c, t, f) => Expr::Select(
            Box::new(fuse_expr(c, count)),
            Box::new(fuse_expr(t, count)),
            Box::new(fuse_expr(f, count)),
        ),
        Expr::Let(v, val, body) => Expr::Let(
            *v,
            Box::new(fuse_expr(val, count)),
            Box::new(fuse_expr(body, count)),
        ),
        Expr::Iterate {
            max,
            inits,
            cond,
            updates,
            result,
        } => Expr::Iterate {
            max: Box::new(fuse_expr(max, count)),
            inits: inits
                .iter()
                .map(|(v, i)| (*v, fuse_expr(i, count)))
                .collect(),
            cond: Box::new(fuse_expr(cond, count)),
            updates: updates.iter().map(|u| fuse_expr(u, count)).collect(),
            result: Box::new(fuse_expr(result, count)),
        },
        Expr::Pat(p) => Expr::Pat(Box::new(fuse_pattern(p, count))),
    }
}

/// Number of `v[...]` element reads in `e` (descending into nested
/// patterns).
fn count_reads(e: &Expr, v: VarId) -> usize {
    let mut n = 0;
    e.visit(&mut |x| {
        if let Expr::Read(ReadSrc::Var(w), idxs) = x {
            if *w == v && idxs.len() == 1 {
                n += 1;
            }
        }
    });
    n
}

/// Any use of `v` that is not a rank-1 element read (length queries,
/// scalar references, multi-dim reads)?
fn has_other_uses(e: &Expr, v: VarId) -> bool {
    let mut found = false;
    e.visit(&mut |x| match x {
        Expr::Var(w) if *w == v => found = true,
        Expr::LengthOf(ReadSrc::Var(w), _) if *w == v => found = true,
        Expr::Read(ReadSrc::Var(w), idxs) if *w == v && idxs.len() != 1 => found = true,
        _ => {}
    });
    found
}

/// Replace the single `v[i]` read inside `e` with `map_body[map_var := i]`.
fn inline_read(e: &Expr, v: VarId, map_var: VarId, map_body: &Expr) -> Expr {
    match e {
        Expr::Read(ReadSrc::Var(w), idxs) if *w == v && idxs.len() == 1 => {
            substitute_var(map_body, map_var, &idxs[0])
        }
        Expr::Lit(_) | Expr::Var(_) | Expr::SizeOf(_) | Expr::LengthOf(..) | Expr::Read(..) => {
            e.clone()
        }
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(inline_read(a, v, map_var, map_body)),
            Box::new(inline_read(b, v, map_var, map_body)),
        ),
        Expr::Un(op, a) => Expr::Un(*op, Box::new(inline_read(a, v, map_var, map_body))),
        Expr::Select(c, t, f) => Expr::Select(
            Box::new(inline_read(c, v, map_var, map_body)),
            Box::new(inline_read(t, v, map_var, map_body)),
            Box::new(inline_read(f, v, map_var, map_body)),
        ),
        Expr::Let(w, val, body) => Expr::Let(
            *w,
            Box::new(inline_read(val, v, map_var, map_body)),
            Box::new(inline_read(body, v, map_var, map_body)),
        ),
        Expr::Iterate {
            max,
            inits,
            cond,
            updates,
            result,
        } => Expr::Iterate {
            max: Box::new(inline_read(max, v, map_var, map_body)),
            inits: inits
                .iter()
                .map(|(w, i)| (*w, inline_read(i, v, map_var, map_body)))
                .collect(),
            cond: Box::new(inline_read(cond, v, map_var, map_body)),
            updates: updates
                .iter()
                .map(|u| inline_read(u, v, map_var, map_body))
                .collect(),
            result: Box::new(inline_read(result, v, map_var, map_body)),
        },
        Expr::Pat(p) => {
            let mut q = p.as_ref().clone();
            if let Some(ext) = &q.dyn_extent {
                q.dyn_extent = Some(inline_read(ext, v, map_var, map_body));
            }
            match &q.kind {
                PatternKind::Filter { pred } => {
                    q.kind = PatternKind::Filter {
                        pred: inline_read(pred, v, map_var, map_body),
                    };
                }
                PatternKind::GroupBy { key, num_keys, op } => {
                    q.kind = PatternKind::GroupBy {
                        key: inline_read(key, v, map_var, map_body),
                        num_keys: num_keys.clone(),
                        op: *op,
                    };
                }
                _ => {}
            }
            if let Body::Value(e2) = &q.body {
                q.body = Body::Value(inline_read(e2, v, map_var, map_body));
            }
            Expr::Pat(Box::new(q))
        }
    }
}

/// Replace every `Var(var)` with `replacement`.
pub fn substitute_var(e: &Expr, var: VarId, replacement: &Expr) -> Expr {
    match e {
        Expr::Var(v) if *v == var => replacement.clone(),
        Expr::Lit(_) | Expr::Var(_) | Expr::SizeOf(_) | Expr::LengthOf(..) => e.clone(),
        Expr::Read(src, idxs) => Expr::Read(
            *src,
            idxs.iter()
                .map(|i| substitute_var(i, var, replacement))
                .collect(),
        ),
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(substitute_var(a, var, replacement)),
            Box::new(substitute_var(b, var, replacement)),
        ),
        Expr::Un(op, a) => Expr::Un(*op, Box::new(substitute_var(a, var, replacement))),
        Expr::Select(c, t, f) => Expr::Select(
            Box::new(substitute_var(c, var, replacement)),
            Box::new(substitute_var(t, var, replacement)),
            Box::new(substitute_var(f, var, replacement)),
        ),
        Expr::Let(v, val, body) => Expr::Let(
            *v,
            Box::new(substitute_var(val, var, replacement)),
            Box::new(substitute_var(body, var, replacement)),
        ),
        Expr::Iterate {
            max,
            inits,
            cond,
            updates,
            result,
        } => Expr::Iterate {
            max: Box::new(substitute_var(max, var, replacement)),
            inits: inits
                .iter()
                .map(|(v, i)| (*v, substitute_var(i, var, replacement)))
                .collect(),
            cond: Box::new(substitute_var(cond, var, replacement)),
            updates: updates
                .iter()
                .map(|u| substitute_var(u, var, replacement))
                .collect(),
            result: Box::new(substitute_var(result, var, replacement)),
        },
        Expr::Pat(p) => {
            let mut q = p.as_ref().clone();
            if let Some(ext) = &q.dyn_extent {
                q.dyn_extent = Some(substitute_var(ext, var, replacement));
            }
            match &q.kind {
                PatternKind::Filter { pred } => {
                    q.kind = PatternKind::Filter {
                        pred: substitute_var(pred, var, replacement),
                    };
                }
                PatternKind::GroupBy { key, num_keys, op } => {
                    q.kind = PatternKind::GroupBy {
                        key: substitute_var(key, var, replacement),
                        num_keys: num_keys.clone(),
                        op: *op,
                    };
                }
                _ => {}
            }
            match &q.body {
                Body::Value(e2) => q.body = Body::Value(substitute_var(e2, var, replacement)),
                Body::Effects(_) => {}
            }
            Expr::Pat(Box::new(q))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multidim_ir::{ProgramBuilder, ReduceOp, ScalarKind, Size};

    fn weighted_sum() -> Program {
        // map(C) { c => let t = map(R){ r => m[r,c] * v[r] }; reduce over t }
        let mut b = ProgramBuilder::new("sumWeightedCols");
        let r = b.sym("R");
        let c = b.sym("C");
        let m = b.input("m", ScalarKind::F32, &[Size::sym(r), Size::sym(c)]);
        let w = b.input("w", ScalarKind::F32, &[Size::sym(r)]);
        let root = b.map(Size::sym(c), |b, col| {
            let inner = b.map(Size::sym(r), |b, row| {
                b.read(m, &[row.into(), col.into()]) * b.read(w, &[row.into()])
            });
            b.let_(inner, |b, t| {
                b.reduce(Size::sym(r), ReduceOp::Add, |b, j| {
                    b.read_var(t, &[j.into()])
                })
            })
        });
        b.finish_map(root, "out", ScalarKind::F32).unwrap()
    }

    #[test]
    fn fuses_weighted_sum() {
        let p = weighted_sum();
        let (fused, n) = fuse_map_reduce(&p);
        assert_eq!(n, 1);
        // After fusion the nest has exactly two patterns: map + reduce.
        let mut kinds = Vec::new();
        fused
            .root
            .visit_patterns(&mut |p, lvl| kinds.push((p.kind.name(), lvl)));
        assert_eq!(kinds, vec![("map", 0), ("reduce", 1)]);
        fused.validate().unwrap();
    }

    #[test]
    fn fused_program_computes_same_result() {
        use std::collections::HashMap;
        let p = weighted_sum();
        let (fused, _) = fuse_map_reduce(&p);
        let mut bind = multidim_ir::Bindings::new();
        bind.bind(multidim_ir::SymId(0), 4);
        bind.bind(multidim_ir::SymId(1), 3);
        let m: Vec<f64> = (0..12).map(|x| x as f64).collect();
        let w = vec![1.0, 2.0, 0.5, 3.0];
        let inputs: HashMap<_, _> = [(multidim_ir::ArrayId(0), m), (multidim_ir::ArrayId(1), w)]
            .into_iter()
            .collect();
        let a = multidim_ir::interpret(&p, &bind, &inputs).unwrap();
        let b = multidim_ir::interpret(&fused, &bind, &inputs).unwrap();
        assert_eq!(
            a.array(p.output.unwrap()).data,
            b.array(fused.output.unwrap()).data
        );
    }

    #[test]
    fn no_fusion_when_temp_used_twice() {
        // reduce body reads t[j] * t[j]: not the exact element read shape.
        let mut b = ProgramBuilder::new("sq");
        let n = b.sym("N");
        let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
        let root = b.map(Size::from(2), |b, _| {
            let inner = b.map(Size::sym(n), |b, j| b.read(x, &[j.into()]));
            b.let_(inner, |b, t| {
                b.reduce(Size::sym(n), ReduceOp::Add, |b, j| {
                    b.read_var(t, &[j.into()]) * b.read_var(t, &[j.into()])
                })
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let (_, n2) = fuse_map_reduce(&p);
        assert_eq!(n2, 0);
    }

    #[test]
    fn substitute_respects_structure() {
        let e = Expr::Var(multidim_ir::VarId(3)) + Expr::lit(1.0);
        let s = substitute_var(&e, multidim_ir::VarId(3), &Expr::lit(5.0));
        assert_eq!(s, Expr::lit(5.0) + Expr::lit(1.0));
    }
}

#[cfg(test)]
mod chain_tests {
    use super::*;
    use multidim_ir::{ProgramBuilder, ReduceOp, ScalarKind, Size};

    /// map -> map -> reduce chains fuse all the way down when each stage is
    /// an exact element-wise consumer.
    #[test]
    fn fuses_through_two_stages() {
        let mut b = ProgramBuilder::new("chain");
        let n = b.sym("N");
        let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
        let root = b.map(Size::from(3), |b, _| {
            let stage1 = b.map(Size::sym(n), |b, j| b.read(x, &[j.into()]) * Expr::lit(2.0));
            b.let_(stage1, |b, t1| {
                let stage2 = b.map(Size::sym(n), |b, j| {
                    b.read_var(t1, &[j.into()]) + Expr::lit(1.0)
                });
                b.let_(stage2, |b, t2| {
                    b.reduce(Size::sym(n), ReduceOp::Add, |b, j| {
                        b.read_var(t2, &[j.into()])
                    })
                })
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let (fused, count) = fuse_map_reduce(&p);
        // Innermost let fuses (map->reduce); after that the next one can.
        assert_eq!(count, 2, "{}", multidim_ir::pretty(&fused));
        let mut pats = 0;
        fused.root.visit_patterns(&mut |_, _| pats += 1);
        assert_eq!(pats, 2); // outer map + fused reduce
        fused.validate().unwrap();
    }

    /// A prefix reduce (consumer extent smaller than the producer's)
    /// still fuses under single-use inlining, and computes the same
    /// result.
    #[test]
    fn prefix_consumer_fuses_and_agrees() {
        use std::collections::HashMap;
        let mut b = ProgramBuilder::new("prefix");
        let n = b.sym("N");
        let m = b.sym("M");
        let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
        let root = b.map(Size::from(2), |b, _| {
            let t = b.map(Size::sym(n), |b, j| b.read(x, &[j.into()]));
            b.let_(t, |b, tv| {
                // Reduce over a *prefix* of the temporary.
                b.reduce(Size::sym(m), ReduceOp::Add, |b, j| {
                    b.read_var(tv, &[j.into()])
                })
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let (fused, count) = fuse_map_reduce(&p);
        assert_eq!(count, 1);
        let mut bind = multidim_ir::Bindings::new();
        bind.bind(n, 8);
        bind.bind(m, 5);
        let inputs: HashMap<_, _> = [(x, (0..8).map(|v| v as f64).collect::<Vec<_>>())]
            .into_iter()
            .collect();
        let a = multidim_ir::interpret(&p, &bind, &inputs).unwrap();
        let c = multidim_ir::interpret(&fused, &bind, &inputs).unwrap();
        assert_eq!(
            a.array(p.output.unwrap()).data,
            c.array(fused.output.unwrap()).data
        );
        assert_eq!(a.array(p.output.unwrap()).data, vec![10.0, 10.0]);
    }
}
