//! Lowering: pattern nest × mapping decision → kernels (Section IV-E).
//!
//! Each nest level's loop structure is selected by its span:
//!
//! * `Span(1)` — one index per thread: `idx = blockIdx*blockDim + threadIdx`
//!   with a bounds guard;
//! * `Span(n)` — `n` indices per thread, block-strided so lanes stay
//!   coalesced;
//! * `Span(all)` — one block covers the dimension:
//!   `for (idx = threadIdx; idx < extent; idx += blockDim)` (Figure 9
//!   line 8);
//! * `Split(k)` — the `Span(all)` loop restricted to section
//!   `blockIdx`, with per-section partials merged by a follow-up
//!   *combiner kernel*.
//!
//! Reductions parallelized within a block combine per-thread partials with
//! a shared-memory tree (Figure 9 line 13); stores at non-innermost levels
//! are guarded by `threadIdx.d == 0` of the inner parallel dimensions
//! (Figure 9 line 15). The Section V optimizations (temporary
//! preallocation with mapping-directed layout; shared-memory prefetch of
//! outer-level reads) are applied here, controlled by [`CodegenOptions`].

use crate::kernel::{
    Axis, BufId, BufferDecl, BufferInit, KExpr, Kernel, KernelProgram, LocalId, SmemDecl, Stmt,
};
use multidim_ir::{
    ArrayId, ArrayRole, BinOp, Body, Effect, Expr, Pattern, PatternKind, Program, ReadSrc,
    ReduceOp, Size, UnOp, VarId,
};
use multidim_mapping::{MappingDecision, Span};
use multidim_trace as trace;
use std::collections::HashMap;
use std::fmt;

/// Physical layout of a preallocated temporary (Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TempLayout {
    /// `addr = uid * N + j` — instance-major (Figure 11a: offset `m·N`,
    /// stride 1); coalesced when the *inner* index is on dimension x.
    RowMajor,
    /// `addr = j * U + uid` — element-interleaved (Figure 11b: offset `m`,
    /// stride `N`); coalesced when the *outer* index is on dimension x.
    ColMajor,
}

/// How temporary layouts are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LayoutPolicy {
    /// Choose from the mapping (Section V-A): whichever of the producing
    /// pattern's indices sits on dimension x gets stride 1.
    #[default]
    Auto,
    /// Always instance-major (the fixed strategy of Figure 16's middle
    /// bar).
    ForceRowMajor,
    /// Always interleaved.
    ForceColMajor,
}

/// Code-generation switches (the Section V optimizations).
#[derive(Debug, Clone, PartialEq)]
pub struct CodegenOptions {
    /// Temporary layout policy.
    pub layout: LayoutPolicy,
    /// Model a per-thread device `malloc` for each temporary instance
    /// instead of preallocation (Figure 16's worst-case baseline).
    pub device_malloc: bool,
    /// Stage stride-1 outer-level reads through shared memory
    /// (Section V-B).
    pub smem_prefetch: bool,
    /// Per-block shared-memory budget in bytes. A prefetch that would push
    /// the kernel's footprint past the budget is skipped (with a traced
    /// reason) instead of producing a kernel the device cannot launch —
    /// the driver sets this from the target's `smem_per_sm`, turning the
    /// analyzer's footprint proof into a lowering decision. `None` =
    /// unlimited.
    pub smem_budget: Option<u32>,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            layout: LayoutPolicy::Auto,
            device_malloc: false,
            smem_prefetch: true,
            smem_budget: None,
        }
    }
}

/// Lowering failure (unsupported shape for code generation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError(pub String);

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering error: {}", self.0)
    }
}

impl std::error::Error for LowerError {}

/// Lower `program` under `mapping` into a [`KernelProgram`].
///
/// # Errors
///
/// Returns [`LowerError`] for shapes outside the generator's coverage:
/// nests deeper than three parallel levels, collection-valued expressions
/// that are not `let`-bound, temporaries under dynamic extents, or `Filter`
/// / `GroupBy` patterns below the root.
pub fn lower(
    program: &Program,
    mapping: &MappingDecision,
    opts: &CodegenOptions,
) -> Result<KernelProgram, LowerError> {
    let mut sp = trace::span("codegen", "lower");
    if let Some(s) = sp.as_mut() {
        s.arg("program", program.name.as_str());
        s.arg("mapping", mapping.to_string());
    }
    if mapping.depth() > 3 {
        return Err(LowerError(format!(
            "nest depth {} exceeds the 3 hardware dimensions",
            mapping.depth()
        )));
    }
    // `Split(k)` is only executable when the reduce's result goes straight
    // to an output (the combiner kernel finishes it). Reduces whose results
    // are consumed by further in-kernel computation are demoted to
    // `Span(all)`.
    let (mapping, demotion_notes) = demote_consumed_splits(program, mapping);
    if trace::enabled() {
        for note in &demotion_notes {
            trace::emit(
                trace::Event::instant("codegen", "split_demoted").arg("note", note.as_str()),
            );
        }
    }
    let mapping = &mapping;
    let mut lo = Lowerer {
        program,
        mapping,
        opts,
        buffers: Vec::new(),
        combiners: Vec::new(),
        notes: Vec::new(),
        next_local: 0,
        smem: Vec::new(),
        vars: HashMap::new(),
        temps: HashMap::new(),
        chain: Vec::new(),
        out_chain: Vec::new(),
        prefetched: HashMap::new(),
        preamble: Vec::new(),
        clamp_mode: needs_clamp(program, mapping),
        valid_conds: Vec::new(),
    };
    lo.notes.extend(demotion_notes);

    // Device buffers for the program's arrays.
    for decl in &program.arrays {
        let mut len = Size::from(1);
        for d in &decl.shape {
            len = len * d.clone();
        }
        let init = match decl.role {
            ArrayRole::Input => BufferInit::FromArray(decl.id),
            // Outputs/temps may be seeded by the host (in-place updates).
            _ => BufferInit::FromArrayOrZero(decl.id),
        };
        lo.buffers.push(BufferDecl {
            name: decl.name.clone(),
            elem_bytes: decl.elem.bytes(),
            len,
            init,
            array: Some(decl.id),
        });
    }
    // GroupBy roots accumulate into the output: initialize with the
    // combine identity.
    if let PatternKind::GroupBy { op, .. } = &program.root.kind {
        let out = program.output.expect("groupBy root has an output");
        lo.buffers[out.0 as usize].init = BufferInit::Fill(op.identity());
    }

    let mut body = Vec::new();
    lo.lower_root(&mut body)?;

    // Prepend the shared-memory prefetch preamble, if any was requested.
    let mut full = std::mem::take(&mut lo.preamble);
    full.extend(body);

    let mut grid = [Size::from(1), Size::from(1), Size::from(1)];
    let mut block = [1u32, 1, 1];
    for (lvl, lm) in mapping.levels().iter().enumerate() {
        let axis = Axis::from_index(lm.dim.0);
        let extent = level_extent_size(program, lvl);
        grid[axis.index()] = match lm.span {
            Span::Span(n) => extent / Size::from(lm.block_size as i64 * n.max(1)),
            Span::All => Size::from(1),
            Span::Split(k) => Size::from(k.max(1)),
        };
        block[axis.index()] = lm.block_size.max(1);
    }

    let main = Kernel {
        name: format!("{}_kernel", program.name),
        grid,
        block,
        smem: std::mem::take(&mut lo.smem),
        locals: lo.next_local,
        body: full,
    };

    let mut kernels = vec![main];
    kernels.append(&mut lo.combiners);

    if let Some(s) = sp.as_mut() {
        s.arg("kernels", kernels.len());
        s.arg("buffers", lo.buffers.len());
        s.arg("combiner", kernels.len() > 1);
    }

    Ok(KernelProgram {
        name: program.name.clone(),
        buffers: lo.buffers,
        kernels,
        children: vec![],
        notes: lo.notes,
    })
}

/// Replace `Split(k)` with `Span(all)` on levels whose reduce results are
/// consumed in-kernel (anything but a root reduce or a root-map-chain body
/// reduce).
fn demote_consumed_splits(
    program: &Program,
    mapping: &MappingDecision,
) -> (MappingDecision, Vec<String>) {
    // Levels whose reduce can store straight to the output.
    let mut storeable = Vec::new();
    let mut p = &program.root;
    let mut level = 0usize;
    loop {
        match &p.kind {
            PatternKind::Reduce { .. } => {
                storeable.push(level);
                break;
            }
            PatternKind::Map => match &p.body {
                Body::Value(Expr::Pat(inner)) => {
                    p = inner;
                    level += 1;
                }
                _ => break,
            },
            _ => break,
        }
    }

    let mut out = mapping.clone();
    let mut notes = Vec::new();
    // Find every reduce level in the program.
    let mut reduce_levels = Vec::new();
    program.root.visit_patterns(&mut |pat, lvl| {
        if matches!(pat.kind, PatternKind::Reduce { .. }) {
            reduce_levels.push(lvl);
        }
    });
    for lvl in reduce_levels {
        if lvl < out.depth()
            && matches!(out.level(lvl).span, Span::Split(_))
            && !storeable.contains(&lvl)
        {
            out.level_mut(lvl).span = Span::All;
            notes.push(format!(
                "level {lvl} reduce result consumed in-kernel: split demoted to span(all)"
            ));
        }
    }
    (out, notes)
}

/// Will this program's kernel contain `__syncthreads`? True when some
/// construct that lowers to a block-level exchange (a reduce parallelized
/// within the block, or a materialized temporary) coexists with
/// multi-thread blocks.
fn needs_clamp(program: &Program, mapping: &MappingDecision) -> bool {
    let mut sync_construct = false;
    program.root.visit_patterns(&mut |p, lvl| {
        if matches!(p.kind, PatternKind::Reduce { .. })
            && lvl < mapping.depth()
            && mapping.level(lvl).block_size > 1
        {
            sync_construct = true;
        }
    });
    if !sync_construct {
        // Materialized temporaries insert a sync when their level is
        // block-parallel; detect let-bound maps conservatively.
        let any_block_parallel = (0..mapping.depth()).any(|l| mapping.level(l).block_size > 1);
        if any_block_parallel {
            program.root.visit_exprs(&mut |e| {
                if let Expr::Let(_, val, _) = e {
                    if matches!(&**val, Expr::Pat(p) if matches!(p.kind, PatternKind::Map)) {
                        sync_construct = true;
                    }
                }
            });
        }
    }
    sync_construct
}

/// The representative static extent of a nest level (for grid sizing).
fn level_extent_size(program: &Program, level: usize) -> Size {
    let mut found = None;
    program.root.visit_patterns(&mut |p, lvl| {
        if lvl == level && found.is_none() {
            found = Some(p.size.clone());
        }
    });
    found.unwrap_or(Size::Const(1))
}

#[derive(Debug, Clone)]
struct TempInfo {
    buf: BufId,
    /// Logical inner extent N.
    inner: Size,
    /// Instance id expression (linearized enclosing indices).
    uid: KExpr,
    /// Total instance count U.
    uid_count: Size,
    layout: TempLayout,
}

#[derive(Debug, Clone)]
struct ChainLink {
    var: VarId,

    idx: LocalId,
    extent: Size,
}

struct Lowerer<'p> {
    program: &'p Program,
    mapping: &'p MappingDecision,
    opts: &'p CodegenOptions,
    buffers: Vec<BufferDecl>,
    combiners: Vec<Kernel>,
    notes: Vec<String>,
    next_local: u32,
    smem: Vec<SmemDecl>,
    vars: HashMap<VarId, KExpr>,
    temps: HashMap<VarId, TempInfo>,
    /// Enclosing pattern levels at the current lowering point.
    chain: Vec<ChainLink>,
    /// Root-map chain for output indexing: (index expr, extent).
    out_chain: Vec<(KExpr, Size)>,
    /// Arrays already staged through shared memory: array -> smem id.
    prefetched: HashMap<ArrayId, u32>,
    /// Kernel-top statements (prefetch loads + sync).
    preamble: Vec<Stmt>,
    /// When the kernel will contain `__syncthreads`, bounds guards cannot
    /// wrap it (divergent sync is undefined behaviour): out-of-range
    /// threads are instead *clamped* to a valid index and every store is
    /// predicated on the conditions below.
    clamp_mode: bool,
    /// Validity predicates of the enclosing clamped levels.
    valid_conds: Vec<KExpr>,
}

/// One opened nest level: allocated locals and its extent.
struct LevelFrame {
    level: usize,
    idx: LocalId,
    /// Unclamped position local (clamp mode only).
    raw: Option<LocalId>,
    extent: KExpr,
}

fn has_sync(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Sync => true,
        Stmt::For { body, .. } => has_sync(body),
        Stmt::If { then, els, .. } => has_sync(then) || has_sync(els),
        _ => false,
    })
}

impl<'p> Lowerer<'p> {
    fn fresh_local(&mut self) -> LocalId {
        let l = self.next_local;
        self.next_local += 1;
        l
    }

    fn fresh_smem(&mut self, name: impl Into<String>, len: u32) -> u32 {
        let id = self.smem.len() as u32;
        self.smem.push(SmemDecl {
            name: name.into(),
            len,
        });
        id
    }

    fn add_buffer(&mut self, name: String, len: Size, init: BufferInit) -> BufId {
        let id = BufId(self.buffers.len() as u32);
        self.buffers.push(BufferDecl {
            name,
            elem_bytes: 8,
            len,
            init,
            array: None,
        });
        id
    }

    fn level_axis(&self, level: usize) -> Axis {
        Axis::from_index(self.mapping.level(level).dim.0)
    }

    fn lower_root(&mut self, sink: &mut Vec<Stmt>) -> Result<(), LowerError> {
        let root = &self.program.root;
        match &root.kind {
            PatternKind::Map => self.lower_map(root, 0, sink),
            PatternKind::Reduce { op } => {
                let op = *op;
                let out = self.out_buf()?;
                self.lower_reduce_into(root, 0, op, out, KExpr::imm(0), sink)
            }
            PatternKind::Foreach => self.lower_foreach(root, 0, sink),
            PatternKind::Filter { .. } => self.lower_filter_root(root, sink),
            PatternKind::GroupBy { .. } => self.lower_groupby_root(root, sink),
        }
    }

    fn out_buf(&self) -> Result<BufId, LowerError> {
        let out = self
            .program
            .output
            .ok_or_else(|| LowerError("program has no output array".into()))?;
        Ok(BufId(out.0))
    }

    /// The extent of a pattern as a kernel expression (handles dynamic
    /// extents by lowering their defining expression).
    fn extent_expr(&mut self, p: &'p Pattern, sink: &mut Vec<Stmt>) -> Result<KExpr, LowerError> {
        match &p.dyn_extent {
            Some(e) => self.lower_expr(e, sink),
            None => Ok(KExpr::SizeVal(p.size.clone())),
        }
    }

    /// Open nest level `level`: allocate its index local (and, in clamp
    /// mode, the raw-position local whose validity predicate guards every
    /// store generated while the level is open).
    fn begin_level(&mut self, level: usize, extent: &KExpr) -> LevelFrame {
        let idx = self.fresh_local();
        let lm = self.mapping.level(level);
        let raw = if self.clamp_mode && matches!(lm.span, Span::Span(_)) {
            let r = self.fresh_local();
            self.valid_conds
                .push(KExpr::lt(KExpr::Local(r), extent.clone()));
            Some(r)
        } else {
            None
        };
        LevelFrame {
            level,
            idx,
            raw,
            extent: extent.clone(),
        }
    }

    /// Close a level opened with [`Self::begin_level`], wrapping `body` in
    /// the span's loop structure.
    fn end_level(&mut self, frame: LevelFrame, body: Vec<Stmt>) -> Result<Vec<Stmt>, LowerError> {
        if frame.raw.is_some() {
            self.valid_conds.pop();
        }
        let lm = self.mapping.level(frame.level).clone();
        let axis = Axis::from_index(lm.dim.0);
        // A span(all)/split loop with block_size > 1 starts at threadIdx —
        // lane-dependent bounds, so a __syncthreads inside would deadlock.
        // With block_size == 1 the loop is uniform (threadIdx is always 0
        // on that axis) and syncs from deeper levels are fine.
        if matches!(lm.span, Span::All | Span::Split(_)) && lm.block_size > 1 && has_sync(&body) {
            return Err(LowerError(
                "block synchronization nested inside a parallel span(all)/split loop is unsupported"
                    .into(),
            ));
        }
        let (idx, extent) = (frame.idx, frame.extent);
        // idx = min(raw, max(extent-1, 0)) — out-of-range threads compute a
        // duplicate valid index so they can participate in block syncs;
        // their stores are predicated off by the validity condition.
        let clamp = |raw: LocalId| {
            KExpr::Bin(
                BinOp::Min,
                Box::new(KExpr::Local(raw)),
                Box::new(KExpr::Bin(
                    BinOp::Max,
                    Box::new(KExpr::sub(extent.clone(), KExpr::imm(1))),
                    Box::new(KExpr::imm(0)),
                )),
            )
        };
        Ok(match lm.span {
            Span::Span(1) => match frame.raw {
                Some(raw) => {
                    let mut out = vec![
                        Stmt::Assign {
                            dst: raw,
                            value: KExpr::global_tid(axis),
                        },
                        Stmt::Assign {
                            dst: idx,
                            value: clamp(raw),
                        },
                    ];
                    out.extend(body);
                    out
                }
                None => vec![
                    Stmt::Assign {
                        dst: idx,
                        value: KExpr::global_tid(axis),
                    },
                    Stmt::If {
                        cond: KExpr::lt(KExpr::Local(idx), extent),
                        then: body,
                        els: vec![],
                    },
                ],
            },
            Span::Span(n) => {
                // Block-strided: block b covers [b*B*n, (b+1)*B*n); thread t
                // handles positions t, B+t, 2B+t, … within the chunk.
                let i = self.fresh_local();
                let base = KExpr::mul(
                    KExpr::Bid(axis),
                    KExpr::mul(KExpr::Bdim(axis), KExpr::imm(n)),
                );
                let pos = KExpr::add(
                    KExpr::add(base, KExpr::mul(KExpr::Local(i), KExpr::Bdim(axis))),
                    KExpr::Tid(axis),
                );
                let inner = match frame.raw {
                    Some(raw) => {
                        let mut v = vec![
                            Stmt::Assign {
                                dst: raw,
                                value: pos,
                            },
                            Stmt::Assign {
                                dst: idx,
                                value: clamp(raw),
                            },
                        ];
                        v.extend(body);
                        v
                    }
                    None => vec![
                        Stmt::Assign {
                            dst: idx,
                            value: pos,
                        },
                        Stmt::If {
                            cond: KExpr::lt(KExpr::Local(idx), extent),
                            then: body,
                            els: vec![],
                        },
                    ],
                };
                vec![Stmt::For {
                    var: i,
                    start: KExpr::imm(0),
                    end: KExpr::imm(n),
                    step: KExpr::imm(1),
                    body: inner,
                }]
            }
            Span::All => {
                // With one thread on this axis the loop is plain
                // sequential iteration; emit constant bounds so validation
                // (and real hardware) can see it is uniform.
                let (start, step) = if lm.block_size <= 1 {
                    (KExpr::imm(0), KExpr::imm(1))
                } else {
                    (KExpr::Tid(axis), KExpr::Bdim(axis))
                };
                vec![Stmt::For {
                    var: idx,
                    start,
                    end: extent,
                    step,
                    body,
                }]
            }
            Span::Split(k) => {
                // Section s covers [s*S, min((s+1)*S, extent)) where
                // S = ceil(extent / k); k is the grid size on this axis.
                let section = match extent {
                    KExpr::SizeVal(ref s) => KExpr::SizeVal(s.clone() / Size::from(k.max(1))),
                    ref other => {
                        // ceil(e / k) for a runtime extent.
                        let kk = KExpr::imm(k.max(1));
                        KExpr::Un(
                            UnOp::Floor,
                            Box::new(KExpr::div(
                                KExpr::add(other.clone(), KExpr::sub(kk.clone(), KExpr::imm(1))),
                                kk,
                            )),
                        )
                    }
                };
                let lane = if lm.block_size <= 1 {
                    KExpr::imm(0)
                } else {
                    KExpr::Tid(axis)
                };
                let start = KExpr::add(KExpr::mul(KExpr::Bid(axis), section.clone()), lane);
                let end = KExpr::Bin(
                    BinOp::Min,
                    Box::new(KExpr::mul(
                        KExpr::add(KExpr::Bid(axis), KExpr::imm(1)),
                        section,
                    )),
                    Box::new(extent),
                );
                vec![Stmt::For {
                    var: idx,
                    start,
                    end,
                    step: KExpr::Bdim(axis),
                    body,
                }]
            }
        })
    }

    /// `threadIdx.d == 0` guards for every parallel level strictly deeper
    /// than `level` (Figure 9 line 15).
    fn inner_guard(&self, level: usize) -> Option<KExpr> {
        let mut cond: Option<KExpr> = None;
        for l in (level + 1)..self.mapping.depth() {
            let lm = self.mapping.level(l);
            if lm.block_size > 1 {
                let axis = Axis::from_index(lm.dim.0);
                let c = KExpr::eq(KExpr::Tid(axis), KExpr::imm(0));
                cond = Some(match cond {
                    Some(prev) => KExpr::and(prev, c),
                    None => c,
                });
            }
        }
        cond
    }

    /// Predicate `stmts` (stores/atomics) on: deeper parallel dimensions'
    /// lane-0 guards *and* the validity conditions of every enclosing
    /// clamped level.
    fn guarded(&self, level: usize, stmts: Vec<Stmt>) -> Vec<Stmt> {
        let mut cond = self.inner_guard(level);
        for c in &self.valid_conds {
            cond = Some(match cond {
                Some(prev) => KExpr::and(prev, c.clone()),
                None => c.clone(),
            });
        }
        match cond {
            Some(cond) => vec![Stmt::If {
                cond,
                then: stmts,
                els: vec![],
            }],
            None => stmts,
        }
    }

    // ------------------------------------------------------------------
    // Map
    // ------------------------------------------------------------------

    fn lower_map(
        &mut self,
        p: &'p Pattern,
        level: usize,
        sink: &mut Vec<Stmt>,
    ) -> Result<(), LowerError> {
        let extent = self.extent_expr(p, sink)?;
        let frame = self.begin_level(level, &extent);
        let idx = frame.idx;
        self.vars.insert(p.var, KExpr::Local(idx));
        self.chain.push(ChainLink {
            var: p.var,
            idx,
            extent: p.size.clone(),
        });
        self.out_chain.push((KExpr::Local(idx), p.size.clone()));

        let mut body = Vec::new();
        let value = match &p.body {
            Body::Value(e) => e,
            Body::Effects(_) => return Err(LowerError("map with effect body".into())),
        };
        match value {
            // Directly nested map: extend the output chain.
            Expr::Pat(inner) if matches!(inner.kind, PatternKind::Map) => {
                self.lower_map(inner, level + 1, &mut body)?;
            }
            // Direct reduce body: store via the split-capable path so
            // `ControlDOP`'s `Split(k)` choice is honored (sumRows/sumCols).
            Expr::Pat(inner) => {
                if let PatternKind::Reduce { op } = &inner.kind {
                    let op = *op;
                    let out = self.out_buf()?;
                    self.lower_reduce_into(inner, level + 1, op, out, KExpr::imm(0), &mut body)?;
                } else {
                    let v = self.lower_expr(value, &mut body)?;
                    self.store_root(level, v, &mut body)?;
                }
            }
            _ => {
                let v = self.lower_expr(value, &mut body)?;
                self.store_root(level, v, &mut body)?;
            }
        }

        let wrapped = self.end_level(frame, body)?;
        sink.extend(wrapped);

        self.out_chain.pop();
        self.chain.pop();
        self.vars.remove(&p.var);
        Ok(())
    }

    /// Store a scalar at the current root-map position.
    fn store_root(
        &mut self,
        level: usize,
        value: KExpr,
        sink: &mut Vec<Stmt>,
    ) -> Result<(), LowerError> {
        let out = self.out_buf()?;
        let idx = linearize_chain(&self.out_chain);
        let st = vec![Stmt::Store {
            buf: out,
            idx,
            value,
        }];
        let guarded = self.guarded(level, st);
        sink.extend(guarded);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Reduce
    // ------------------------------------------------------------------

    /// Lower a reduce whose (broadcast) result is consumed in-kernel.
    fn lower_reduce_value(
        &mut self,
        p: &'p Pattern,
        level: usize,
        op: ReduceOp,
        sink: &mut Vec<Stmt>,
    ) -> Result<KExpr, LowerError> {
        let lm = self.mapping.level(level).clone();
        // `demote_consumed_splits` guarantees consumed reduces never split.
        debug_assert!(
            !matches!(lm.span, Span::Split(_)),
            "consumed reduce at level {level} still has Split"
        );
        let acc = self.accumulate_local(p, level, op, sink)?;
        if lm.block_size > 1 {
            let res = self.block_tree_reduce(level, op, acc, sink);
            Ok(KExpr::Local(res))
        } else {
            Ok(KExpr::Local(acc))
        }
    }

    /// Lower a reduce stored directly to `out[out_base]` (root reduce or
    /// root-map body); supports `Split(k)` via a combiner kernel.
    fn lower_reduce_into(
        &mut self,
        p: &'p Pattern,
        level: usize,
        op: ReduceOp,
        out: BufId,
        _out_base: KExpr,
        sink: &mut Vec<Stmt>,
    ) -> Result<(), LowerError> {
        let lm = self.mapping.level(level).clone();
        let acc = self.accumulate_local(p, level, op, sink)?;
        let reduced = if lm.block_size > 1 {
            self.block_tree_reduce(level, op, acc, sink)
        } else {
            acc
        };
        let axis = self.level_axis(level);

        match lm.span {
            Span::Split(k) => {
                // Per-section partials, then a combiner kernel.
                let k = k.max(1);
                let uid_count = chain_count(&self.out_chain);
                let partial_len = uid_count.clone() * Size::from(k);
                let partial = self.add_buffer(
                    format!("{}_partials", self.program.name),
                    partial_len,
                    BufferInit::Fill(op.identity()),
                );
                let uid = linearize_chain(&self.out_chain);
                let pidx = KExpr::add(KExpr::mul(uid, KExpr::imm(k)), KExpr::Bid(axis));
                let store = vec![Stmt::Store {
                    buf: partial,
                    idx: pidx,
                    value: KExpr::Local(reduced),
                }];
                // One lane of the reduce dimension stores; deeper parallel
                // dims and enclosing validity handled by guarded().
                let stmts = if lm.block_size > 1 {
                    vec![Stmt::If {
                        cond: KExpr::eq(KExpr::Tid(axis), KExpr::imm(0)),
                        then: store,
                        els: vec![],
                    }]
                } else {
                    store
                };
                let guarded = self.guarded(level, stmts);
                sink.extend(guarded);
                self.emit_combiner(op, partial, out, uid_count, k);
            }
            _ => {
                let uid = linearize_chain(&self.out_chain);
                let store = vec![Stmt::Store {
                    buf: out,
                    idx: uid,
                    value: KExpr::Local(reduced),
                }];
                let stmts = if lm.block_size > 1 {
                    vec![Stmt::If {
                        cond: KExpr::eq(KExpr::Tid(axis), KExpr::imm(0)),
                        then: store,
                        els: vec![],
                    }]
                } else {
                    store
                };
                let guarded = self.guarded(level, stmts);
                sink.extend(guarded);
            }
        }
        Ok(())
    }

    /// The per-thread accumulation loop of a reduce.
    fn accumulate_local(
        &mut self,
        p: &'p Pattern,
        level: usize,
        op: ReduceOp,
        sink: &mut Vec<Stmt>,
    ) -> Result<LocalId, LowerError> {
        let extent = self.extent_expr(p, sink)?;
        let acc = self.fresh_local();
        sink.push(Stmt::Assign {
            dst: acc,
            value: KExpr::Imm(op.identity()),
        });

        let frame = self.begin_level(level, &extent);
        let idx = frame.idx;
        self.vars.insert(p.var, KExpr::Local(idx));
        self.chain.push(ChainLink {
            var: p.var,
            idx,
            extent: p.size.clone(),
        });

        let mut body = Vec::new();
        let value = match &p.body {
            Body::Value(e) => e,
            Body::Effects(_) => return Err(LowerError("reduce with effect body".into())),
        };
        let v = self.lower_expr(value, &mut body)?;
        body.push(Stmt::Assign {
            dst: acc,
            value: combine(op, KExpr::Local(acc), v),
        });

        let wrapped = self.end_level(frame, body)?;
        sink.extend(wrapped);

        self.chain.pop();
        self.vars.remove(&p.var);
        Ok(acc)
    }

    /// Shared-memory tree combine across the block dimension of `level`
    /// (Figure 9 line 13); returns a local holding the broadcast result.
    fn block_tree_reduce(
        &mut self,
        level: usize,
        op: ReduceOp,
        acc: LocalId,
        sink: &mut Vec<Stmt>,
    ) -> LocalId {
        let lm = self.mapping.level(level).clone();
        let axis = Axis::from_index(lm.dim.0);
        let block_threads: u32 = (0..self.mapping.depth())
            .map(|l| self.mapping.level(l).block_size)
            .product();
        let smem = self.fresh_smem(format!("red_l{level}"), block_threads.max(1));

        // Warp-synchronous shortcut (the paper's "well known warp
        // synchronous programming technique", Figure 9's omitted body):
        // when the combine stays within one warp — the reduce dimension is
        // x with at most 32 lanes — no block barrier is needed.
        let warp_sync = axis == Axis::X && lm.block_size <= 32;
        let sync = |sink: &mut Vec<Stmt>| {
            if !warp_sync {
                sink.push(Stmt::Sync);
            }
        };

        // Flat slot = tid.x + tid.y*Bx + tid.z*Bx*By over the *mapped* axes.
        let (slot, stride_d) = self.flat_slot_and_stride(axis);

        sink.push(Stmt::SmemStore {
            arr: smem,
            idx: slot.clone(),
            value: KExpr::Local(acc),
        });
        sync(sink);

        let mut s = lm.block_size / 2;
        while s >= 1 {
            let partner = KExpr::add(slot.clone(), KExpr::imm((s * stride_d) as i64));
            sink.push(Stmt::If {
                cond: KExpr::lt(KExpr::Tid(axis), KExpr::imm(s as i64)),
                then: vec![Stmt::SmemStore {
                    arr: smem,
                    idx: slot.clone(),
                    value: combine(
                        op,
                        KExpr::SmemLoad {
                            arr: smem,
                            idx: Box::new(slot.clone()),
                        },
                        KExpr::SmemLoad {
                            arr: smem,
                            idx: Box::new(partner),
                        },
                    ),
                }],
                els: vec![],
            });
            sync(sink);
            s /= 2;
        }

        // Broadcast: every thread reads the slot with tid_d = 0.
        let base = KExpr::sub(
            slot,
            KExpr::mul(KExpr::Tid(axis), KExpr::imm(stride_d as i64)),
        );
        let res = self.fresh_local();
        sink.push(Stmt::Assign {
            dst: res,
            value: KExpr::SmemLoad {
                arr: smem,
                idx: Box::new(base),
            },
        });
        res
    }

    /// Flattened thread slot within the block and the flat stride of
    /// `axis` (x fastest).
    fn flat_slot_and_stride(&self, axis: Axis) -> (KExpr, u32) {
        let mut dims = [1u32; 3];
        for l in 0..self.mapping.depth() {
            let lm = self.mapping.level(l);
            dims[Axis::from_index(lm.dim.0).index()] = lm.block_size.max(1);
        }
        let (bx, by) = (dims[0], dims[1]);
        let slot = KExpr::add(
            KExpr::Tid(Axis::X),
            KExpr::add(
                KExpr::mul(KExpr::Tid(Axis::Y), KExpr::imm(bx as i64)),
                KExpr::mul(KExpr::Tid(Axis::Z), KExpr::imm((bx * by) as i64)),
            ),
        );
        let stride = match axis {
            Axis::X => 1,
            Axis::Y => bx,
            Axis::Z => bx * by,
        };
        (slot, stride)
    }

    /// Combiner kernel: `out[u] = op-fold of partial[u*k .. u*k+k]`.
    fn emit_combiner(&mut self, op: ReduceOp, partial: BufId, out: BufId, uid_count: Size, k: i64) {
        let u = 0; // local ids are per-kernel
        let j = 1;
        let acc = 2;
        let body = vec![
            Stmt::Assign {
                dst: u,
                value: KExpr::global_tid(Axis::X),
            },
            Stmt::If {
                cond: KExpr::lt(KExpr::Local(u), KExpr::SizeVal(uid_count.clone())),
                then: vec![
                    Stmt::Assign {
                        dst: acc,
                        value: KExpr::Imm(op.identity()),
                    },
                    Stmt::For {
                        var: j,
                        start: KExpr::imm(0),
                        end: KExpr::imm(k),
                        step: KExpr::imm(1),
                        body: vec![Stmt::Assign {
                            dst: acc,
                            value: combine(
                                op,
                                KExpr::Local(acc),
                                KExpr::Load {
                                    buf: partial,
                                    idx: Box::new(KExpr::add(
                                        KExpr::mul(KExpr::Local(u), KExpr::imm(k)),
                                        KExpr::Local(j),
                                    )),
                                },
                            ),
                        }],
                    },
                    Stmt::Store {
                        buf: out,
                        idx: KExpr::Local(u),
                        value: KExpr::Local(acc),
                    },
                ],
                els: vec![],
            },
        ];
        self.combiners.push(Kernel {
            name: format!("{}_combine", self.program.name),
            grid: [uid_count / Size::from(256), Size::from(1), Size::from(1)],
            block: [256, 1, 1],
            smem: vec![],
            locals: 3,
            body,
        });
    }

    // ------------------------------------------------------------------
    // Foreach / Filter / GroupBy
    // ------------------------------------------------------------------

    fn lower_foreach(
        &mut self,
        p: &'p Pattern,
        level: usize,
        sink: &mut Vec<Stmt>,
    ) -> Result<(), LowerError> {
        let extent = self.extent_expr(p, sink)?;
        let frame = self.begin_level(level, &extent);
        let idx = frame.idx;
        self.vars.insert(p.var, KExpr::Local(idx));
        self.chain.push(ChainLink {
            var: p.var,
            idx,
            extent: p.size.clone(),
        });

        let mut body = Vec::new();
        let effs = match &p.body {
            Body::Effects(effs) => effs,
            Body::Value(_) => return Err(LowerError("foreach requires effects".into())),
        };
        let mut bound = Vec::new();
        for eff in effs {
            match eff {
                Effect::Write {
                    cond,
                    array,
                    idx: ai,
                    value,
                } => {
                    let v = self.lower_expr(value, &mut body)?;
                    let addr = self.array_address(*array, ai, &mut body)?;
                    let store = vec![Stmt::Store {
                        buf: BufId(array.0),
                        idx: addr,
                        value: v,
                    }];
                    let store = self.guarded(level, store);
                    match cond {
                        Some(c) => {
                            let cv = self.lower_expr(c, &mut body)?;
                            body.push(Stmt::If {
                                cond: cv,
                                then: store,
                                els: vec![],
                            });
                        }
                        None => body.extend(store),
                    }
                }
                Effect::AtomicRmw {
                    cond,
                    array,
                    idx: ai,
                    op,
                    value,
                } => {
                    let v = self.lower_expr(value, &mut body)?;
                    let addr = self.array_address(*array, ai, &mut body)?;
                    let st = vec![Stmt::AtomicRmw {
                        buf: BufId(array.0),
                        idx: addr,
                        op: *op,
                        value: v,
                        capture: None,
                    }];
                    let st = self.guarded(level, st);
                    match cond {
                        Some(c) => {
                            let cv = self.lower_expr(c, &mut body)?;
                            body.push(Stmt::If {
                                cond: cv,
                                then: st,
                                els: vec![],
                            });
                        }
                        None => body.extend(st),
                    }
                }
                Effect::Nested(inner) => match &inner.kind {
                    PatternKind::Foreach => self.lower_foreach(inner, level + 1, &mut body)?,
                    other => {
                        return Err(LowerError(format!(
                            "nested {} in foreach effects unsupported",
                            other.name()
                        )))
                    }
                },
                Effect::LetScalar(v, e) => {
                    let val = self.lower_expr(e, &mut body)?;
                    let l = self.fresh_local();
                    body.push(Stmt::Assign { dst: l, value: val });
                    self.vars.insert(*v, KExpr::Local(l));
                    bound.push(*v);
                }
            }
        }
        for v in bound {
            self.vars.remove(&v);
        }

        let wrapped = self.end_level(frame, body)?;
        sink.extend(wrapped);
        self.chain.pop();
        self.vars.remove(&p.var);
        Ok(())
    }

    fn lower_filter_root(
        &mut self,
        p: &'p Pattern,
        sink: &mut Vec<Stmt>,
    ) -> Result<(), LowerError> {
        let PatternKind::Filter { pred } = &p.kind else {
            unreachable!()
        };
        let out = self.out_buf()?;
        let counter = self
            .program
            .output_count
            .map(|c| BufId(c.0))
            .ok_or_else(|| LowerError("filter root requires a count array".into()))?;

        let extent = self.extent_expr(p, sink)?;
        let frame = self.begin_level(0, &extent);
        let idx = frame.idx;
        self.vars.insert(p.var, KExpr::Local(idx));
        self.chain.push(ChainLink {
            var: p.var,
            idx,
            extent: p.size.clone(),
        });

        let mut body = Vec::new();
        let pv = self.lower_expr(pred, &mut body)?;
        let value = match &p.body {
            Body::Value(e) => e,
            Body::Effects(_) => return Err(LowerError("filter requires a value body".into())),
        };
        let mut then = Vec::new();
        let v = self.lower_expr(value, &mut then)?;
        let pos = self.fresh_local();
        then.push(Stmt::AtomicRmw {
            buf: counter,
            idx: KExpr::imm(0),
            op: ReduceOp::Add,
            value: KExpr::Imm(1.0),
            capture: Some(pos),
        });
        then.push(Stmt::Store {
            buf: out,
            idx: KExpr::Local(pos),
            value: v,
        });
        let then = self.guarded(0, then);
        body.push(Stmt::If {
            cond: pv,
            then,
            els: vec![],
        });

        let wrapped = self.end_level(frame, body)?;
        sink.extend(wrapped);
        self.chain.pop();
        self.vars.remove(&p.var);
        self.notes
            .push("filter output order is nondeterministic (atomic compaction)".into());
        Ok(())
    }

    fn lower_groupby_root(
        &mut self,
        p: &'p Pattern,
        sink: &mut Vec<Stmt>,
    ) -> Result<(), LowerError> {
        let PatternKind::GroupBy { key, op, .. } = &p.kind else {
            unreachable!()
        };
        let op = *op;
        let out = self.out_buf()?;

        let extent = self.extent_expr(p, sink)?;
        let frame = self.begin_level(0, &extent);
        let idx = frame.idx;
        self.vars.insert(p.var, KExpr::Local(idx));
        self.chain.push(ChainLink {
            var: p.var,
            idx,
            extent: p.size.clone(),
        });

        let mut body = Vec::new();
        let kv = self.lower_expr(key, &mut body)?;
        let value = match &p.body {
            Body::Value(e) => e,
            Body::Effects(_) => return Err(LowerError("groupBy requires a value body".into())),
        };
        let v = self.lower_expr(value, &mut body)?;
        let atomic = self.guarded(
            0,
            vec![Stmt::AtomicRmw {
                buf: out,
                idx: kv,
                op,
                value: v,
                capture: None,
            }],
        );
        body.extend(atomic);

        let wrapped = self.end_level(frame, body)?;
        sink.extend(wrapped);
        self.chain.pop();
        self.vars.remove(&p.var);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn array_address(
        &mut self,
        array: ArrayId,
        idxs: &'p [Expr],
        sink: &mut Vec<Stmt>,
    ) -> Result<KExpr, LowerError> {
        let shape = self.program.array(array).shape.clone();
        let mut addr = KExpr::imm(0);
        for (k, ie) in idxs.iter().enumerate() {
            let i = self.lower_expr(ie, sink)?;
            let mut stride = Size::from(1);
            for s in &shape[k + 1..] {
                stride = stride * s.clone();
            }
            let term = if matches!(stride, Size::Const(1)) {
                i
            } else {
                KExpr::mul(i, KExpr::SizeVal(stride))
            };
            addr = if k == 0 { term } else { KExpr::add(addr, term) };
        }
        if idxs.is_empty() {
            addr = KExpr::imm(0);
        }
        Ok(addr)
    }

    fn lower_expr(&mut self, e: &'p Expr, sink: &mut Vec<Stmt>) -> Result<KExpr, LowerError> {
        match e {
            Expr::Lit(v) => Ok(KExpr::Imm(*v)),
            Expr::Var(v) => self
                .vars
                .get(v)
                .cloned()
                .ok_or_else(|| LowerError(format!("unbound variable {v:?} during lowering"))),
            Expr::SizeOf(s) => Ok(KExpr::SizeVal(s.clone())),
            Expr::LengthOf(src, dim) => match src {
                ReadSrc::Array(a) => {
                    let shape = &self.program.array(*a).shape;
                    shape
                        .get(*dim)
                        .map(|s| KExpr::SizeVal(s.clone()))
                        .ok_or_else(|| LowerError("lengthOf out of rank".into()))
                }
                ReadSrc::Var(v) => self
                    .temps
                    .get(v)
                    .map(|t| KExpr::SizeVal(t.inner.clone()))
                    .ok_or_else(|| LowerError("lengthOf unmaterialized collection".into())),
            },
            Expr::Read(ReadSrc::Array(a), idxs) => {
                if let Some(sm) = self.try_prefetch(*a, idxs) {
                    return Ok(sm);
                }
                let addr = self.array_address(*a, idxs, sink)?;
                Ok(KExpr::Load {
                    buf: BufId(a.0),
                    idx: Box::new(addr),
                })
            }
            Expr::Read(ReadSrc::Var(v), idxs) => {
                let t = self
                    .temps
                    .get(v)
                    .cloned()
                    .ok_or_else(|| LowerError(format!("read of unmaterialized temp {v:?}")))?;
                if idxs.len() != 1 {
                    return Err(LowerError("temporaries are rank-1".into()));
                }
                let j = self.lower_expr(&idxs[0], sink)?;
                Ok(KExpr::Load {
                    buf: t.buf,
                    idx: Box::new(temp_addr(&t, j)),
                })
            }
            Expr::Bin(op, a, b) => {
                let x = self.lower_expr(a, sink)?;
                let y = self.lower_expr(b, sink)?;
                Ok(KExpr::Bin(*op, Box::new(x), Box::new(y)))
            }
            Expr::Un(op, a) => {
                let x = self.lower_expr(a, sink)?;
                Ok(KExpr::Un(*op, Box::new(x)))
            }
            Expr::Select(c, t, f) => {
                let cv = self.lower_expr(c, sink)?;
                let tv = self.lower_expr(t, sink)?;
                let fv = self.lower_expr(f, sink)?;
                Ok(KExpr::Select(Box::new(cv), Box::new(tv), Box::new(fv)))
            }
            Expr::Let(v, val, bodye) => match &**val {
                Expr::Pat(p) => match &p.kind {
                    PatternKind::Map => {
                        self.materialize_temp(*v, p, sink)?;
                        let r = self.lower_expr(bodye, sink);
                        self.temps.remove(v);
                        r
                    }
                    PatternKind::Reduce { op } => {
                        let level = self.chain.len();
                        let rv = self.lower_reduce_value(p, level, *op, sink)?;
                        let l = self.fresh_local();
                        sink.push(Stmt::Assign { dst: l, value: rv });
                        self.vars.insert(*v, KExpr::Local(l));
                        let r = self.lower_expr(bodye, sink);
                        self.vars.remove(v);
                        r
                    }
                    other => Err(LowerError(format!(
                        "let-bound {} not supported below the root",
                        other.name()
                    ))),
                },
                scalar => {
                    let sv = self.lower_expr(scalar, sink)?;
                    let l = self.fresh_local();
                    sink.push(Stmt::Assign { dst: l, value: sv });
                    self.vars.insert(*v, KExpr::Local(l));
                    let r = self.lower_expr(bodye, sink);
                    self.vars.remove(v);
                    r
                }
            },
            Expr::Iterate {
                max,
                inits,
                cond,
                updates,
                result,
            } => {
                let maxv = self.lower_expr(max, sink)?;
                let mut state = Vec::with_capacity(inits.len());
                for (v, init) in inits {
                    let iv = self.lower_expr(init, sink)?;
                    let l = self.fresh_local();
                    sink.push(Stmt::Assign { dst: l, value: iv });
                    self.vars.insert(*v, KExpr::Local(l));
                    state.push(l);
                }
                let counter = self.fresh_local();
                let mut body = Vec::new();
                let cv = self.lower_expr(cond, &mut body)?;
                let mut cont = Vec::new();
                // Compute all updates before assigning (parallel semantics).
                let mut fresh = Vec::with_capacity(updates.len());
                for u in updates {
                    let uv = self.lower_expr(u, &mut cont)?;
                    let l = self.fresh_local();
                    cont.push(Stmt::Assign { dst: l, value: uv });
                    fresh.push(l);
                }
                for (s, f) in state.iter().zip(&fresh) {
                    cont.push(Stmt::Assign {
                        dst: *s,
                        value: KExpr::Local(*f),
                    });
                }
                body.push(Stmt::If {
                    cond: cv,
                    then: cont,
                    els: vec![Stmt::Break],
                });
                sink.push(Stmt::For {
                    var: counter,
                    start: KExpr::imm(0),
                    end: maxv,
                    step: KExpr::imm(1),
                    body,
                });
                let r = self.lower_expr(result, sink);
                for (v, _) in inits {
                    self.vars.remove(v);
                }
                r
            }
            Expr::Pat(p) => match &p.kind {
                PatternKind::Reduce { op } => {
                    let level = self.chain.len();
                    self.lower_reduce_value(p, level, *op, sink)
                }
                other => Err(LowerError(format!(
                    "{} in value position must be let-bound",
                    other.name()
                ))),
            },
        }
    }

    // ------------------------------------------------------------------
    // Section V-A: temporary preallocation + layout
    // ------------------------------------------------------------------

    fn materialize_temp(
        &mut self,
        v: VarId,
        p: &'p Pattern,
        sink: &mut Vec<Stmt>,
    ) -> Result<(), LowerError> {
        if p.size.is_dynamic() {
            return Err(LowerError(
                "temporaries with dynamic extents unsupported".into(),
            ));
        }
        for link in &self.chain {
            if link.extent.is_dynamic() {
                return Err(LowerError(
                    "temporaries under dynamic levels unsupported".into(),
                ));
            }
        }
        let level = self.chain.len();
        let inner = p.size.clone();
        let uid_count = chain_count_links(&self.chain);
        let uid = linearize_links(&self.chain);

        let layout = match self.opts.layout {
            LayoutPolicy::ForceRowMajor => TempLayout::RowMajor,
            LayoutPolicy::ForceColMajor => TempLayout::ColMajor,
            LayoutPolicy::Auto => {
                // If the temp's own (inner) level sits on dimension x,
                // stride 1 in the inner index coalesces: row-major.
                // Otherwise interleave so the enclosing x-index gets
                // stride 1 (Figure 11).
                if level < self.mapping.depth() && self.mapping.level(level).dim.is_x() {
                    TempLayout::RowMajor
                } else {
                    TempLayout::ColMajor
                }
            }
        };
        self.notes
            .push(format!("temp v{} layout: {:?}", v.0, layout));
        if trace::enabled() {
            trace::emit(
                trace::Event::instant("codegen", "temp_prealloc")
                    .arg("var", v.0 as u64)
                    .arg("layout", format!("{layout:?}"))
                    .arg("policy", format!("{:?}", self.opts.layout))
                    .arg("device_malloc", self.opts.device_malloc),
            );
        }

        let buf = self.add_buffer(
            format!("{}_temp_v{}", self.program.name, v.0),
            uid_count.clone() * inner.clone(),
            BufferInit::Zero,
        );
        let info = TempInfo {
            buf,
            inner: inner.clone(),
            uid,
            uid_count,
            layout,
        };

        if self.opts.device_malloc {
            // Figure 16's baseline: every outer-pattern thread pays a
            // device malloc for its temporary (one call per outer
            // iteration — the inner pattern's lanes share it).
            // Guard so only one lane of the inner dimensions calls it.
            let m = self.guarded(
                level.saturating_sub(1),
                vec![Stmt::DeviceMalloc {
                    bytes: KExpr::mul(KExpr::SizeVal(inner.clone()), KExpr::imm(8)),
                }],
            );
            sink.extend(m);
        }

        // Producer loop: map into the temp at the chosen layout.
        let extent = self.extent_expr(p, sink)?;
        let frame = self.begin_level(level, &extent);
        let idx = frame.idx;
        self.vars.insert(p.var, KExpr::Local(idx));
        self.chain.push(ChainLink {
            var: p.var,
            idx,
            extent: p.size.clone(),
        });
        let mut body = Vec::new();
        let value = match &p.body {
            Body::Value(e) => e,
            Body::Effects(_) => return Err(LowerError("temp map with effects".into())),
        };
        let val = self.lower_expr(value, &mut body)?;
        let store = self.guarded(
            level,
            vec![Stmt::Store {
                buf: info.buf,
                idx: temp_addr(&info, KExpr::Local(idx)),
                value: val,
            }],
        );
        body.extend(store);
        let wrapped = self.end_level(frame, body)?;
        sink.extend(wrapped);
        self.chain.pop();
        self.vars.remove(&p.var);

        // Consumers at the same block-parallel level read other threads'
        // elements: synchronize.
        if level < self.mapping.depth() && self.mapping.level(level).block_size > 1 {
            sink.push(Stmt::Sync);
        }

        self.temps.insert(v, info);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Section V-B: shared-memory prefetch of outer-level reads
    // ------------------------------------------------------------------

    /// If this read is a rank-1, stride-1 access at the *outer* level of a
    /// deeper nest whose outer dimension is not x, stage the block's chunk
    /// through shared memory and read from there.
    fn try_prefetch(&mut self, array: ArrayId, idxs: &'p [Expr]) -> Option<KExpr> {
        // Names the reason a candidate read was not staged, so traces
        // explain "why did the Section V-B optimization not fire here".
        let skip = |this: &Self, reason: &'static str| {
            if trace::enabled() {
                trace::emit(
                    trace::Event::instant("codegen", "prefetch_skipped")
                        .arg("array", this.program.array(array).name.as_str())
                        .arg("reason", reason),
                );
            }
            None
        };
        if !self.opts.smem_prefetch {
            return None; // disabled by options: not a per-read decision
        }
        if self.mapping.depth() < 2 {
            return skip(self, "nest has a single level");
        }
        // At outer level only (chain = [outer]).
        if self.chain.len() != 1 {
            return skip(self, "read is not at the outer nest level");
        }
        let outer_var = self.chain[0].var;
        let outer_extent = self.chain[0].extent.clone();
        let lm = self.mapping.level(0);
        if lm.dim.is_x() {
            return skip(self, "outer level already on dimension x (coalesced)");
        }
        if !matches!(lm.span, Span::Span(1)) || lm.block_size < 2 {
            return skip(self, "outer level not block-parallel with span(1)");
        }
        // Exactly `a[outer_var]`.
        if idxs.len() != 1 || idxs[0] != Expr::Var(outer_var) {
            return skip(self, "access is not stride-1 in the outer index");
        }
        let axis = Axis::from_index(lm.dim.0);
        let b_outer = lm.block_size;
        if let Some(budget) = self.opts.smem_budget {
            let current: u64 = self.smem.iter().map(|d| u64::from(d.len) * 8).sum();
            if !self.prefetched.contains_key(&array)
                && current + u64::from(b_outer) * 8 > u64::from(budget)
            {
                return skip(self, "shared-memory budget exhausted");
            }
        }

        let sm = match self.prefetched.get(&array) {
            Some(&sm) => sm,
            None => {
                let sm = self.fresh_smem(format!("pf_{}", self.program.array(array).name), b_outer);
                // Preamble: threads with flat id < B_outer cooperatively
                // load the block's chunk (coalesced: consecutive flat ids
                // touch consecutive addresses).
                let (flat, _) = self.flat_slot_and_stride(Axis::X);
                let lt = self.fresh_local();
                let base = KExpr::mul(KExpr::Bid(axis), KExpr::imm(b_outer as i64));
                let addr = KExpr::add(base, KExpr::Local(lt));
                self.preamble.push(Stmt::Assign {
                    dst: lt,
                    value: flat,
                });
                self.preamble.push(Stmt::If {
                    cond: KExpr::and(
                        KExpr::lt(KExpr::Local(lt), KExpr::imm(b_outer as i64)),
                        KExpr::lt(addr.clone(), KExpr::SizeVal(outer_extent.clone())),
                    ),
                    then: vec![Stmt::SmemStore {
                        arr: sm,
                        idx: KExpr::Local(lt),
                        value: KExpr::Load {
                            buf: BufId(array.0),
                            idx: Box::new(addr),
                        },
                    }],
                    els: vec![],
                });
                self.preamble.push(Stmt::Sync);
                self.notes.push(format!(
                    "prefetching `{}` through shared memory",
                    self.program.array(array).name
                ));
                if trace::enabled() {
                    trace::emit(
                        trace::Event::instant("codegen", "prefetch_applied")
                            .arg("array", self.program.array(array).name.as_str())
                            .arg("smem_words", b_outer),
                    );
                }
                self.prefetched.insert(array, sm);
                sm
            }
        };
        Some(KExpr::SmemLoad {
            arr: sm,
            idx: Box::new(KExpr::Tid(axis)),
        })
    }
}

/// `op(a, b)` as a kernel expression.
fn combine(op: ReduceOp, a: KExpr, b: KExpr) -> KExpr {
    let bo = match op {
        ReduceOp::Add => BinOp::Add,
        ReduceOp::Mul => BinOp::Mul,
        ReduceOp::Min => BinOp::Min,
        ReduceOp::Max => BinOp::Max,
    };
    KExpr::Bin(bo, Box::new(a), Box::new(b))
}

/// Address inside a temporary under its layout.
fn temp_addr(t: &TempInfo, j: KExpr) -> KExpr {
    match t.layout {
        TempLayout::RowMajor => KExpr::add(
            KExpr::mul(t.uid.clone(), KExpr::SizeVal(t.inner.clone())),
            j,
        ),
        TempLayout::ColMajor => KExpr::add(
            KExpr::mul(j, KExpr::SizeVal(t.uid_count.clone())),
            t.uid.clone(),
        ),
    }
}

/// Linearized index over the (index, extent) chain: `((i0)·E1 + i1)·E2 + …`.
fn linearize_chain(chain: &[(KExpr, Size)]) -> KExpr {
    if chain.is_empty() {
        return KExpr::imm(0);
    }
    let mut acc = chain[0].0.clone();
    for (idx, extent) in &chain[1..] {
        acc = KExpr::add(KExpr::mul(acc, KExpr::SizeVal(extent.clone())), idx.clone());
    }
    acc
}

/// Product of chain extents.
fn chain_count(chain: &[(KExpr, Size)]) -> Size {
    chain
        .iter()
        .fold(Size::from(1), |acc, (_, e)| acc * e.clone())
}

fn chain_count_links(chain: &[ChainLink]) -> Size {
    chain
        .iter()
        .fold(Size::from(1), |acc, l| acc * l.extent.clone())
}

fn linearize_links(chain: &[ChainLink]) -> KExpr {
    if chain.is_empty() {
        return KExpr::imm(0);
    }
    let mut acc = KExpr::Local(chain[0].idx);
    for link in &chain[1..] {
        acc = KExpr::add(
            KExpr::mul(acc, KExpr::SizeVal(link.extent.clone())),
            KExpr::Local(link.idx),
        );
    }
    acc
}
