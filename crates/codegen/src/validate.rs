//! Structural validation of generated kernel programs.
//!
//! Lowering bugs that would crash (or silently corrupt) the simulator are
//! caught here instead: out-of-range locals/buffers/shared arrays,
//! `Break` outside a loop, block synchronization under lane-divergent or
//! non-uniform control flow, and shared-memory budgets. The pipeline runs
//! this after every lowering in debug builds, and the test-suites run it
//! on every workload.

use crate::kernel::{KExpr, Kernel, KernelProgram, Stmt};
use std::fmt;

/// A structural defect in a generated kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelError(pub String);

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid kernel: {}", self.0)
    }
}

impl std::error::Error for KernelError {}

/// Validate every kernel of `kp` against `smem_limit` bytes of shared
/// memory per block.
///
/// # Errors
///
/// Returns the first defect found.
pub fn validate_kernels(kp: &KernelProgram, smem_limit: u32) -> Result<(), KernelError> {
    for k in &kp.kernels {
        validate_kernel(kp, k, smem_limit)
            .map_err(|e| KernelError(format!("kernel `{}`: {}", k.name, e.0)))?;
    }
    for c in &kp.children {
        validate_with(kp, c, smem_limit, true)
            .map_err(|e| KernelError(format!("child kernel `{}`: {}", c.name, e.0)))?;
    }
    Ok(())
}

/// Validate a single (host-launched) kernel.
///
/// # Errors
///
/// Returns the first defect found.
pub fn validate_kernel(kp: &KernelProgram, k: &Kernel, smem_limit: u32) -> Result<(), KernelError> {
    validate_with(kp, k, smem_limit, false)
}

fn validate_with(
    kp: &KernelProgram,
    k: &Kernel,
    smem_limit: u32,
    in_child: bool,
) -> Result<(), KernelError> {
    if k.block_threads() == 0 {
        return Err(KernelError("empty thread block".into()));
    }
    if k.block_threads() > 1024 {
        return Err(KernelError(format!(
            "{} threads per block exceeds 1024",
            k.block_threads()
        )));
    }
    if k.smem_bytes() > smem_limit {
        return Err(KernelError(format!(
            "shared memory {}B exceeds the {}B limit",
            k.smem_bytes(),
            smem_limit
        )));
    }
    let ctx = Ctx { kp, k, in_child };
    ctx.stmts(&k.body, 0, false)?;
    Ok(())
}

struct Ctx<'a> {
    kp: &'a KernelProgram,
    k: &'a Kernel,
    /// Validating a device-launchable child (nested launches forbidden).
    in_child: bool,
}

impl<'a> Ctx<'a> {
    /// `loop_depth` counts enclosing `For`s; `divergent` is true under any
    /// enclosing lane-dependent condition or loop.
    fn stmts(&self, stmts: &[Stmt], loop_depth: u32, divergent: bool) -> Result<(), KernelError> {
        for s in stmts {
            self.stmt(s, loop_depth, divergent)?;
        }
        Ok(())
    }

    fn stmt(&self, s: &Stmt, loop_depth: u32, divergent: bool) -> Result<(), KernelError> {
        match s {
            Stmt::Assign { dst, value } => {
                self.local(*dst)?;
                self.expr(value)
            }
            Stmt::Store { buf, idx, value } => {
                self.buffer(buf.0)?;
                self.expr(idx)?;
                self.expr(value)
            }
            Stmt::AtomicRmw {
                buf,
                idx,
                value,
                capture,
                ..
            } => {
                self.buffer(buf.0)?;
                self.expr(idx)?;
                self.expr(value)?;
                if let Some(c) = capture {
                    self.local(*c)?;
                }
                Ok(())
            }
            Stmt::SmemStore { arr, idx, value } => {
                self.smem(*arr)?;
                self.expr(idx)?;
                self.expr(value)
            }
            Stmt::For {
                var,
                start,
                end,
                step,
                body,
            } => {
                self.local(*var)?;
                self.expr(start)?;
                self.expr(end)?;
                self.expr(step)?;
                // A loop whose bounds depend on the lane is divergent; a
                // sync inside it would deadlock real hardware.
                let lane_dep = lane_dependent(start) || lane_dependent(end) || lane_dependent(step);
                if lane_dep && has_sync_stmts(body) {
                    return Err(KernelError(
                        "__syncthreads inside a lane-dependent loop".into(),
                    ));
                }
                self.stmts(body, loop_depth + 1, divergent || lane_dep)
            }
            Stmt::Break => {
                if loop_depth == 0 {
                    return Err(KernelError("break outside any loop".into()));
                }
                Ok(())
            }
            Stmt::If { cond, then, els } => {
                self.expr(cond)?;
                let lane_dep = lane_dependent(cond);
                if lane_dep && (has_sync_stmts(then) || has_sync_stmts(els)) {
                    return Err(KernelError(
                        "__syncthreads inside a lane-divergent branch".into(),
                    ));
                }
                self.stmts(then, loop_depth, divergent || lane_dep)?;
                self.stmts(els, loop_depth, divergent || lane_dep)
            }
            Stmt::Sync => {
                if divergent {
                    return Err(KernelError(
                        "__syncthreads under divergent control flow".into(),
                    ));
                }
                Ok(())
            }
            Stmt::DeviceMalloc { bytes } => self.expr(bytes),
            Stmt::ChildLaunch {
                kernel,
                extent,
                args,
            } => {
                if self.in_child {
                    return Err(KernelError(
                        "nested device-side launch (child launching a child)".into(),
                    ));
                }
                let child =
                    self.kp.children.get(*kernel as usize).ok_or_else(|| {
                        KernelError(format!("child kernel {kernel} not declared"))
                    })?;
                if args.len() as u32 > child.locals {
                    return Err(KernelError(format!(
                        "child `{}` gets {} launch args but has only {} locals",
                        child.name,
                        args.len(),
                        child.locals
                    )));
                }
                self.expr(extent)?;
                for a in args {
                    self.expr(a)?;
                }
                Ok(())
            }
        }
    }

    fn expr(&self, e: &KExpr) -> Result<(), KernelError> {
        match e {
            KExpr::Imm(_)
            | KExpr::Tid(_)
            | KExpr::Bid(_)
            | KExpr::Bdim(_)
            | KExpr::Gdim(_)
            | KExpr::SizeVal(_) => Ok(()),
            KExpr::Local(l) => self.local(*l),
            KExpr::Load { buf, idx } => {
                self.buffer(buf.0)?;
                self.expr(idx)
            }
            KExpr::SmemLoad { arr, idx } => {
                self.smem(*arr)?;
                self.expr(idx)
            }
            KExpr::Bin(_, a, b) => {
                self.expr(a)?;
                self.expr(b)
            }
            KExpr::Un(_, a) => self.expr(a),
            KExpr::Select(c, t, f) => {
                self.expr(c)?;
                self.expr(t)?;
                self.expr(f)
            }
        }
    }

    fn local(&self, l: u32) -> Result<(), KernelError> {
        if l >= self.k.locals {
            return Err(KernelError(format!(
                "local r{l} out of range (locals = {})",
                self.k.locals
            )));
        }
        Ok(())
    }

    fn buffer(&self, b: u32) -> Result<(), KernelError> {
        if b as usize >= self.kp.buffers.len() {
            return Err(KernelError(format!("buffer b{b} not declared")));
        }
        Ok(())
    }

    fn smem(&self, a: u32) -> Result<(), KernelError> {
        if a as usize >= self.k.smem.len() {
            return Err(KernelError(format!("shared array {a} not declared")));
        }
        Ok(())
    }
}

/// Does the expression's value vary across the lanes of a warp?
/// (`threadIdx` does; locals might — locals are conservatively treated as
/// lane-dependent only when they appear in loop bounds / conditions, which
/// is exactly where this check is applied.)
fn lane_dependent(e: &KExpr) -> bool {
    match e {
        KExpr::Tid(_) => true,
        // Locals are conservatively lane-dependent: most locals hold
        // thread indices.
        KExpr::Local(_) => true,
        KExpr::Imm(_) | KExpr::Bid(_) | KExpr::Bdim(_) | KExpr::Gdim(_) | KExpr::SizeVal(_) => {
            false
        }
        KExpr::Load { idx, .. } => lane_dependent(idx),
        KExpr::SmemLoad { idx, .. } => lane_dependent(idx),
        KExpr::Bin(_, a, b) => lane_dependent(a) || lane_dependent(b),
        KExpr::Un(_, a) => lane_dependent(a),
        KExpr::Select(c, t, f) => lane_dependent(c) || lane_dependent(t) || lane_dependent(f),
    }
}

fn has_sync_stmts(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Sync => true,
        Stmt::For { body, .. } => has_sync_stmts(body),
        Stmt::If { then, els, .. } => has_sync_stmts(then) || has_sync_stmts(els),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Axis, BufId, BufferDecl, BufferInit};
    use multidim_ir::Size;

    fn program_with(kernel: Kernel) -> KernelProgram {
        KernelProgram {
            name: "t".into(),
            buffers: vec![BufferDecl {
                name: "b".into(),
                elem_bytes: 4,
                len: Size::from(16),
                init: BufferInit::Zero,
                array: None,
            }],
            kernels: vec![kernel],
            children: vec![],
            notes: vec![],
        }
    }

    fn base_kernel(body: Vec<Stmt>) -> Kernel {
        Kernel {
            name: "k".into(),
            grid: [Size::from(1), Size::from(1), Size::from(1)],
            block: [32, 1, 1],
            smem: vec![],
            locals: 2,
            body,
        }
    }

    #[test]
    fn accepts_well_formed() {
        let k = base_kernel(vec![
            Stmt::Assign {
                dst: 0,
                value: KExpr::Tid(Axis::X),
            },
            Stmt::Store {
                buf: BufId(0),
                idx: KExpr::Local(0),
                value: KExpr::Imm(1.0),
            },
        ]);
        validate_kernels(&program_with(k), 48 * 1024).unwrap();
    }

    #[test]
    fn rejects_out_of_range_local() {
        let k = base_kernel(vec![Stmt::Assign {
            dst: 7,
            value: KExpr::Imm(0.0),
        }]);
        let err = validate_kernels(&program_with(k), 48 * 1024).unwrap_err();
        assert!(err.0.contains("r7"));
    }

    #[test]
    fn rejects_undeclared_buffer() {
        let k = base_kernel(vec![Stmt::Store {
            buf: BufId(3),
            idx: KExpr::Imm(0.0),
            value: KExpr::Imm(0.0),
        }]);
        let err = validate_kernels(&program_with(k), 48 * 1024).unwrap_err();
        assert!(err.0.contains("b3"));
    }

    #[test]
    fn rejects_break_outside_loop() {
        let k = base_kernel(vec![Stmt::Break]);
        let err = validate_kernels(&program_with(k), 48 * 1024).unwrap_err();
        assert!(err.0.contains("break"));
    }

    #[test]
    fn rejects_divergent_sync() {
        let k = base_kernel(vec![Stmt::If {
            cond: KExpr::lt(KExpr::Tid(Axis::X), KExpr::imm(7)),
            then: vec![Stmt::Sync],
            els: vec![],
        }]);
        let err = validate_kernels(&program_with(k), 48 * 1024).unwrap_err();
        assert!(err.0.contains("divergent"), "{err}");
    }

    #[test]
    fn rejects_sync_in_lane_dependent_loop() {
        let k = base_kernel(vec![Stmt::For {
            var: 0,
            start: KExpr::Tid(Axis::X),
            end: KExpr::imm(10),
            step: KExpr::imm(1),
            body: vec![Stmt::Sync],
        }]);
        let err = validate_kernels(&program_with(k), 48 * 1024).unwrap_err();
        assert!(err.0.contains("lane-dependent"), "{err}");
    }

    #[test]
    fn rejects_sync_in_data_dependent_loop() {
        // CSR-style shape: the trip count is loaded per lane
        // (`end = row_ptr[tid+1]`), so lanes exit the loop at different
        // iterations — a barrier anywhere inside, even nested under a
        // uniform branch, would deadlock.
        let k = base_kernel(vec![Stmt::For {
            var: 0,
            start: KExpr::imm(0),
            end: KExpr::Load {
                buf: BufId(0),
                idx: Box::new(KExpr::add(KExpr::Tid(Axis::X), KExpr::imm(1))),
            },
            step: KExpr::imm(1),
            body: vec![Stmt::If {
                cond: KExpr::lt(KExpr::Bid(Axis::X), KExpr::imm(2)),
                then: vec![Stmt::Sync],
                els: vec![],
            }],
        }]);
        let err = validate_kernels(&program_with(k), 48 * 1024).unwrap_err();
        assert!(err.0.contains("lane-dependent"), "{err}");
    }

    #[test]
    fn accepts_uniform_loop_with_sync() {
        let k = base_kernel(vec![Stmt::For {
            var: 0,
            start: KExpr::imm(0),
            end: KExpr::imm(4),
            step: KExpr::imm(1),
            body: vec![Stmt::Sync],
        }]);
        // The loop var is a local (conservatively lane-dependent), but the
        // *bounds* are uniform; only bounds matter.
        validate_kernels(&program_with(k), 48 * 1024).unwrap();
    }

    #[test]
    fn rejects_oversized_block_and_smem() {
        let mut k = base_kernel(vec![]);
        k.block = [1024, 2, 1];
        assert!(validate_kernels(&program_with(k), 48 * 1024).is_err());
        let mut k2 = base_kernel(vec![]);
        k2.smem = vec![crate::kernel::SmemDecl {
            name: "s".into(),
            len: 10_000,
        }];
        assert!(validate_kernels(&program_with(k2), 48 * 1024).is_err());
    }
}
