//! Chrome trace-event export.
//!
//! Renders [`Event`]s in the [Trace Event Format] consumed by Perfetto and
//! `chrome://tracing`: a top-level `{"traceEvents": [...]}` object whose
//! entries carry `ph` (phase), `ts`/`dur` (microseconds), `pid`/`tid` lane
//! coordinates and an `args` payload. Two metadata events name the process
//! lanes so viewers label the wall-clock pipeline track and the
//! simulated-GPU track distinctly.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::Json;
use crate::{Event, Phase, Value, PID_PIPELINE, PID_SIM};
use std::io::{self, Write};

fn value_json(v: &Value) -> Json {
    match v {
        Value::Int(v) => Json::Num(*v as f64),
        Value::UInt(v) => Json::Num(*v as f64),
        Value::Float(v) => Json::Num(*v),
        Value::Bool(v) => Json::Bool(*v),
        Value::Str(v) => Json::Str(v.clone()),
    }
}

/// One event as a Chrome trace-event JSON object.
pub fn event_json(e: &Event) -> Json {
    let ph = match e.phase {
        Phase::Complete => "X",
        Phase::Instant => "i",
        Phase::Counter => "C",
    };
    let mut fields = vec![
        ("name".to_string(), Json::Str(e.name.clone())),
        ("cat".to_string(), Json::Str(e.cat.to_string())),
        ("ph".to_string(), Json::Str(ph.to_string())),
        ("ts".to_string(), Json::Num(e.ts_us)),
    ];
    if e.phase == Phase::Complete {
        fields.push(("dur".to_string(), Json::Num(e.dur_us)));
    }
    fields.push(("pid".to_string(), Json::Num(e.pid as f64)));
    fields.push(("tid".to_string(), Json::Num(e.tid as f64)));
    if e.phase == Phase::Instant {
        // Thread-scoped instants render as small arrows in viewers.
        fields.push(("s".to_string(), Json::Str("t".to_string())));
    }
    if !e.args.is_empty() {
        let args = e
            .args
            .iter()
            .map(|(k, v)| (k.to_string(), value_json(v)))
            .collect();
        fields.push(("args".to_string(), Json::Obj(args)));
    }
    Json::Obj(fields)
}

fn metadata(name: &str, pid: u32, label: &str) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::Str(name.to_string())),
        ("ph".to_string(), Json::Str("M".to_string())),
        ("pid".to_string(), Json::Num(pid as f64)),
        ("tid".to_string(), Json::Num(0.0)),
        (
            "args".to_string(),
            Json::Obj(vec![("name".to_string(), Json::Str(label.to_string()))]),
        ),
    ])
}

/// The full trace document (`{"traceEvents": [...]}`) for a set of events,
/// with process-name metadata labelling the two clock lanes.
pub fn trace_json(events: &[Event]) -> Json {
    let mut items = vec![
        metadata("process_name", PID_PIPELINE, "compiler (wall clock)"),
        metadata("process_name", PID_SIM, "gpu (simulated)"),
    ];
    items.extend(events.iter().map(event_json));
    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(items)),
        ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
    ])
}

/// Write the trace document to `out`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace(events: &[Event], out: &mut impl Write) -> io::Result<()> {
    out.write_all(trace_json(events).render().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_event_has_required_fields() {
        let e = Event::complete("sim", "kernel0", 100.0, 50.0)
            .arg("bound_by", "Bandwidth")
            .arg("warp_instr", 1234u64);
        let j = event_json(&e);
        assert_eq!(j.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(j.get("ts").unwrap().as_f64(), Some(100.0));
        assert_eq!(j.get("dur").unwrap().as_f64(), Some(50.0));
        assert_eq!(j.get("pid").unwrap().as_u64(), Some(PID_SIM as u64));
        assert_eq!(j.get("name").unwrap().as_str(), Some("kernel0"));
        let args = j.get("args").unwrap();
        assert_eq!(args.get("bound_by").unwrap().as_str(), Some("Bandwidth"));
        assert_eq!(args.get("warp_instr").unwrap().as_u64(), Some(1234));
    }

    #[test]
    fn instant_and_counter_phases() {
        let i = event_json(&Event::instant("search", "pruned"));
        assert_eq!(i.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(i.get("s").unwrap().as_str(), Some("t"));
        assert_eq!(i.get("dur"), None);
        let c = event_json(&Event::counter("sim", "dram_bytes", 5.0).arg("value", 17u64));
        assert_eq!(c.get("ph").unwrap().as_str(), Some("C"));
    }

    #[test]
    fn trace_document_is_valid_and_labels_lanes() {
        let events = vec![
            Event::instant("search", "candidate"),
            Event::complete("sim", "k0", 0.0, 10.0),
        ];
        let doc = trace_json(&events);
        let text = doc.render();
        let parsed = Json::parse(&text).unwrap();
        let items = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 metadata + 2 events.
        assert_eq!(items.len(), 4);
        assert_eq!(items[0].get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(
            items[0].get("args").unwrap().get("name").unwrap().as_str(),
            Some("compiler (wall clock)")
        );
        assert_eq!(items[1].get("pid").unwrap().as_u64(), Some(PID_SIM as u64));
        // Every non-metadata event carries the mandatory keys.
        for item in &items[2..] {
            for key in ["name", "ph", "ts", "pid", "tid"] {
                assert!(
                    item.get(key).is_some(),
                    "missing {key} in {}",
                    item.render()
                );
            }
        }
    }

    #[test]
    fn write_trace_streams_document() {
        let mut buf = Vec::new();
        write_trace(&[Event::instant("t", "x")], &mut buf).unwrap();
        let parsed = Json::parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert!(parsed.get("traceEvents").is_some());
    }
}
