//! Tail-based trace sampling: a bounded in-flight buffer of request
//! traces with a keep/drop decision made when the request *finishes*.
//!
//! Head sampling (decide at admission) cannot know which requests will
//! matter; tail sampling waits for the outcome. The policy here:
//!
//! * every trace that ends in a non-success outcome (shed, expired,
//!   failed, quota-rejected) is **always kept**;
//! * a successful trace is kept when its latency is at or above the
//!   configured threshold (it is tail-interesting);
//! * remaining "boring" traces (fast successes) are kept with
//!   probability [`TailSamplerConfig::keep_fraction`], decided
//!   *deterministically* from the trace id bits so reruns with the same
//!   ids make the same decisions — everything else is dropped and the
//!   drop is counted.
//!
//! All buffers are bounded: the in-flight map (requests started but not
//! finished) sheds new traces past its cap, per-trace span lists are
//! capped, and the kept ring evicts oldest-first — each with its own
//! counter in [`TailStats`] so a silent loss is impossible.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Mutex;

use crate::context::{splitmix64, trace_id_hex, TraceContext};
use crate::json::Json;
use crate::Value;

/// One recorded span within a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// This span's id.
    pub span_id: u64,
    /// Parent span id (`None` for the root span).
    pub parent: Option<u64>,
    /// Category (`"serve"`, `"engine"`, `"compile"` …).
    pub cat: &'static str,
    /// Span name.
    pub name: &'static str,
    /// Start, microseconds on the process tracing epoch.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Typed payload (shard index, tenant, cache-hit flag …).
    pub args: Vec<(&'static str, Value)>,
}

impl SpanRecord {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            (
                "span_id".to_string(),
                Json::Str(format!("{:016x}", self.span_id)),
            ),
            (
                "parent".to_string(),
                match self.parent {
                    Some(p) => Json::Str(format!("{p:016x}")),
                    None => Json::Null,
                },
            ),
            ("cat".to_string(), Json::Str(self.cat.to_string())),
            ("name".to_string(), Json::Str(self.name.to_string())),
            ("start_us".to_string(), Json::Num(self.start_us)),
            ("dur_us".to_string(), Json::Num(self.dur_us)),
        ];
        if !self.args.is_empty() {
            fields.push((
                "args".to_string(),
                Json::Obj(
                    self.args
                        .iter()
                        .map(|(k, v)| {
                            let jv = match v {
                                Value::Int(i) => Json::Num(*i as f64),
                                Value::UInt(u) => Json::Num(*u as f64),
                                Value::Float(f) => Json::Num(*f),
                                Value::Bool(b) => Json::Bool(*b),
                                Value::Str(s) => Json::Str(s.clone()),
                            };
                            (k.to_string(), jv)
                        })
                        .collect(),
                ),
            ));
        }
        Json::Obj(fields)
    }
}

/// How a request's trace ended — drives the keep/drop decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Request completed successfully.
    Completed,
    /// Shed at admission or by queue-full overload.
    Shed,
    /// Deadline exceeded.
    Expired,
    /// Worker failure (panic, compile error).
    Failed,
    /// Rejected by per-tenant quota admission.
    QuotaRejected,
}

impl TraceOutcome {
    /// Stable lowercase label used in `traces.json`.
    pub fn as_str(&self) -> &'static str {
        match self {
            TraceOutcome::Completed => "completed",
            TraceOutcome::Shed => "shed",
            TraceOutcome::Expired => "expired",
            TraceOutcome::Failed => "failed",
            TraceOutcome::QuotaRejected => "quota_rejected",
        }
    }

    /// Non-success outcomes are always kept by the tail sampler.
    pub fn is_bad(&self) -> bool {
        !matches!(self, TraceOutcome::Completed)
    }
}

/// Tail-sampling policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailSamplerConfig {
    /// Maximum kept traces; oldest evicted past this (counted).
    pub capacity: usize,
    /// Maximum traces in flight (started, not finished); spans for
    /// traces past this cap are shed (counted).
    pub max_in_flight: usize,
    /// Maximum spans retained per trace; extra spans dropped (counted).
    pub max_spans_per_trace: usize,
    /// Successful traces at or above this latency (seconds) are always
    /// kept.
    pub latency_threshold: f64,
    /// Fraction of boring traces (fast successes) kept, in `[0, 1]`.
    pub keep_fraction: f64,
}

impl Default for TailSamplerConfig {
    fn default() -> TailSamplerConfig {
        TailSamplerConfig {
            capacity: 4096,
            max_in_flight: 65_536,
            max_spans_per_trace: 64,
            latency_threshold: 0.050,
            keep_fraction: 0.05,
        }
    }
}

/// A finished, kept trace.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredTrace {
    /// 128-bit trace id.
    pub trace_id: u128,
    /// Final outcome.
    pub outcome: TraceOutcome,
    /// Request latency in seconds, when the finisher knew it.
    pub latency_seconds: Option<f64>,
    /// Spans in recording order (roots are recorded last, at finish).
    pub spans: Vec<SpanRecord>,
}

impl StoredTrace {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            (
                "trace_id".to_string(),
                Json::Str(trace_id_hex(self.trace_id)),
            ),
            (
                "outcome".to_string(),
                Json::Str(self.outcome.as_str().to_string()),
            ),
        ];
        if let Some(lat) = self.latency_seconds {
            fields.push(("latency_seconds".to_string(), Json::Num(lat)));
        }
        fields.push((
            "spans".to_string(),
            Json::Arr(self.spans.iter().map(SpanRecord::to_json).collect()),
        ));
        Json::Obj(fields)
    }
}

/// Accounting for every path a trace (or span) can take through the
/// sampler. Invariant: `finished == kept + dropped_sampled`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TailStats {
    /// Traces that recorded at least one span.
    pub started: u64,
    /// Traces finished with an outcome.
    pub finished: u64,
    /// Finished traces kept in the store.
    pub kept: u64,
    /// Finished traces with a non-success outcome (all kept).
    pub finished_bad: u64,
    /// Successful finished traces below the latency threshold.
    pub finished_boring: u64,
    /// Boring traces kept by the probabilistic decision.
    pub kept_boring: u64,
    /// Boring traces dropped by the probabilistic decision.
    pub dropped_sampled: u64,
    /// Traces shed because the in-flight buffer was full.
    pub dropped_in_flight: u64,
    /// Spans dropped because their trace hit the per-trace span cap.
    pub spans_dropped: u64,
    /// Kept traces evicted to stay within capacity.
    pub evicted: u64,
}

struct StoreInner {
    in_flight: BTreeMap<u128, Vec<SpanRecord>>,
    kept: VecDeque<StoredTrace>,
    stats: TailStats,
}

/// Process-wide tail-sampling trace store. Install with
/// [`install_store`](crate::context::install_store); spans recorded via
/// [`request_span`](crate::context::request_span) (or [`TraceStore::record`]
/// directly) accumulate per trace until [`TraceStore::finish`] decides
/// their fate.
pub struct TraceStore {
    config: TailSamplerConfig,
    inner: Mutex<StoreInner>,
}

impl TraceStore {
    /// An empty store with the given policy.
    pub fn new(config: TailSamplerConfig) -> TraceStore {
        TraceStore {
            config,
            inner: Mutex::new(StoreInner {
                in_flight: BTreeMap::new(),
                kept: VecDeque::new(),
                stats: TailStats::default(),
            }),
        }
    }

    /// The policy this store applies.
    pub fn config(&self) -> TailSamplerConfig {
        self.config
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StoreInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Append one span to the trace identified by `ctx`. Starts the
    /// trace on first span; sheds (and counts) when the in-flight buffer
    /// is full or the trace's span cap is hit.
    pub fn record(&self, ctx: &TraceContext, span: SpanRecord) {
        let mut inner = self.lock();
        let cap_spans = self.config.max_spans_per_trace;
        if let Some(spans) = inner.in_flight.get_mut(&ctx.trace_id) {
            if spans.len() >= cap_spans {
                inner.stats.spans_dropped += 1;
            } else {
                spans.push(span);
            }
            return;
        }
        if inner.in_flight.len() >= self.config.max_in_flight {
            inner.stats.dropped_in_flight += 1;
            return;
        }
        inner.stats.started += 1;
        inner.in_flight.insert(ctx.trace_id, vec![span]);
    }

    /// The deterministic keep decision for a boring (fast, successful)
    /// trace: the trace id's low bits, remixed, against the keep
    /// fraction. Pure, so tests can pin it.
    pub fn would_keep_boring(&self, trace_id: u128) -> bool {
        let f = self.config.keep_fraction.clamp(0.0, 1.0);
        let hashed = splitmix64((trace_id as u64) ^ 0x7ead_5a3d_0c0f_fee5);
        (hashed as f64) < f * (u64::MAX as f64)
    }

    /// Finish the trace with its outcome, applying the tail-sampling
    /// decision. Returns `true` when the trace was kept (callers use
    /// this to decide whether to publish the id as an exemplar). A
    /// finish for a trace with no recorded spans still creates (and
    /// samples) an empty trace, so terminal accounting never loses a
    /// request.
    pub fn finish(
        &self,
        ctx: &TraceContext,
        outcome: TraceOutcome,
        latency_seconds: Option<f64>,
    ) -> bool {
        let mut inner = self.lock();
        let spans = match inner.in_flight.remove(&ctx.trace_id) {
            Some(spans) => spans,
            None => {
                inner.stats.started += 1;
                Vec::new()
            }
        };
        inner.stats.finished += 1;
        let slow = latency_seconds.is_some_and(|l| l >= self.config.latency_threshold);
        let keep = if outcome.is_bad() {
            inner.stats.finished_bad += 1;
            true
        } else if slow {
            true
        } else {
            inner.stats.finished_boring += 1;
            if self.would_keep_boring(ctx.trace_id) {
                inner.stats.kept_boring += 1;
                true
            } else {
                inner.stats.dropped_sampled += 1;
                false
            }
        };
        if !keep {
            return false;
        }
        inner.stats.kept += 1;
        inner.kept.push_back(StoredTrace {
            trace_id: ctx.trace_id,
            outcome,
            latency_seconds,
            spans,
        });
        while inner.kept.len() > self.config.capacity {
            inner.kept.pop_front();
            inner.stats.evicted += 1;
        }
        true
    }

    /// Is this trace id in the kept store?
    pub fn contains(&self, trace_id: u128) -> bool {
        self.lock().kept.iter().any(|t| t.trace_id == trace_id)
    }

    /// Look up a kept trace by id.
    pub fn lookup(&self, trace_id: u128) -> Option<StoredTrace> {
        self.lock()
            .kept
            .iter()
            .find(|t| t.trace_id == trace_id)
            .cloned()
    }

    /// A copy of every kept trace, oldest first.
    pub fn kept_traces(&self) -> Vec<StoredTrace> {
        self.lock().kept.iter().cloned().collect()
    }

    /// Current accounting.
    pub fn stats(&self) -> TailStats {
        self.lock().stats
    }

    /// Export the kept bundle plus accounting as JSON (`traces.json`).
    pub fn to_json(&self) -> Json {
        let inner = self.lock();
        let s = inner.stats;
        Json::Obj(vec![
            ("started".to_string(), Json::Num(s.started as f64)),
            ("finished".to_string(), Json::Num(s.finished as f64)),
            ("kept".to_string(), Json::Num(s.kept as f64)),
            ("finished_bad".to_string(), Json::Num(s.finished_bad as f64)),
            (
                "finished_boring".to_string(),
                Json::Num(s.finished_boring as f64),
            ),
            ("kept_boring".to_string(), Json::Num(s.kept_boring as f64)),
            (
                "dropped_sampled".to_string(),
                Json::Num(s.dropped_sampled as f64),
            ),
            (
                "dropped_in_flight".to_string(),
                Json::Num(s.dropped_in_flight as f64),
            ),
            (
                "spans_dropped".to_string(),
                Json::Num(s.spans_dropped as f64),
            ),
            ("evicted".to_string(), Json::Num(s.evicted as f64)),
            (
                "traces".to_string(),
                Json::Arr(inner.kept.iter().map(StoredTrace::to_json).collect()),
            ),
        ])
    }
}

impl std::fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceStore")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str) -> SpanRecord {
        SpanRecord {
            span_id: 1,
            parent: None,
            cat: "t",
            name,
            start_us: 0.0,
            dur_us: 1.0,
            args: Vec::new(),
        }
    }

    fn ctx(trace_id: u128) -> TraceContext {
        TraceContext {
            trace_id,
            span_id: 1,
            sampled: true,
        }
    }

    #[test]
    fn bad_outcomes_always_kept() {
        let store = TraceStore::new(TailSamplerConfig::default());
        for (i, outcome) in [
            TraceOutcome::Shed,
            TraceOutcome::Expired,
            TraceOutcome::Failed,
            TraceOutcome::QuotaRejected,
        ]
        .iter()
        .enumerate()
        {
            let c = ctx(i as u128 + 1);
            store.record(&c, span("root"));
            assert!(store.finish(&c, *outcome, Some(0.0)), "{outcome:?} kept");
            assert!(store.contains(c.trace_id));
        }
        let s = store.stats();
        assert_eq!(s.finished_bad, 4);
        assert_eq!(s.kept, 4);
        assert_eq!(s.dropped_sampled, 0);
    }

    #[test]
    fn slow_success_kept_fast_success_sampled() {
        let cfg = TailSamplerConfig {
            latency_threshold: 0.010,
            keep_fraction: 0.0,
            ..TailSamplerConfig::default()
        };
        let store = TraceStore::new(cfg);
        let slow = ctx(1);
        store.record(&slow, span("root"));
        assert!(store.finish(&slow, TraceOutcome::Completed, Some(0.020)));
        let fast = ctx(2);
        store.record(&fast, span("root"));
        assert!(!store.finish(&fast, TraceOutcome::Completed, Some(0.001)));
        let s = store.stats();
        assert_eq!(s.kept, 1);
        assert_eq!(s.finished_boring, 1);
        assert_eq!(s.dropped_sampled, 1);
        assert_eq!(s.finished, s.kept + s.dropped_sampled);
    }

    #[test]
    fn boring_keep_rate_tracks_fraction() {
        let cfg = TailSamplerConfig {
            latency_threshold: 1.0,
            keep_fraction: 0.05,
            capacity: 1 << 16,
            ..TailSamplerConfig::default()
        };
        let store = TraceStore::new(cfg);
        let n = 20_000u64;
        for i in 0..n {
            // Realistic ids: well-mixed, like mint() produces.
            let id = ((splitmix64(i) as u128) << 64) | splitmix64(i ^ 0xabcd) as u128;
            let c = ctx(id.max(1));
            store.record(&c, span("root"));
            store.finish(&c, TraceOutcome::Completed, Some(0.0));
        }
        let s = store.stats();
        assert_eq!(s.finished_boring, n);
        assert_eq!(s.kept_boring + s.dropped_sampled, n);
        let rate = s.kept_boring as f64 / n as f64;
        assert!(rate <= 0.10, "keep rate {rate} above the 10% ceiling");
        assert!(rate >= 0.02, "keep rate {rate} implausibly low for 5%");
        // Decisions are deterministic per id.
        let again = TraceStore::new(cfg);
        for t in store.kept_traces() {
            assert!(again.would_keep_boring(t.trace_id));
        }
    }

    #[test]
    fn span_cap_and_in_flight_cap_are_counted() {
        let cfg = TailSamplerConfig {
            max_spans_per_trace: 2,
            max_in_flight: 1,
            ..TailSamplerConfig::default()
        };
        let store = TraceStore::new(cfg);
        let a = ctx(1);
        store.record(&a, span("s1"));
        store.record(&a, span("s2"));
        store.record(&a, span("s3")); // past the span cap
        let b = ctx(2);
        store.record(&b, span("s1")); // past the in-flight cap
        let s = store.stats();
        assert_eq!(s.spans_dropped, 1);
        assert_eq!(s.dropped_in_flight, 1);
        assert!(store.finish(&a, TraceOutcome::Failed, None));
        assert_eq!(store.lookup(1).unwrap().spans.len(), 2);
    }

    #[test]
    fn capacity_evicts_oldest_and_counts() {
        let cfg = TailSamplerConfig {
            capacity: 2,
            ..TailSamplerConfig::default()
        };
        let store = TraceStore::new(cfg);
        for i in 1..=3u128 {
            let c = ctx(i);
            store.record(&c, span("root"));
            store.finish(&c, TraceOutcome::Failed, None);
        }
        assert_eq!(store.stats().evicted, 1);
        assert!(!store.contains(1), "oldest evicted");
        assert!(store.contains(2) && store.contains(3));
    }

    #[test]
    fn finish_without_spans_still_accounts() {
        let store = TraceStore::new(TailSamplerConfig::default());
        let c = ctx(7);
        assert!(store.finish(&c, TraceOutcome::Shed, None));
        let s = store.stats();
        assert_eq!(s.started, 1);
        assert_eq!(s.finished, 1);
        assert!(store.lookup(7).unwrap().spans.is_empty());
    }

    #[test]
    fn json_export_round_trips_structure() {
        let store = TraceStore::new(TailSamplerConfig::default());
        let c = ctx(0xdead_beef);
        let mut s = span("root");
        s.args.push(("shard", Value::UInt(3)));
        store.record(&c, s);
        store.finish(&c, TraceOutcome::Expired, Some(0.25));
        let j = Json::parse(&store.to_json().render()).unwrap();
        assert_eq!(j.get("kept").and_then(Json::as_u64), Some(1));
        let traces = j.get("traces").and_then(Json::as_arr).unwrap();
        assert_eq!(
            traces[0].get("outcome").and_then(Json::as_str),
            Some("expired")
        );
        let tid = traces[0].get("trace_id").and_then(Json::as_str).unwrap();
        assert_eq!(crate::context::parse_trace_id(tid), Some(0xdead_beef));
        let spans = traces[0].get("spans").and_then(Json::as_arr).unwrap();
        assert_eq!(spans[0].get("name").and_then(Json::as_str), Some("root"));
        let args = spans[0].get("args").unwrap();
        assert_eq!(args.get("shard").and_then(Json::as_u64), Some(3));
    }
}
