//! `multidim-trace` — structured tracing for the multidim pipeline.
//!
//! The paper's contribution is an *explanation* of why one mapping beats
//! another; this crate is the measurement substrate that keeps that
//! evidence. It provides:
//!
//! * a typed event model ([`Event`], [`Value`]) covering spans, counters
//!   and instant events, with a dual-clock convention (wall-clock for the
//!   compiler pipeline, *simulated* time for the GPU timeline — separate
//!   `pid` lanes keep the two apart in viewers);
//! * a pluggable [`Sink`] — [`NoopSink`] (the default; the hot path is
//!   guarded by [`enabled`] and performs **no allocation** when tracing is
//!   off), [`MemorySink`] (in-memory collector for tests and table
//!   reconstruction), and [`JsonlSink`] (newline-delimited JSON writer);
//! * exporters: [`chrome::write_trace`] renders events as Chrome
//!   trace-event JSON loadable in Perfetto / `chrome://tracing`, and
//!   [`json`] is a tiny self-contained JSON value model (render + parse)
//!   that the metrics layer round-trips through.
//!
//! # Usage
//!
//! Emitting layers (search, codegen, simulator) guard every emission site:
//!
//! ```
//! use multidim_trace as trace;
//! if trace::enabled() {
//!     trace::emit(trace::Event::instant("search", "candidate")
//!         .arg("score", 12.5)
//!         .arg("mapping", "x(32)"));
//! }
//! ```
//!
//! Collecting ends install a sink for the current thread:
//!
//! ```
//! use multidim_trace as trace;
//! use std::rc::Rc;
//! let sink = Rc::new(trace::MemorySink::new());
//! {
//!     let _guard = trace::set_sink(sink.clone());
//!     // ... traced work ...
//! } // previous sink restored
//! assert!(sink.events().is_empty());
//! ```
//!
//! The default tracer is thread-local: parallel tests or parallel
//! pipeline runs never observe each other's events, and no locking sits
//! on the hot path. Multi-threaded collectors (the engine's worker pool,
//! a process-wide profiler) additionally have two `Send + Sync` paths:
//!
//! * [`install_shared`] installs one `Arc<dyn Sink + Send + Sync>`
//!   process-wide; every thread's [`emit`] delivers to it *in addition
//!   to* that thread's local sink, so events from engine workers are no
//!   longer lost to whoever is collecting on the main thread
//!   ([`SharedMemorySink`] is the ready-made collector);
//! * any `Arc<impl Sink + Send + Sync>` is itself a [`Sink`] (blanket
//!   impl), so one shared sink instance can also be installed
//!   *thread-locally* on each worker via [`set_sink`] — the engine's
//!   flight recorder works this way.
//!
//! All pipeline timestamps share one process-wide epoch, so events from
//! different threads land on one coherent timeline.

#![warn(missing_docs)]

pub mod chrome;
pub mod context;
pub mod json;
pub mod store;

pub use context::{
    current, install_store, instant_us, request_span, set_current, store, store_enabled,
    trace_id_hex, ContextGuard, RequestSpan, StoreGuard, TraceContext,
};
pub use store::{SpanRecord, StoredTrace, TailSamplerConfig, TailStats, TraceOutcome, TraceStore};

use std::cell::{Cell, RefCell};
use std::fmt;
use std::io::Write;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Process lane for wall-clock pipeline events (analysis, lowering, host).
pub const PID_PIPELINE: u32 = 1;
/// Process lane for simulated-GPU-time events (kernel timeline).
pub const PID_SIM: u32 = 2;

/// A typed event argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Signed integer.
    Int(i64),
    /// Unsigned counter.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form text (mapping renderings, reasons).
    Str(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::UInt(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::UInt(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::UInt(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::UInt(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

/// Event kind, mirroring the Chrome trace-event phases we emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A completed slice with an explicit duration (`ph: "X"`).
    Complete,
    /// A point-in-time event (`ph: "i"`).
    Instant,
    /// A numeric counter sample (`ph: "C"`).
    Counter,
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Kind of event.
    pub phase: Phase,
    /// Category (e.g. `"search"`, `"codegen"`, `"sim"`); used for filtering.
    pub cat: &'static str,
    /// Event name (slice label / counter name).
    pub name: String,
    /// Timestamp in microseconds on this event's clock (see `pid`).
    pub ts_us: f64,
    /// Duration in microseconds (only meaningful for [`Phase::Complete`]).
    pub dur_us: f64,
    /// Process lane: [`PID_PIPELINE`] (wall clock) or [`PID_SIM`]
    /// (simulated GPU time).
    pub pid: u32,
    /// Thread/track within the lane (sub-rows of a kernel's breakdown).
    pub tid: u32,
    /// Typed payload.
    pub args: Vec<(&'static str, Value)>,
}

impl Event {
    /// A point-in-time pipeline event stamped with the current wall clock.
    pub fn instant(cat: &'static str, name: impl Into<String>) -> Event {
        Event {
            phase: Phase::Instant,
            cat,
            name: name.into(),
            ts_us: now_us(),
            dur_us: 0.0,
            pid: PID_PIPELINE,
            tid: 0,
            args: Vec::new(),
        }
    }

    /// A completed slice with explicit timestamp and duration (used for
    /// the simulated-GPU timeline, where time is model output, not wall
    /// clock).
    pub fn complete(cat: &'static str, name: impl Into<String>, ts_us: f64, dur_us: f64) -> Event {
        Event {
            phase: Phase::Complete,
            cat,
            name: name.into(),
            ts_us,
            dur_us,
            pid: PID_SIM,
            tid: 0,
            args: Vec::new(),
        }
    }

    /// A counter sample on the simulated timeline.
    pub fn counter(cat: &'static str, name: impl Into<String>, ts_us: f64) -> Event {
        Event {
            phase: Phase::Counter,
            cat,
            name: name.into(),
            ts_us,
            dur_us: 0.0,
            pid: PID_SIM,
            tid: 0,
            args: Vec::new(),
        }
    }

    /// A counter/gauge sample on the *pipeline* lane, stamped with the
    /// current wall clock — for host-side state that evolves over a
    /// session (cache hit/miss totals, queue depth, worker occupancy)
    /// rather than over simulated GPU time.
    pub fn gauge(cat: &'static str, name: impl Into<String>) -> Event {
        Event {
            phase: Phase::Counter,
            cat,
            name: name.into(),
            ts_us: now_us(),
            dur_us: 0.0,
            pid: PID_PIPELINE,
            tid: 0,
            args: Vec::new(),
        }
    }

    /// Attach an argument (builder style).
    pub fn arg(mut self, key: &'static str, value: impl Into<Value>) -> Event {
        self.args.push((key, value.into()));
        self
    }

    /// Override the timestamp — e.g. to place an instant event on the
    /// simulated timeline instead of the wall clock.
    pub fn at(mut self, ts_us: f64) -> Event {
        self.ts_us = ts_us;
        self
    }

    /// Place the event on a specific process lane.
    pub fn on_pid(mut self, pid: u32) -> Event {
        self.pid = pid;
        self
    }

    /// Place the event on a specific track within its lane.
    pub fn on_tid(mut self, tid: u32) -> Event {
        self.tid = tid;
        self
    }

    /// Look up an argument by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// An argument as f64 (Int/UInt/Float coerce).
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            Value::Int(v) => Some(*v as f64),
            Value::UInt(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// An argument as u64 (Int/UInt coerce).
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        match self.get(key)? {
            Value::Int(v) => u64::try_from(*v).ok(),
            Value::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// An argument as string slice.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key)? {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Where events go. Implementations use interior mutability; the tracer
/// hands them shared references.
pub trait Sink {
    /// Whether emitting layers should construct events at all. The
    /// pipeline guards every emission site with [`enabled`], so a sink
    /// returning `false` here guarantees a zero-cost hot path.
    fn enabled(&self) -> bool {
        true
    }

    /// Receive one event.
    fn event(&self, event: &Event);
}

/// Discards everything; [`Sink::enabled`] is `false`, so guarded emission
/// sites skip event construction entirely.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn event(&self, _event: &Event) {}
}

/// Collects events in memory (tests, table reconstruction, exporters).
#[derive(Debug, Default)]
pub struct MemorySink {
    events: RefCell<Vec<Event>>,
}

impl MemorySink {
    /// An empty collector.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A copy of everything collected so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.borrow().clone()
    }

    /// Take the collected events, leaving the sink empty.
    pub fn drain(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.borrow_mut())
    }
}

impl Sink for MemorySink {
    fn event(&self, event: &Event) {
        self.events.borrow_mut().push(event.clone());
    }
}

/// Streams events as newline-delimited JSON objects to a writer.
pub struct JsonlSink<W: Write> {
    writer: RefCell<W>,
}

impl<W: Write> JsonlSink<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink {
            writer: RefCell::new(writer),
        }
    }

    /// Unwrap the inner writer.
    pub fn into_inner(self) -> W {
        self.writer.into_inner()
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn event(&self, event: &Event) {
        let line = chrome::event_json(event).render();
        let mut w = self.writer.borrow_mut();
        let _ = writeln!(w, "{line}");
    }
}

/// A shared `Sink` handle is itself a `Sink`: lets one `Send + Sync`
/// collector be installed thread-locally on many threads (wrap the `Arc`
/// in an `Rc` for [`set_sink`]).
impl<S: Sink + ?Sized> Sink for Arc<S> {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn event(&self, event: &Event) {
        (**self).event(event);
    }
}

/// Collects events in memory behind a mutex — the `Send + Sync`
/// counterpart of [`MemorySink`], for [`install_shared`] and other
/// cross-thread collection.
#[derive(Debug, Default)]
pub struct SharedMemorySink {
    events: Mutex<Vec<Event>>,
}

impl SharedMemorySink {
    /// An empty collector.
    pub fn new() -> SharedMemorySink {
        SharedMemorySink::default()
    }

    /// A copy of everything collected so far (any thread).
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Take the collected events, leaving the sink empty.
    pub fn drain(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Sink for SharedMemorySink {
    fn event(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event.clone());
    }
}

thread_local! {
    static SINK: RefCell<Option<Rc<dyn Sink>>> = const { RefCell::new(None) };
    static ENABLED: Cell<bool> = const { Cell::new(false) };
}

// Process-wide wall-clock epoch: every thread's pipeline timestamps share
// it, so multi-threaded traces (engine workers + main thread) land on one
// coherent timeline.
static EPOCH: OnceLock<Instant> = OnceLock::new();

// The process-wide shared sink and its fast-path enabled flag (mirrors
// the sink's `enabled()` so the hot-path check stays a single load).
static SHARED_SINK: RwLock<Option<Arc<dyn Sink + Send + Sync>>> = RwLock::new(None);
static SHARED_ENABLED: AtomicBool = AtomicBool::new(false);

/// Microseconds since the process tracing epoch (wall clock). The epoch
/// is set by whichever thread traces first.
pub fn now_us() -> f64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64() * 1e6
}

/// The process tracing epoch (first use sets it).
pub(crate) fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Does any installed sink — this thread's local one, or the process-wide
/// shared one — want events? Emission sites must check this before
/// constructing an [`Event`]; when it returns `false` (the default — no
/// sink, or a [`NoopSink`]) the hot path does no allocation.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get()) || SHARED_ENABLED.load(Ordering::Relaxed)
}

/// Restores the previously installed sink when dropped.
pub struct SinkGuard {
    prev: Option<Rc<dyn Sink>>,
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        ENABLED.with(|e| e.set(prev.as_ref().is_some_and(|s| s.enabled())));
        SINK.with(|s| *s.borrow_mut() = prev);
    }
}

/// Install `sink` as the current thread's tracer until the returned guard
/// drops.
pub fn set_sink(sink: Rc<dyn Sink>) -> SinkGuard {
    ENABLED.with(|e| e.set(sink.enabled()));
    let prev = SINK.with(|s| s.borrow_mut().replace(sink));
    SinkGuard { prev }
}

/// Restores the previously installed *shared* sink when dropped.
pub struct SharedSinkGuard {
    prev: Option<Arc<dyn Sink + Send + Sync>>,
}

impl Drop for SharedSinkGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        let mut slot = SHARED_SINK.write().unwrap_or_else(|e| e.into_inner());
        SHARED_ENABLED.store(
            prev.as_ref().is_some_and(|s| s.enabled()),
            Ordering::Relaxed,
        );
        *slot = prev;
    }
}

/// Install `sink` as the process-wide shared tracer until the returned
/// guard drops. Every thread's [`emit`] delivers to the shared sink *in
/// addition to* that thread's local sink — this is how events from engine
/// worker threads reach a collector installed on the main thread.
///
/// The sink must serialize internally (it is called concurrently from
/// every tracing thread); [`SharedMemorySink`] is the ready-made
/// in-memory collector.
pub fn install_shared(sink: Arc<dyn Sink + Send + Sync>) -> SharedSinkGuard {
    let mut slot = SHARED_SINK.write().unwrap_or_else(|e| e.into_inner());
    SHARED_ENABLED.store(sink.enabled(), Ordering::Relaxed);
    let prev = slot.replace(sink);
    SharedSinkGuard { prev }
}

/// Deliver one event to the current thread's sink and to the process-wide
/// shared sink, when installed (drops it when neither is). Callers should
/// guard with [`enabled`] so the event is not even constructed when
/// tracing is off.
pub fn emit(event: Event) {
    SINK.with(|s| {
        if let Some(sink) = s.borrow().as_ref() {
            if sink.enabled() {
                sink.event(&event);
            }
        }
    });
    if SHARED_ENABLED.load(Ordering::Relaxed) {
        if let Ok(slot) = SHARED_SINK.read() {
            if let Some(sink) = slot.as_ref() {
                if sink.enabled() {
                    sink.event(&event);
                }
            }
        }
    }
}

/// A wall-clock span: emits a [`Phase::Complete`] event on the pipeline
/// lane when dropped. Construct through [`span`].
pub struct Span {
    cat: &'static str,
    name: String,
    start_us: f64,
    args: Vec<(&'static str, Value)>,
}

impl Span {
    /// Attach an argument reported when the span closes.
    pub fn arg(&mut self, key: &'static str, value: impl Into<Value>) {
        self.args.push((key, value.into()));
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if enabled() {
            let end = now_us();
            emit(Event {
                phase: Phase::Complete,
                cat: self.cat,
                name: std::mem::take(&mut self.name),
                ts_us: self.start_us,
                dur_us: end - self.start_us,
                pid: PID_PIPELINE,
                tid: 0,
                args: std::mem::take(&mut self.args),
            });
        }
    }
}

/// Open a wall-clock span; the event is emitted when the returned value
/// drops. Returns `None` (and allocates nothing) when tracing is off.
pub fn span(cat: &'static str, name: &str) -> Option<Span> {
    if !enabled() {
        return None;
    }
    Some(Span {
        cat,
        name: name.to_string(),
        start_us: now_us(),
        args: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests touching the process-global shared sink (or asserting the
    /// *absence* of any sink) serialize on this lock so they cannot see
    /// each other's installations across the test harness's threads.
    static GLOBAL_SINK_LOCK: Mutex<()> = Mutex::new(());

    fn global_lock() -> std::sync::MutexGuard<'static, ()> {
        GLOBAL_SINK_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A sink that reports disabled but counts any event() calls it gets:
    /// proves guarded emission sites never construct or deliver events.
    struct CountingDisabledSink {
        calls: Cell<usize>,
    }

    impl Sink for CountingDisabledSink {
        fn enabled(&self) -> bool {
            false
        }
        fn event(&self, _e: &Event) {
            self.calls.set(self.calls.get() + 1);
        }
    }

    #[test]
    fn disabled_by_default() {
        let _lock = global_lock();
        assert!(!enabled());
    }

    #[test]
    fn noop_sink_disables_hot_path() {
        let _lock = global_lock();
        let _g = set_sink(Rc::new(NoopSink));
        assert!(!enabled());
        // A (wrongly) unguarded emit is still dropped before the sink.
        emit(Event::instant("t", "x"));
    }

    #[test]
    fn disabled_sink_never_receives_events() {
        let _lock = global_lock();
        let sink = Rc::new(CountingDisabledSink {
            calls: Cell::new(0),
        });
        {
            let _g = set_sink(sink.clone());
            // The pipeline pattern: guarded construction.
            if enabled() {
                emit(Event::instant("t", "should-not-happen"));
            }
            // Even an unguarded emit must not reach a disabled sink.
            emit(Event::instant("t", "also-dropped"));
            // Spans short-circuit to None.
            assert!(span("t", "s").is_none());
        }
        assert_eq!(sink.calls.get(), 0);
    }

    #[test]
    fn shared_sink_receives_cross_thread_events() {
        let _lock = global_lock();
        let shared = Arc::new(SharedMemorySink::new());
        {
            let _g = install_shared(shared.clone());
            assert!(enabled(), "shared sink enables tracing on every thread");
            emit(Event::instant("t", "main-thread"));
            std::thread::spawn(|| {
                // A worker thread with no local sink still reaches the
                // shared one.
                assert!(enabled());
                emit(Event::instant("t", "worker-thread"));
            })
            .join()
            .unwrap();
        }
        let names: Vec<String> = shared.drain().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["main-thread", "worker-thread"]);
        assert!(!enabled(), "guard drop uninstalls the shared sink");
        emit(Event::instant("t", "after-drop"));
        assert!(shared.events().is_empty());
    }

    #[test]
    fn shared_guard_restores_previous_shared_sink() {
        let _lock = global_lock();
        let outer = Arc::new(SharedMemorySink::new());
        let inner = Arc::new(SharedMemorySink::new());
        let _g1 = install_shared(outer.clone());
        emit(Event::instant("t", "outer-1"));
        {
            let _g2 = install_shared(inner.clone());
            emit(Event::instant("t", "inner"));
        }
        emit(Event::instant("t", "outer-2"));
        let names: Vec<String> = outer.drain().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["outer-1", "outer-2"]);
        assert_eq!(inner.events().len(), 1);
    }

    #[test]
    fn local_and_shared_sinks_both_receive() {
        let _lock = global_lock();
        let local = Rc::new(MemorySink::new());
        let shared = Arc::new(SharedMemorySink::new());
        let _gl = set_sink(local.clone());
        let _gs = install_shared(shared.clone());
        emit(Event::instant("t", "both"));
        assert_eq!(local.events().len(), 1);
        assert_eq!(shared.events().len(), 1);
    }

    #[test]
    fn arc_wrapped_sink_is_a_sink() {
        let _lock = global_lock();
        // The blanket impl lets one Send+Sync sink serve as both the
        // shared sink and a thread-local sink (the pool does this for the
        // flight recorder).
        let shared: Arc<SharedMemorySink> = Arc::new(SharedMemorySink::new());
        let _g = set_sink(Rc::new(shared.clone()) as Rc<dyn Sink>);
        assert!(enabled());
        emit(Event::instant("t", "via-arc"));
        assert_eq!(shared.events().len(), 1);
    }

    #[test]
    fn memory_sink_collects_and_guard_restores() {
        let outer = Rc::new(MemorySink::new());
        let inner = Rc::new(MemorySink::new());
        let _g1 = set_sink(outer.clone());
        assert!(enabled());
        emit(Event::instant("t", "outer-1"));
        {
            let _g2 = set_sink(inner.clone());
            emit(Event::instant("t", "inner"));
        }
        emit(Event::instant("t", "outer-2"));
        let names: Vec<String> = outer.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["outer-1", "outer-2"]);
        assert_eq!(inner.events().len(), 1);
    }

    #[test]
    fn span_measures_wall_time() {
        let sink = Rc::new(MemorySink::new());
        let _g = set_sink(sink.clone());
        {
            let mut s = span("cat", "work").unwrap();
            s.arg("items", 3usize);
        }
        let ev = &sink.events()[0];
        assert_eq!(ev.phase, Phase::Complete);
        assert_eq!(ev.name, "work");
        assert!(ev.dur_us >= 0.0);
        assert_eq!(ev.get_u64("items"), Some(3));
    }

    #[test]
    fn gauge_samples_pipeline_lane() {
        let e = Event::gauge("engine", "cache").arg("hits", 3u64);
        assert_eq!(e.phase, Phase::Counter);
        assert_eq!(e.pid, PID_PIPELINE);
        assert!(e.ts_us >= 0.0);
        assert_eq!(e.get_u64("hits"), Some(3));
    }

    #[test]
    fn event_arg_accessors() {
        let e = Event::instant("t", "x")
            .arg("i", -3i64)
            .arg("u", 7u64)
            .arg("f", 1.5f64)
            .arg("s", "hi")
            .arg("b", true);
        assert_eq!(e.get_f64("i"), Some(-3.0));
        assert_eq!(e.get_u64("u"), Some(7));
        assert_eq!(e.get_f64("f"), Some(1.5));
        assert_eq!(e.get_str("s"), Some("hi"));
        assert_eq!(e.get("b"), Some(&Value::Bool(true)));
        assert_eq!(e.get("missing"), None);
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let sink = JsonlSink::new(Vec::<u8>::new());
        sink.event(&Event::instant("t", "a"));
        sink.event(&Event::complete("t", "b", 10.0, 5.0));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            json::Json::parse(line).expect("each line is valid JSON");
        }
    }
}
