//! Request-scoped trace contexts: 128-bit trace ids, span ids, and the
//! thread-local "current context" that stitches one request's spans into
//! a single tree even as the request hops across worker threads and
//! shards.
//!
//! The model follows W3C/OpenTelemetry conventions scaled down to a
//! zero-dependency crate:
//!
//! * a [`TraceContext`] is minted once per request at the serving tier's
//!   admission edge (128-bit trace id + 64-bit span id + a sampling
//!   flag) and travels *with the request* — through the router, the
//!   shard queue ticket, and into whichever engine worker thread ends up
//!   serving it;
//! * each thread that works on the request installs the context as its
//!   *current* context ([`set_current`], RAII-restored), so nested spans
//!   opened with [`request_span`] parent themselves correctly without
//!   any plumbing through intermediate call signatures;
//! * spans land in the process-wide [`TraceStore`]
//!   (installed with [`install_store`]), which applies *tail-based*
//!   sampling when the request finishes: traces that end badly (shed /
//!   expired / failed) or slow are always kept, boring ones are
//!   probabilistically dropped with the drops counted.
//!
//! Id minting is seeded from [`std::collections::hash_map::RandomState`]
//! (per-process random) mixed through SplitMix64, so ids are unique
//! within a process and collide across processes with negligible
//! probability — without any new dependency.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

use crate::store::{SpanRecord, TraceStore};
use crate::Value;

/// A request-scoped trace context: everything a hop needs to attach its
/// spans to the right trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit trace id, unique per request.
    pub trace_id: u128,
    /// Span id of the *current* span (the parent of any span opened
    /// while this context is current).
    pub span_id: u64,
    /// Head-sampling hint: whether a [`TraceStore`] was installed when
    /// the context was minted. Spans skip the store lookup entirely when
    /// this is `false`.
    pub sampled: bool,
}

impl TraceContext {
    /// Mint a fresh root context. `sampled` reflects whether a process
    /// store is currently installed.
    pub fn mint() -> TraceContext {
        TraceContext {
            trace_id: mint_trace_id(),
            span_id: mint_span_id(),
            sampled: store_enabled(),
        }
    }

    /// Derive a child context: same trace, fresh span id.
    pub fn child(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: mint_span_id(),
            sampled: self.sampled,
        }
    }

    /// The trace id as a fixed-width 32-character lowercase hex string —
    /// the form used in exemplars, alert events, and `traces.json`.
    pub fn trace_hex(&self) -> String {
        trace_id_hex(self.trace_id)
    }
}

/// Render a 128-bit trace id as 32 lowercase hex characters.
pub fn trace_id_hex(id: u128) -> String {
    format!("{id:032x}")
}

/// Parse a hex trace id produced by [`trace_id_hex`].
pub fn parse_trace_id(hex: &str) -> Option<u128> {
    if hex.is_empty() || hex.len() > 32 {
        return None;
    }
    u128::from_str_radix(hex, 16).ok()
}

/// SplitMix64 finalizer: bijective, well-mixed — used to turn sequential
/// counters into uniformly distributed ids.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn process_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        use std::collections::hash_map::RandomState;
        use std::hash::{BuildHasher, Hasher};
        let mut h = RandomState::new().build_hasher();
        h.write_u64(0x6d74_7261_6365); // "mtrace"
        h.finish()
    })
}

static TRACE_COUNTER: AtomicU64 = AtomicU64::new(1);
static SPAN_COUNTER: AtomicU64 = AtomicU64::new(1);

fn mint_trace_id() -> u128 {
    let n = TRACE_COUNTER.fetch_add(1, Ordering::Relaxed);
    let seed = process_seed();
    let hi = splitmix64(seed ^ n);
    let lo = splitmix64(n.wrapping_add(seed.rotate_left(32)));
    let id = ((hi as u128) << 64) | lo as u128;
    if id == 0 {
        1
    } else {
        id
    }
}

fn mint_span_id() -> u64 {
    // The counter is bijectively mixed, so span ids are unique within
    // the process (no birthday collisions, unlike random draws).
    let n = SPAN_COUNTER.fetch_add(1, Ordering::Relaxed);
    let id = splitmix64(process_seed().rotate_left(17) ^ n);
    if id == 0 {
        1
    } else {
        id
    }
}

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The calling thread's current trace context, if any.
pub fn current() -> Option<TraceContext> {
    CURRENT.with(|c| c.get())
}

/// Restores the previously current context when dropped.
pub struct ContextGuard {
    prev: Option<TraceContext>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev.take()));
    }
}

/// Install `ctx` as the calling thread's current context until the
/// returned guard drops. Worker threads call this when they pick up a
/// request whose ticket carries a context, so spans they open nest under
/// the request's root.
pub fn set_current(ctx: TraceContext) -> ContextGuard {
    let prev = CURRENT.with(|c| c.replace(Some(ctx)));
    ContextGuard { prev }
}

// Process-wide tail-sampling trace store, mirroring the shared-sink
// design: a single RwLock slot plus a relaxed fast-path flag.
static STORE: RwLock<Option<Arc<TraceStore>>> = RwLock::new(None);
static STORE_ENABLED: AtomicBool = AtomicBool::new(false);

/// Is a process-wide [`TraceStore`] installed? Single relaxed load; span
/// sites check this before doing any work.
#[inline]
pub fn store_enabled() -> bool {
    STORE_ENABLED.load(Ordering::Relaxed)
}

/// The installed process-wide store, if any.
pub fn store() -> Option<Arc<TraceStore>> {
    if !store_enabled() {
        return None;
    }
    STORE
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .cloned()
}

/// Restores the previously installed store when dropped.
pub struct StoreGuard {
    prev: Option<Arc<TraceStore>>,
}

impl Drop for StoreGuard {
    fn drop(&mut self) {
        let mut slot = STORE.write().unwrap_or_else(|e| e.into_inner());
        STORE_ENABLED.store(self.prev.is_some(), Ordering::Relaxed);
        *slot = self.prev.take();
    }
}

/// Install `store` as the process-wide trace store until the returned
/// guard drops. Every thread's [`request_span`] and finish calls deliver
/// to it.
pub fn install_store(store: Arc<TraceStore>) -> StoreGuard {
    let mut slot = STORE.write().unwrap_or_else(|e| e.into_inner());
    STORE_ENABLED.store(true, Ordering::Relaxed);
    let prev = slot.replace(store);
    StoreGuard { prev }
}

/// Microseconds between the process tracing epoch and `t` (saturating at
/// zero for instants before the epoch). Lets callers place spans for
/// externally captured [`Instant`]s — e.g. a queue-wait span whose start
/// is the admission timestamp — on the same timeline as [`now_us`].
///
/// [`now_us`]: crate::now_us
pub fn instant_us(t: Instant) -> f64 {
    let epoch = crate::epoch();
    match t.checked_duration_since(epoch) {
        Some(d) => d.as_secs_f64() * 1e6,
        None => 0.0,
    }
}

/// An open request-scoped span: records a [`SpanRecord`] into the
/// process store when dropped (or when [`RequestSpan::finish`] is
/// called). While the span is open it is the thread's *current* context,
/// so spans opened inside nest under it.
pub struct RequestSpan {
    ctx: TraceContext,
    parent: Option<u64>,
    cat: &'static str,
    name: &'static str,
    start_us: f64,
    args: Vec<(&'static str, Value)>,
    _guard: ContextGuard,
}

impl RequestSpan {
    /// Attach an argument reported when the span closes.
    pub fn arg(&mut self, key: &'static str, value: impl Into<Value>) {
        self.args.push((key, value.into()));
    }

    /// The span's own context (child of whatever was current).
    pub fn context(&self) -> TraceContext {
        self.ctx
    }

    /// Close the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for RequestSpan {
    fn drop(&mut self) {
        if let Some(store) = store() {
            let end = crate::now_us();
            store.record(
                &self.ctx,
                SpanRecord {
                    span_id: self.ctx.span_id,
                    parent: self.parent,
                    cat: self.cat,
                    name: self.name,
                    start_us: self.start_us,
                    dur_us: end - self.start_us,
                    args: std::mem::take(&mut self.args),
                },
            );
        }
    }
}

/// Open a span under the thread's current context. Returns `None` (and
/// allocates nothing) when there is no current context or no installed
/// store — so instrumented code pays one thread-local read on the cold
/// path and nothing more.
pub fn request_span(cat: &'static str, name: &'static str) -> Option<RequestSpan> {
    let parent = current()?;
    if !parent.sampled || !store_enabled() {
        return None;
    }
    let ctx = parent.child();
    let guard = set_current(ctx);
    Some(RequestSpan {
        ctx,
        parent: Some(parent.span_id),
        cat,
        name,
        start_us: crate::now_us(),
        args: Vec::new(),
        _guard: guard,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{TailSamplerConfig, TraceOutcome};
    use std::collections::HashSet;

    /// Tests touching the process-global store slot serialize on the
    /// same lock idea as the sink tests.
    static STORE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        STORE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn minted_ids_are_unique_and_nonzero() {
        let mut traces = HashSet::new();
        let mut spans = HashSet::new();
        for _ in 0..10_000 {
            let ctx = TraceContext::mint();
            assert_ne!(ctx.trace_id, 0);
            assert_ne!(ctx.span_id, 0);
            assert!(traces.insert(ctx.trace_id), "duplicate trace id");
            assert!(spans.insert(ctx.span_id), "duplicate span id");
        }
    }

    #[test]
    fn hex_round_trips() {
        let ctx = TraceContext::mint();
        let hex = ctx.trace_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(parse_trace_id(&hex), Some(ctx.trace_id));
        assert_eq!(parse_trace_id(""), None);
        assert_eq!(parse_trace_id("zz"), None);
    }

    #[test]
    fn child_keeps_trace_changes_span() {
        let root = TraceContext::mint();
        let child = root.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_ne!(child.span_id, root.span_id);
    }

    #[test]
    fn current_context_guard_restores() {
        let _l = lock();
        assert_eq!(current(), None);
        let a = TraceContext::mint();
        let b = TraceContext::mint();
        {
            let _ga = set_current(a);
            assert_eq!(current(), Some(a));
            {
                let _gb = set_current(b);
                assert_eq!(current(), Some(b));
            }
            assert_eq!(current(), Some(a));
        }
        assert_eq!(current(), None);
    }

    #[test]
    fn request_span_requires_context_and_store() {
        let _l = lock();
        // No context, no store: nothing.
        assert!(request_span("t", "a").is_none());
        let store = Arc::new(TraceStore::new(TailSamplerConfig::default()));
        let _gs = install_store(store.clone());
        // Store but no current context: still nothing.
        assert!(request_span("t", "b").is_none());
        let root = TraceContext::mint();
        let _gc = set_current(root);
        {
            let mut outer = request_span("t", "outer").expect("span opens");
            outer.arg("k", 1u64);
            let inner = request_span("t", "inner").expect("nested span opens");
            // The nested span's parent is the outer span, not the root.
            assert_eq!(inner.parent, Some(outer.ctx.span_id));
        }
        // Restored: next span parents to the root again.
        let after = request_span("t", "after").unwrap();
        assert_eq!(after.parent, Some(root.span_id));
        drop(after);
        store.finish(&root, TraceOutcome::Failed, None);
        let kept = store.kept_traces();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].spans.len(), 3);
    }

    #[test]
    fn store_guard_restores_previous() {
        let _l = lock();
        assert!(store().is_none());
        let outer = Arc::new(TraceStore::new(TailSamplerConfig::default()));
        let inner = Arc::new(TraceStore::new(TailSamplerConfig::default()));
        let _g1 = install_store(outer.clone());
        {
            let _g2 = install_store(inner.clone());
            assert!(Arc::ptr_eq(&store().unwrap(), &inner));
        }
        assert!(Arc::ptr_eq(&store().unwrap(), &outer));
        drop(_g1);
        assert!(store().is_none());
        assert!(!store_enabled());
    }

    #[test]
    fn instant_us_is_monotonic_on_timeline() {
        let t0 = Instant::now();
        let a = instant_us(t0);
        let b = crate::now_us();
        // t0 was captured before now_us() was sampled.
        assert!(a <= b + 1.0, "a={a} b={b}");
    }
}
