//! A minimal JSON value model: render and parse, no dependencies.
//!
//! This exists because the container ships no serde; the metrics layer
//! (`multidim-sim`'s `RunMetrics`) and the Chrome trace exporter both
//! round-trip through [`Json`]. Numbers are `f64` (Rust's `Display` for
//! `f64` prints the shortest representation that parses back exactly, so
//! `render → parse` is lossless for every finite value); non-finite
//! numbers render as `null`.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Value as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Value as u64 (must be a non-negative integer-valued number).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Value as string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Value as array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // Shortest round-trip representation; strip Rust's
                    // exponent forms JSON doesn't mind but keep it simple.
                    use fmt::Write as _;
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (rejects trailing garbage).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the byte offset of the
    /// first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not needed for our own output;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid UTF-8")?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid number")?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_scalars() {
        for (j, s) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::Bool(false), "false"),
            (Json::Num(3.0), "3"),
            (Json::Num(-0.25), "-0.25"),
            (Json::Str("hi".into()), "\"hi\""),
        ] {
            assert_eq!(j.render(), s);
            assert_eq!(Json::parse(s).unwrap(), j);
        }
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd\u{1}".into());
        let rendered = j.render();
        assert_eq!(rendered, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(Json::parse(&rendered).unwrap(), j);
    }

    #[test]
    fn nested_structures_round_trip() {
        let j = Json::Obj(vec![
            ("name".into(), Json::Str("k".into())),
            (
                "values".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Null]),
            ),
            (
                "nested".into(),
                Json::Obj(vec![("flag".into(), Json::Bool(false))]),
            ),
        ]);
        let text = j.render();
        assert_eq!(Json::parse(&text).unwrap(), j);
    }

    #[test]
    fn f64_round_trip_is_exact() {
        for v in [0.1, 1.0 / 3.0, 1e-300, 123456789.123456, f64::MAX, 5e-324] {
            let text = Json::Num(v).render();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back, v, "{text}");
        }
    }

    #[test]
    fn non_finite_renders_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parses_whitespace_and_rejects_garbage() {
        let j = Json::parse("  { \"a\" : [ 1 , 2 ] }  ").unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn accessors() {
        let j = Json::parse("{\"n\": 4, \"s\": \"x\", \"a\": [true]}").unwrap();
        assert_eq!(j.get("n").unwrap().as_u64(), Some(4));
        assert_eq!(j.get("n").unwrap().as_f64(), Some(4.0));
        assert_eq!(j.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(j.get("missing"), None);
        assert_eq!(Json::parse("-2.5").unwrap().as_u64(), None);
    }
}
