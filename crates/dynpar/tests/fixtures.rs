//! Hand-computed consolidation fixtures run through the simulator.
//!
//! Each test forces one launch strategy on the same small SpMV-shaped
//! program, lowers it with [`lower_planned`], simulates it, and checks
//! (a) the output matches an exactly-representable CPU reference and
//! (b) the launch counters match hand-computed values (aggregation batch
//! count, naive per-row launches, coarsened grid shape).

use std::collections::HashMap;

use multidim_codegen::{CodegenOptions, LaunchStrategy};
use multidim_device::GpuSpec;
use multidim_dynpar::{choose, lower_planned, DynParConfig, DynParPolicy};
use multidim_ir::{ArrayId, Bindings, Expr, Program, ProgramBuilder, ReduceOp, ScalarKind, Size};
use multidim_sim::run_program_sanitized;

const ROWS: i64 = 200;
const COLS: i64 = 32;

/// Degree of row `i`: 0..=6 repeating — zero-degree rows are part of the
/// fixture on purpose (they exercise the binary search's skip-over and
/// naive's launch-nothing path).
fn degree(i: i64) -> i64 {
    i % 7
}

/// CSR structure plus dyadic values so float accumulation in any order
/// reproduces the reference bit-for-bit.
struct Fixture {
    program: Program,
    bindings: Bindings,
    inputs: HashMap<ArrayId, Vec<f64>>,
    out: ArrayId,
    reference: Vec<f64>,
    edges: i64,
}

fn fixture() -> Fixture {
    let mut row_ptr = vec![0i64];
    for i in 0..ROWS {
        row_ptr.push(row_ptr[i as usize] + degree(i));
    }
    let edges = row_ptr[ROWS as usize];
    let col: Vec<i64> = (0..edges).map(|e| (e * 5 + 3) % COLS).collect();
    let vals: Vec<f64> = (0..edges).map(|e| 1.0 + (e % 3) as f64 * 0.5).collect();
    let x: Vec<f64> = (0..COLS).map(|c| (c % 7) as f64 * 0.25).collect();

    let mut reference = vec![0.0f64; ROWS as usize];
    for i in 0..ROWS as usize {
        for e in row_ptr[i]..row_ptr[i + 1] {
            reference[i] += vals[e as usize] * x[col[e as usize] as usize];
        }
    }

    let mut b = ProgramBuilder::new("fixture_spmv");
    let n = b.sym("N");
    let e = b.sym("E");
    let rp = b.input("row_ptr", ScalarKind::I32, &[Size::sym(n) + Size::from(1)]);
    let ci = b.input("col_idx", ScalarKind::I32, &[Size::sym(e)]);
    let va = b.input("vals", ScalarKind::F32, &[Size::sym(e)]);
    let xs = b.input("x", ScalarKind::F32, &[Size::from(COLS)]);
    let root = b.map(Size::sym(n), |b, row| {
        let start = b.read(rp, &[row.into()]);
        let end = b.read(rp, &[Expr::var(row) + Expr::lit(1.0)]);
        b.reduce_dyn(end - start.clone(), 3, ReduceOp::Add, |b, j| {
            let edge = start.clone() + Expr::var(j);
            let c = b.read(ci, std::slice::from_ref(&edge));
            b.read(va, &[edge]) * b.read(xs, &[c])
        })
    });
    let program = b.finish_map(root, "y", ScalarKind::F32).unwrap();
    let out = program.output.unwrap();

    let mut bindings = Bindings::new();
    bindings.bind(n, ROWS);
    bindings.bind(e, edges);

    let mut inputs = HashMap::new();
    inputs.insert(rp, row_ptr.iter().map(|&v| v as f64).collect());
    inputs.insert(ci, col.iter().map(|&v| v as f64).collect());
    inputs.insert(va, vals);
    inputs.insert(xs, x);

    Fixture {
        program,
        bindings,
        inputs,
        out,
        reference,
        edges,
    }
}

/// Lower the fixture under `policy`, simulate with the sanitizer on, and
/// return (output, total cost, kernel names).
fn run(
    policy: DynParPolicy,
) -> (
    Vec<f64>,
    multidim_sim::KernelCost,
    Vec<String>,
    multidim_sim::SanitizerReport,
) {
    let f = fixture();
    let gpu = GpuSpec::tesla_k20c();
    let analysis = multidim_mapping::analyze(&f.program, &f.bindings, &gpu);
    let config = DynParConfig {
        policy,
        ..DynParConfig::default()
    };
    let plan = choose(&f.program, &f.bindings, &gpu, &config);
    let kp = lower_planned(
        &f.program,
        &analysis.decision,
        &CodegenOptions::default(),
        &plan,
    )
    .unwrap();
    let (sim, san) = run_program_sanitized(&kp, &gpu, &f.bindings, &f.inputs).unwrap();
    assert!(
        !san.has_conflicts(),
        "sanitizer conflicts under {policy:?}: {:?}",
        san.conflicts
    );
    (
        sim.array(f.out).to_vec(),
        sim.total_cost(),
        sim.names.clone(),
        san,
    )
}

#[test]
fn naive_launches_one_child_per_nonempty_row() {
    let (out, cost, names, _) = run(DynParPolicy::Force(LaunchStrategy::Naive));
    assert_eq!(out, fixture().reference);
    assert!(names.iter().any(|n| n.contains("launcher")));
    // Rows 0, 7, 14, ... have degree 0 and launch nothing: 200 rows in
    // blocks of 7 → 28 full cycles (6 nonempty each) + rows 196..=199
    // with degrees 0,1,2,3 (3 nonempty).
    let nonempty = (0..ROWS).filter(|&i| degree(i) > 0).count() as u64;
    assert_eq!(nonempty, 28 * 6 + 3);
    assert_eq!(cost.child_launches, nonempty);
    // Every degree is < 128, so each child grid is exactly one block.
    assert_eq!(cost.child_blocks, nonempty);
}

#[test]
fn aggregation_batches_all_work_into_one_child() {
    let (out, cost, names, _) = run(DynParPolicy::Force(LaunchStrategy::Aggregate));
    let f = fixture();
    assert_eq!(out, f.reference);
    assert!(names.iter().any(|n| n.contains("scan_blocks")));
    // One consolidated launch covering every edge: total work
    // T = 28*21 + (0+1+2+3) = 594 edges → ceil(594/128) = 5 blocks.
    assert_eq!(f.edges, 594);
    assert_eq!(cost.child_launches, 1);
    assert_eq!(cost.child_blocks, (594u64).div_ceil(128));
}

#[test]
fn coarsening_runs_without_child_launches() {
    let (out, cost, names, _) = run(DynParPolicy::Force(LaunchStrategy::Coarsen(4)));
    assert_eq!(out, fixture().reference);
    assert!(names.iter().any(|n| n.contains("coarsen")));
    assert_eq!(cost.child_launches, 0);
    assert_eq!(cost.child_blocks, 0);
}

#[test]
fn auto_policy_inlines_small_problems_via_baseline_lowering() {
    // 200 rows * mean 3 = 600 total work, far below the 50k floor: the
    // plan must fall back to the ordinary lowering (no launcher kernels).
    let (out, cost, names, _) = run(DynParPolicy::Auto);
    assert_eq!(out, fixture().reference);
    assert_eq!(cost.child_launches, 0);
    assert!(names.iter().all(|n| !n.contains("launcher")));
    assert!(names.iter().all(|n| !n.contains("worker")));
}

#[test]
fn forced_strategies_agree_bitwise() {
    let (naive, ..) = run(DynParPolicy::Force(LaunchStrategy::Naive));
    let (coarse, ..) = run(DynParPolicy::Force(LaunchStrategy::Coarsen(4)));
    let (agg, ..) = run(DynParPolicy::Force(LaunchStrategy::Aggregate));
    let (inline, ..) = run(DynParPolicy::Auto);
    assert_eq!(naive, coarse);
    assert_eq!(naive, agg);
    assert_eq!(naive, inline);
}
