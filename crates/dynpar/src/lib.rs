//! Launch consolidation for data-dependent nest extents.
//!
//! Nested patterns whose inner extent is data-dependent (a CSR row's
//! degree, a ragged segment's length) defeat static launch configuration:
//! the baseline lowering inlines them as `Span(all)` loops, and the naive
//! dynamic-parallelism alternative pays one device-side launch overhead
//! *per outer element*. This crate is the consolidation stage that picks,
//! per launch site, between
//!
//! * **thresholding** ([`LaunchStrategy::Inline`]) — sites whose total
//!   estimated work is below a cutoff stay inlined; the overheads of any
//!   consolidated form could never be repaid;
//! * **coarsening** ([`LaunchStrategy::Coarsen`]) — each block of a single
//!   kernel serially owns `k` outer elements, one warp striding each inner
//!   extent; best when the mean inner extent keeps the warp busy;
//! * **aggregation** ([`LaunchStrategy::Aggregate`]) — the inner extents
//!   are prefix-summed into a work queue and *one* consolidated child grid
//!   executes every inner element; perfectly load-balanced, so it wins
//!   when inner extents are tiny (warp lanes would idle under coarsening)
//!   and the total work is large enough to amortize the scan.
//!
//! The choice is driven by the device's launch-overhead model
//! ([`GpuSpec::child_launch_overhead_s`], block dispatch cost) plus simple
//! occupancy arithmetic; every modeled time is recorded in the returned
//! [`SiteDecision`] so reports can show *why* a strategy was picked. The
//! kernel-level lowerings themselves live in `multidim_codegen::dynpar`
//! and are executed/timed by the simulator's child-launch support.

#![warn(missing_docs)]

use multidim_codegen::{find_site, DynParPlan, LaunchStrategy, SiteDecision};
use multidim_device::GpuSpec;
use multidim_ir::{Bindings, Program};
use multidim_trace as trace;

/// How the consolidation stage picks a strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DynParPolicy {
    /// Model each strategy's time and pick the cheapest (with the
    /// threshold rule applied first).
    #[default]
    Auto,
    /// Always use the given strategy at every matched site (reports use
    /// this to hold the naive baseline fixed).
    Force(LaunchStrategy),
}

/// Configuration of the consolidation stage.
#[derive(Debug, Clone, PartialEq)]
pub struct DynParConfig {
    /// Master switch; `false` leaves every program on the baseline
    /// (`Inline`) lowering.
    pub enabled: bool,
    /// Strategy policy.
    pub policy: DynParPolicy,
    /// Inner-extent cutoff for thresholding: an estimated mean inner
    /// extent below this keeps moderate-work sites inlined.
    pub threshold: i64,
    /// Total-work floor (outer × mean inner elements) under which no
    /// consolidated form can repay its fixed overheads.
    pub min_total_work: i64,
    /// Child/worker block width for naive and aggregated launches.
    pub child_block: u32,
    /// Coarsening factor; `None` derives one from the device's SM count.
    pub coarsen: Option<u32>,
}

impl Default for DynParConfig {
    fn default() -> Self {
        DynParConfig {
            enabled: true,
            policy: DynParPolicy::Auto,
            threshold: 16,
            min_total_work: 12_000,
            child_block: 128,
            coarsen: None,
        }
    }
}

/// Instructions modeled per inner element (loads + multiply-add + index
/// math of a typical gather body).
const BODY_INSTR: f64 = 8.0;
/// Extra instructions per binary-search iteration in the aggregated
/// worker. The search is uniform across a warp (every lane walks the
/// same ~log2(P) levels), so its amortized per-lane cost is small.
const SEARCH_INSTR: f64 = 1.5;
/// Warp width (the coarsened kernel strides inner extents warp-wide).
const WARP: f64 = 32.0;
/// Inline's modeled inefficiency over perfectly balanced work: the
/// baseline `Span(all)` path serializes each outer element on one block
/// with modest occupancy; adequate at small scale, never great.
const INLINE_FACTOR: f64 = 2.0;

/// The coarsening factor used when [`DynParConfig::coarsen`] is `None`:
/// aim for ~16 resident blocks per SM, clamped to `[2, 64]`.
pub fn auto_coarsen(p: i64, gpu: &GpuSpec) -> u32 {
    let target_blocks = (i64::from(gpu.sm_count) * 16).max(1);
    let k = (p + target_blocks - 1) / target_blocks;
    k.clamp(2, 64) as u32
}

/// Sustained concurrent-lane proxy used by the work-time model.
fn width(gpu: &GpuSpec) -> f64 {
    f64::from(gpu.sm_count) * 64.0
}

/// Seconds to issue `n` perfectly parallel inner elements of `instr`
/// instructions each.
fn work_s(gpu: &GpuSpec, n: f64, instr: f64) -> f64 {
    gpu.cycles_to_seconds(n * instr / width(gpu))
}

/// Seconds of dispatch cost for `blocks` thread blocks.
fn dispatch_s(gpu: &GpuSpec, blocks: f64) -> f64 {
    gpu.cycles_to_seconds(blocks * gpu.block_dispatch_cycles / f64::from(gpu.sm_count))
}

/// Model every strategy's seconds for a site with outer extent `p` and
/// mean inner extent `m`. Returned as `(name, seconds)` pairs in a fixed
/// order: inline, naive, coarsen, aggregate.
pub fn model_strategies(
    p: i64,
    m: i64,
    k: u32,
    child_block: u32,
    gpu: &GpuSpec,
) -> Vec<(String, f64)> {
    let pf = p.max(1) as f64;
    let mf = m.max(1) as f64;
    let total = pf * mf;
    let cb = f64::from(child_block.max(32));
    let work = work_s(gpu, total, BODY_INSTR);

    let inline_s = work * INLINE_FACTOR + gpu.kernel_launch_overhead_s;

    let naive_s = work
        + pf * gpu.child_launch_overhead_s
        + dispatch_s(gpu, pf * (mf / cb).ceil())
        + gpu.kernel_launch_overhead_s;

    // Coarsening leaves warp lanes idle when the mean inner extent is
    // below the warp width.
    let lane_idle = WARP / mf.min(WARP);
    let coarsen_s = work * lane_idle
        + dispatch_s(gpu, (pf / f64::from(k.max(1))).ceil())
        + gpu.kernel_launch_overhead_s;

    // Aggregation: three scan kernels (two passes over the outer extent
    // plus a single-block scan of the block sums) and a binary search of
    // log2(P) iterations per inner element in the worker.
    let search = 1.0 + SEARCH_INSTR * pf.log2().max(1.0) / BODY_INSTR;
    let nb = (pf / 128.0).ceil();
    let scan_s =
        work_s(gpu, pf, 16.0) + work_s(gpu, nb * 3.0, 16.0) + 3.0 * gpu.kernel_launch_overhead_s;
    let aggregate_s =
        work * search + scan_s + gpu.child_launch_overhead_s + dispatch_s(gpu, (total / cb).ceil());

    vec![
        ("inline".into(), inline_s),
        ("naive".into(), naive_s),
        ("coarsen".into(), coarsen_s),
        ("aggregate".into(), aggregate_s),
    ]
}

/// Build the consolidation plan for `program` under `bindings`.
///
/// Returns a plan with `site: None` when the stage is disabled or the
/// program has no supported launch site; otherwise the single site's
/// [`SiteDecision`] with the chosen strategy and the full set of modeled
/// times. The decision is also emitted as a trace event.
pub fn choose(
    program: &Program,
    bindings: &Bindings,
    gpu: &GpuSpec,
    config: &DynParConfig,
) -> DynParPlan {
    if !config.enabled {
        return DynParPlan::default();
    }
    let Some(site) = find_site(program) else {
        return DynParPlan::default();
    };
    let p = site.outer.size.eval_or_default(bindings).max(1);
    // `Size::Dynamic` evaluates to its estimate (the workload's mean
    // inner-extent hint).
    let m = site.inner.size.eval_or_default(bindings).max(1);
    let k = config.coarsen.unwrap_or_else(|| auto_coarsen(p, gpu));
    let modeled = model_strategies(p, m, k, config.child_block, gpu);

    let total = p.saturating_mul(m);
    let (strategy, reason) = match config.policy {
        DynParPolicy::Force(s) => {
            let s = match s {
                LaunchStrategy::Coarsen(0) => LaunchStrategy::Coarsen(k),
                other => other,
            };
            (s, format!("forced by policy ({})", s.name()))
        }
        DynParPolicy::Auto => {
            if total < config.min_total_work
                || (m < config.threshold && total < 4 * config.min_total_work)
            {
                (
                    LaunchStrategy::Inline,
                    format!(
                        "thresholded: total work {total} (mean inner {m}) below the \
                         consolidation floor"
                    ),
                )
            } else {
                let coarsen_s = modeled[2].1;
                let aggregate_s = modeled[3].1;
                if aggregate_s < coarsen_s {
                    (
                        LaunchStrategy::Aggregate,
                        format!(
                            "aggregation modeled at {:.1}us vs coarsening {:.1}us \
                             (mean inner {m} idles warp lanes)",
                            aggregate_s * 1e6,
                            coarsen_s * 1e6
                        ),
                    )
                } else {
                    (
                        LaunchStrategy::Coarsen(k),
                        format!(
                            "coarsening x{k} modeled at {:.1}us vs aggregation {:.1}us",
                            coarsen_s * 1e6,
                            aggregate_s * 1e6
                        ),
                    )
                }
            }
        }
    };

    if trace::enabled() {
        trace::emit(
            trace::Event::instant("dynpar", "site_decision")
                .arg("program", program.name.as_str())
                .arg("strategy", strategy.name())
                .arg("outer", p as u64)
                .arg("estimate", m as u64)
                .arg("reason", reason.as_str()),
        );
    }

    DynParPlan {
        site: Some(SiteDecision {
            pattern: site.inner.id.0,
            level: 1,
            strategy,
            outer: p,
            estimate: m,
            child_block: config.child_block.max(32),
            modeled,
            reason,
        }),
    }
}

/// Re-exported so downstream callers need only this crate for planning.
pub use multidim_codegen::{lower_planned, LaunchSite};
// The plan/strategy types are re-exported for the same reason.
pub use multidim_codegen::{DynParPlan as Plan, LaunchStrategy as Strategy};

#[cfg(test)]
mod tests {
    use super::*;
    use multidim_ir::{Expr, ProgramBuilder, ReduceOp, ScalarKind, Size};

    /// A CSR-shaped map→reduce_dyn program with `rows` rows and mean
    /// inner-extent hint `mean`.
    fn site_program(mean: i64) -> (Program, multidim_ir::SymId, multidim_ir::SymId) {
        let mut b = ProgramBuilder::new("fixture");
        let n = b.sym("N");
        let e = b.sym("E");
        let row_ptr = b.input("row_ptr", ScalarKind::I32, &[Size::sym(n) + Size::from(1)]);
        let vals = b.input("vals", ScalarKind::F32, &[Size::sym(e)]);
        let root = b.map(Size::sym(n), |b, row| {
            let start = b.read(row_ptr, &[row.into()]);
            let end = b.read(row_ptr, &[Expr::var(row) + Expr::lit(1.0)]);
            b.reduce_dyn(end - start.clone(), mean, ReduceOp::Add, |b, j| {
                b.read(vals, &[start.clone() + Expr::var(j)])
            })
        });
        let p = b.finish_map(root, "y", ScalarKind::F32).unwrap();
        (p, n, e)
    }

    fn plan_for(rows: i64, mean: i64, config: &DynParConfig) -> DynParPlan {
        let (p, n, e) = site_program(mean);
        let mut bind = Bindings::new();
        bind.bind(n, rows);
        bind.bind(e, rows * mean);
        choose(&p, &bind, &GpuSpec::tesla_k20c(), config)
    }

    #[test]
    fn threshold_boundary_is_exact() {
        let config = DynParConfig::default();
        // min_total_work = 12_000; mean 25 >= threshold 16, so the floor
        // alone decides. 479 * 25 = 11_975 < 12_000 -> inline.
        let below = plan_for(479, 25, &config);
        assert_eq!(
            below.site.unwrap().strategy,
            LaunchStrategy::Inline,
            "work just below the floor must stay inlined"
        );
        // 480 * 25 = 12_000 meets the floor -> consolidated.
        let at = plan_for(480, 25, &config);
        let s = at.site.unwrap().strategy;
        assert_ne!(s, LaunchStrategy::Inline, "at the floor: consolidate");
        assert_ne!(s, LaunchStrategy::Naive, "auto never picks naive");
    }

    #[test]
    fn small_mean_extent_extends_the_threshold() {
        let config = DynParConfig::default();
        // mean 8 < threshold 16: inline until 4x the floor.
        let mid = plan_for(5_999, 8, &config); // 47_992 < 48_000
        assert_eq!(mid.site.unwrap().strategy, LaunchStrategy::Inline);
        let big = plan_for(6_000, 8, &config); // 48_000 >= 48_000
        assert_ne!(big.site.unwrap().strategy, LaunchStrategy::Inline);
    }

    #[test]
    fn coarsening_factor_is_derived_from_sm_count() {
        let gpu = GpuSpec::tesla_k20c(); // 13 SMs -> target 208 blocks
        assert_eq!(auto_coarsen(4096, &gpu), 20); // ceil(4096/208)
        assert_eq!(auto_coarsen(100, &gpu), 2); // clamped low
        assert_eq!(auto_coarsen(1 << 20, &gpu), 64); // clamped high
    }

    #[test]
    fn wide_rows_coarsen_and_narrow_rows_aggregate() {
        let config = DynParConfig::default();
        // Warp-filling rows: coarsening has no lane idle, wins.
        let wide = plan_for(4096, 64, &config).site.unwrap();
        assert!(
            matches!(wide.strategy, LaunchStrategy::Coarsen(_)),
            "wide rows should coarsen, got {:?} ({})",
            wide.strategy,
            wide.reason
        );
        // Tiny rows at large scale: 30/32 lanes would idle under
        // coarsening; the balanced work queue wins.
        let narrow = plan_for(262_144, 2, &config).site.unwrap();
        assert_eq!(
            narrow.strategy,
            LaunchStrategy::Aggregate,
            "narrow rows at scale should aggregate ({})",
            narrow.reason
        );
    }

    #[test]
    fn disabled_or_forced_policies_are_respected() {
        let off = DynParConfig {
            enabled: false,
            ..DynParConfig::default()
        };
        assert!(plan_for(4096, 64, &off).site.is_none());

        let forced = DynParConfig {
            policy: DynParPolicy::Force(LaunchStrategy::Naive),
            ..DynParConfig::default()
        };
        assert_eq!(
            plan_for(64, 4, &forced).site.unwrap().strategy,
            LaunchStrategy::Naive
        );
        // Force(Coarsen(0)) resolves the auto factor.
        let forced_k = DynParConfig {
            policy: DynParPolicy::Force(LaunchStrategy::Coarsen(0)),
            ..DynParConfig::default()
        };
        assert_eq!(
            plan_for(4096, 4, &forced_k).site.unwrap().strategy,
            LaunchStrategy::Coarsen(20)
        );
    }

    #[test]
    fn plans_record_the_model_for_reports() {
        let d = plan_for(4096, 64, &DynParConfig::default()).site.unwrap();
        assert_eq!(d.modeled.len(), 4);
        assert!(d.modeled.iter().all(|(_, s)| *s > 0.0));
        // Naive's per-element launch overhead dominates everything else.
        let naive = d.modeled[1].1;
        assert!(naive > 10.0 * d.modeled[2].1, "naive should model worst");
        assert!(!d.reason.is_empty());
    }
}
