//! Parallel patterns (Table I of the paper).
//!
//! Each pattern binds an index variable ranging over `0..size` and carries a
//! body. Bodies may contain further patterns, giving the *nested* structure
//! whose mapping is the subject of the paper. `zipWith` is provided by the
//! builder as sugar over [`PatternKind::Map`] (a map whose body reads two
//! collections at the same index), which is also how the paper's own IR
//! treats it for mapping purposes.

use crate::expr::{Expr, VarId};
use crate::program::ArrayId;
use crate::size::Size;

/// Associative combine functions accepted by `Reduce` and `GroupBy`.
///
/// Restricting combines to a known-associative set is what lets the code
/// generator emit tree reductions in shared memory and cross-block combiner
/// kernels without a general function-inverter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Sum; identity 0.
    Add,
    /// Product; identity 1.
    Mul,
    /// Minimum; identity +inf.
    Min,
    /// Maximum; identity -inf.
    Max,
}

impl ReduceOp {
    /// The identity element of the combine.
    pub fn identity(self) -> f64 {
        match self {
            ReduceOp::Add => 0.0,
            ReduceOp::Mul => 1.0,
            ReduceOp::Min => f64::INFINITY,
            ReduceOp::Max => f64::NEG_INFINITY,
        }
    }

    /// Apply the combine to two values.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Add => a + b,
            ReduceOp::Mul => a * b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

/// A side effect performed by a `Foreach` body for each index.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// `if cond { array[idx...] = value }` (cond of `None` is unconditional).
    Write {
        /// Guard; the write happens only when it evaluates non-zero.
        cond: Option<Expr>,
        /// Destination array.
        array: ArrayId,
        /// Logical indices.
        idx: Vec<Expr>,
        /// Stored value.
        value: Expr,
    },
    /// `array[idx...] <combine>= value` performed atomically (used by
    /// `GroupBy` lowering and scatter-accumulate workloads).
    AtomicRmw {
        /// Guard, as for `Write`.
        cond: Option<Expr>,
        /// Destination array.
        array: ArrayId,
        /// Logical indices.
        idx: Vec<Expr>,
        /// Combine function.
        op: ReduceOp,
        /// Operand.
        value: Expr,
    },
    /// A nested pattern executed for its effects (e.g. an inner `Foreach`).
    Nested(Pattern),
    /// Bind a scalar for use by subsequent effects.
    LetScalar(VarId, Expr),
}

/// The computation a pattern performs per index.
#[derive(Debug, Clone, PartialEq)]
pub enum Body {
    /// A value-producing body (`Map`, `Reduce`, `Filter`, `GroupBy`).
    Value(Expr),
    /// An effect list (`Foreach`).
    Effects(Vec<Effect>),
}

/// Which parallel pattern (Table I).
#[derive(Debug, Clone, PartialEq)]
pub enum PatternKind {
    /// Construct a collection by applying the body to every index.
    Map,
    /// Combine the body's value over all indices with an associative `op`.
    Reduce {
        /// The associative combine.
        op: ReduceOp,
    },
    /// Apply an effectful body to every index; produces no value.
    Foreach,
    /// Keep body values whose predicate holds; produces a *dynamically
    /// sized* collection (a hard case for mapping, per Section III).
    Filter {
        /// The predicate; evaluated per index.
        pred: Expr,
    },
    /// Key-wise reduction: combine each index's value into bucket
    /// `key(index)` of `0..num_keys`.
    GroupBy {
        /// Bucket index expression (integral, `0..num_keys`).
        key: Expr,
        /// Number of buckets.
        num_keys: Size,
        /// The associative combine applied within a bucket.
        op: ReduceOp,
    },
}

impl PatternKind {
    /// Whether correct parallel execution of this pattern requires
    /// synchronization across all its iterations (the hard-constraint
    /// trigger for `Span(all)` in Table II, "e.g. Reduce").
    ///
    /// `Filter` and `GroupBy` combine with device-wide atomics in our code
    /// generator, so they place no span requirement.
    pub fn needs_global_sync(&self) -> bool {
        matches!(self, PatternKind::Reduce { .. })
    }

    /// Short name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            PatternKind::Map => "map",
            PatternKind::Reduce { .. } => "reduce",
            PatternKind::Foreach => "foreach",
            PatternKind::Filter { .. } => "filter",
            PatternKind::GroupBy { .. } => "groupBy",
        }
    }
}

/// Identifier of a pattern instance within a program (assigned by the
/// builder in construction order; stable across analyses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatternId(pub u32);

/// One parallel pattern instance.
///
/// # Examples
///
/// Patterns are normally built with [`crate::ProgramBuilder`]; see the crate
/// docs for the `sumRows` example.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    /// Stable identifier.
    pub id: PatternId,
    /// Which pattern this is.
    pub kind: PatternKind,
    /// Iteration extent used for analysis. When [`Pattern::dyn_extent`] is
    /// set this must be a [`Size::Dynamic`] estimate.
    pub size: Size,
    /// Data-dependent extent, evaluated in the *enclosing* scope (e.g. a
    /// CSR node's degree `row_ptr[n+1] - row_ptr[n]`). Such patterns force
    /// the conservative `Span(all)` because the launch configuration cannot
    /// depend on them (Section IV-A).
    pub dyn_extent: Option<Expr>,
    /// The bound index variable.
    pub var: VarId,
    /// Per-index computation.
    pub body: Body,
}

impl Pattern {
    /// Visit all expressions contained in this pattern (body, predicates,
    /// keys, effects), recursively including nested patterns'.
    pub fn visit_exprs<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        if let Some(e) = &self.dyn_extent {
            e.visit(f);
        }
        match &self.kind {
            PatternKind::Filter { pred } => pred.visit(f),
            PatternKind::GroupBy { key, .. } => key.visit(f),
            _ => {}
        }
        match &self.body {
            Body::Value(e) => e.visit(f),
            Body::Effects(effs) => {
                for eff in effs {
                    match eff {
                        Effect::Write {
                            cond, idx, value, ..
                        }
                        | Effect::AtomicRmw {
                            cond, idx, value, ..
                        } => {
                            if let Some(c) = cond {
                                c.visit(f);
                            }
                            for i in idx {
                                i.visit(f);
                            }
                            value.visit(f);
                        }
                        Effect::Nested(p) => p.visit_exprs(f),
                        Effect::LetScalar(_, e) => e.visit(f),
                    }
                }
            }
        }
    }

    /// Visit this pattern and every nested pattern, with nesting level
    /// (0 = this pattern).
    pub fn visit_patterns<'a>(&'a self, f: &mut impl FnMut(&'a Pattern, usize)) {
        self.visit_patterns_at(0, &mut |p, l| f(p, l));
    }

    fn visit_patterns_at<'a>(&'a self, level: usize, f: &mut dyn FnMut(&'a Pattern, usize)) {
        f(self, level);
        let walk_expr = |e: &'a Expr, f: &mut dyn FnMut(&'a Pattern, usize)| {
            collect_immediate_patterns(e, &mut |p| p.visit_patterns_at(level + 1, f));
        };
        match &self.body {
            Body::Value(e) => walk_expr(e, f),
            Body::Effects(effs) => {
                for eff in effs {
                    match eff {
                        Effect::Write {
                            cond, idx, value, ..
                        }
                        | Effect::AtomicRmw {
                            cond, idx, value, ..
                        } => {
                            if let Some(c) = cond {
                                walk_expr(c, f);
                            }
                            for i in idx {
                                walk_expr(i, f);
                            }
                            walk_expr(value, f);
                        }
                        Effect::Nested(p) => p.visit_patterns_at(level + 1, f),
                        Effect::LetScalar(_, e) => walk_expr(e, f),
                    }
                }
            }
        }
    }
}

/// Invoke `f` on each pattern that appears *immediately* inside `e`
/// (not inside further-nested patterns).
pub fn collect_immediate_patterns<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Pattern)) {
    match e {
        Expr::Pat(p) => f(p),
        Expr::Lit(_) | Expr::Var(_) | Expr::SizeOf(_) | Expr::LengthOf(..) => {}
        Expr::Read(_, idxs) => {
            for i in idxs {
                collect_immediate_patterns(i, f);
            }
        }
        Expr::Bin(_, a, b) => {
            collect_immediate_patterns(a, f);
            collect_immediate_patterns(b, f);
        }
        Expr::Un(_, a) => collect_immediate_patterns(a, f),
        Expr::Select(c, t, el) => {
            collect_immediate_patterns(c, f);
            collect_immediate_patterns(t, f);
            collect_immediate_patterns(el, f);
        }
        Expr::Let(_, v, b) => {
            collect_immediate_patterns(v, f);
            collect_immediate_patterns(b, f);
        }
        Expr::Iterate {
            max,
            inits,
            cond,
            updates,
            result,
        } => {
            collect_immediate_patterns(max, f);
            for (_, e) in inits {
                collect_immediate_patterns(e, f);
            }
            collect_immediate_patterns(cond, f);
            for e in updates {
                collect_immediate_patterns(e, f);
            }
            collect_immediate_patterns(result, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn leaf_map(id: u32, var: u32) -> Pattern {
        Pattern {
            id: PatternId(id),
            kind: PatternKind::Map,
            size: Size::from(4),
            dyn_extent: None,
            var: VarId(var),
            body: Body::Value(Expr::var(VarId(var))),
        }
    }

    #[test]
    fn reduce_identities() {
        assert_eq!(ReduceOp::Add.identity(), 0.0);
        assert_eq!(ReduceOp::Mul.identity(), 1.0);
        assert_eq!(ReduceOp::Min.identity(), f64::INFINITY);
        assert_eq!(ReduceOp::Max.identity(), f64::NEG_INFINITY);
    }

    #[test]
    fn reduce_apply() {
        assert_eq!(ReduceOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Min.apply(2.0, 3.0), 2.0);
        assert_eq!(ReduceOp::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(ReduceOp::Mul.apply(2.0, 3.0), 6.0);
    }

    #[test]
    fn sync_requirements() {
        assert!(PatternKind::Reduce { op: ReduceOp::Add }.needs_global_sync());
        assert!(!PatternKind::Map.needs_global_sync());
        assert!(!PatternKind::Foreach.needs_global_sync());
        // Filter/GroupBy lower with atomics: no span requirement.
        assert!(!PatternKind::Filter {
            pred: Expr::lit(1.0)
        }
        .needs_global_sync());
    }

    #[test]
    fn visit_patterns_reports_levels() {
        let inner = leaf_map(1, 1);
        let outer = Pattern {
            id: PatternId(0),
            kind: PatternKind::Map,
            size: Size::from(8),
            dyn_extent: None,
            var: VarId(0),
            body: Body::Value(Expr::Pat(Box::new(inner))),
        };
        let mut seen = Vec::new();
        outer.visit_patterns(&mut |p, lvl| seen.push((p.id, lvl)));
        assert_eq!(seen, vec![(PatternId(0), 0), (PatternId(1), 1)]);
    }

    #[test]
    fn nested_inside_let_found() {
        let inner = leaf_map(1, 1);
        let outer = Pattern {
            id: PatternId(0),
            kind: PatternKind::Map,
            size: Size::from(8),
            dyn_extent: None,
            var: VarId(0),
            body: Body::Value(Expr::Let(
                VarId(2),
                Box::new(Expr::Pat(Box::new(inner))),
                Box::new(Expr::var(VarId(2))),
            )),
        };
        let mut count = 0;
        outer.visit_patterns(&mut |_, _| count += 1);
        assert_eq!(count, 2);
    }

    #[test]
    fn foreach_nested_effects() {
        let inner = Pattern {
            id: PatternId(1),
            kind: PatternKind::Foreach,
            size: Size::from(4),
            dyn_extent: None,
            var: VarId(1),
            body: Body::Effects(vec![]),
        };
        let outer = Pattern {
            id: PatternId(0),
            kind: PatternKind::Foreach,
            size: Size::from(4),
            dyn_extent: None,
            var: VarId(0),
            body: Body::Effects(vec![Effect::Nested(inner)]),
        };
        let mut levels = Vec::new();
        outer.visit_patterns(&mut |p, l| levels.push((p.id.0, l)));
        assert_eq!(levels, vec![(0, 0), (1, 1)]);
    }
}
