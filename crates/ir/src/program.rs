//! Whole-program container: array declarations, size symbols, and the root
//! pattern nest.

use crate::expr::{Expr, ReadSrc, VarId};
use crate::pattern::{Body, Effect, Pattern, PatternKind};
use crate::size::{Bindings, Size, SymId};
use crate::types::ScalarKind;
use std::collections::HashSet;
use std::fmt;

/// Identifier of a declared array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

/// How an array participates in the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayRole {
    /// Provided by the host before launch (charged for PCIe transfer when
    /// the experiment includes it).
    Input,
    /// Produced by the root pattern (or written by `Foreach` effects).
    Output,
    /// Device-resident scratch that persists across kernels of the same
    /// program (e.g. `Split` partial buffers, preallocated temporaries).
    Temp,
}

/// A declared array: name, element kind, logical shape.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDecl {
    /// Unique id.
    pub id: ArrayId,
    /// Host-visible name.
    pub name: String,
    /// Element type (determines byte width for traffic accounting).
    pub elem: ScalarKind,
    /// Logical shape; linearized row-major.
    pub shape: Vec<Size>,
    /// Role.
    pub role: ArrayRole,
}

impl ArrayDecl {
    /// Total element count under `bindings`.
    pub fn len(&self, bindings: &Bindings) -> usize {
        self.shape
            .iter()
            .map(|s| s.eval(bindings) as usize)
            .product()
    }

    /// `true` when any dimension evaluates to zero.
    pub fn is_empty(&self, bindings: &Bindings) -> bool {
        self.len(bindings) == 0
    }

    /// Total bytes under `bindings`.
    pub fn bytes(&self, bindings: &Bindings) -> u64 {
        self.len(bindings) as u64 * self.elem.bytes()
    }
}

/// A named size symbol.
#[derive(Debug, Clone, PartialEq)]
pub struct SymDecl {
    /// Unique id.
    pub id: SymId,
    /// Host-visible name.
    pub name: String,
}

/// A complete pattern program: one nested-pattern computation that the
/// pipeline compiles to one kernel group.
///
/// Host-side algorithms that launch many kernels (iterative stencils,
/// Gaussian elimination steps) are sequences of `Program`s driven by the
/// `multidim` pipeline.
///
/// # Examples
///
/// See [`crate::ProgramBuilder`] for construction; `Program::validate` is
/// run automatically by the builder's `finish` methods.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Diagnostic name.
    pub name: String,
    /// Size symbols in id order.
    pub symbols: Vec<SymDecl>,
    /// Arrays in id order.
    pub arrays: Vec<ArrayDecl>,
    /// The outermost pattern.
    pub root: Pattern,
    /// Where the root's produced collection is stored. `None` for `Foreach`
    /// roots (all effects write declared arrays directly).
    pub output: Option<ArrayId>,
    /// For `Filter` roots: the array receiving the kept-element count.
    pub output_count: Option<ArrayId>,
    /// Number of variables allocated (vars are `0..var_count`).
    pub var_count: u32,
    /// Number of patterns allocated (ids are `0..pattern_count`).
    pub pattern_count: u32,
}

/// A structural defect found by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError(pub String);

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid program: {}", self.0)
    }
}

impl std::error::Error for ValidateError {}

impl Program {
    /// Look up an array declaration.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not declared in this program.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0 as usize]
    }

    /// Find an array by name.
    pub fn array_by_name(&self, name: &str) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.name == name)
    }

    /// Find a symbol by name.
    pub fn symbol_by_name(&self, name: &str) -> Option<&SymDecl> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// Maximum nesting depth (a single un-nested pattern has depth 1).
    pub fn nest_depth(&self) -> usize {
        let mut depth = 0;
        self.root
            .visit_patterns(&mut |_, lvl| depth = depth.max(lvl + 1));
        depth
    }

    /// Structural validation: every read/write targets a declared array,
    /// every variable reference is in scope, pattern ids are unique, and the
    /// output declaration is consistent with the root pattern kind.
    ///
    /// # Errors
    ///
    /// Returns the first defect found.
    pub fn validate(&self) -> Result<(), ValidateError> {
        // Unique pattern ids.
        let mut ids = HashSet::new();
        let mut dup = None;
        self.root.visit_patterns(&mut |p, _| {
            if !ids.insert(p.id) {
                dup = Some(p.id);
            }
        });
        if let Some(d) = dup {
            return Err(ValidateError(format!("duplicate pattern id {d:?}")));
        }

        // Output consistency.
        match (&self.root.kind, self.output) {
            (PatternKind::Foreach, Some(_)) => {
                return Err(ValidateError(
                    "foreach root cannot have an output array".into(),
                ))
            }
            (PatternKind::Foreach, None) => {}
            (_, None) => {
                return Err(ValidateError(format!(
                    "{} root requires an output array",
                    self.root.kind.name()
                )))
            }
            (_, Some(out)) => {
                if out.0 as usize >= self.arrays.len() {
                    return Err(ValidateError(format!("undeclared output array {out:?}")));
                }
            }
        }
        if let Some(c) = self.output_count {
            if c.0 as usize >= self.arrays.len() {
                return Err(ValidateError(format!("undeclared count array {c:?}")));
            }
            if !matches!(self.root.kind, PatternKind::Filter { .. }) {
                return Err(ValidateError(
                    "output_count only valid for filter roots".into(),
                ));
            }
        }

        // Scope check.
        let mut scope: Vec<VarId> = Vec::new();
        self.check_pattern(&self.root, &mut scope)
    }

    fn check_pattern(&self, p: &Pattern, scope: &mut Vec<VarId>) -> Result<(), ValidateError> {
        // The dynamic extent is evaluated in the enclosing scope, before the
        // pattern's own index variable exists.
        if let Some(ext) = &p.dyn_extent {
            self.check_expr(ext, scope)?;
            if !p.size.is_dynamic() {
                return Err(ValidateError(format!(
                    "pattern {:?} has a dynamic extent but a static analysis size",
                    p.id
                )));
            }
        }
        scope.push(p.var);
        let r = (|| {
            match &p.kind {
                PatternKind::Filter { pred } => self.check_expr(pred, scope)?,
                PatternKind::GroupBy { key, .. } => self.check_expr(key, scope)?,
                _ => {}
            }
            match &p.body {
                Body::Value(e) => self.check_expr(e, scope)?,
                Body::Effects(effs) => {
                    let mut extra = 0usize;
                    for eff in effs {
                        match eff {
                            Effect::Write {
                                cond,
                                array,
                                idx,
                                value,
                            }
                            | Effect::AtomicRmw {
                                cond,
                                array,
                                idx,
                                value,
                                ..
                            } => {
                                if array.0 as usize >= self.arrays.len() {
                                    return Err(ValidateError(format!(
                                        "write to undeclared array {array:?}"
                                    )));
                                }
                                let decl = self.array(*array);
                                if decl.shape.len() != idx.len() {
                                    return Err(ValidateError(format!(
                                        "array `{}` has rank {} but write uses {} indices",
                                        decl.name,
                                        decl.shape.len(),
                                        idx.len()
                                    )));
                                }
                                if let Some(c) = cond {
                                    self.check_expr(c, scope)?;
                                }
                                for i in idx {
                                    self.check_expr(i, scope)?;
                                }
                                self.check_expr(value, scope)?;
                            }
                            Effect::Nested(inner) => self.check_pattern(inner, scope)?,
                            Effect::LetScalar(v, e) => {
                                self.check_expr(e, scope)?;
                                scope.push(*v);
                                extra += 1;
                            }
                        }
                    }
                    for _ in 0..extra {
                        scope.pop();
                    }
                }
            }
            Ok(())
        })();
        scope.pop();
        r
    }

    fn check_expr(&self, e: &Expr, scope: &mut Vec<VarId>) -> Result<(), ValidateError> {
        match e {
            Expr::Lit(_) | Expr::SizeOf(_) => Ok(()),
            Expr::Var(v) => {
                if scope.contains(v) {
                    Ok(())
                } else {
                    Err(ValidateError(format!("variable {v:?} used out of scope")))
                }
            }
            Expr::LengthOf(src, _) => match src {
                ReadSrc::Array(a) if (a.0 as usize) < self.arrays.len() => Ok(()),
                ReadSrc::Array(a) => {
                    Err(ValidateError(format!("length of undeclared array {a:?}")))
                }
                ReadSrc::Var(v) if scope.contains(v) => Ok(()),
                ReadSrc::Var(v) => Err(ValidateError(format!("length of out-of-scope var {v:?}"))),
            },
            Expr::Read(src, idxs) => {
                match src {
                    ReadSrc::Array(a) => {
                        if a.0 as usize >= self.arrays.len() {
                            return Err(ValidateError(format!("read of undeclared array {a:?}")));
                        }
                        let decl = self.array(*a);
                        if decl.shape.len() != idxs.len() {
                            return Err(ValidateError(format!(
                                "array `{}` has rank {} but read uses {} indices",
                                decl.name,
                                decl.shape.len(),
                                idxs.len()
                            )));
                        }
                    }
                    ReadSrc::Var(v) => {
                        if !scope.contains(v) {
                            return Err(ValidateError(format!(
                                "read of out-of-scope collection {v:?}"
                            )));
                        }
                    }
                }
                for i in idxs {
                    self.check_expr(i, scope)?;
                }
                Ok(())
            }
            Expr::Bin(_, a, b) => {
                self.check_expr(a, scope)?;
                self.check_expr(b, scope)
            }
            Expr::Un(_, a) => self.check_expr(a, scope),
            Expr::Select(c, t, el) => {
                self.check_expr(c, scope)?;
                self.check_expr(t, scope)?;
                self.check_expr(el, scope)
            }
            Expr::Let(v, val, body) => {
                self.check_expr(val, scope)?;
                scope.push(*v);
                let r = self.check_expr(body, scope);
                scope.pop();
                r
            }
            Expr::Iterate {
                max,
                inits,
                cond,
                updates,
                result,
            } => {
                self.check_expr(max, scope)?;
                for (_, init) in inits {
                    self.check_expr(init, scope)?;
                }
                let n = inits.len();
                for (v, _) in inits {
                    scope.push(*v);
                }
                let r = (|| {
                    self.check_expr(cond, scope)?;
                    if updates.len() != inits.len() {
                        return Err(ValidateError(format!(
                            "iterate has {} state vars but {} updates",
                            inits.len(),
                            updates.len()
                        )));
                    }
                    for u in updates {
                        self.check_expr(u, scope)?;
                    }
                    self.check_expr(result, scope)
                })();
                for _ in 0..n {
                    scope.pop();
                }
                r
            }
            Expr::Pat(p) => self.check_pattern(p, scope),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn nest_depth_of_two_level_map() {
        let mut b = ProgramBuilder::new("t");
        let r = b.sym("R");
        let c = b.sym("C");
        let m = b.input("m", ScalarKind::F32, &[Size::sym(r), Size::sym(c)]);
        let root = b.map(Size::sym(r), |b, i| {
            b.reduce(Size::sym(c), crate::ReduceOp::Add, |b, j| {
                b.read(m, &[i.into(), j.into()])
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        assert_eq!(p.nest_depth(), 2);
    }

    #[test]
    fn validate_rejects_bad_rank() {
        let mut b = ProgramBuilder::new("t");
        let n = b.sym("N");
        let m = b.input("m", ScalarKind::F32, &[Size::sym(n), Size::sym(n)]);
        // Read a rank-2 array with 1 index: invalid.
        let root = b.map(Size::sym(n), |b, i| b.read(m, &[i.into()]));
        let err = b.finish_map(root, "out", ScalarKind::F32).unwrap_err();
        assert!(err.0.contains("rank"));
    }

    #[test]
    fn array_len_and_bytes() {
        let mut b = ProgramBuilder::new("t");
        let n = b.sym("N");
        let a = b.input("a", ScalarKind::F64, &[Size::sym(n)]);
        let root = b.map(Size::sym(n), |b, i| b.read(a, &[i.into()]));
        let p = b.finish_map(root, "out", ScalarKind::F64).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 10);
        let d = p.array_by_name("a").unwrap();
        assert_eq!(d.len(&bind), 10);
        assert_eq!(d.bytes(&bind), 80);
        assert!(!d.is_empty(&bind));
    }
}
