//! Human-readable rendering of programs (for diagnostics and docs).

use crate::expr::{BinOp, Expr, ReadSrc, UnOp};
use crate::pattern::{Body, Effect, Pattern, PatternKind};
use crate::program::Program;
use std::fmt::Write as _;

/// Render a program as indented pseudo-code close to the paper's notation.
///
/// # Examples
///
/// ```
/// use multidim_ir::{pretty, ProgramBuilder, ReduceOp, ScalarKind, Size};
///
/// let mut b = ProgramBuilder::new("sum");
/// let n = b.sym("N");
/// let a = b.input("a", ScalarKind::F32, &[Size::sym(n)]);
/// let root = b.reduce(Size::sym(n), ReduceOp::Add, |b, i| b.read(a, &[i.into()]));
/// let p = b.finish_reduce(root, "total", ScalarKind::F32).unwrap();
/// let text = pretty(&p);
/// assert!(text.contains("reduce"));
/// ```
pub fn pretty(program: &Program) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "program {} {{", program.name);
    for a in &program.arrays {
        let dims: Vec<String> = a.shape.iter().map(|d| d.to_string()).collect();
        let _ = writeln!(
            s,
            "  {:?} {}: {}[{}]",
            a.role,
            a.name,
            a.elem,
            dims.join(", ")
        );
    }
    pattern(&mut s, &program.root, 1);
    s.push_str("}\n");
    s
}

fn pattern(s: &mut String, p: &Pattern, indent: usize) {
    let pad = "  ".repeat(indent);
    let ext = match &p.dyn_extent {
        // The estimate hint rides along: it steers launch consolidation,
        // so programs differing only in the hint must not print (and
        // therefore fingerprint) identically.
        Some(e) => format!("dyn[{} ~{}]", expr(e), p.size),
        None => p.size.to_string(),
    };
    let _ = writeln!(
        s,
        "{pad}{}#{} v{} in 0..{ext} {{",
        p.kind.name(),
        p.id.0,
        p.var.0
    );
    match &p.kind {
        PatternKind::Filter { pred } => {
            let _ = writeln!(s, "{pad}  where {}", expr(pred));
        }
        PatternKind::GroupBy { key, num_keys, .. } => {
            let _ = writeln!(s, "{pad}  key {} into {}", expr(key), num_keys);
        }
        _ => {}
    }
    match &p.body {
        Body::Value(e) => body_expr(s, e, indent + 1),
        Body::Effects(effs) => {
            for eff in effs {
                effect(s, eff, indent + 1);
            }
        }
    }
    let _ = writeln!(s, "{pad}}}");
}

fn body_expr(s: &mut String, e: &Expr, indent: usize) {
    let pad = "  ".repeat(indent);
    match e {
        Expr::Pat(p) => pattern(s, p, indent),
        Expr::Let(v, val, body) => {
            if let Expr::Pat(p) = &**val {
                let _ = writeln!(s, "{pad}let v{} =", v.0);
                pattern(s, p, indent + 1);
            } else {
                let _ = writeln!(s, "{pad}let v{} = {}", v.0, expr(val));
            }
            body_expr(s, body, indent);
        }
        other => {
            let _ = writeln!(s, "{pad}{}", expr(other));
        }
    }
}

fn effect(s: &mut String, eff: &Effect, indent: usize) {
    let pad = "  ".repeat(indent);
    match eff {
        Effect::Write {
            cond,
            array,
            idx,
            value,
        } => {
            let idxs: Vec<String> = idx.iter().map(expr).collect();
            let guard = cond
                .as_ref()
                .map(|c| format!("if {} ", expr(c)))
                .unwrap_or_default();
            let _ = writeln!(
                s,
                "{pad}{guard}a{}[{}] = {}",
                array.0,
                idxs.join(", "),
                expr(value)
            );
        }
        Effect::AtomicRmw {
            cond,
            array,
            idx,
            op,
            value,
        } => {
            let idxs: Vec<String> = idx.iter().map(expr).collect();
            let guard = cond
                .as_ref()
                .map(|c| format!("if {} ", expr(c)))
                .unwrap_or_default();
            let _ = writeln!(
                s,
                "{pad}{guard}atomic a{}[{}] {op:?}= {}",
                array.0,
                idxs.join(", "),
                expr(value)
            );
        }
        Effect::Nested(p) => pattern(s, p, indent),
        Effect::LetScalar(v, e) => {
            let _ = writeln!(s, "{pad}let v{} = {}", v.0, expr(e));
        }
    }
}

/// Render a single expression compactly.
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::Lit(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{}", *v as i64)
            } else {
                format!("{v}")
            }
        }
        Expr::Var(v) => format!("v{}", v.0),
        Expr::SizeOf(s) => format!("{s}"),
        Expr::LengthOf(src, d) => format!("len({}, {d})", src_name(src)),
        Expr::Read(src, idx) => {
            let idxs: Vec<String> = idx.iter().map(expr).collect();
            format!("{}[{}]", src_name(src), idxs.join(", "))
        }
        Expr::Bin(op, a, b) => format!("({} {} {})", expr(a), bin_name(*op), expr(b)),
        Expr::Un(op, a) => format!("{}({})", un_name(*op), expr(a)),
        Expr::Select(c, t, f) => format!("({} ? {} : {})", expr(c), expr(t), expr(f)),
        Expr::Let(v, val, body) => format!("let v{} = {} in {}", v.0, expr(val), expr(body)),
        Expr::Iterate { max, .. } => format!("iterate(max={})", expr(max)),
        Expr::Pat(p) => format!("{}#{}", p.kind.name(), p.id.0),
    }
}

fn src_name(src: &ReadSrc) -> String {
    match src {
        ReadSrc::Array(a) => format!("a{}", a.0),
        ReadSrc::Var(v) => format!("v{}", v.0),
    }
}

fn bin_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Min => "min",
        BinOp::Max => "max",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

fn un_name(op: UnOp) -> &'static str {
    match op {
        UnOp::Neg => "neg",
        UnOp::Not => "not",
        UnOp::Sqrt => "sqrt",
        UnOp::Exp => "exp",
        UnOp::Log => "log",
        UnOp::Abs => "abs",
        UnOp::Floor => "floor",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::pattern::ReduceOp;
    use crate::size::Size;
    use crate::types::ScalarKind;

    #[test]
    fn renders_nested_structure() {
        let mut b = ProgramBuilder::new("sumRows");
        let r = b.sym("R");
        let c = b.sym("C");
        let m = b.input("m", ScalarKind::F32, &[Size::sym(r), Size::sym(c)]);
        let root = b.map(Size::sym(r), |b, row| {
            b.reduce(Size::sym(c), ReduceOp::Add, |b, col| {
                b.read(m, &[row.into(), col.into()])
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let text = pretty(&p);
        assert!(text.contains("map#0"));
        assert!(text.contains("reduce#1"));
        assert!(text.contains("a0[v0, v1]"));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::pattern::{Effect, ReduceOp};
    use crate::size::Size;
    use crate::types::ScalarKind;

    #[test]
    fn renders_foreach_effects() {
        let mut b = ProgramBuilder::new("scatter");
        let n = b.sym("N");
        let src = b.input("src", ScalarKind::I32, &[Size::sym(n)]);
        let dst = b.output("dst", ScalarKind::F32, &[Size::sym(n)]);
        let root = b.foreach(Size::sym(n), |b, i| {
            let v = b.read(src, &[i.into()]);
            vec![
                Effect::Write {
                    cond: Some(v.clone().gt(Expr::lit(0.0))),
                    array: dst,
                    idx: vec![i.into()],
                    value: v.clone(),
                },
                Effect::AtomicRmw {
                    cond: None,
                    array: dst,
                    idx: vec![Expr::int(0)],
                    op: ReduceOp::Max,
                    value: v,
                },
            ]
        });
        let p = b.finish_foreach(root).unwrap();
        let text = pretty(&p);
        assert!(text.contains("foreach#0"), "{text}");
        assert!(text.contains("if "), "{text}");
        assert!(text.contains("atomic"), "{text}");
        assert!(text.contains("Max="), "{text}");
    }

    #[test]
    fn renders_filter_and_group_by() {
        let mut b = ProgramBuilder::new("fg");
        let n = b.sym("N");
        let a = b.input("a", ScalarKind::F32, &[Size::sym(n)]);
        let root = b.filter(Size::sym(n), |b, i| {
            let e = b.read(a, &[i.into()]);
            (e.clone().gt(Expr::lit(0.5)), e)
        });
        let p = b.finish_filter(root, "kept", ScalarKind::F32).unwrap();
        let text = pretty(&p);
        assert!(text.contains("filter#0"), "{text}");
        assert!(text.contains("where "), "{text}");

        let mut b2 = ProgramBuilder::new("h");
        let n2 = b2.sym("N");
        let k = b2.input("k", ScalarKind::I32, &[Size::sym(n2)]);
        let root2 = b2.group_by(Size::sym(n2), Size::from(8), ReduceOp::Add, |b, i| {
            (b.read(k, &[i.into()]), Expr::lit(1.0))
        });
        let p2 = b2.finish_group_by(root2, "h", ScalarKind::F32).unwrap();
        let text2 = pretty(&p2);
        assert!(text2.contains("groupBy#0"), "{text2}");
        assert!(text2.contains("key "), "{text2}");
    }

    #[test]
    fn renders_iterate_and_operators() {
        let e = Expr::var(crate::VarId(0)).min(Expr::lit(3.0)).sqrt();
        assert_eq!(expr(&e), "sqrt((v0 min 3))");
        let sel = Expr::lit(1.0).select(Expr::lit(2.0), Expr::lit(3.0));
        assert_eq!(expr(&sel), "(1 ? 2 : 3)");
        let len = Expr::LengthOf(crate::expr::ReadSrc::Array(crate::program::ArrayId(2)), 1);
        assert_eq!(expr(&len), "len(a2, 1)");
    }
}
