//! Nest structure and memory-access summaries.
//!
//! These are the facts the mapping analysis (Section IV-C) consumes:
//!
//! * [`NestInfo`] — which patterns sit at which nesting level, whether a
//!   level needs global synchronization (`Reduce`/`Filter`/`GroupBy`),
//!   whether its extent is dynamic, and whether the nest is *imperfect*
//!   (memory accesses outside the innermost pattern — the trigger for the
//!   Section V-B shared-memory prefetch).
//! * [`Access`] — every array read/write with its linearized affine address
//!   form, the chain of enclosing patterns, and execution-count modifiers
//!   (sequential-loop trip factors, branch discounts).

use crate::affine::{linearize, AffineForm};
use crate::expr::{Expr, ReadSrc, VarId};
use crate::pattern::{Body, Effect, Pattern, PatternId, PatternKind};
use crate::program::{ArrayId, Program};
use crate::size::Size;
use std::collections::HashMap;

/// One pattern's occurrence at a nest level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelPattern {
    /// The pattern.
    pub id: PatternId,
    /// Extent (analysis view).
    pub size: Size,
    /// `true` for `Reduce`/`Filter`/`GroupBy` (Table II hard constraint).
    pub needs_sync: bool,
    /// `true` when the extent is only known dynamically.
    pub dynamic: bool,
    /// Pattern kind name (diagnostics).
    pub kind_name: &'static str,
}

/// All patterns at one nesting level.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LevelInfo {
    /// Patterns at this level, in traversal order.
    pub patterns: Vec<LevelPattern>,
}

impl LevelInfo {
    /// The level's representative extent: the maximum of its patterns'
    /// (they usually agree; e.g. PageRank's inner map and reduce both range
    /// over a node's neighbors).
    ///
    /// Constant extents are compared numerically and the maximum wins.
    /// Symbolic max is not supported, so for incomparable symbolic pairs the
    /// first pattern's size remains the representative (codegen guards each
    /// pattern by its own extent); [`LevelInfo::extent_disagreement`] lets
    /// callers surface that case instead of silently accepting it.
    pub fn representative_size(&self) -> Size {
        // A level with data-dependent extents has no launch-time size at
        // all; the workload-provided estimates are the only information,
        // so the representative is the largest estimate among the dynamic
        // siblings (an explicit `Size::Dynamic`, so downstream consumers
        // can tell an estimate from a known extent).
        let dyn_estimate = self
            .patterns
            .iter()
            .filter_map(|p| match p.size {
                Size::Dynamic(est) => Some(est),
                _ => None,
            })
            .max();
        if let Some(est) = dyn_estimate {
            return Size::Dynamic(est);
        }
        let mut rep = match self.patterns.first() {
            Some(p) => p.size.clone(),
            None => return Size::Const(1),
        };
        for p in self.patterns.iter().skip(1) {
            if let (Size::Const(a), Size::Const(b)) = (&rep, &p.size) {
                if b > a {
                    rep = p.size.clone();
                }
            }
        }
        rep
    }

    /// A witness pair of disagreeing sibling extents that cannot be compared
    /// symbolically (the `representative_size` caveat). The analysis picks
    /// one representative and codegen guards each pattern by its own extent,
    /// but occupancy estimates for the level may be off — the analyzer
    /// reports this as a diagnostic rather than letting it pass silently.
    pub fn extent_disagreement(&self) -> Option<(Size, Size)> {
        let first = &self.patterns.first()?.size;
        for p in self.patterns.iter().skip(1) {
            let comparable =
                *first == p.size || matches!((first, &p.size), (Size::Const(_), Size::Const(_)));
            if !comparable {
                return Some((first.clone(), p.size.clone()));
            }
        }
        None
    }

    /// Whether any pattern at this level needs global synchronization.
    pub fn needs_sync(&self) -> bool {
        self.patterns.iter().any(|p| p.needs_sync)
    }

    /// Whether any pattern at this level has a dynamic extent.
    pub fn has_dynamic(&self) -> bool {
        self.patterns.iter().any(|p| p.dynamic)
    }
}

/// Nest-level structure of a program.
#[derive(Debug, Clone, PartialEq)]
pub struct NestInfo {
    /// Levels, outermost first.
    pub levels: Vec<LevelInfo>,
    /// `true` when some memory access or nontrivial computation happens at
    /// a non-innermost level (Section V-B's "imperfectly nested").
    pub imperfect: bool,
}

impl NestInfo {
    /// Analyze `program`'s root nest.
    pub fn of(program: &Program) -> NestInfo {
        let mut levels: Vec<LevelInfo> = Vec::new();
        program.root.visit_patterns(&mut |p, lvl| {
            if levels.len() <= lvl {
                levels.resize(lvl + 1, LevelInfo::default());
            }
            levels[lvl].patterns.push(LevelPattern {
                id: p.id,
                size: p.size.clone(),
                needs_sync: p.kind.needs_global_sync(),
                dynamic: p.size.is_dynamic() || p.dyn_extent.is_some(),
                kind_name: p.kind.name(),
            });
        });
        let accesses = collect_accesses(program);
        let depth = levels.len();
        // Only shallow *reads* make a nest imperfect for our purposes:
        // they are what the Section V-B prefetch can stage through shared
        // memory (a map's own output store is not re-read in-kernel).
        let imperfect = accesses
            .iter()
            .any(|a| !a.is_write && a.chain.len() < depth);
        NestInfo { levels, imperfect }
    }

    /// Number of nest levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }
}

/// One enclosing pattern on the path from the root to an access.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainLink {
    /// The enclosing pattern.
    pub pattern: PatternId,
    /// Its nest level.
    pub level: usize,
    /// Its bound index variable.
    pub var: VarId,
    /// Its extent.
    pub size: Size,
}

/// A summarized memory access.
#[derive(Debug, Clone, PartialEq)]
pub struct Access {
    /// Target array, or `None` when the access touches a `let`-bound
    /// collection (a preallocatable temporary whose layout is flexible,
    /// Section V-A).
    pub array: Option<ArrayId>,
    /// Element width in bytes (8 for flexible temporaries).
    pub elem_bytes: u64,
    /// `true` for stores.
    pub is_write: bool,
    /// `true` when the access happens through an atomic read-modify-write
    /// (or a pattern that lowers to one, e.g. `Filter`/`GroupBy` output
    /// placement) — such writes cannot lose updates, so the race analysis
    /// exempts them and only determinism lints apply.
    pub atomic: bool,
    /// Linearized address form over all in-scope variables.
    pub addr: AffineForm,
    /// Enclosing patterns, outermost first.
    pub chain: Vec<ChainLink>,
    /// Number of enclosing conditional branches (each halves the expected
    /// execution count, Section IV-C).
    pub branch_depth: u32,
    /// Estimated trip-count multiplier from enclosing sequential
    /// [`Expr::Iterate`] loops.
    pub iterate_factor: i64,
    /// The access's physical layout may be chosen by the compiler
    /// (preallocated temporary), so its locality constraints are soft-er
    /// (Section V-A "relaxes the constraints").
    pub flexible_layout: bool,
}

impl Access {
    /// The stride (in elements) of this access with respect to pattern
    /// variable `var`, with unknown symbols defaulted; `None` = random.
    pub fn stride_for(&self, var: VarId, bindings: &crate::size::Bindings) -> Option<i64> {
        self.addr.coeff_of(var, bindings)
    }
}

struct Collector<'p> {
    program: &'p Program,
    chain: Vec<ChainLink>,
    branch_depth: u32,
    iterate_factor: i64,
    /// Shapes of let-bound collections (for linearizing their reads).
    var_shapes: HashMap<VarId, Vec<Size>>,
    out: Vec<Access>,
}

/// The [`PatternKind::Filter`] instances in `program`'s nest.
///
/// A filter's value body (and everything nested under it) only executes
/// for predicate-passing indices, but [`collect_accesses`] does not raise
/// `branch_depth` for it — the predicate itself is what's conditional, not
/// an `if` in the body. Analyses that need a *guaranteed* execution count
/// (e.g. the locality transaction lower bound) must therefore treat every
/// access whose [`Access::chain`] contains one of these patterns as
/// conditionally executed.
pub fn filter_patterns(program: &Program) -> std::collections::BTreeSet<PatternId> {
    let mut out = std::collections::BTreeSet::new();
    program.root.visit_patterns(&mut |p, _| {
        if matches!(p.kind, PatternKind::Filter { .. }) {
            out.insert(p.id);
        }
    });
    out
}

/// Collect every memory access in the program's root nest, including the
/// implicit output stores of collection-producing patterns.
pub fn collect_accesses(program: &Program) -> Vec<Access> {
    let mut c = Collector {
        program,
        chain: Vec::new(),
        branch_depth: 0,
        iterate_factor: 1,
        var_shapes: HashMap::new(),
        out: Vec::new(),
    };
    c.pattern(&program.root, 0);
    c.out
}

impl<'p> Collector<'p> {
    fn pattern(&mut self, p: &'p Pattern, level: usize) {
        // Dynamic extents are evaluated outside the pattern scope.
        if let Some(e) = &p.dyn_extent {
            self.expr(e);
        }
        self.chain.push(ChainLink {
            pattern: p.id,
            level,
            var: p.var,
            size: p.size.clone(),
        });

        match &p.kind {
            PatternKind::Filter { pred } => self.expr(pred),
            PatternKind::GroupBy { key, .. } => self.expr(key),
            _ => {}
        }

        match &p.body {
            Body::Value(e) => {
                self.expr(e);
                // Implicit output store. `Map` writes one element per index,
                // sequential in the map chain (see module docs); reductions
                // accumulate in registers; filter/groupBy land at
                // data-dependent positions.
                match &p.kind {
                    PatternKind::Map if !produces_collection(e) => {
                        self.implicit_map_store(level);
                    }
                    PatternKind::Filter { .. } | PatternKind::GroupBy { .. } => {
                        self.push_atomic(None, 8, true, AffineForm::NonAffine, false);
                    }
                    _ => {}
                }
            }
            Body::Effects(effs) => self.effects(effs, level),
        }
        self.chain.pop();
    }

    fn effects(&mut self, effs: &'p [Effect], level: usize) {
        for eff in effs {
            match eff {
                Effect::Write {
                    cond,
                    array,
                    idx,
                    value,
                } => {
                    if let Some(c) = cond {
                        self.expr(c);
                        self.branch_depth += 1;
                    }
                    for i in idx {
                        self.expr(i);
                    }
                    self.expr(value);
                    let decl = self.program.array(*array);
                    let addr = linearize(idx, &decl.shape);
                    self.push_access(Some(*array), decl.elem.bytes(), true, addr, false);
                    if cond.is_some() {
                        self.branch_depth -= 1;
                    }
                }
                Effect::AtomicRmw {
                    cond,
                    array,
                    idx,
                    value,
                    ..
                } => {
                    if let Some(c) = cond {
                        self.expr(c);
                        self.branch_depth += 1;
                    }
                    for i in idx {
                        self.expr(i);
                    }
                    self.expr(value);
                    let decl = self.program.array(*array);
                    let addr = linearize(idx, &decl.shape);
                    // Atomics read and write the location.
                    self.push_atomic(Some(*array), decl.elem.bytes(), true, addr.clone(), false);
                    self.push_atomic(Some(*array), decl.elem.bytes(), false, addr, false);
                    if cond.is_some() {
                        self.branch_depth -= 1;
                    }
                }
                Effect::Nested(inner) => self.pattern(inner, level + 1),
                Effect::LetScalar(_, e) => self.expr(e),
            }
        }
    }

    /// The store of a scalar-bodied `Map` chain: out[i0][i1]... over the
    /// enclosing *map* links (levels that produce the output collection).
    fn implicit_map_store(&mut self, _level: usize) {
        let idxs: Vec<Expr> = self
            .map_output_chain()
            .iter()
            .map(|l| Expr::Var(l.var))
            .collect();
        let shape: Vec<Size> = self
            .map_output_chain()
            .iter()
            .map(|l| l.size.clone())
            .collect();
        let addr = linearize(&idxs, &shape);
        let bytes = self
            .program
            .output
            .map(|id| self.program.array(id).elem.bytes())
            .unwrap_or(8);
        self.push_access(self.program.output, bytes, true, addr, false);
    }

    /// The suffix-maximal chain of map links ending at the current pattern
    /// whose collections compose into the stored output (all links, since
    /// only directly-nested maps produce multi-dim outputs; conservative).
    fn map_output_chain(&self) -> &[ChainLink] {
        &self.chain
    }

    fn push_access(
        &mut self,
        array: Option<ArrayId>,
        elem_bytes: u64,
        is_write: bool,
        addr: AffineForm,
        flexible: bool,
    ) {
        self.push(array, elem_bytes, is_write, false, addr, flexible);
    }

    fn push_atomic(
        &mut self,
        array: Option<ArrayId>,
        elem_bytes: u64,
        is_write: bool,
        addr: AffineForm,
        flexible: bool,
    ) {
        self.push(array, elem_bytes, is_write, true, addr, flexible);
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        array: Option<ArrayId>,
        elem_bytes: u64,
        is_write: bool,
        atomic: bool,
        addr: AffineForm,
        flexible: bool,
    ) {
        self.out.push(Access {
            array,
            elem_bytes,
            is_write,
            atomic,
            addr,
            chain: self.chain.clone(),
            branch_depth: self.branch_depth,
            iterate_factor: self.iterate_factor,
            flexible_layout: flexible,
        });
    }

    fn expr(&mut self, e: &'p Expr) {
        match e {
            Expr::Lit(_) | Expr::Var(_) | Expr::SizeOf(_) | Expr::LengthOf(..) => {}
            Expr::Read(src, idxs) => {
                for i in idxs {
                    self.expr(i);
                }
                match src {
                    ReadSrc::Array(a) => {
                        let decl = self.program.array(*a);
                        let addr = linearize(idxs, &decl.shape);
                        self.push_access(Some(*a), decl.elem.bytes(), false, addr, false);
                    }
                    ReadSrc::Var(v) => {
                        let shape = self.var_shapes.get(v).cloned().unwrap_or_default();
                        let addr = if shape.len() == idxs.len() && !shape.is_empty() {
                            linearize(idxs, &shape)
                        } else {
                            AffineForm::NonAffine
                        };
                        self.push_access(None, 8, false, addr, true);
                    }
                }
            }
            Expr::Bin(_, a, b) => {
                self.expr(a);
                self.expr(b);
            }
            Expr::Un(_, a) => self.expr(a),
            Expr::Select(c, t, el) => {
                self.expr(c);
                self.branch_depth += 1;
                self.expr(t);
                self.expr(el);
                self.branch_depth -= 1;
            }
            Expr::Let(v, val, body) => {
                // A let-bound nested pattern materializes a temporary whose
                // writes are flexible-layout (Section V-A).
                if let Expr::Pat(p) = &**val {
                    let shape = crate::builder::produced_shape(p);
                    // Temp shape is prefixed by the *enclosing* map extents
                    // after preallocation, but reads inside this scope index
                    // only the logical (inner) dimensions.
                    self.var_shapes.insert(*v, shape);
                    self.pattern_flexible(p);
                } else {
                    self.expr(val);
                }
                self.expr(body);
            }
            Expr::Iterate {
                max,
                inits,
                cond,
                updates,
                result,
            } => {
                self.expr(max);
                for (_, i) in inits {
                    self.expr(i);
                }
                let factor = estimate_trip(max);
                let saved = self.iterate_factor;
                self.iterate_factor = saved.saturating_mul(factor);
                self.expr(cond);
                for u in updates {
                    self.expr(u);
                }
                self.iterate_factor = saved;
                self.expr(result);
            }
            Expr::Pat(p) => {
                let level = self.chain.last().map_or(0, |l| l.level + 1);
                self.pattern(p, level);
            }
        }
    }

    /// Like [`Collector::pattern`] but marks the pattern's implicit stores
    /// as flexible-layout (its collection is a preallocated temporary).
    fn pattern_flexible(&mut self, p: &'p Pattern) {
        let level = self.chain.last().map_or(0, |l| l.level + 1);
        if let Some(e) = &p.dyn_extent {
            self.expr(e);
        }
        self.chain.push(ChainLink {
            pattern: p.id,
            level,
            var: p.var,
            size: p.size.clone(),
        });
        match &p.kind {
            PatternKind::Filter { pred } => self.expr(pred),
            PatternKind::GroupBy { key, .. } => self.expr(key),
            _ => {}
        }
        match &p.body {
            Body::Value(e) => {
                self.expr(e);
                if matches!(p.kind, PatternKind::Map) && !produces_collection(e) {
                    // Temp store: address is flexible.
                    self.push_access(None, 8, true, AffineForm::NonAffine, true);
                }
            }
            Body::Effects(effs) => self.effects(effs, level),
        }
        self.chain.pop();
    }
}

/// Does this expression evaluate to a collection (so an enclosing `Map`
/// produces a nested array rather than storing scalars)?
fn produces_collection(e: &Expr) -> bool {
    match e {
        Expr::Pat(p) => !matches!(p.kind, PatternKind::Reduce { .. } | PatternKind::Foreach),
        Expr::Let(_, _, body) => produces_collection(body),
        _ => false,
    }
}

/// Estimated trip count of an `Iterate` (literal max, else a default).
fn estimate_trip(max: &Expr) -> i64 {
    match max {
        Expr::Lit(v) if *v >= 1.0 => *v as i64,
        _ => 16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::pattern::ReduceOp;
    use crate::size::Bindings;
    use crate::types::ScalarKind;

    fn sum_rows() -> Program {
        let mut b = ProgramBuilder::new("sumRows");
        let r = b.sym("R");
        let c = b.sym("C");
        let m = b.input("m", ScalarKind::F32, &[Size::sym(r), Size::sym(c)]);
        let root = b.map(Size::sym(r), |b, row| {
            b.reduce(Size::sym(c), ReduceOp::Add, |b, col| {
                b.read(m, &[row.into(), col.into()])
            })
        });
        b.finish_map(root, "out", ScalarKind::F32).unwrap()
    }

    #[test]
    fn representative_size_takes_constant_max() {
        let level = LevelInfo {
            patterns: vec![
                LevelPattern {
                    size: Size::Const(8),
                    ..probe_pattern()
                },
                LevelPattern {
                    size: Size::Const(32),
                    ..probe_pattern()
                },
                LevelPattern {
                    size: Size::Const(16),
                    ..probe_pattern()
                },
            ],
        };
        assert_eq!(level.representative_size(), Size::Const(32));
        assert_eq!(level.extent_disagreement(), None);
    }

    #[test]
    fn incomparable_sibling_extents_are_surfaced() {
        use crate::size::SymId;
        let level = LevelInfo {
            patterns: vec![
                LevelPattern {
                    size: Size::sym(SymId(0)),
                    ..probe_pattern()
                },
                LevelPattern {
                    size: Size::sym(SymId(1)),
                    ..probe_pattern()
                },
            ],
        };
        // The first extent stays the representative...
        assert_eq!(level.representative_size(), Size::sym(SymId(0)));
        // ...but the disagreement is reported, not swallowed.
        assert_eq!(
            level.extent_disagreement(),
            Some((Size::sym(SymId(0)), Size::sym(SymId(1))))
        );
    }

    fn probe_pattern() -> LevelPattern {
        LevelPattern {
            id: crate::pattern::PatternId(0),
            size: Size::Const(1),
            needs_sync: false,
            dynamic: false,
            kind_name: "map",
        }
    }

    #[test]
    fn nest_info_two_levels() {
        let p = sum_rows();
        let n = NestInfo::of(&p);
        assert_eq!(n.depth(), 2);
        assert!(!n.levels[0].needs_sync());
        assert!(n.levels[1].needs_sync());
        assert!(!n.levels[1].has_dynamic());
    }

    #[test]
    fn sum_rows_access_strides() {
        let p = sum_rows();
        let accesses = collect_accesses(&p);
        // One read of m (inner) + one implicit output store (outer map).
        let reads: Vec<_> = accesses.iter().filter(|a| !a.is_write).collect();
        assert_eq!(reads.len(), 1);
        let mut bind = Bindings::new();
        bind.bind(crate::size::SymId(0), 100); // R
        bind.bind(crate::size::SymId(1), 200); // C
        let read = reads[0];
        // m[row*C + col]: stride C in row, 1 in col.
        let row_var = read.chain[0].var;
        let col_var = read.chain[1].var;
        assert_eq!(read.stride_for(row_var, &bind), Some(200));
        assert_eq!(read.stride_for(col_var, &bind), Some(1));

        let writes: Vec<_> = accesses.iter().filter(|a| a.is_write).collect();
        assert_eq!(writes.len(), 1);
        // out[row]: stride 1 in row.
        assert_eq!(writes[0].stride_for(row_var, &bind), Some(1));
    }

    #[test]
    fn imperfect_nest_detected() {
        // map(I) { i => let a = x[i]; reduce(J) { j => a * y[j] } } :
        // the x[i] read sits at level 0 while the nest is 2 deep.
        let mut b = ProgramBuilder::new("imperfect");
        let i_sz = b.sym("I");
        let j_sz = b.sym("J");
        let x = b.input("x", ScalarKind::F32, &[Size::sym(i_sz)]);
        let y = b.input("y", ScalarKind::F32, &[Size::sym(j_sz)]);
        let root = b.map(Size::sym(i_sz), |b, i| {
            let xi = b.read(x, &[i.into()]);
            b.let_(xi, |b, a| {
                b.reduce(Size::sym(j_sz), ReduceOp::Add, |b, j| {
                    Expr::var(a) * b.read(y, &[j.into()])
                })
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        assert!(NestInfo::of(&p).imperfect);
    }

    #[test]
    fn perfect_nest_not_flagged() {
        let p = sum_rows();
        // The inner read is at depth 2 == nest depth, but the implicit
        // output store of the outer map is at level 0... which is exactly
        // the paper's situation: sumRows output store happens once per
        // outer iteration. The *reads* determine the prefetch opportunity;
        // writes don't prefetch. NestInfo therefore only considers reads
        // shallower than the innermost level… sumRows' store is a write, so
        // not imperfect.
        assert!(!NestInfo::of(&p).imperfect);
    }

    #[test]
    fn iterate_factor_multiplies() {
        let mut b = ProgramBuilder::new("mandel");
        let n = b.sym("N");
        let a = b.input("a", ScalarKind::F32, &[Size::sym(n)]);
        let root = b.map(Size::sym(n), |b, i| {
            let start = b.read(a, &[i.into()]);
            b.iterate(Expr::int(256), vec![start], |b, vars| {
                let v = Expr::var(vars[0]);
                let next = v.clone() * Expr::lit(0.5) + b.read(a, &[i.into()]);
                (v.clone().lt(Expr::lit(4.0)), vec![next], v)
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let acc = collect_accesses(&p);
        // The read inside the loop body carries factor 256.
        assert!(acc.iter().any(|a| !a.is_write && a.iterate_factor == 256));
        // The init read carries factor 1.
        assert!(acc.iter().any(|a| !a.is_write && a.iterate_factor == 1));
    }

    #[test]
    fn random_access_is_nonaffine() {
        let mut b = ProgramBuilder::new("gather");
        let n = b.sym("N");
        let idx = b.input("idx", ScalarKind::I32, &[Size::sym(n)]);
        let data = b.input("data", ScalarKind::F32, &[Size::sym(n)]);
        let root = b.map(Size::sym(n), |b, i| {
            let j = b.read(idx, &[i.into()]);
            b.read(data, &[j])
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let acc = collect_accesses(&p);
        let data_reads: Vec<_> = acc
            .iter()
            .filter(|a| a.array == Some(ArrayId(1)) && !a.is_write)
            .collect();
        assert_eq!(data_reads.len(), 1);
        assert_eq!(data_reads[0].addr, AffineForm::NonAffine);
    }

    #[test]
    fn flexible_temp_marked() {
        // map(M) { i => let t = map(N){ j => ... }; reduce over t }
        let mut b = ProgramBuilder::new("prealloc");
        let m_sz = b.sym("M");
        let n_sz = b.sym("N");
        let x = b.input("x", ScalarKind::F32, &[Size::sym(m_sz), Size::sym(n_sz)]);
        let root = b.map(Size::sym(m_sz), |b, i| {
            let inner = b.map(Size::sym(n_sz), |b, j| {
                b.read(x, &[i.into(), j.into()]) * Expr::lit(2.0)
            });
            b.let_(inner, |b, t| {
                b.reduce(Size::sym(n_sz), ReduceOp::Add, |b, j| {
                    b.read_var(t, &[j.into()])
                })
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let acc = collect_accesses(&p);
        assert!(acc.iter().any(|a| a.flexible_layout && a.is_write));
        assert!(acc.iter().any(|a| a.flexible_layout && !a.is_write));
    }
}
