//! Ergonomic construction of pattern programs.
//!
//! [`ProgramBuilder`] is the "thin wrapper language" of Section III: a small
//! embedded DSL for writing applications as compositions of parallel
//! patterns. Pattern constructors take closures that receive the builder and
//! the bound index variable, so nests read like the paper's pseudocode.
//!
//! # Examples
//!
//! `sumRows` from Figure 1 of the paper:
//!
//! ```
//! use multidim_ir::{ProgramBuilder, ReduceOp, ScalarKind, Size};
//!
//! let mut b = ProgramBuilder::new("sumRows");
//! let r = b.sym("R");
//! let c = b.sym("C");
//! let m = b.input("m", ScalarKind::F32, &[Size::sym(r), Size::sym(c)]);
//! let root = b.map(Size::sym(r), |b, row| {
//!     b.reduce(Size::sym(c), ReduceOp::Add, |b, col| {
//!         b.read(m, &[row.into(), col.into()])
//!     })
//! });
//! let program = b.finish_map(root, "sums", ScalarKind::F32)?;
//! assert_eq!(program.nest_depth(), 2);
//! # Ok::<(), multidim_ir::ValidateError>(())
//! ```

use crate::expr::{Expr, ReadSrc, VarId};
use crate::pattern::{Body, Effect, Pattern, PatternId, PatternKind, ReduceOp};
use crate::program::{ArrayDecl, ArrayId, ArrayRole, Program, SymDecl, ValidateError};
use crate::size::{Size, SymId};
use crate::types::ScalarKind;

/// Incremental builder for a [`Program`].
///
/// Allocates size symbols, arrays, variables and pattern ids, and assembles
/// the root nest. Finish with one of the `finish_*` methods matching the
/// root pattern kind; they declare the output array, validate, and return
/// the completed [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    symbols: Vec<SymDecl>,
    arrays: Vec<ArrayDecl>,
    next_var: u32,
    next_pattern: u32,
}

impl ProgramBuilder {
    /// Start building a program called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Declare a size symbol.
    pub fn sym(&mut self, name: impl Into<String>) -> SymId {
        let id = SymId(self.symbols.len() as u32);
        self.symbols.push(SymDecl {
            id,
            name: name.into(),
        });
        id
    }

    /// Declare an input array.
    pub fn input(&mut self, name: impl Into<String>, elem: ScalarKind, shape: &[Size]) -> ArrayId {
        self.declare(name, elem, shape, ArrayRole::Input)
    }

    /// Declare an output array written by `Foreach` effects (the `finish_*`
    /// methods declare value-producing outputs themselves).
    pub fn output(&mut self, name: impl Into<String>, elem: ScalarKind, shape: &[Size]) -> ArrayId {
        self.declare(name, elem, shape, ArrayRole::Output)
    }

    /// Declare a device-resident temporary.
    pub fn temp(&mut self, name: impl Into<String>, elem: ScalarKind, shape: &[Size]) -> ArrayId {
        self.declare(name, elem, shape, ArrayRole::Temp)
    }

    fn declare(
        &mut self,
        name: impl Into<String>,
        elem: ScalarKind,
        shape: &[Size],
        role: ArrayRole,
    ) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(ArrayDecl {
            id,
            name: name.into(),
            elem,
            shape: shape.to_vec(),
            role,
        });
        id
    }

    /// Allocate a fresh variable (mostly internal; exposed for custom
    /// `Iterate` state).
    pub fn fresh_var(&mut self) -> VarId {
        let v = VarId(self.next_var);
        self.next_var += 1;
        v
    }

    fn fresh_pattern(&mut self) -> PatternId {
        let p = PatternId(self.next_pattern);
        self.next_pattern += 1;
        p
    }

    /// Read `array[idx...]`.
    pub fn read(&self, array: ArrayId, idx: &[Expr]) -> Expr {
        Expr::Read(ReadSrc::Array(array), idx.to_vec())
    }

    /// Read element `idx...` of a `let`-bound collection.
    pub fn read_var(&self, var: VarId, idx: &[Expr]) -> Expr {
        Expr::Read(ReadSrc::Var(var), idx.to_vec())
    }

    /// `let v = value in body(v)`.
    pub fn let_(&mut self, value: Expr, body: impl FnOnce(&mut Self, VarId) -> Expr) -> Expr {
        let v = self.fresh_var();
        let b = body(self, v);
        Expr::Let(v, Box::new(value), Box::new(b))
    }

    /// `map(size) { i => body(i) }` — yields a collection-valued expression.
    pub fn map(&mut self, size: Size, body: impl FnOnce(&mut Self, VarId) -> Expr) -> Expr {
        let var = self.fresh_var();
        let id = self.fresh_pattern();
        let body = body(self, var);
        Expr::Pat(Box::new(Pattern {
            id,
            kind: PatternKind::Map,
            size,
            dyn_extent: None,
            var,
            body: Body::Value(body),
        }))
    }

    /// `zipWith` over two rank-1 sources (Table I): sugar for a `Map` whose
    /// body reads both sources at the bound index.
    pub fn zip_with(
        &mut self,
        size: Size,
        a: ReadSrc,
        b: ReadSrc,
        f: impl FnOnce(&mut Self, Expr, Expr) -> Expr,
    ) -> Expr {
        self.map(size, |bld, i| {
            let ea = Expr::Read(a, vec![i.into()]);
            let eb = Expr::Read(b, vec![i.into()]);
            f(bld, ea, eb)
        })
    }

    /// `reduce(size, op) { i => elem(i) }` — yields a scalar expression.
    pub fn reduce(
        &mut self,
        size: Size,
        op: ReduceOp,
        body: impl FnOnce(&mut Self, VarId) -> Expr,
    ) -> Expr {
        let var = self.fresh_var();
        let id = self.fresh_pattern();
        let body = body(self, var);
        Expr::Pat(Box::new(Pattern {
            id,
            kind: PatternKind::Reduce { op },
            size,
            dyn_extent: None,
            var,
            body: Body::Value(body),
        }))
    }

    /// `filter(size) { i => (pred(i), elem(i)) }` — yields a dynamically
    /// sized collection.
    pub fn filter(
        &mut self,
        size: Size,
        body: impl FnOnce(&mut Self, VarId) -> (Expr, Expr),
    ) -> Expr {
        let var = self.fresh_var();
        let id = self.fresh_pattern();
        let (pred, elem) = body(self, var);
        Expr::Pat(Box::new(Pattern {
            id,
            kind: PatternKind::Filter { pred },
            size,
            dyn_extent: None,
            var,
            body: Body::Value(elem),
        }))
    }

    /// `groupBy(size, num_keys, op) { i => (key(i), value(i)) }` — a keyed
    /// reduction into `num_keys` buckets.
    pub fn group_by(
        &mut self,
        size: Size,
        num_keys: Size,
        op: ReduceOp,
        body: impl FnOnce(&mut Self, VarId) -> (Expr, Expr),
    ) -> Expr {
        let var = self.fresh_var();
        let id = self.fresh_pattern();
        let (key, value) = body(self, var);
        Expr::Pat(Box::new(Pattern {
            id,
            kind: PatternKind::GroupBy { key, num_keys, op },
            size,
            dyn_extent: None,
            var,
            body: Body::Value(value),
        }))
    }

    /// `foreach(size) { i => effects(i) }` — effectful iteration.
    pub fn foreach(
        &mut self,
        size: Size,
        body: impl FnOnce(&mut Self, VarId) -> Vec<Effect>,
    ) -> Expr {
        let var = self.fresh_var();
        let id = self.fresh_pattern();
        let effects = body(self, var);
        Expr::Pat(Box::new(Pattern {
            id,
            kind: PatternKind::Foreach,
            size,
            dyn_extent: None,
            var,
            body: Body::Effects(effects),
        }))
    }

    /// A `Map` whose extent is data-dependent (evaluated in the enclosing
    /// scope), e.g. a CSR node's neighbor count. `estimate` is the analysis
    /// stand-in size (Section IV-C lets applications provide it).
    pub fn map_dyn(
        &mut self,
        extent: Expr,
        estimate: i64,
        body: impl FnOnce(&mut Self, VarId) -> Expr,
    ) -> Expr {
        let var = self.fresh_var();
        let id = self.fresh_pattern();
        let body = body(self, var);
        Expr::Pat(Box::new(Pattern {
            id,
            kind: PatternKind::Map,
            size: Size::dynamic_with_estimate(estimate),
            dyn_extent: Some(extent),
            var,
            body: Body::Value(body),
        }))
    }

    /// A `Reduce` whose extent is data-dependent; see [`Self::map_dyn`].
    pub fn reduce_dyn(
        &mut self,
        extent: Expr,
        estimate: i64,
        op: ReduceOp,
        body: impl FnOnce(&mut Self, VarId) -> Expr,
    ) -> Expr {
        let var = self.fresh_var();
        let id = self.fresh_pattern();
        let body = body(self, var);
        Expr::Pat(Box::new(Pattern {
            id,
            kind: PatternKind::Reduce { op },
            size: Size::dynamic_with_estimate(estimate),
            dyn_extent: Some(extent),
            var,
            body: Body::Value(body),
        }))
    }

    /// A `Foreach` whose extent is data-dependent; see [`Self::map_dyn`].
    pub fn foreach_dyn(
        &mut self,
        extent: Expr,
        estimate: i64,
        body: impl FnOnce(&mut Self, VarId) -> Vec<Effect>,
    ) -> Expr {
        let var = self.fresh_var();
        let id = self.fresh_pattern();
        let effects = body(self, var);
        Expr::Pat(Box::new(Pattern {
            id,
            kind: PatternKind::Foreach,
            size: Size::dynamic_with_estimate(estimate),
            dyn_extent: Some(extent),
            var,
            body: Body::Effects(effects),
        }))
    }

    /// Wrap a pattern-valued expression as an [`Effect`] (for `Foreach`
    /// bodies containing nested patterns).
    ///
    /// # Panics
    ///
    /// Panics if `e` is not a pattern expression.
    pub fn nested_effect(&self, e: Expr) -> Effect {
        match e {
            Expr::Pat(p) => Effect::Nested(*p),
            other => panic!("nested_effect expects a pattern expression, got {other:?}"),
        }
    }

    /// A bounded sequential loop (see [`Expr::Iterate`]): `states` provides
    /// initial values; `f` receives the state vars and returns
    /// `(cond, updates, result)`.
    pub fn iterate(
        &mut self,
        max: Expr,
        states: Vec<Expr>,
        f: impl FnOnce(&mut Self, &[VarId]) -> (Expr, Vec<Expr>, Expr),
    ) -> Expr {
        let vars: Vec<VarId> = states.iter().map(|_| self.fresh_var()).collect();
        let (cond, updates, result) = f(self, &vars);
        assert_eq!(updates.len(), states.len(), "one update per state variable");
        Expr::Iterate {
            max: Box::new(max),
            inits: vars.into_iter().zip(states).collect(),
            cond: Box::new(cond),
            updates,
            result: Box::new(result),
        }
    }

    /// Finish a program whose root is a `Map` (possibly producing a nested
    /// collection); declares the output array with the produced shape.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] if the root is not a `Map` or the
    /// program fails [`Program::validate`].
    pub fn finish_map(
        self,
        root: Expr,
        out_name: impl Into<String>,
        out_elem: ScalarKind,
    ) -> Result<Program, ValidateError> {
        let root = Self::unwrap_root(root)?;
        if !matches!(root.kind, PatternKind::Map) {
            return Err(ValidateError(format!(
                "finish_map requires a map root, got {}",
                root.kind.name()
            )));
        }
        let shape = produced_shape(&root);
        self.finish_with_output(root, out_name, out_elem, shape, None)
    }

    /// Finish a program whose root is a `Reduce`; output is a single-element
    /// array.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] on kind mismatch or validation failure.
    pub fn finish_reduce(
        self,
        root: Expr,
        out_name: impl Into<String>,
        out_elem: ScalarKind,
    ) -> Result<Program, ValidateError> {
        let root = Self::unwrap_root(root)?;
        if !matches!(root.kind, PatternKind::Reduce { .. }) {
            return Err(ValidateError(format!(
                "finish_reduce requires a reduce root, got {}",
                root.kind.name()
            )));
        }
        self.finish_with_output(root, out_name, out_elem, vec![Size::from(1)], None)
    }

    /// Finish a `Filter` root; declares both the (maximally sized) output
    /// collection and a one-element count array named `<out>_count`.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] on kind mismatch or validation failure.
    pub fn finish_filter(
        mut self,
        root: Expr,
        out_name: impl Into<String>,
        out_elem: ScalarKind,
    ) -> Result<Program, ValidateError> {
        let root = Self::unwrap_root(root)?;
        if !matches!(root.kind, PatternKind::Filter { .. }) {
            return Err(ValidateError(format!(
                "finish_filter requires a filter root, got {}",
                root.kind.name()
            )));
        }
        let out_name = out_name.into();
        let count = self.declare(
            format!("{out_name}_count"),
            ScalarKind::I32,
            &[Size::from(1)],
            ArrayRole::Output,
        );
        let shape = vec![root.size.clone()];
        self.finish_with_output(root, out_name, out_elem, shape, Some(count))
    }

    /// Finish a `GroupBy` root; output has `num_keys` elements.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] on kind mismatch or validation failure.
    pub fn finish_group_by(
        self,
        root: Expr,
        out_name: impl Into<String>,
        out_elem: ScalarKind,
    ) -> Result<Program, ValidateError> {
        let root = Self::unwrap_root(root)?;
        let nk = match &root.kind {
            PatternKind::GroupBy { num_keys, .. } => num_keys.clone(),
            other => {
                return Err(ValidateError(format!(
                    "finish_group_by requires a groupBy root, got {}",
                    other.name()
                )))
            }
        };
        self.finish_with_output(root, out_name, out_elem, vec![nk], None)
    }

    /// Finish a `Foreach` root; all outputs must already be declared.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] on kind mismatch or validation failure.
    pub fn finish_foreach(self, root: Expr) -> Result<Program, ValidateError> {
        let root = Self::unwrap_root(root)?;
        if !matches!(root.kind, PatternKind::Foreach) {
            return Err(ValidateError(format!(
                "finish_foreach requires a foreach root, got {}",
                root.kind.name()
            )));
        }
        let p = Program {
            name: self.name,
            symbols: self.symbols,
            arrays: self.arrays,
            root,
            output: None,
            output_count: None,
            var_count: self.next_var,
            pattern_count: self.next_pattern,
        };
        p.validate()?;
        Ok(p)
    }

    fn unwrap_root(root: Expr) -> Result<Pattern, ValidateError> {
        match root {
            Expr::Pat(p) => Ok(*p),
            other => Err(ValidateError(format!(
                "root must be a pattern expression, got {other:?}"
            ))),
        }
    }

    fn finish_with_output(
        mut self,
        root: Pattern,
        out_name: impl Into<String>,
        out_elem: ScalarKind,
        shape: Vec<Size>,
        output_count: Option<ArrayId>,
    ) -> Result<Program, ValidateError> {
        let out = self.declare(out_name, out_elem, &shape, ArrayRole::Output);
        let p = Program {
            name: self.name,
            symbols: self.symbols,
            arrays: self.arrays,
            root,
            output: Some(out),
            output_count,
            var_count: self.next_var,
            pattern_count: self.next_pattern,
        };
        p.validate()?;
        Ok(p)
    }
}

/// The logical shape of the collection a pattern produces.
///
/// `Map` contributes its extent and recurses into a directly-nested
/// collection body; `Reduce` produces a scalar (no dimensions); `Filter`
/// conservatively produces up to its extent; `GroupBy` produces `num_keys`.
pub fn produced_shape(p: &Pattern) -> Vec<Size> {
    match &p.kind {
        PatternKind::Map => {
            let mut shape = vec![p.size.clone()];
            if let Body::Value(e) = &p.body {
                shape.extend(value_shape(e));
            }
            shape
        }
        PatternKind::Reduce { .. } => vec![],
        PatternKind::Filter { .. } => vec![p.size.clone()],
        PatternKind::GroupBy { num_keys, .. } => vec![num_keys.clone()],
        PatternKind::Foreach => vec![],
    }
}

/// Shape of the value an expression evaluates to (empty = scalar).
fn value_shape(e: &Expr) -> Vec<Size> {
    match e {
        Expr::Pat(p) => produced_shape(p),
        Expr::Let(_, _, body) => value_shape(body),
        _ => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_level_map_output_shape() {
        let mut b = ProgramBuilder::new("grid");
        let h = b.sym("H");
        let w = b.sym("W");
        let root = b.map(Size::sym(h), |b, y| {
            b.map(Size::sym(w), |_, x| Expr::var(y) + Expr::var(x))
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let out = p.array(p.output.unwrap());
        assert_eq!(out.shape, vec![Size::sym(h), Size::sym(w)]);
    }

    #[test]
    fn reduce_root_scalar_output() {
        let mut b = ProgramBuilder::new("total");
        let n = b.sym("N");
        let a = b.input("a", ScalarKind::F32, &[Size::sym(n)]);
        let root = b.reduce(Size::sym(n), ReduceOp::Add, |b, i| b.read(a, &[i.into()]));
        let p = b.finish_reduce(root, "total", ScalarKind::F32).unwrap();
        assert_eq!(p.array(p.output.unwrap()).shape, vec![Size::from(1)]);
    }

    #[test]
    fn filter_declares_count() {
        let mut b = ProgramBuilder::new("pos");
        let n = b.sym("N");
        let a = b.input("a", ScalarKind::F32, &[Size::sym(n)]);
        let root = b.filter(Size::sym(n), |b, i| {
            let e = b.read(a, &[i.into()]);
            (e.clone().gt(Expr::lit(0.0)), e)
        });
        let p = b.finish_filter(root, "pos", ScalarKind::F32).unwrap();
        assert!(p.output_count.is_some());
        assert!(p.array_by_name("pos_count").is_some());
    }

    #[test]
    fn group_by_output_is_num_keys() {
        let mut b = ProgramBuilder::new("hist");
        let n = b.sym("N");
        let a = b.input("a", ScalarKind::I32, &[Size::sym(n)]);
        let root = b.group_by(Size::sym(n), Size::from(16), ReduceOp::Add, |b, i| {
            (b.read(a, &[i.into()]), Expr::lit(1.0))
        });
        let p = b.finish_group_by(root, "hist", ScalarKind::F32).unwrap();
        assert_eq!(p.array(p.output.unwrap()).shape, vec![Size::from(16)]);
    }

    #[test]
    fn foreach_root_has_no_output() {
        let mut b = ProgramBuilder::new("scatter");
        let n = b.sym("N");
        let flags = b.output("flags", ScalarKind::Bool, &[Size::sym(n)]);
        let a = b.input("a", ScalarKind::I32, &[Size::sym(n)]);
        let root = b.foreach(Size::sym(n), |b, i| {
            vec![Effect::Write {
                cond: Some(b.read(a, &[i.into()]).gt(Expr::lit(0.0))),
                array: flags,
                idx: vec![Expr::var(i)],
                value: Expr::lit(1.0),
            }]
        });
        let p = b.finish_foreach(root).unwrap();
        assert!(p.output.is_none());
    }

    #[test]
    fn kind_mismatch_rejected() {
        let mut b = ProgramBuilder::new("x");
        let n = b.sym("N");
        let root = b.map(Size::sym(n), |_, i| Expr::var(i));
        assert!(b.finish_reduce(root, "o", ScalarKind::F32).is_err());
    }

    #[test]
    fn zip_with_is_a_map() {
        let mut b = ProgramBuilder::new("z");
        let n = b.sym("N");
        let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
        let y = b.input("y", ScalarKind::F32, &[Size::sym(n)]);
        let root = b.zip_with(
            Size::sym(n),
            ReadSrc::Array(x),
            ReadSrc::Array(y),
            |_, a, c| a + c,
        );
        let p = b.finish_map(root, "sum", ScalarKind::F32).unwrap();
        assert!(matches!(p.root.kind, PatternKind::Map));
    }

    #[test]
    fn iterate_builder_checks_arity() {
        let mut b = ProgramBuilder::new("it");
        let e = b.iterate(Expr::int(10), vec![Expr::lit(0.0)], |_, vars| {
            let v = Expr::var(vars[0]);
            (
                v.clone().lt(Expr::lit(5.0)),
                vec![v.clone() + Expr::lit(1.0)],
                v,
            )
        });
        assert!(matches!(e, Expr::Iterate { .. }));
    }
}
