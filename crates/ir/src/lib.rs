//! Parallel-pattern intermediate representation.
//!
//! This crate implements the IR of Section III of *Locality-Aware Mapping of
//! Nested Parallel Patterns on GPUs* (MICRO 2014): programs are nests of the
//! six parallel patterns of Table I (`map`, `zipWith`, `foreach`, `filter`,
//! `reduce`, `groupBy`) over a small scalar expression language, with
//! symbolic sizes bound at launch time.
//!
//! The crate also provides the analyses the mapping framework consumes
//! ([`NestInfo`], [`collect_accesses`]) and a sequential [reference
//! interpreter](interpret) used as a correctness oracle.
//!
//! # Examples
//!
//! `sumCols`/`sumRows` from Figure 1 of the paper:
//!
//! ```
//! use multidim_ir::*;
//! use std::collections::HashMap;
//!
//! // sumCols = m mapCols { c => c reduce { (a,b) => a + b } }
//! let mut b = ProgramBuilder::new("sumCols");
//! let r = b.sym("R");
//! let c = b.sym("C");
//! let m = b.input("m", ScalarKind::F32, &[Size::sym(r), Size::sym(c)]);
//! let root = b.map(Size::sym(c), |b, col| {
//!     b.reduce(Size::sym(r), ReduceOp::Add, |b, row| {
//!         b.read(m, &[row.into(), col.into()])
//!     })
//! });
//! let program = b.finish_map(root, "sums", ScalarKind::F32)?;
//!
//! // Execute on the reference interpreter.
//! let mut bind = Bindings::new();
//! bind.bind(r, 2);
//! bind.bind(c, 3);
//! let inputs: HashMap<_, _> = [(m, vec![1., 2., 3., 4., 5., 6.])].into_iter().collect();
//! let result = interpret(&program, &bind, &inputs)?;
//! assert_eq!(result.array(program.output.unwrap()).data, vec![5., 7., 9.]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod access;
mod affine;
mod builder;
mod expr;
mod interp;
mod pattern;
mod pretty;
mod program;
mod size;
mod types;

pub use access::{
    collect_accesses, filter_patterns, Access, ChainLink, LevelInfo, LevelPattern, NestInfo,
};
pub use affine::{affine_of, linearize, AffineForm};
pub use builder::{produced_shape, ProgramBuilder};
pub use expr::{BinOp, Expr, ReadSrc, UnOp, VarId};
pub use interp::{
    apply_bin, apply_un, interpret, ArrVal, CostCounters, InterpError, InterpResult, Val,
};
pub use pattern::{
    collect_immediate_patterns, Body, Effect, Pattern, PatternId, PatternKind, ReduceOp,
};
pub use pretty::{expr as pretty_expr, pretty};
pub use program::{ArrayDecl, ArrayId, ArrayRole, Program, SymDecl, ValidateError};
pub use size::{Bindings, Size, SymId, DEFAULT_UNKNOWN_SIZE};
pub use types::ScalarKind;
