//! Scalar expressions.
//!
//! Pattern bodies are expressions in a small functional language: literals,
//! bound variables (pattern indices, `let`s, sequential-loop state), array
//! reads, arithmetic/comparison/logic, selection, `let` binding, a bounded
//! sequential loop ([`Expr::Iterate`], used e.g. for the Mandelbrot escape
//! iteration), and *nested parallel patterns* ([`Expr::Pat`]) — the feature
//! this whole framework exists to map well.

use crate::pattern::Pattern;
use crate::program::ArrayId;
use crate::size::Size;
use std::ops;

/// Identifier of a bound variable (pattern index, `let`, or loop state).
///
/// Allocated by [`crate::ProgramBuilder`]; unique within one program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
    /// `a % b` (truncated, like C)
    Rem,
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
    /// `a < b` → 0.0 / 1.0
    Lt,
    /// `a <= b`
    Le,
    /// `a > b`
    Gt,
    /// `a >= b`
    Ge,
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// logical and (non-zero = true)
    And,
    /// logical or
    Or,
}

impl BinOp {
    /// `true` for comparison and logical operators (result is 0/1).
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::Eq
                | BinOp::Ne
                | BinOp::And
                | BinOp::Or
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-a`
    Neg,
    /// `!a`
    Not,
    /// `sqrt(a)`
    Sqrt,
    /// `exp(a)`
    Exp,
    /// `log(a)` (natural)
    Log,
    /// `|a|`
    Abs,
    /// `floor(a)`
    Floor,
}

/// Where an array read resolves: a named program array or a `let`-bound
/// collection produced by a nested pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadSrc {
    /// A declared input/output/temp array of the program.
    Array(ArrayId),
    /// A collection value bound by [`Expr::Let`] (produced by a nested
    /// `Map`/`Filter`); this is exactly the "dynamic allocation from inner
    /// patterns" that Section V-A preallocates.
    Var(VarId),
}

/// A scalar expression tree.
///
/// Expressions evaluate to `f64` in the reference interpreter; booleans are
/// 0.0/1.0 and integer values are exact `f64` integers (indices are checked
/// for integrality on use).
///
/// # Examples
///
/// Build `i * 2 + 1` with the operator sugar:
///
/// ```
/// use multidim_ir::{Expr, VarId};
///
/// let i = Expr::var(VarId(0));
/// let e = i * Expr::lit(2.0) + Expr::lit(1.0);
/// assert!(matches!(e, Expr::Bin(..)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Floating literal.
    Lit(f64),
    /// Bound variable reference.
    Var(VarId),
    /// The value of a (possibly symbolic) size, usable in arithmetic.
    SizeOf(Size),
    /// Element read: `src[idx...]` (row-major logical indexing).
    Read(ReadSrc, Vec<Expr>),
    /// The dynamic length of a `let`-bound collection (e.g. a `Filter`
    /// result) or a declared array dimension.
    LengthOf(ReadSrc, usize),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// `if c { t } else { e }` — both sides cost-modeled per the branch
    /// discount of Section IV-C.
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `let v = value in body`. If `value` is a nested pattern producing a
    /// collection, `v` names that collection.
    Let(VarId, Box<Expr>, Box<Expr>),
    /// Bounded sequential loop with carried state, used for per-element
    /// iterative computations (Mandelbrot escape, Newton steps, …):
    ///
    /// state := inits; for step in 0..max { if !cond(state) break;
    /// state := updates(state) }; yield result(state).
    Iterate {
        /// Maximum trip count.
        max: Box<Expr>,
        /// Loop-carried state variables and their initial values.
        inits: Vec<(VarId, Expr)>,
        /// Continue-while condition over the state (evaluated before each step).
        cond: Box<Expr>,
        /// New values for the state variables, in order.
        updates: Vec<Expr>,
        /// Result expression over the final state.
        result: Box<Expr>,
    },
    /// A nested parallel pattern in value position (`Map` yields a
    /// collection, `Reduce` a scalar, `Filter` a collection).
    Pat(Box<Pattern>),
}

impl Expr {
    /// Literal constructor.
    pub fn lit(v: f64) -> Expr {
        Expr::Lit(v)
    }

    /// Integer literal (stored exactly as `f64`).
    pub fn int(v: i64) -> Expr {
        Expr::Lit(v as f64)
    }

    /// Variable reference.
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v)
    }

    /// The runtime value of a size expression.
    pub fn size(s: Size) -> Expr {
        Expr::SizeOf(s)
    }

    /// `min(self, rhs)`.
    pub fn min(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Min, Box::new(self), Box::new(rhs))
    }

    /// `max(self, rhs)`.
    pub fn max(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Max, Box::new(self), Box::new(rhs))
    }

    /// Comparison helpers returning 0/1-valued expressions.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Lt, Box::new(self), Box::new(rhs))
    }
    /// `self <= rhs`
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Le, Box::new(self), Box::new(rhs))
    }
    /// `self > rhs`
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Gt, Box::new(self), Box::new(rhs))
    }
    /// `self >= rhs`
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Ge, Box::new(self), Box::new(rhs))
    }
    /// `self == rhs`
    pub fn eq_(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Eq, Box::new(self), Box::new(rhs))
    }
    /// `self != rhs`
    pub fn ne_(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Ne, Box::new(self), Box::new(rhs))
    }
    /// logical `self && rhs`
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::And, Box::new(self), Box::new(rhs))
    }
    /// logical `self || rhs`
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Or, Box::new(self), Box::new(rhs))
    }
    /// `sqrt(self)`
    pub fn sqrt(self) -> Expr {
        Expr::Un(UnOp::Sqrt, Box::new(self))
    }
    /// `exp(self)`
    pub fn exp(self) -> Expr {
        Expr::Un(UnOp::Exp, Box::new(self))
    }
    /// `ln(self)`
    pub fn log(self) -> Expr {
        Expr::Un(UnOp::Log, Box::new(self))
    }
    /// `|self|`
    pub fn abs(self) -> Expr {
        Expr::Un(UnOp::Abs, Box::new(self))
    }
    /// `floor(self)`
    pub fn floor(self) -> Expr {
        Expr::Un(UnOp::Floor, Box::new(self))
    }
    /// `self % rhs`
    // An AST constructor named for the operator it builds; `%` via
    // `std::ops::Rem` would hide that a node is being allocated.
    #[allow(clippy::should_implement_trait)]
    pub fn rem(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Rem, Box::new(self), Box::new(rhs))
    }

    /// `if self { t } else { e }`.
    pub fn select(self, t: Expr, e: Expr) -> Expr {
        Expr::Select(Box::new(self), Box::new(t), Box::new(e))
    }

    /// Visit every sub-expression (pre-order), *descending into nested
    /// patterns' bodies as well*.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Lit(_) | Expr::Var(_) | Expr::SizeOf(_) | Expr::LengthOf(..) => {}
            Expr::Read(_, idxs) => {
                for i in idxs {
                    i.visit(f);
                }
            }
            Expr::Bin(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Un(_, a) => a.visit(f),
            Expr::Select(c, t, e) => {
                c.visit(f);
                t.visit(f);
                e.visit(f);
            }
            Expr::Let(_, v, b) => {
                v.visit(f);
                b.visit(f);
            }
            Expr::Iterate {
                max,
                inits,
                cond,
                updates,
                result,
            } => {
                max.visit(f);
                for (_, e) in inits {
                    e.visit(f);
                }
                cond.visit(f);
                for e in updates {
                    e.visit(f);
                }
                result.visit(f);
            }
            Expr::Pat(p) => p.visit_exprs(f),
        }
    }

    /// Count of scalar operation nodes (used for arithmetic-intensity
    /// estimates). Does not descend into nested patterns.
    pub fn op_count_shallow(&self) -> u64 {
        let mut n = 0u64;
        self.visit_shallow(&mut |e| {
            if matches!(e, Expr::Bin(..) | Expr::Un(..) | Expr::Select(..)) {
                n += 1;
            }
        });
        n
    }

    /// Visit sub-expressions without entering nested patterns.
    pub fn visit_shallow<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Lit(_) | Expr::Var(_) | Expr::SizeOf(_) | Expr::LengthOf(..) | Expr::Pat(_) => {}
            Expr::Read(_, idxs) => {
                for i in idxs {
                    i.visit_shallow(f);
                }
            }
            Expr::Bin(_, a, b) => {
                a.visit_shallow(f);
                b.visit_shallow(f);
            }
            Expr::Un(_, a) => a.visit_shallow(f),
            Expr::Select(c, t, e) => {
                c.visit_shallow(f);
                t.visit_shallow(f);
                e.visit_shallow(f);
            }
            Expr::Let(_, v, b) => {
                v.visit_shallow(f);
                b.visit_shallow(f);
            }
            Expr::Iterate {
                max,
                inits,
                cond,
                updates,
                result,
            } => {
                max.visit_shallow(f);
                for (_, e) in inits {
                    e.visit_shallow(f);
                }
                cond.visit_shallow(f);
                for e in updates {
                    e.visit_shallow(f);
                }
                result.visit_shallow(f);
            }
        }
    }
}

impl From<f64> for Expr {
    fn from(v: f64) -> Expr {
        Expr::Lit(v)
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Expr {
        Expr::int(v)
    }
}

impl From<VarId> for Expr {
    fn from(v: VarId) -> Expr {
        Expr::Var(v)
    }
}

macro_rules! impl_expr_op {
    ($trait:ident, $method:ident, $op:expr) => {
        impl ops::$trait for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::Bin($op, Box::new(self), Box::new(rhs))
            }
        }
    };
}

impl_expr_op!(Add, add, BinOp::Add);
impl_expr_op!(Sub, sub, BinOp::Sub);
impl_expr_op!(Mul, mul, BinOp::Mul);
impl_expr_op!(Div, div, BinOp::Div);

impl ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Un(UnOp::Neg, Box::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_sugar_builds_trees() {
        let e = Expr::var(VarId(0)) + Expr::lit(1.0) * Expr::lit(2.0);
        match e {
            Expr::Bin(BinOp::Add, a, b) => {
                assert_eq!(*a, Expr::Var(VarId(0)));
                assert!(matches!(*b, Expr::Bin(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn visit_counts_nodes() {
        let e = (Expr::var(VarId(0)) + Expr::lit(1.0)).sqrt();
        let mut n = 0;
        e.visit(&mut |_| n += 1);
        assert_eq!(n, 4); // sqrt, add, var, lit
    }

    #[test]
    fn op_count_shallow_ignores_leaves() {
        let e = Expr::var(VarId(0)) * Expr::lit(3.0) + Expr::lit(1.0);
        assert_eq!(e.op_count_shallow(), 2);
    }

    #[test]
    fn predicates_flagged() {
        assert!(BinOp::Lt.is_predicate());
        assert!(!BinOp::Add.is_predicate());
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Expr::from(2i64), Expr::Lit(2.0));
        assert_eq!(Expr::from(VarId(7)), Expr::Var(VarId(7)));
    }
}
