//! Reference interpreter.
//!
//! Executes a [`Program`] sequentially on the host, with exact pattern
//! semantics. Every other execution path in the framework (the GPU
//! simulator running generated kernels, the CPU cost model) is validated
//! against this interpreter's outputs, and its operation counters feed the
//! analytic CPU baseline.

use crate::expr::{BinOp, Expr, ReadSrc, UnOp, VarId};
use crate::pattern::{Body, Effect, Pattern, PatternKind};
use crate::program::{ArrayId, ArrayRole, Program};
use crate::size::Bindings;
use std::collections::HashMap;
use std::fmt;

/// A dense row-major array value.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrVal {
    /// Dimension extents.
    pub shape: Vec<usize>,
    /// Row-major contents.
    pub data: Vec<f64>,
}

impl ArrVal {
    /// A zero-filled array of the given shape.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let len = shape.iter().product();
        ArrVal {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Wrap existing row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f64>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape/data mismatch"
        );
        ArrVal { shape, data }
    }

    /// Row-major linear offset of `idx`.
    ///
    /// # Errors
    ///
    /// Out-of-bounds indices are reported with the offending axis.
    pub fn offset(&self, idx: &[i64]) -> Result<usize, InterpError> {
        if idx.len() != self.shape.len() {
            return Err(InterpError(format!(
                "rank mismatch: {} indices into rank-{} array",
                idx.len(),
                self.shape.len()
            )));
        }
        let mut off = 0usize;
        for (k, (&i, &d)) in idx.iter().zip(&self.shape).enumerate() {
            if i < 0 || i as usize >= d {
                return Err(InterpError(format!(
                    "index {i} out of bounds for axis {k} with extent {d}"
                )));
            }
            off = off * d + i as usize;
        }
        Ok(off)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// A runtime value: scalar or collection.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// A scalar (numbers; booleans as 0/1).
    Scalar(f64),
    /// A collection produced by a pattern.
    Arr(ArrVal),
}

impl Val {
    fn scalar(&self) -> Result<f64, InterpError> {
        match self {
            Val::Scalar(v) => Ok(*v),
            Val::Arr(_) => Err(InterpError("expected scalar, found collection".into())),
        }
    }
}

/// Cheap execution counters for the CPU cost model and sanity checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostCounters {
    /// Arithmetic/logic operations evaluated.
    pub flops: u64,
    /// Array element reads.
    pub reads: u64,
    /// Array element writes.
    pub writes: u64,
    /// Bytes read from declared arrays.
    pub bytes_read: u64,
    /// Bytes written to declared arrays.
    pub bytes_written: u64,
}

/// Interpretation failure (bad index, unbound input, shape mismatch, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpError(pub String);

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interpreter error: {}", self.0)
    }
}

impl std::error::Error for InterpError {}

/// Result of interpreting a program: final array states and counters.
#[derive(Debug, Clone, PartialEq)]
pub struct InterpResult {
    /// All arrays in declaration order (inputs unchanged unless written).
    pub arrays: Vec<ArrVal>,
    /// Execution counters.
    pub counters: CostCounters,
    /// For `Filter` roots: the number of kept elements.
    pub filter_count: Option<usize>,
}

impl InterpResult {
    /// The array for `id`.
    pub fn array(&self, id: ArrayId) -> &ArrVal {
        &self.arrays[id.0 as usize]
    }
}

/// Interpret `program` under `bindings`, with `inputs` keyed by array id.
///
/// Outputs and temporaries are zero-initialized. Input arrays may also be
/// pre-seeded for `Temp`/`Output` roles (useful for iterative algorithms
/// that feed an output back in).
///
/// # Errors
///
/// Returns [`InterpError`] for missing inputs, bad indices, or shape
/// mismatches.
pub fn interpret(
    program: &Program,
    bindings: &Bindings,
    inputs: &HashMap<ArrayId, Vec<f64>>,
) -> Result<InterpResult, InterpError> {
    let mut arrays = Vec::with_capacity(program.arrays.len());
    for decl in &program.arrays {
        let shape: Vec<usize> = decl
            .shape
            .iter()
            .map(|s| s.eval(bindings) as usize)
            .collect();
        let expected: usize = shape.iter().product();
        match inputs.get(&decl.id) {
            Some(data) => {
                if data.len() != expected {
                    return Err(InterpError(format!(
                        "input `{}` has {} elements, expected {}",
                        decl.name,
                        data.len(),
                        expected
                    )));
                }
                arrays.push(ArrVal::from_vec(shape, data.clone()));
            }
            None if decl.role == ArrayRole::Input => {
                return Err(InterpError(format!("missing input array `{}`", decl.name)))
            }
            None => arrays.push(ArrVal::zeros(shape)),
        }
    }

    let mut interp = Interp {
        program,
        bindings,
        arrays,
        env: vec![None; program.var_count as usize],
        counters: CostCounters::default(),
    };

    let root_val = interp.pattern(&program.root)?;
    let mut filter_count = None;

    if let Some(out) = program.output {
        let arr = match root_val {
            Some(Val::Arr(a)) => a,
            Some(Val::Scalar(v)) => ArrVal::from_vec(vec![1], vec![v]),
            None => return Err(InterpError("value root produced nothing".into())),
        };
        if matches!(program.root.kind, PatternKind::Filter { .. }) {
            filter_count = Some(arr.len());
            let dst = &mut interp.arrays[out.0 as usize];
            for (i, v) in arr.data.iter().enumerate() {
                dst.data[i] = *v;
            }
            if let Some(cnt) = program.output_count {
                interp.arrays[cnt.0 as usize].data[0] = arr.len() as f64;
            }
        } else {
            let dst = &mut interp.arrays[out.0 as usize];
            if dst.len() != arr.len() {
                return Err(InterpError(format!(
                    "output `{}` has {} elements but the root produced {}",
                    program.array(out).name,
                    dst.len(),
                    arr.len()
                )));
            }
            dst.data = arr.data;
        }
        let decl = program.array(out);
        interp.counters.writes += decl.len(bindings) as u64;
        interp.counters.bytes_written += decl.bytes(bindings);
    }

    Ok(InterpResult {
        arrays: interp.arrays,
        counters: interp.counters,
        filter_count,
    })
}

struct Interp<'p> {
    program: &'p Program,
    bindings: &'p Bindings,
    arrays: Vec<ArrVal>,
    env: Vec<Option<Val>>,
    counters: CostCounters,
}

impl<'p> Interp<'p> {
    fn bind(&mut self, v: VarId, val: Val) -> Option<Val> {
        self.env[v.0 as usize].replace(val)
    }

    fn unbind(&mut self, v: VarId, prev: Option<Val>) {
        self.env[v.0 as usize] = prev;
    }

    fn lookup(&self, v: VarId) -> Result<&Val, InterpError> {
        self.env[v.0 as usize]
            .as_ref()
            .ok_or_else(|| InterpError(format!("unbound variable {v:?}")))
    }

    fn extent(&mut self, p: &'p Pattern) -> Result<i64, InterpError> {
        match &p.dyn_extent {
            Some(e) => {
                let v = self.eval(e)?.scalar()?;
                to_index(v)
            }
            None => Ok(p.size.eval(self.bindings)),
        }
    }

    /// Execute a pattern; `Some(value)` for value-producing kinds, `None`
    /// for `Foreach`.
    fn pattern(&mut self, p: &'p Pattern) -> Result<Option<Val>, InterpError> {
        let n = self.extent(p)?;
        match &p.kind {
            PatternKind::Map => {
                let mut out: Vec<f64> = Vec::new();
                let mut inner_shape: Option<Vec<usize>> = None;
                for i in 0..n {
                    let prev = self.bind(p.var, Val::Scalar(i as f64));
                    let v = self.body_value(p)?;
                    self.unbind(p.var, prev);
                    match v {
                        Val::Scalar(s) => {
                            if inner_shape.as_deref().is_some_and(|s| !s.is_empty()) {
                                return Err(InterpError("map body shape varies".into()));
                            }
                            inner_shape = Some(vec![]);
                            out.push(s);
                        }
                        Val::Arr(a) => {
                            match &inner_shape {
                                Some(s) if *s != a.shape => {
                                    return Err(InterpError("map body shape varies".into()))
                                }
                                _ => inner_shape = Some(a.shape.clone()),
                            }
                            out.extend_from_slice(&a.data);
                        }
                    }
                }
                let mut shape = vec![n as usize];
                shape.extend(inner_shape.unwrap_or_default());
                Ok(Some(Val::Arr(ArrVal::from_vec(shape, out))))
            }
            PatternKind::Reduce { op } => {
                let mut acc = op.identity();
                for i in 0..n {
                    let prev = self.bind(p.var, Val::Scalar(i as f64));
                    let v = self.body_value(p)?.scalar()?;
                    self.unbind(p.var, prev);
                    acc = op.apply(acc, v);
                    self.counters.flops += 1;
                }
                Ok(Some(Val::Scalar(acc)))
            }
            PatternKind::Filter { pred } => {
                let mut out = Vec::new();
                for i in 0..n {
                    let prev = self.bind(p.var, Val::Scalar(i as f64));
                    let keep = self.eval(pred)?.scalar()?;
                    self.counters.flops += 1;
                    let r = if keep != 0.0 {
                        let v = self.body_value(p)?.scalar()?;
                        out.push(v);
                        Ok(())
                    } else {
                        Ok(())
                    };
                    self.unbind(p.var, prev);
                    r?;
                }
                let len = out.len();
                Ok(Some(Val::Arr(ArrVal::from_vec(vec![len], out))))
            }
            PatternKind::GroupBy { key, num_keys, op } => {
                let nk = num_keys.eval(self.bindings) as usize;
                let mut out = vec![op.identity(); nk];
                for i in 0..n {
                    let prev = self.bind(p.var, Val::Scalar(i as f64));
                    let r = (|| {
                        let k = to_index(self.eval(key)?.scalar()?)?;
                        if k < 0 || k as usize >= nk {
                            return Err(InterpError(format!(
                                "groupBy key {k} out of range 0..{nk}"
                            )));
                        }
                        let v = self.body_value(p)?.scalar()?;
                        out[k as usize] = op.apply(out[k as usize], v);
                        self.counters.flops += 1;
                        Ok(())
                    })();
                    self.unbind(p.var, prev);
                    r?;
                }
                Ok(Some(Val::Arr(ArrVal::from_vec(vec![nk], out))))
            }
            PatternKind::Foreach => {
                let Body::Effects(effs) = &p.body else {
                    return Err(InterpError("foreach requires an effect body".into()));
                };
                for i in 0..n {
                    let prev = self.bind(p.var, Val::Scalar(i as f64));
                    let r = self.effects(effs);
                    self.unbind(p.var, prev);
                    r?;
                }
                Ok(None)
            }
        }
    }

    fn body_value(&mut self, p: &'p Pattern) -> Result<Val, InterpError> {
        match &p.body {
            Body::Value(e) => self.eval(e),
            Body::Effects(_) => Err(InterpError(format!(
                "{} pattern requires a value body",
                p.kind.name()
            ))),
        }
    }

    fn effects(&mut self, effs: &'p [Effect]) -> Result<(), InterpError> {
        let mut bound: Vec<(VarId, Option<Val>)> = Vec::new();
        let r = (|this: &mut Self| {
            for eff in effs {
                match eff {
                    Effect::Write {
                        cond,
                        array,
                        idx,
                        value,
                    } => {
                        if let Some(c) = cond {
                            this.counters.flops += 1;
                            if this.eval(c)?.scalar()? == 0.0 {
                                continue;
                            }
                        }
                        let v = this.eval(value)?.scalar()?;
                        let ii = this.eval_indices(idx)?;
                        let bytes = this.program.array(*array).elem.bytes();
                        let arr = &mut this.arrays[array.0 as usize];
                        let off = arr.offset(&ii)?;
                        arr.data[off] = v;
                        this.counters.writes += 1;
                        this.counters.bytes_written += bytes;
                    }
                    Effect::AtomicRmw {
                        cond,
                        array,
                        idx,
                        op,
                        value,
                    } => {
                        if let Some(c) = cond {
                            this.counters.flops += 1;
                            if this.eval(c)?.scalar()? == 0.0 {
                                continue;
                            }
                        }
                        let v = this.eval(value)?.scalar()?;
                        let ii = this.eval_indices(idx)?;
                        let bytes = this.program.array(*array).elem.bytes();
                        let arr = &mut this.arrays[array.0 as usize];
                        let off = arr.offset(&ii)?;
                        arr.data[off] = op.apply(arr.data[off], v);
                        this.counters.flops += 1;
                        this.counters.reads += 1;
                        this.counters.writes += 1;
                        this.counters.bytes_read += bytes;
                        this.counters.bytes_written += bytes;
                    }
                    Effect::Nested(inner) => {
                        this.pattern(inner)?;
                    }
                    Effect::LetScalar(v, e) => {
                        let val = this.eval(e)?;
                        bound.push((*v, this.bind(*v, val)));
                    }
                }
            }
            Ok(())
        })(self);
        for (v, prev) in bound.into_iter().rev() {
            self.unbind(v, prev);
        }
        r
    }

    fn eval_indices(&mut self, idx: &'p [Expr]) -> Result<Vec<i64>, InterpError> {
        idx.iter()
            .map(|e| to_index(self.eval(e)?.scalar()?))
            .collect()
    }

    fn eval(&mut self, e: &'p Expr) -> Result<Val, InterpError> {
        match e {
            Expr::Lit(v) => Ok(Val::Scalar(*v)),
            Expr::Var(v) => self.lookup(*v).cloned(),
            Expr::SizeOf(s) => Ok(Val::Scalar(s.eval(self.bindings) as f64)),
            Expr::LengthOf(src, dim) => {
                let shape = match src {
                    ReadSrc::Array(a) => &self.arrays[a.0 as usize].shape,
                    ReadSrc::Var(v) => match self.lookup(*v)? {
                        Val::Arr(a) => &a.shape,
                        Val::Scalar(_) => return Err(InterpError("lengthOf a scalar".into())),
                    },
                };
                let d = *shape.get(*dim).ok_or_else(|| {
                    InterpError(format!("lengthOf dim {dim} exceeds rank {}", shape.len()))
                })?;
                Ok(Val::Scalar(d as f64))
            }
            Expr::Read(src, idx) => {
                let ii = self.eval_indices(idx)?;
                match src {
                    ReadSrc::Array(a) => {
                        let bytes = self.program.array(*a).elem.bytes();
                        let arr = &self.arrays[a.0 as usize];
                        let off = arr.offset(&ii)?;
                        self.counters.reads += 1;
                        self.counters.bytes_read += bytes;
                        Ok(Val::Scalar(arr.data[off]))
                    }
                    ReadSrc::Var(v) => {
                        let val = self.lookup(*v)?;
                        match val {
                            Val::Arr(a) => {
                                let off = a.offset(&ii)?;
                                let out = a.data[off];
                                self.counters.reads += 1;
                                self.counters.bytes_read += 8;
                                Ok(Val::Scalar(out))
                            }
                            Val::Scalar(_) => Err(InterpError("indexed a scalar".into())),
                        }
                    }
                }
            }
            Expr::Bin(op, a, b) => {
                let x = self.eval(a)?.scalar()?;
                let y = self.eval(b)?.scalar()?;
                self.counters.flops += 1;
                Ok(Val::Scalar(apply_bin(*op, x, y)))
            }
            Expr::Un(op, a) => {
                let x = self.eval(a)?.scalar()?;
                self.counters.flops += 1;
                Ok(Val::Scalar(apply_un(*op, x)))
            }
            Expr::Select(c, t, f) => {
                let cv = self.eval(c)?.scalar()?;
                self.counters.flops += 1;
                if cv != 0.0 {
                    self.eval(t)
                } else {
                    self.eval(f)
                }
            }
            Expr::Let(v, val, body) => {
                let value = self.eval(val)?;
                let prev = self.bind(*v, value);
                let r = self.eval(body);
                self.unbind(*v, prev);
                r
            }
            Expr::Iterate {
                max,
                inits,
                cond,
                updates,
                result,
            } => {
                let trips = to_index(self.eval(max)?.scalar()?)?;
                let mut prevs = Vec::with_capacity(inits.len());
                for (v, init) in inits {
                    let value = self.eval(init)?;
                    prevs.push((*v, self.bind(*v, value)));
                }
                let r = (|this: &mut Self| {
                    for _ in 0..trips {
                        let c = this.eval(cond)?.scalar()?;
                        this.counters.flops += 1;
                        if c == 0.0 {
                            break;
                        }
                        let mut next = Vec::with_capacity(updates.len());
                        for u in updates {
                            next.push(this.eval(u)?);
                        }
                        for ((v, _), val) in inits.iter().zip(next) {
                            this.env[v.0 as usize] = Some(val);
                        }
                    }
                    this.eval(result)
                })(self);
                for (v, prev) in prevs.into_iter().rev() {
                    self.unbind(v, prev);
                }
                r
            }
            Expr::Pat(p) => self
                .pattern(p)?
                .ok_or_else(|| InterpError("foreach in value position".into())),
        }
    }
}

fn to_index(v: f64) -> Result<i64, InterpError> {
    if v.fract() != 0.0 || !v.is_finite() {
        return Err(InterpError(format!("non-integral index {v}")));
    }
    Ok(v as i64)
}

/// Apply a binary operator to scalars (shared with the simulator).
pub fn apply_bin(op: BinOp, x: f64, y: f64) -> f64 {
    match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        BinOp::Rem => {
            // C-style truncated remainder on the integral parts.
            let (a, b) = (x.trunc(), y.trunc());
            if b == 0.0 {
                f64::NAN
            } else {
                a - (a / b).trunc() * b
            }
        }
        BinOp::Min => x.min(y),
        BinOp::Max => x.max(y),
        BinOp::Lt => bool_val(x < y),
        BinOp::Le => bool_val(x <= y),
        BinOp::Gt => bool_val(x > y),
        BinOp::Ge => bool_val(x >= y),
        BinOp::Eq => bool_val(x == y),
        BinOp::Ne => bool_val(x != y),
        BinOp::And => bool_val(x != 0.0 && y != 0.0),
        BinOp::Or => bool_val(x != 0.0 || y != 0.0),
    }
}

/// Apply a unary operator to a scalar (shared with the simulator).
pub fn apply_un(op: UnOp, x: f64) -> f64 {
    match op {
        UnOp::Neg => -x,
        UnOp::Not => bool_val(x == 0.0),
        UnOp::Sqrt => x.sqrt(),
        UnOp::Exp => x.exp(),
        UnOp::Log => x.ln(),
        UnOp::Abs => x.abs(),
        UnOp::Floor => x.floor(),
    }
}

fn bool_val(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::pattern::ReduceOp;
    use crate::size::Size;
    use crate::types::ScalarKind;

    fn run(program: &Program, bindings: &Bindings, inputs: &[(ArrayId, Vec<f64>)]) -> InterpResult {
        let map: HashMap<ArrayId, Vec<f64>> = inputs.iter().cloned().collect();
        interpret(program, bindings, &map).unwrap()
    }

    #[test]
    fn sum_rows_matches_hand_computation() {
        let mut b = ProgramBuilder::new("sumRows");
        let r = b.sym("R");
        let c = b.sym("C");
        let m = b.input("m", ScalarKind::F32, &[Size::sym(r), Size::sym(c)]);
        let root = b.map(Size::sym(r), |b, row| {
            b.reduce(Size::sym(c), ReduceOp::Add, |b, col| {
                b.read(m, &[row.into(), col.into()])
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(r, 3);
        bind.bind(c, 4);
        let data: Vec<f64> = (0..12).map(|x| x as f64).collect();
        let res = run(&p, &bind, &[(m, data)]);
        let out = res.array(p.output.unwrap());
        assert_eq!(out.data, vec![6.0, 22.0, 38.0]);
    }

    #[test]
    fn nested_map_produces_matrix() {
        let mut b = ProgramBuilder::new("outerProd");
        let n = b.sym("N");
        let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
        let root = b.map(Size::sym(n), |b, i| {
            let xi = b.read(x, &[i.into()]);
            b.let_(xi, |b, a| {
                b.map(Size::sym(n), |b, j| Expr::var(a) * b.read(x, &[j.into()]))
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 3);
        let res = run(&p, &bind, &[(x, vec![1.0, 2.0, 3.0])]);
        let out = res.array(p.output.unwrap());
        assert_eq!(out.shape, vec![3, 3]);
        assert_eq!(out.data, vec![1., 2., 3., 2., 4., 6., 3., 6., 9.]);
    }

    #[test]
    fn filter_compacts_and_counts() {
        let mut b = ProgramBuilder::new("pos");
        let n = b.sym("N");
        let a = b.input("a", ScalarKind::F32, &[Size::sym(n)]);
        let root = b.filter(Size::sym(n), |b, i| {
            let e = b.read(a, &[i.into()]);
            (e.clone().gt(Expr::lit(0.0)), e)
        });
        let p = b.finish_filter(root, "pos", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 5);
        let res = run(&p, &bind, &[(a, vec![-1.0, 2.0, 0.0, 3.0, -4.0])]);
        assert_eq!(res.filter_count, Some(2));
        let out = res.array(p.output.unwrap());
        assert_eq!(&out.data[..2], &[2.0, 3.0]);
        let count = res.array(p.output_count.unwrap());
        assert_eq!(count.data[0], 2.0);
    }

    #[test]
    fn group_by_histogram() {
        let mut b = ProgramBuilder::new("hist");
        let n = b.sym("N");
        let keys = b.input("keys", ScalarKind::I32, &[Size::sym(n)]);
        let root = b.group_by(Size::sym(n), Size::from(3), ReduceOp::Add, |b, i| {
            (b.read(keys, &[i.into()]), Expr::lit(1.0))
        });
        let p = b.finish_group_by(root, "hist", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 6);
        let res = run(&p, &bind, &[(keys, vec![0.0, 1.0, 1.0, 2.0, 2.0, 2.0])]);
        assert_eq!(res.array(p.output.unwrap()).data, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn foreach_conditional_scatter() {
        let mut b = ProgramBuilder::new("scatter");
        let n = b.sym("N");
        let src = b.input("src", ScalarKind::I32, &[Size::sym(n)]);
        let dst = b.output("dst", ScalarKind::F32, &[Size::sym(n)]);
        let root = b.foreach(Size::sym(n), |b, i| {
            let v = b.read(src, &[i.into()]);
            vec![Effect::Write {
                cond: Some(v.clone().ge(Expr::lit(0.0))),
                array: dst,
                idx: vec![v],
                value: Expr::lit(1.0),
            }]
        });
        let p = b.finish_foreach(root).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 4);
        let res = run(&p, &bind, &[(src, vec![2.0, -1.0, 0.0, 3.0])]);
        assert_eq!(res.array(dst).data, vec![1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn iterate_mandelbrot_style() {
        // out[i] = number of steps until v >= 2, v := v*2 starting at a[i].
        let mut b = ProgramBuilder::new("steps");
        let n = b.sym("N");
        let a = b.input("a", ScalarKind::F32, &[Size::sym(n)]);
        let root = b.map(Size::sym(n), |b, i| {
            let a0 = b.read(a, &[i.into()]);
            b.iterate(Expr::int(10), vec![a0, Expr::lit(0.0)], |_, vars| {
                let v = Expr::var(vars[0]);
                let k = Expr::var(vars[1]);
                (
                    v.clone().lt(Expr::lit(2.0)),
                    vec![v * Expr::lit(2.0), k.clone() + Expr::lit(1.0)],
                    k,
                )
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 3);
        let res = run(&p, &bind, &[(a, vec![1.0, 0.25, 4.0])]);
        assert_eq!(res.array(p.output.unwrap()).data, vec![1.0, 3.0, 0.0]);
    }

    #[test]
    fn dynamic_extent_from_data() {
        // CSR-ish: per-row degree read from an array.
        let mut b = ProgramBuilder::new("deg");
        let n = b.sym("N");
        let deg = b.input("deg", ScalarKind::I32, &[Size::sym(n)]);
        let root = b.map(Size::sym(n), |b, i| {
            let d = b.read(deg, &[i.into()]);
            b.reduce_dyn(d, 8, ReduceOp::Add, |_, _j| Expr::lit(1.0))
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 3);
        let res = run(&p, &bind, &[(deg, vec![2.0, 0.0, 5.0])]);
        assert_eq!(res.array(p.output.unwrap()).data, vec![2.0, 0.0, 5.0]);
    }

    #[test]
    fn counters_track_traffic() {
        let mut b = ProgramBuilder::new("copy");
        let n = b.sym("N");
        let a = b.input("a", ScalarKind::F64, &[Size::sym(n)]);
        let root = b.map(Size::sym(n), |b, i| b.read(a, &[i.into()]));
        let p = b.finish_map(root, "out", ScalarKind::F64).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 8);
        let res = run(&p, &bind, &[(a, vec![0.0; 8])]);
        assert_eq!(res.counters.reads, 8);
        assert_eq!(res.counters.bytes_read, 64);
        assert_eq!(res.counters.writes, 8);
        assert_eq!(res.counters.bytes_written, 64);
    }

    #[test]
    fn missing_input_is_an_error() {
        let mut b = ProgramBuilder::new("copy");
        let n = b.sym("N");
        let a = b.input("a", ScalarKind::F64, &[Size::sym(n)]);
        let root = b.map(Size::sym(n), |b, i| b.read(a, &[i.into()]));
        let p = b.finish_map(root, "out", ScalarKind::F64).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 8);
        let err = interpret(&p, &bind, &HashMap::new()).unwrap_err();
        assert!(err.0.contains("missing input"));
    }

    #[test]
    fn out_of_bounds_read_is_an_error() {
        let mut b = ProgramBuilder::new("oob");
        let n = b.sym("N");
        let a = b.input("a", ScalarKind::F64, &[Size::sym(n)]);
        let root = b.map(Size::sym(n), |b, i| {
            b.read(a, &[Expr::var(i) + Expr::int(1)])
        });
        let p = b.finish_map(root, "out", ScalarKind::F64).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 4);
        let inputs: HashMap<ArrayId, Vec<f64>> = [(a, vec![0.0; 4])].into_iter().collect();
        let err = interpret(&p, &bind, &inputs).unwrap_err();
        assert!(err.0.contains("out of bounds"));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::pattern::{Effect, ReduceOp};
    use crate::size::Size;
    use crate::types::ScalarKind;

    fn run(program: &Program, bindings: &Bindings, inputs: &[(ArrayId, Vec<f64>)]) -> InterpResult {
        let map: HashMap<ArrayId, Vec<f64>> = inputs.iter().cloned().collect();
        interpret(program, bindings, &map).unwrap()
    }

    #[test]
    fn length_of_array_dimension() {
        let mut b = ProgramBuilder::new("len");
        let n = b.sym("N");
        let a = b.input("a", ScalarKind::F32, &[Size::sym(n), Size::from(3)]);
        let root = b.map(Size::from(2), |_b, _| {
            Expr::LengthOf(crate::expr::ReadSrc::Array(a), 0)
                + Expr::LengthOf(crate::expr::ReadSrc::Array(a), 1)
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 5);
        let res = run(&p, &bind, &[(a, vec![0.0; 15])]);
        assert_eq!(res.array(p.output.unwrap()).data, vec![8.0, 8.0]);
    }

    #[test]
    fn length_of_filter_result() {
        // let kept = filter(...); lengthOf(kept)
        let mut b = ProgramBuilder::new("lenfilter");
        let n = b.sym("N");
        let a = b.input("a", ScalarKind::F32, &[Size::sym(n)]);
        let root = b.map(Size::from(1), |b, _| {
            let f = b.filter(Size::sym(n), |b, i| {
                let e = b.read(a, &[i.into()]);
                (e.clone().gt(Expr::lit(0.0)), e)
            });
            b.let_(f, |_, kept| {
                Expr::LengthOf(crate::expr::ReadSrc::Var(kept), 0)
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 6);
        let res = run(&p, &bind, &[(a, vec![1.0, -1.0, 2.0, 0.0, 3.0, -2.0])]);
        assert_eq!(res.array(p.output.unwrap()).data, vec![3.0]);
    }

    #[test]
    fn let_scalar_effects_sequence() {
        let mut b = ProgramBuilder::new("seq");
        let n = b.sym("N");
        let src = b.input("src", ScalarKind::F32, &[Size::sym(n)]);
        let d1 = b.output("d1", ScalarKind::F32, &[Size::sym(n)]);
        let d2 = b.output("d2", ScalarKind::F32, &[Size::sym(n)]);
        let root = b.foreach(Size::sym(n), |b, i| {
            let v = b.fresh_var();
            let read = b.read(src, &[i.into()]);
            vec![
                Effect::LetScalar(v, read * Expr::lit(2.0)),
                Effect::Write {
                    cond: None,
                    array: d1,
                    idx: vec![i.into()],
                    value: Expr::var(v),
                },
                Effect::Write {
                    cond: None,
                    array: d2,
                    idx: vec![i.into()],
                    value: Expr::var(v) + Expr::lit(1.0),
                },
            ]
        });
        let p = b.finish_foreach(root).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 3);
        let res = run(&p, &bind, &[(src, vec![1.0, 2.0, 3.0])]);
        assert_eq!(res.array(d1).data, vec![2.0, 4.0, 6.0]);
        assert_eq!(res.array(d2).data, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn atomic_effects_combine_in_interpreter() {
        let mut b = ProgramBuilder::new("maxred");
        let n = b.sym("N");
        let a = b.input("a", ScalarKind::F32, &[Size::sym(n)]);
        let acc = b.output("acc", ScalarKind::F32, &[Size::from(1)]);
        let root = b.foreach(Size::sym(n), |b, i| {
            vec![Effect::AtomicRmw {
                cond: None,
                array: acc,
                idx: vec![Expr::int(0)],
                op: ReduceOp::Max,
                value: b.read(a, &[i.into()]),
            }]
        });
        let p = b.finish_foreach(root).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 5);
        let res = run(&p, &bind, &[(a, vec![3.0, 9.0, 1.0, 7.0, 2.0])]);
        assert_eq!(res.array(acc).data, vec![9.0]);
    }

    #[test]
    fn group_by_rejects_out_of_range_keys() {
        let mut b = ProgramBuilder::new("badkeys");
        let n = b.sym("N");
        let keys = b.input("keys", ScalarKind::I32, &[Size::sym(n)]);
        let root = b.group_by(Size::sym(n), Size::from(2), ReduceOp::Add, |b, i| {
            (b.read(keys, &[i.into()]), Expr::lit(1.0))
        });
        let p = b.finish_group_by(root, "h", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 3);
        let inputs: HashMap<ArrayId, Vec<f64>> =
            [(keys, vec![0.0, 1.0, 5.0])].into_iter().collect();
        let err = interpret(&p, &bind, &inputs).unwrap_err();
        assert!(err.0.contains("out of range"));
    }

    #[test]
    fn rem_and_unary_semantics() {
        assert_eq!(apply_bin(crate::expr::BinOp::Rem, 7.0, 3.0), 1.0);
        assert_eq!(apply_bin(crate::expr::BinOp::Rem, -7.0, 3.0), -1.0);
        assert!(apply_bin(crate::expr::BinOp::Rem, 7.0, 0.0).is_nan());
        assert_eq!(apply_un(crate::expr::UnOp::Not, 0.0), 1.0);
        assert_eq!(apply_un(crate::expr::UnOp::Not, 2.0), 0.0);
        assert_eq!(apply_un(crate::expr::UnOp::Floor, 2.9), 2.0);
        assert_eq!(apply_un(crate::expr::UnOp::Abs, -2.5), 2.5);
    }
}
