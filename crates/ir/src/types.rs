//! Scalar element types.

use std::fmt;

/// Element type of an array in the IR.
///
/// The reference interpreter and the simulator compute in `f64` regardless of
/// the declared kind; the kind determines the *byte width* used for memory
/// traffic accounting (coalescing, bandwidth) and is carried through to CUDA
/// source emission.
///
/// # Examples
///
/// ```
/// use multidim_ir::ScalarKind;
///
/// assert_eq!(ScalarKind::F32.bytes(), 4);
/// assert_eq!(ScalarKind::F64.bytes(), 8);
/// assert_eq!(ScalarKind::F32.to_string(), "float");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScalarKind {
    /// 32-bit IEEE float (`float`).
    #[default]
    F32,
    /// 64-bit IEEE float (`double`).
    F64,
    /// 32-bit signed integer (`int`).
    I32,
    /// 64-bit signed integer (`long long`).
    I64,
    /// Boolean stored as one byte (`bool`).
    Bool,
}

impl ScalarKind {
    /// Size of one element in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            ScalarKind::F32 | ScalarKind::I32 => 4,
            ScalarKind::F64 | ScalarKind::I64 => 8,
            ScalarKind::Bool => 1,
        }
    }

    /// `true` for the floating-point kinds.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarKind::F32 | ScalarKind::F64)
    }
}

impl fmt::Display for ScalarKind {
    /// Formats as the corresponding CUDA C type name.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalarKind::F32 => "float",
            ScalarKind::F64 => "double",
            ScalarKind::I32 => "int",
            ScalarKind::I64 => "long long",
            ScalarKind::Bool => "bool",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_widths() {
        assert_eq!(ScalarKind::F32.bytes(), 4);
        assert_eq!(ScalarKind::F64.bytes(), 8);
        assert_eq!(ScalarKind::I32.bytes(), 4);
        assert_eq!(ScalarKind::I64.bytes(), 8);
        assert_eq!(ScalarKind::Bool.bytes(), 1);
    }

    #[test]
    fn float_predicate() {
        assert!(ScalarKind::F32.is_float());
        assert!(ScalarKind::F64.is_float());
        assert!(!ScalarKind::I32.is_float());
        assert!(!ScalarKind::Bool.is_float());
    }

    #[test]
    fn cuda_names() {
        assert_eq!(ScalarKind::I64.to_string(), "long long");
        assert_eq!(ScalarKind::Bool.to_string(), "bool");
    }
}
