//! Affine analysis of index expressions.
//!
//! The mapping analysis needs to know, for every array access, the *stride*
//! of the linearized address with respect to each enclosing pattern index:
//! stride 1 means adjacent iterations touch adjacent memory (the access is
//! "sequential" in that index, wanting dimension `x` per Table II), a large
//! constant stride means strided access, and a data-dependent index means
//! random access (no coalescing constraint can be satisfied — e.g. the
//! QPSCD HogWild outer pattern over randomly sampled rows).
//!
//! Index expressions here are affine forms `Σ coeff_v · v + const` where the
//! coefficients are [`Size`] expressions (so `row * C + col` has coefficient
//! `C` for `row` even when `C` is a launch-time symbol).

use crate::expr::{BinOp, Expr, UnOp, VarId};
use crate::size::{Bindings, Size};
use std::collections::BTreeMap;

/// An affine form over pattern/loop variables, or `NonAffine` if the
/// expression cannot be put in that shape (data-dependent indexing).
#[derive(Debug, Clone, PartialEq)]
pub enum AffineForm {
    /// `Σ terms[v] · v + constant`.
    Affine {
        /// Per-variable coefficients (absent = 0).
        terms: BTreeMap<VarId, Size>,
        /// Constant offset.
        constant: Size,
    },
    /// The expression involves a memory read, non-linear arithmetic, or
    /// control flow: treat as random for locality purposes.
    NonAffine,
}

impl AffineForm {
    /// The zero form.
    pub fn zero() -> Self {
        AffineForm::Affine {
            terms: BTreeMap::new(),
            constant: Size::from(0),
        }
    }

    /// A constant form.
    pub fn konst(s: Size) -> Self {
        AffineForm::Affine {
            terms: BTreeMap::new(),
            constant: s,
        }
    }

    /// The form `1 · v`.
    pub fn var(v: VarId) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(v, Size::from(1));
        AffineForm::Affine {
            terms,
            constant: Size::from(0),
        }
    }

    /// The coefficient of `v` evaluated with `bindings` (defaulting unknown
    /// symbols), or `None` if the form is non-affine.
    pub fn coeff_of(&self, v: VarId, bindings: &Bindings) -> Option<i64> {
        match self {
            AffineForm::Affine { terms, .. } => {
                Some(terms.get(&v).map_or(0, |s| s.eval_or_default(bindings)))
            }
            AffineForm::NonAffine => None,
        }
    }

    /// `true` when this form mentions `v` with a (symbolically) nonzero
    /// coefficient.
    pub fn mentions(&self, v: VarId) -> bool {
        match self {
            AffineForm::Affine { terms, .. } => terms.contains_key(&v),
            AffineForm::NonAffine => true,
        }
    }

    fn add(self, other: AffineForm) -> AffineForm {
        match (self, other) {
            (
                AffineForm::Affine {
                    mut terms,
                    constant,
                },
                AffineForm::Affine {
                    terms: t2,
                    constant: c2,
                },
            ) => {
                for (v, c) in t2 {
                    match terms.remove(&v) {
                        Some(prev) => {
                            terms.insert(v, prev + c);
                        }
                        None => {
                            terms.insert(v, c);
                        }
                    }
                }
                AffineForm::Affine {
                    terms,
                    constant: constant + c2,
                }
            }
            _ => AffineForm::NonAffine,
        }
    }

    fn scale(self, k: Size) -> AffineForm {
        match self {
            AffineForm::Affine { terms, constant } => AffineForm::Affine {
                terms: terms.into_iter().map(|(v, c)| (v, c * k.clone())).collect(),
                constant: constant * k,
            },
            AffineForm::NonAffine => AffineForm::NonAffine,
        }
    }

    /// Scale by `-1` is not representable in `Size` (sizes are
    /// non-negative); negation therefore degrades to `NonAffine` unless the
    /// form is a constant 0. Subtraction of a *constant* is kept by clamped
    /// `Size::Sub`.
    fn sub_const(self, k: Size) -> AffineForm {
        match self {
            AffineForm::Affine { terms, constant } => AffineForm::Affine {
                terms,
                constant: constant - k,
            },
            AffineForm::NonAffine => AffineForm::NonAffine,
        }
    }
}

/// Compute the affine form of an index expression.
///
/// Handled shapes: literals, variables, `SizeOf`, `+`, `*` by a
/// variable-free factor, `-` by a variable-free subtrahend, `min`/`max` and
/// `Select` degrade to the branch union (non-affine if they disagree on
/// terms), everything else (reads, division, iterate, …) is `NonAffine`.
///
/// # Examples
///
/// ```
/// use multidim_ir::{affine_of, AffineForm, Expr, VarId, Size, Bindings, SymId};
///
/// // row * C + col
/// let e = Expr::var(VarId(0)) * Expr::size(Size::sym(SymId(0))) + Expr::var(VarId(1));
/// let form = affine_of(&e);
/// let mut b = Bindings::new();
/// b.bind(SymId(0), 512);
/// assert_eq!(form.coeff_of(VarId(0), &b), Some(512));
/// assert_eq!(form.coeff_of(VarId(1), &b), Some(1));
/// ```
pub fn affine_of(e: &Expr) -> AffineForm {
    match e {
        Expr::Lit(v) => {
            if v.fract() == 0.0 && *v >= 0.0 {
                AffineForm::konst(Size::from(*v as i64))
            } else {
                AffineForm::NonAffine
            }
        }
        Expr::Var(v) => AffineForm::var(*v),
        Expr::SizeOf(s) => AffineForm::konst(s.clone()),
        Expr::Bin(BinOp::Add, a, b) => affine_of(a).add(affine_of(b)),
        Expr::Bin(BinOp::Sub, a, b) => match variable_free_size(b) {
            Some(k) => affine_of(a).sub_const(k),
            None => AffineForm::NonAffine,
        },
        Expr::Bin(BinOp::Mul, a, b) => match (variable_free_size(a), variable_free_size(b)) {
            (_, Some(k)) => affine_of(a).scale(k),
            (Some(k), _) => affine_of(b).scale(k),
            _ => AffineForm::NonAffine,
        },
        Expr::Bin(BinOp::Min | BinOp::Max, a, b) => {
            // Conservative: affine only if both sides have identical terms
            // (e.g. min(i, i) — rare); otherwise the stride is ambiguous.
            let (fa, fb) = (affine_of(a), affine_of(b));
            if fa == fb {
                fa
            } else {
                AffineForm::NonAffine
            }
        }
        Expr::Select(_, t, f) => {
            let (ft, ff) = (affine_of(t), affine_of(f));
            if ft == ff {
                ft
            } else {
                AffineForm::NonAffine
            }
        }
        Expr::Un(UnOp::Floor, a) => affine_of(a),
        Expr::Let(_, _, body) => affine_of(body),
        _ => AffineForm::NonAffine,
    }
}

/// If `e` contains no variables and is expressible as a [`Size`], return it.
fn variable_free_size(e: &Expr) -> Option<Size> {
    match e {
        Expr::Lit(v) if v.fract() == 0.0 && *v >= 0.0 => Some(Size::from(*v as i64)),
        Expr::SizeOf(s) => Some(s.clone()),
        Expr::Bin(BinOp::Add, a, b) => Some(variable_free_size(a)? + variable_free_size(b)?),
        Expr::Bin(BinOp::Mul, a, b) => Some(variable_free_size(a)? * variable_free_size(b)?),
        Expr::Bin(BinOp::Sub, a, b) => Some(variable_free_size(a)? - variable_free_size(b)?),
        _ => None,
    }
}

/// Linearize a multi-dimensional access `src[idx...]` against a row-major
/// `shape` into a single affine address form (in elements).
///
/// Returns `NonAffine` as soon as one component is non-affine.
pub fn linearize(idxs: &[Expr], shape: &[Size]) -> AffineForm {
    debug_assert_eq!(idxs.len(), shape.len());
    let mut acc = AffineForm::zero();
    for (k, idx) in idxs.iter().enumerate() {
        // stride of dimension k = product of trailing extents
        let mut stride = Size::from(1);
        for s in &shape[k + 1..] {
            stride = stride * s.clone();
        }
        acc = acc.add(affine_of(idx).scale(stride));
        if acc == AffineForm::NonAffine {
            return AffineForm::NonAffine;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size::SymId;

    fn bind(sym: SymId, v: i64) -> Bindings {
        let mut b = Bindings::new();
        b.bind(sym, v);
        b
    }

    #[test]
    fn var_has_unit_coeff() {
        let f = affine_of(&Expr::var(VarId(3)));
        assert_eq!(f.coeff_of(VarId(3), &Bindings::new()), Some(1));
        assert_eq!(f.coeff_of(VarId(4), &Bindings::new()), Some(0));
    }

    #[test]
    fn row_major_linearization() {
        // m[i, j] with shape [R, C]: address = i*C + j
        let c_sym = SymId(1);
        let f = linearize(
            &[Expr::var(VarId(0)), Expr::var(VarId(1))],
            &[Size::sym(SymId(0)), Size::sym(c_sym)],
        );
        let b = bind(c_sym, 100);
        assert_eq!(f.coeff_of(VarId(0), &b), Some(100));
        assert_eq!(f.coeff_of(VarId(1), &b), Some(1));
    }

    #[test]
    fn three_d_linearization() {
        // t[i, j, k] shape [A, B, C]: i*B*C + j*C + k
        let (b_sym, c_sym) = (SymId(1), SymId(2));
        let f = linearize(
            &[
                Expr::var(VarId(0)),
                Expr::var(VarId(1)),
                Expr::var(VarId(2)),
            ],
            &[Size::sym(SymId(0)), Size::sym(b_sym), Size::sym(c_sym)],
        );
        let mut b = Bindings::new();
        b.bind(b_sym, 10);
        b.bind(c_sym, 7);
        assert_eq!(f.coeff_of(VarId(0), &b), Some(70));
        assert_eq!(f.coeff_of(VarId(1), &b), Some(7));
        assert_eq!(f.coeff_of(VarId(2), &b), Some(1));
    }

    #[test]
    fn offset_access_keeps_stride() {
        // stencil access m[i, j+1]
        let f = affine_of(&(Expr::var(VarId(1)) + Expr::int(1)));
        assert_eq!(f.coeff_of(VarId(1), &Bindings::new()), Some(1));
    }

    #[test]
    fn data_dependent_index_is_nonaffine() {
        use crate::expr::ReadSrc;
        use crate::program::ArrayId;
        let e = Expr::Read(ReadSrc::Array(ArrayId(0)), vec![Expr::var(VarId(0))]);
        assert_eq!(affine_of(&e), AffineForm::NonAffine);
        assert_eq!(affine_of(&e).coeff_of(VarId(0), &Bindings::new()), None);
    }

    #[test]
    fn scaled_var() {
        let e = Expr::var(VarId(0)) * Expr::int(4);
        let f = affine_of(&e);
        assert_eq!(f.coeff_of(VarId(0), &Bindings::new()), Some(4));
    }

    #[test]
    fn subtraction_of_constant() {
        let e = Expr::var(VarId(0)) - Expr::int(1);
        let f = affine_of(&e);
        assert_eq!(f.coeff_of(VarId(0), &Bindings::new()), Some(1));
    }

    #[test]
    fn subtraction_of_var_degrades() {
        let e = Expr::var(VarId(0)) - Expr::var(VarId(1));
        assert_eq!(affine_of(&e), AffineForm::NonAffine);
    }

    #[test]
    fn nonlinear_product_degrades() {
        let e = Expr::var(VarId(0)) * Expr::var(VarId(1));
        assert_eq!(affine_of(&e), AffineForm::NonAffine);
    }

    #[test]
    fn select_with_equal_strides_stays_affine() {
        let c = Expr::var(VarId(2)).gt(Expr::lit(0.0));
        let e = c.select(Expr::var(VarId(0)) + Expr::int(1), Expr::var(VarId(0)));
        // constant differs but terms equal? terms equal requires same constant
        // too (we compare whole forms), so this degrades:
        assert_eq!(affine_of(&e), AffineForm::NonAffine);
        let e2 = Expr::var(VarId(2))
            .gt(Expr::lit(0.0))
            .select(Expr::var(VarId(0)), Expr::var(VarId(0)));
        assert!(matches!(affine_of(&e2), AffineForm::Affine { .. }));
    }

    #[test]
    fn mentions_checks_terms() {
        let f = affine_of(&(Expr::var(VarId(0)) * Expr::int(8)));
        assert!(f.mentions(VarId(0)));
        assert!(!f.mentions(VarId(1)));
        assert!(AffineForm::NonAffine.mentions(VarId(5)));
    }
}
