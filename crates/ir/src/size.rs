//! Symbolic sizes.
//!
//! Loop extents and array shapes in the IR are [`Size`] expressions over
//! integer constants and named symbols (`R`, `C`, `numNodes`, …). Symbols are
//! bound to concrete values at "kernel launch" time via [`Bindings`]. When a
//! size is needed during the static mapping analysis and no binding is
//! available, the paper's default of 1000 is assumed (Section IV-C).

use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// Identifier of a size symbol within a [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymId(pub u32);

/// Default extent assumed for statically unknown sizes (Section IV-C:
/// "a default size is assumed (1000 by default)").
pub const DEFAULT_UNKNOWN_SIZE: i64 = 1000;

/// A (possibly symbolic) non-negative integer size expression.
///
/// # Examples
///
/// ```
/// use multidim_ir::{Size, SymId, Bindings};
///
/// let r = Size::sym(SymId(0));
/// let total = r.clone() * Size::from(4) + Size::from(2);
/// let mut b = Bindings::new();
/// b.bind(SymId(0), 10);
/// assert_eq!(total.eval(&b), 42);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Size {
    /// A compile-time constant.
    Const(i64),
    /// A named symbol bound at launch time.
    Sym(SymId),
    /// Sum of two sizes.
    Add(Box<Size>, Box<Size>),
    /// Difference of two sizes (clamped at zero on evaluation).
    Sub(Box<Size>, Box<Size>),
    /// Product of two sizes.
    Mul(Box<Size>, Box<Size>),
    /// Ceiling division.
    CeilDiv(Box<Size>, Box<Size>),
    /// A size whose value is only known dynamically (e.g. the extent of an
    /// inner pattern computed from data, like a node's neighbor count).
    /// Carries an *estimated* extent for analysis; the hard constraint
    /// machinery treats it as unknown (forcing `Span(all)`, Section IV-A).
    Dynamic(i64),
}

impl Size {
    /// A symbolic size.
    pub fn sym(id: SymId) -> Self {
        Size::Sym(id)
    }

    /// A dynamically-determined size with the default analysis estimate.
    pub fn dynamic() -> Self {
        Size::Dynamic(DEFAULT_UNKNOWN_SIZE)
    }

    /// A dynamically-determined size with a user-provided estimate
    /// (the paper: "users can provide the size information from the
    /// application to enable better optimization").
    pub fn dynamic_with_estimate(estimate: i64) -> Self {
        Size::Dynamic(estimate)
    }

    /// `true` if the extent is not known at kernel-launch time.
    ///
    /// Such sizes force the conservative `Span(all)` choice because the
    /// launch configuration cannot depend on them.
    pub fn is_dynamic(&self) -> bool {
        match self {
            Size::Dynamic(_) => true,
            Size::Const(_) | Size::Sym(_) => false,
            Size::Add(a, b) | Size::Sub(a, b) | Size::Mul(a, b) | Size::CeilDiv(a, b) => {
                a.is_dynamic() || b.is_dynamic()
            }
        }
    }

    /// Evaluate with all symbols bound.
    ///
    /// # Panics
    ///
    /// Panics if a symbol has no binding; use [`Size::eval_or_default`] for
    /// analysis-time evaluation.
    pub fn eval(&self, b: &Bindings) -> i64 {
        self.eval_inner(b, None)
            .unwrap_or_else(|| panic!("unbound size symbol in {self}"))
    }

    /// Evaluate, substituting `DEFAULT_UNKNOWN_SIZE` for unbound symbols —
    /// the analysis-time behaviour from Section IV-C.
    pub fn eval_or_default(&self, b: &Bindings) -> i64 {
        self.eval_inner(b, Some(DEFAULT_UNKNOWN_SIZE))
            .expect("default provided")
    }

    fn eval_inner(&self, b: &Bindings, default: Option<i64>) -> Option<i64> {
        Some(match self {
            Size::Const(n) => *n,
            Size::Sym(id) => match b.get(*id) {
                Some(v) => v,
                None => default?,
            },
            Size::Dynamic(est) => match default {
                // During analysis the estimate stands in for the value.
                Some(_) => *est,
                // At launch time a dynamic size has no single value either;
                // the estimate is the best available.
                None => *est,
            },
            Size::Add(a, c) => a.eval_inner(b, default)? + c.eval_inner(b, default)?,
            Size::Sub(a, c) => (a.eval_inner(b, default)? - c.eval_inner(b, default)?).max(0),
            Size::Mul(a, c) => a.eval_inner(b, default)? * c.eval_inner(b, default)?,
            Size::CeilDiv(a, c) => {
                let d = c.eval_inner(b, default)?;
                assert!(d > 0, "division by zero in size expression");
                (a.eval_inner(b, default)? + d - 1) / d
            }
        })
    }
}

impl From<i64> for Size {
    fn from(n: i64) -> Self {
        Size::Const(n)
    }
}

impl From<SymId> for Size {
    fn from(id: SymId) -> Self {
        Size::Sym(id)
    }
}

impl Add for Size {
    type Output = Size;
    fn add(self, rhs: Size) -> Size {
        Size::Add(Box::new(self), Box::new(rhs))
    }
}

impl Sub for Size {
    type Output = Size;
    fn sub(self, rhs: Size) -> Size {
        Size::Sub(Box::new(self), Box::new(rhs))
    }
}

impl Mul for Size {
    type Output = Size;
    fn mul(self, rhs: Size) -> Size {
        Size::Mul(Box::new(self), Box::new(rhs))
    }
}

impl Div for Size {
    type Output = Size;
    /// Ceiling division (the only division the IR needs: block counts).
    fn div(self, rhs: Size) -> Size {
        Size::CeilDiv(Box::new(self), Box::new(rhs))
    }
}

impl fmt::Display for Size {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Size::Const(n) => write!(f, "{n}"),
            Size::Sym(SymId(i)) => write!(f, "s{i}"),
            Size::Dynamic(e) => write!(f, "dyn(~{e})"),
            Size::Add(a, b) => write!(f, "({a} + {b})"),
            Size::Sub(a, b) => write!(f, "({a} - {b})"),
            Size::Mul(a, b) => write!(f, "({a} * {b})"),
            Size::CeilDiv(a, b) => write!(f, "ceil({a} / {b})"),
        }
    }
}

/// Launch-time values for size symbols.
///
/// # Examples
///
/// ```
/// use multidim_ir::{Bindings, SymId, Size};
///
/// let mut b = Bindings::new();
/// b.bind(SymId(3), 64);
/// assert_eq!(Size::sym(SymId(3)).eval(&b), 64);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bindings {
    values: Vec<Option<i64>>,
}

impl Bindings {
    /// An empty set of bindings.
    pub fn new() -> Self {
        Bindings::default()
    }

    /// Bind `sym` to `value`, replacing any previous binding.
    pub fn bind(&mut self, sym: SymId, value: i64) -> &mut Self {
        let idx = sym.0 as usize;
        if self.values.len() <= idx {
            self.values.resize(idx + 1, None);
        }
        self.values[idx] = Some(value);
        self
    }

    /// Look up the binding for `sym`.
    pub fn get(&self, sym: SymId) -> Option<i64> {
        self.values.get(sym.0 as usize).copied().flatten()
    }
}

impl FromIterator<(SymId, i64)> for Bindings {
    fn from_iter<I: IntoIterator<Item = (SymId, i64)>>(iter: I) -> Self {
        let mut b = Bindings::new();
        for (s, v) in iter {
            b.bind(s, v);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_eval() {
        assert_eq!(Size::from(7).eval(&Bindings::new()), 7);
    }

    #[test]
    fn arithmetic() {
        let mut b = Bindings::new();
        b.bind(SymId(0), 5);
        let e = (Size::sym(SymId(0)) + Size::from(3)) * Size::from(2);
        assert_eq!(e.eval(&b), 16);
    }

    #[test]
    fn sub_clamps_at_zero() {
        let e = Size::from(3) - Size::from(10);
        assert_eq!(e.eval(&Bindings::new()), 0);
    }

    #[test]
    fn ceil_div() {
        let e = Size::from(10) / Size::from(3);
        assert_eq!(e.eval(&Bindings::new()), 4);
    }

    #[test]
    fn default_for_unbound() {
        let e = Size::sym(SymId(9));
        assert_eq!(e.eval_or_default(&Bindings::new()), DEFAULT_UNKNOWN_SIZE);
    }

    #[test]
    #[should_panic(expected = "unbound size symbol")]
    fn eval_panics_on_unbound() {
        Size::sym(SymId(1)).eval(&Bindings::new());
    }

    #[test]
    fn dynamic_detection() {
        assert!(Size::dynamic().is_dynamic());
        assert!((Size::dynamic() + Size::from(1)).is_dynamic());
        assert!(!Size::from(4).is_dynamic());
        assert!(!Size::sym(SymId(0)).is_dynamic());
    }

    #[test]
    fn dynamic_estimate_used_in_analysis() {
        let d = Size::dynamic_with_estimate(250);
        assert_eq!(d.eval_or_default(&Bindings::new()), 250);
    }

    #[test]
    fn bindings_from_iter() {
        let b: Bindings = [(SymId(0), 1), (SymId(2), 3)].into_iter().collect();
        assert_eq!(b.get(SymId(0)), Some(1));
        assert_eq!(b.get(SymId(1)), None);
        assert_eq!(b.get(SymId(2)), Some(3));
    }

    #[test]
    fn display_forms() {
        let e = Size::sym(SymId(1)) * Size::from(2);
        assert_eq!(e.to_string(), "(s1 * 2)");
    }
}
