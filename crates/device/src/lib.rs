//! Device models used across the `multidim` framework.
//!
//! The mapping analysis of *Locality-Aware Mapping of Nested Parallel
//! Patterns on GPUs* (MICRO 2014) is parameterized by a handful of hardware
//! characteristics: warp width, shared-memory capacity, the maximum number of
//! resident threads and blocks per streaming multiprocessor, and the
//! device-wide `MIN_DOP` / `MAX_DOP` thresholds used by `ControlDOP`
//! (Algorithm 1 in the paper). The simulator additionally needs throughput
//! and latency figures to turn executed kernels into time estimates.
//!
//! This crate holds those descriptions so that the mapping analysis
//! ([`GpuSpec`]), the code generator, and the simulator all agree on the
//! hardware they target.
//!
//! # Examples
//!
//! ```
//! use multidim_device::GpuSpec;
//!
//! let k20c = GpuSpec::tesla_k20c();
//! assert_eq!(k20c.sm_count, 13);
//! assert_eq!(k20c.min_dop(), 13 * 2048);
//! ```

mod cpu;
mod gpu;
mod pcie;

pub use cpu::CpuSpec;
pub use gpu::GpuSpec;
pub use pcie::PcieSpec;

/// Number of lanes in a warp on every device modeled by this crate.
///
/// NVIDIA GPUs execute 32 threads per warp; the paper's soft constraints
/// ("block size multiple of `WARP_SIZE`") and the coalescing model both use
/// this value.
pub const WARP_SIZE: u32 = 32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_size_is_nvidia_width() {
        assert_eq!(WARP_SIZE, 32);
    }
}
