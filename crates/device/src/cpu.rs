//! CPU reference-machine specification.

/// Static description of the multicore CPU used as the Figure 14 baseline.
///
/// The paper's reference machine is a Dell Precision T7500n with two
/// quad-core Xeon 2.67 GHz processors. The simulator's CPU model is analytic:
/// given op and byte counts from the reference interpreter it computes a
/// roofline time `max(compute, bandwidth)`, derating bandwidth for random
/// access.
///
/// # Examples
///
/// ```
/// use multidim_device::CpuSpec;
///
/// let cpu = CpuSpec::dual_xeon_x5550();
/// assert_eq!(cpu.cores, 8);
/// let flops = cpu.peak_flops();
/// assert!(flops > 8.0 * 2.67e9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Total physical cores across sockets.
    pub cores: u32,
    /// Clock frequency in Hz.
    pub clock_hz: f64,
    /// SIMD lanes per core for f64 math (SSE3 ≈ 2 doubles / 4 floats; the
    /// MSMBuilder baseline uses hand-written SSE3 intrinsics).
    pub simd_width: u32,
    /// Scalar instructions retired per cycle per core (superscalar factor).
    pub ipc: f64,
    /// Aggregate DRAM bandwidth in bytes per second.
    pub dram_bandwidth: f64,
    /// Cache-line size in bytes (for random-access bandwidth derating).
    pub cache_line_bytes: u64,
}

impl CpuSpec {
    /// Two quad-core Xeon 2.67 GHz sockets — the paper's CPU baseline
    /// (Section VI-B).
    pub fn dual_xeon_x5550() -> Self {
        CpuSpec {
            name: "2x quad-core Xeon 2.67GHz",
            cores: 8,
            clock_hz: 2.67e9,
            simd_width: 4,
            ipc: 1.5,
            dram_bandwidth: 25e9,
            cache_line_bytes: 64,
        }
    }

    /// Peak floating-point throughput in operations per second assuming all
    /// cores issue full-width SIMD at the modeled IPC.
    pub fn peak_flops(&self) -> f64 {
        self.cores as f64 * self.clock_hz * self.simd_width as f64 * self.ipc
    }
}

impl Default for CpuSpec {
    fn default() -> Self {
        CpuSpec::dual_xeon_x5550()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_peak() {
        let c = CpuSpec::dual_xeon_x5550();
        let expect = 8.0 * 2.67e9 * 4.0 * 1.5;
        assert!((c.peak_flops() - expect).abs() < 1.0);
    }
}
