//! GPU device specification.

use crate::WARP_SIZE;

/// Static description of a CUDA-class GPU.
///
/// Carries both the *architectural limits* the mapping analysis needs
/// (maximum block sizes, resident thread/block counts, shared-memory
/// capacity) and the *performance parameters* the timing model needs
/// (clock, bandwidth, latencies, overheads).
///
/// The default constructors are presets for the devices mentioned in the
/// paper: [`GpuSpec::tesla_k20c`] (the evaluation machine) and
/// [`GpuSpec::tesla_c2050`] (mentioned in the background section).
///
/// # Examples
///
/// ```
/// use multidim_device::GpuSpec;
///
/// let gpu = GpuSpec::tesla_k20c();
/// // ControlDOP thresholds from Section IV-D of the paper:
/// assert_eq!(gpu.min_dop(), gpu.sm_count as u64 * gpu.max_threads_per_sm as u64);
/// assert_eq!(gpu.max_dop(), 100 * gpu.min_dop());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Human-readable device name.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Maximum number of resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum number of resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum number of threads in one thread block.
    pub max_threads_per_block: u32,
    /// Per-dimension limits on the block shape `[x, y, z]`.
    pub max_block_dim: [u32; 3],
    /// Shared memory capacity per SM, in bytes.
    pub smem_per_sm: u32,
    /// Shared memory bank count (4-byte banks).
    pub smem_banks: u32,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Warp instructions issued per cycle per SM (number of warp schedulers).
    pub issue_width: u32,
    /// Peak DRAM bandwidth in bytes per second.
    pub dram_bandwidth: f64,
    /// Average global-memory latency in core cycles.
    pub mem_latency_cycles: f64,
    /// DRAM transaction (segment) size in bytes used by the coalescer.
    pub transaction_bytes: u64,
    /// Memory-level parallelism sustained per warp (outstanding requests).
    pub mlp_per_warp: f64,
    /// Maximum outstanding memory transactions per SM (MSHR limit) —
    /// caps how much latency resident warps can hide.
    pub mshr_per_sm: f64,
    /// Fixed kernel-launch overhead in seconds.
    pub kernel_launch_overhead_s: f64,
    /// Fixed overhead of one *device-side* (dynamic-parallelism) child
    /// launch in seconds. Measured CDP launch latencies on Kepler-class
    /// parts are several microseconds — notably worse than host launches,
    /// which is exactly why launch consolidation pays off.
    pub child_launch_overhead_s: f64,
    /// Per-thread-block dispatch cost in cycles (scheduling overhead; the
    /// paper cites "the overhead of too many thread blocks").
    pub block_dispatch_cycles: f64,
    /// Cost of one in-kernel `malloc` call in cycles. Device-side allocation
    /// is heavily serialized on real hardware; Section V-A calls its cost
    /// "significant".
    pub device_malloc_cycles: f64,
    /// Shared-memory access latency in cycles (per conflict-free access).
    pub smem_cycles: f64,
    /// Cycles consumed by a block-wide `__syncthreads()`.
    pub sync_cycles: f64,
}

impl GpuSpec {
    /// NVIDIA Tesla K20c: the evaluation GPU of Section VI-B.
    ///
    /// 13 SMX units, 2048 resident threads each, 48 KB shared memory,
    /// 208 GB/s GDDR5, 706 MHz core clock.
    pub fn tesla_k20c() -> Self {
        GpuSpec {
            name: "Tesla K20c",
            sm_count: 13,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 16,
            max_threads_per_block: 1024,
            max_block_dim: [1024, 1024, 64],
            smem_per_sm: 48 * 1024,
            smem_banks: 32,
            clock_hz: 706e6,
            issue_width: 4,
            dram_bandwidth: 208e9,
            mem_latency_cycles: 400.0,
            transaction_bytes: 128,
            mlp_per_warp: 6.0,
            mshr_per_sm: 64.0,
            kernel_launch_overhead_s: 5e-6,
            child_launch_overhead_s: 8e-6,
            block_dispatch_cycles: 30.0,
            device_malloc_cycles: 30_000.0,
            smem_cycles: 2.0,
            sync_cycles: 12.0,
        }
    }

    /// NVIDIA Tesla C2050 (Fermi), mentioned in Section II: 14 SMs.
    pub fn tesla_c2050() -> Self {
        GpuSpec {
            name: "Tesla C2050",
            sm_count: 14,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 8,
            max_threads_per_block: 1024,
            max_block_dim: [1024, 1024, 64],
            smem_per_sm: 48 * 1024,
            smem_banks: 32,
            clock_hz: 1150e6,
            issue_width: 2,
            dram_bandwidth: 144e9,
            mem_latency_cycles: 500.0,
            transaction_bytes: 128,
            mlp_per_warp: 4.0,
            mshr_per_sm: 48.0,
            kernel_launch_overhead_s: 6e-6,
            // Fermi has no hardware dynamic parallelism; model a costly
            // software path so consolidation is always preferred.
            child_launch_overhead_s: 2e-5,
            block_dispatch_cycles: 30.0,
            device_malloc_cycles: 50_000.0,
            smem_cycles: 2.0,
            sync_cycles: 12.0,
        }
    }

    /// Minimum degree of parallelism `ControlDOP` aims for: enough threads
    /// to fill every SM (`sm_count * max_threads_per_sm`, Section IV-D).
    pub fn min_dop(&self) -> u64 {
        self.sm_count as u64 * self.max_threads_per_sm as u64
    }

    /// Maximum degree of parallelism before `ControlDOP` coarsens spans:
    /// `100 * min_dop` (Section IV-D).
    pub fn max_dop(&self) -> u64 {
        100 * self.min_dop()
    }

    /// Number of warps per SM when fully occupied.
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / WARP_SIZE
    }

    /// Convert a cycle count on this device to seconds.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / self.clock_hz
    }
}

impl Default for GpuSpec {
    /// The paper's evaluation device ([`GpuSpec::tesla_k20c`]).
    fn default() -> Self {
        GpuSpec::tesla_k20c()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k20c_dop_thresholds_match_paper() {
        let g = GpuSpec::tesla_k20c();
        assert_eq!(g.min_dop(), 13 * 2048);
        assert_eq!(g.max_dop(), 100 * 13 * 2048);
    }

    #[test]
    fn max_warps() {
        assert_eq!(GpuSpec::tesla_k20c().max_warps_per_sm(), 64);
        assert_eq!(GpuSpec::tesla_c2050().max_warps_per_sm(), 48);
    }

    #[test]
    fn cycles_round_trip() {
        let g = GpuSpec::tesla_k20c();
        let secs = g.cycles_to_seconds(706e6);
        assert!((secs - 1.0).abs() < 1e-12);
    }

    #[test]
    fn default_is_k20c() {
        assert_eq!(GpuSpec::default(), GpuSpec::tesla_k20c());
    }
}
