//! Host-to-device interconnect model.

/// PCIe transfer model used to charge input-transfer cost where the paper
/// includes it (Section VI-E charges the Naive Bayes training matrix).
///
/// # Examples
///
/// ```
/// use multidim_device::PcieSpec;
///
/// let pcie = PcieSpec::gen2_x16();
/// let t = pcie.transfer_seconds(6_000_000_000);
/// assert!(t > 0.9 && t < 1.5); // ~6 GB/s effective
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PcieSpec {
    /// Effective (not theoretical) bandwidth in bytes per second.
    pub bandwidth: f64,
    /// Fixed per-transfer setup latency in seconds.
    pub latency_s: f64,
}

impl PcieSpec {
    /// PCIe 2.0 x16 as on the K20c host: ~6 GB/s effective.
    pub fn gen2_x16() -> Self {
        PcieSpec {
            bandwidth: 6e9,
            latency_s: 10e-6,
        }
    }

    /// Seconds to move `bytes` across the link, including setup latency.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth
    }
}

impl Default for PcieSpec {
    fn default() -> Self {
        PcieSpec::gen2_x16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_floor() {
        let p = PcieSpec::gen2_x16();
        assert!(p.transfer_seconds(0) >= 10e-6);
    }

    #[test]
    fn bandwidth_scales_linearly() {
        let p = PcieSpec::gen2_x16();
        let t1 = p.transfer_seconds(1 << 20) - p.latency_s;
        let t2 = p.transfer_seconds(2 << 20) - p.latency_s;
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }
}
