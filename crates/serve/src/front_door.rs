//! The fleet front door: N engine shards behind one submit surface.
//!
//! A request travels admission → routing → coalescing → shedding →
//! shard queue:
//!
//! 1. **Admission** — the tenant's token bucket (then the shared spare
//!    bucket) must yield a token, else the request is rejected with
//!    [`ServeError::QuotaExceeded`] and a retry hint.
//! 2. **Routing** — the request's program fingerprint picks its *home*
//!    shard by rendezvous hashing ([`Router`]), so a program always
//!    lands on the shard whose hot cache holds it.
//! 3. **Coalescing** — a front-door single-flight table maps each
//!    fingerprint that is cold-compiling *somewhere* to that shard;
//!    concurrent submissions of the same program are steered there and
//!    pile onto the one in-flight compile (the per-shard cache then
//!    single-flights them onto the same executable) instead of
//!    compiling once per shard they spill to.
//! 4. **Shedding** — if the target shard's estimated drain time already
//!    exceeds the request's deadline, the front door sheds at admission
//!    ([`ServeError::DeadlineUnmeetable`]) instead of queueing doomed
//!    work.
//! 5. **Spill** — if the home shard rejects by backpressure, the
//!    request falls to the least-loaded other shard; if that rejects
//!    too, the request is shed ([`ServeError::Overloaded`]) with
//!    per-tenant accounting.
//!
//! The cache is tiered: each shard's in-memory executable cache is the
//! hot tier, and a shared persistent tuning store (point every shard's
//! [`EngineConfig::store_path`] at the same file) is the warm tier —
//! a shard that has never seen a program still skips the mapping
//! search when any previous process tuned it. [`FrontDoor::preload`]
//! optionally walks a catalog through the fleet at startup so serving
//! begins warm.

use crate::error::ServeError;
use crate::quota::{Admission, QuotaPolicy};
use crate::router::Router;
use multidim::{Compiler, Executable, Fingerprint};
use multidim_engine::{
    Engine, EngineConfig, EngineError, Request, Response, Ticket as EngineTicket, TuneRecord,
};
use multidim_obs::{
    Counter, CounterFamily, GaugeFamily, Histogram, HistogramFamily, Registry, RequestProfile, Slo,
    SloStatus, SloTracker,
};
use multidim_trace::{instant_us, SpanRecord, TraceContext, TraceOutcome};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Front-door sizing and policy.
#[derive(Debug, Clone)]
pub struct FrontDoorConfig {
    /// Engine shards to run. Default 4.
    pub shards: usize,
    /// Configuration applied to every shard. Point `store_path` at one
    /// shared file to give the fleet a common warm tier. Default:
    /// [`EngineConfig::default`].
    pub shard: EngineConfig,
    /// Per-tenant admission policy. Default: unlimited.
    pub quota: QuotaPolicy,
    /// Spill to the least-loaded shard when the home shard rejects.
    /// Default on.
    pub spill: bool,
    /// How long a coalescing-table claim may outlive its compile before
    /// expiring (covers compiles that fail and never populate the
    /// cache). Default 10 s.
    pub coalesce_ttl: Duration,
    /// The SLO each tenant's tracker is judged against. Default 99%
    /// availability, p99 ≤ 50 ms.
    pub tenant_slo: Slo,
    /// SLO windows retained per tenant (the burn-rate horizon).
    /// Default 64.
    pub slo_windows: usize,
}

impl Default for FrontDoorConfig {
    fn default() -> FrontDoorConfig {
        FrontDoorConfig {
            shards: 4,
            shard: EngineConfig::default(),
            quota: QuotaPolicy::default(),
            spill: true,
            coalesce_ttl: Duration::from_secs(10),
            tenant_slo: Slo::new("tenant", 0.99, 0.050),
            slo_windows: 64,
        }
    }
}

/// Front-door metric handles, all registered on one [`Registry`].
struct FrontMetrics {
    requests: Arc<Counter>,
    completed: Arc<Counter>,
    expired: Arc<Counter>,
    failed: Arc<Counter>,
    quota_rejected: Arc<Counter>,
    shed_deadline: Arc<Counter>,
    shed_overload: Arc<Counter>,
    spilled: Arc<Counter>,
    coalesced: Arc<Counter>,
    preloaded: Arc<Counter>,
    latency: Arc<Histogram>,
    tenant_requests: Arc<CounterFamily>,
    tenant_completed: Arc<CounterFamily>,
    tenant_quota_rejected: Arc<CounterFamily>,
    tenant_shed: Arc<CounterFamily>,
    tenant_failed: Arc<CounterFamily>,
    tenant_latency: Arc<HistogramFamily>,
    shard_requests: Arc<CounterFamily>,
    shard_spills: Arc<CounterFamily>,
    shard_queue_depth: Arc<GaugeFamily>,
    shard_in_flight: Arc<GaugeFamily>,
}

impl FrontMetrics {
    fn new(registry: &Registry) -> FrontMetrics {
        FrontMetrics {
            requests: registry.counter(
                "serve_requests_total",
                "requests submitted to the front door",
            ),
            completed: registry.counter("serve_completed_total", "requests served successfully"),
            expired: registry.counter(
                "serve_expired_total",
                "requests whose deadline expired in a shard",
            ),
            failed: registry.counter(
                "serve_failed_total",
                "requests that failed (compile/run/panic/timeout)",
            ),
            quota_rejected: registry.counter(
                "serve_quota_rejected_total",
                "requests rejected by tenant quota",
            ),
            shed_deadline: registry.counter(
                "serve_shed_deadline_total",
                "requests shed at admission: deadline unmeetable",
            ),
            shed_overload: registry.counter(
                "serve_shed_overload_total",
                "requests shed after every eligible shard rejected",
            ),
            spilled: registry.counter(
                "serve_spilled_total",
                "requests spilled off their home shard",
            ),
            coalesced: registry.counter(
                "serve_coalesced_total",
                "requests steered onto an in-flight compile",
            ),
            preloaded: registry
                .counter("serve_preloaded_total", "catalog entries warmed by preload"),
            latency: registry.histogram(
                "serve_request_seconds",
                "end-to-end latency of served requests",
            ),
            tenant_requests: registry.counter_family(
                "serve_tenant_requests",
                "requests by tenant",
                "tenant",
            ),
            tenant_completed: registry.counter_family(
                "serve_tenant_completed",
                "completions by tenant",
                "tenant",
            ),
            tenant_quota_rejected: registry.counter_family(
                "serve_tenant_quota_rejected",
                "quota rejections by tenant",
                "tenant",
            ),
            tenant_shed: registry.counter_family(
                "serve_tenant_shed",
                "overload/deadline sheds by tenant",
                "tenant",
            ),
            tenant_failed: registry.counter_family(
                "serve_tenant_failed",
                "failures by tenant",
                "tenant",
            ),
            tenant_latency: registry.histogram_family(
                "serve_tenant_request_seconds",
                "request latency by tenant",
                "tenant",
            ),
            shard_requests: registry.counter_family(
                "serve_shard_requests",
                "requests queued by shard",
                "shard",
            ),
            shard_spills: registry.counter_family(
                "serve_shard_spills",
                "spilled requests received by shard",
                "shard",
            ),
            shard_queue_depth: registry.gauge_family(
                "serve_shard_queue_depth",
                "request-queue depth by shard",
                "shard",
            ),
            shard_in_flight: registry.gauge_family(
                "serve_shard_in_flight",
                "requests being processed by shard",
                "shard",
            ),
        }
    }
}

/// State shared between the front door and its outstanding tickets.
struct DoorShared {
    registry: Arc<Registry>,
    metrics: FrontMetrics,
    slo: Mutex<BTreeMap<String, SloTracker>>,
    tenant_slo: Slo,
    slo_windows: usize,
}

impl DoorShared {
    /// Record one outcome on the tenant's SLO tracker, creating it on
    /// first sight.
    fn record_slo(&self, tenant: &str, latency_seconds: f64, success: bool) {
        let mut map = self.slo.lock().expect("slo lock poisoned");
        let tracker = map.entry(tenant.to_string()).or_insert_with(|| {
            let slo = Slo::new(
                tenant,
                self.tenant_slo.availability,
                self.tenant_slo.latency.threshold,
            );
            SloTracker::new(slo, self.slo_windows)
        });
        tracker.record(latency_seconds, success);
    }

    /// Account a finished request against counters, latency histograms,
    /// and the tenant's SLO. `exemplar` is the kept trace id, if the
    /// tail sampler retained this request's trace — the latency sample
    /// then publishes it as a bucket exemplar (only kept traces may be
    /// published, or exemplar lookups would dangle).
    fn record_outcome(
        &self,
        tenant: &str,
        outcome: &Result<Response, EngineError>,
        exemplar: Option<u128>,
    ) {
        let m = &self.metrics;
        match outcome {
            Ok(resp) => {
                let latency = (resp.queue_wait + resp.service_time).as_secs_f64();
                m.completed.inc();
                m.tenant_completed.with(tenant).inc();
                match exemplar {
                    Some(id) => {
                        m.latency.record_with_exemplar(latency, id);
                        m.tenant_latency
                            .with(tenant)
                            .record_with_exemplar(latency, id);
                    }
                    None => {
                        m.latency.record(latency);
                        m.tenant_latency.with(tenant).record(latency);
                    }
                }
                self.record_slo(tenant, latency, true);
            }
            Err(EngineError::DeadlineExceeded { .. }) => {
                m.expired.inc();
                m.tenant_shed.with(tenant).inc();
                self.record_slo(tenant, 0.0, false);
            }
            Err(EngineError::Rejected { .. }) => {
                // Backpressure is normally handled at submit time; a
                // rejection surfacing here still counts as a shed.
                m.shed_overload.inc();
                m.tenant_shed.with(tenant).inc();
                self.record_slo(tenant, 0.0, false);
            }
            Err(_) => {
                m.failed.inc();
                m.tenant_failed.with(tenant).inc();
                self.record_slo(tenant, 0.0, false);
            }
        }
    }
}

/// A coalescing-table claim: the shard compiling this fingerprint and
/// when the claim was made.
struct Inflight {
    shard: usize,
    since: Instant,
}

/// Record the door-owned root span and seal the trace in the installed
/// store: the root covers admission → outcome and carries the routing
/// facts, so a stored trace reads as one stitched tree (serve root, then
/// the shard's queue/compile/run children). Returns the trace id when
/// the tail sampler kept the trace; `None` when the door didn't mint the
/// context (`trace` is `None`), tracing is off, or the trace was
/// sampled out.
#[allow(clippy::too_many_arguments)]
fn finish_door_trace(
    trace: Option<TraceContext>,
    admitted: Option<Instant>,
    tenant: &str,
    shard: Option<usize>,
    spilled: bool,
    coalesced: bool,
    outcome: TraceOutcome,
    latency_seconds: Option<f64>,
) -> Option<u128> {
    let ctx = trace.filter(|c| c.sampled)?;
    let store = multidim_trace::store()?;
    let admitted = admitted?;
    let mut args: Vec<(&'static str, multidim_trace::Value)> = vec![
        ("tenant", tenant.to_string().into()),
        ("outcome", outcome.as_str().into()),
        ("spilled", spilled.into()),
        ("coalesced", coalesced.into()),
    ];
    if let Some(shard) = shard {
        args.push(("shard", (shard as u64).into()));
    }
    store.record(
        &ctx,
        SpanRecord {
            span_id: ctx.span_id,
            parent: None,
            cat: "serve",
            name: "request",
            start_us: instant_us(admitted),
            dur_us: admitted.elapsed().as_secs_f64() * 1e6,
            args,
        },
    );
    store
        .finish(&ctx, outcome, latency_seconds)
        .then_some(ctx.trace_id)
}

/// Record one already-elapsed child span of `ctx` (routing decisions
/// reconstructed at the moment they're known).
fn record_door_span(
    ctx: &TraceContext,
    name: &'static str,
    start: Instant,
    args: Vec<(&'static str, multidim_trace::Value)>,
) {
    if !ctx.sampled {
        return;
    }
    if let Some(store) = multidim_trace::store() {
        let child = ctx.child();
        store.record(
            ctx,
            SpanRecord {
                span_id: child.span_id,
                parent: Some(ctx.span_id),
                cat: "serve",
                name,
                start_us: instant_us(start),
                dur_us: start.elapsed().as_secs_f64() * 1e6,
                args,
            },
        );
    }
}

/// A front-door completion handle: the shard ticket plus the routing
/// facts (tenant, shard, spill/coalesce flags) that annotate the
/// response and drive per-tenant accounting when the result lands.
pub struct Ticket {
    inner: EngineTicket,
    shared: Arc<DoorShared>,
    tenant: String,
    /// The trace the door minted for this request (`None` when tracing
    /// is off or an upstream caller supplied its own context).
    trace: Option<TraceContext>,
    /// When the door admitted the request.
    admitted: Option<Instant>,
    /// Shard the request was queued on.
    pub shard: usize,
    /// `true` when the home shard rejected and the request ran on the
    /// spill target instead.
    pub spilled: bool,
    /// `true` when the request was steered onto another submission's
    /// in-flight compile.
    pub coalesced: bool,
}

impl Ticket {
    #[allow(clippy::too_many_arguments)]
    fn conclude(
        shared: &DoorShared,
        tenant: &str,
        shard: usize,
        spilled: bool,
        coalesced: bool,
        trace: Option<TraceContext>,
        admitted: Option<Instant>,
        outcome: Result<Response, EngineError>,
    ) -> Result<ServeResponse, ServeError> {
        let (trace_outcome, latency) = match &outcome {
            Ok(resp) => (
                TraceOutcome::Completed,
                Some((resp.queue_wait + resp.service_time).as_secs_f64()),
            ),
            Err(EngineError::DeadlineExceeded { .. }) => (TraceOutcome::Expired, None),
            Err(EngineError::Rejected { .. }) => (TraceOutcome::Shed, None),
            Err(_) => (TraceOutcome::Failed, None),
        };
        let kept = finish_door_trace(
            trace,
            admitted,
            tenant,
            Some(shard),
            spilled,
            coalesced,
            trace_outcome,
            latency,
        );
        shared.record_outcome(tenant, &outcome, kept);
        match outcome {
            Ok(response) => Ok(ServeResponse {
                tenant: tenant.to_string(),
                shard,
                spilled,
                coalesced,
                response,
            }),
            Err(e) => Err(ServeError::Engine(e)),
        }
    }

    /// Block until the response arrives.
    pub fn wait(self) -> Result<ServeResponse, ServeError> {
        let outcome = self.inner.wait();
        Self::conclude(
            &self.shared,
            &self.tenant,
            self.shard,
            self.spilled,
            self.coalesced,
            self.trace,
            self.admitted,
            outcome,
        )
    }

    /// Block up to `timeout`. On expiry the request may still complete
    /// in a shard, but its result is discarded and the wait is
    /// accounted as a failure.
    pub fn wait_timeout(self, timeout: Duration) -> Result<ServeResponse, ServeError> {
        let outcome = self.inner.wait_timeout(timeout);
        Self::conclude(
            &self.shared,
            &self.tenant,
            self.shard,
            self.spilled,
            self.coalesced,
            self.trace,
            self.admitted,
            outcome,
        )
    }

    /// Park up to `timeout` for the result to become ready without
    /// consuming it. Returns `true` when a subsequent [`Ticket::poll`]
    /// will yield the outcome.
    pub fn wait_ready(&self, timeout: Duration) -> bool {
        self.inner.wait_ready(timeout)
    }

    /// Non-blocking check; yields the outcome exactly once.
    pub fn poll(&self) -> Option<Result<ServeResponse, ServeError>> {
        let outcome = self.inner.poll()?;
        Some(Self::conclude(
            &self.shared,
            &self.tenant,
            self.shard,
            self.spilled,
            self.coalesced,
            self.trace,
            self.admitted,
            outcome,
        ))
    }
}

/// A served request, annotated with how the front door handled it.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// The submitting tenant.
    pub tenant: String,
    /// Shard that served the request.
    pub shard: usize,
    /// `true` when the request ran off its home shard.
    pub spilled: bool,
    /// `true` when the request was steered onto an in-flight compile.
    pub coalesced: bool,
    /// The shard's response.
    pub response: Response,
}

/// What [`FrontDoor::preload`] accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PreloadReport {
    /// Entries now resident in a shard's hot cache.
    pub warmed: usize,
    /// Entries whose mapping came from the warm tier (tuning store)
    /// rather than a fresh search.
    pub tuned: usize,
    /// Entries that failed to compile or run.
    pub failed: usize,
}

/// Counter snapshot of everything the front door has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontDoorStats {
    /// Requests submitted (before admission).
    pub submitted: u64,
    /// Requests served successfully.
    pub completed: u64,
    /// Deadline expiries inside shards.
    pub expired: u64,
    /// Compile/run/panic/timeout failures.
    pub failed: u64,
    /// Quota rejections.
    pub quota_rejected: u64,
    /// Admission-time deadline sheds.
    pub shed_deadline: u64,
    /// Sheds after every eligible shard rejected.
    pub shed_overload: u64,
    /// Requests that ran off their home shard.
    pub spilled: u64,
    /// Requests steered onto an in-flight compile.
    pub coalesced: u64,
}

/// The sharded, multi-tenant serving tier: N [`Engine`]s behind
/// admission control, rendezvous routing, fleet-wide coalescing, and
/// overload shedding. See the [module docs](self) for the request
/// path.
pub struct FrontDoor {
    shards: Vec<Engine>,
    router: Router,
    admission: Admission,
    inflight: Mutex<HashMap<Fingerprint, Inflight>>,
    coalesce_ttl: Duration,
    spill: bool,
    shard_deadline: Option<Duration>,
    epoch: Instant,
    shared: Arc<DoorShared>,
}

impl FrontDoor {
    /// A front door whose shards all share one compiler configuration
    /// (identical configurations ⇒ identical fingerprints ⇒ coherent
    /// routing and coalescing).
    pub fn new(compiler: Compiler, config: FrontDoorConfig) -> FrontDoor {
        let shards: Vec<Engine> = (0..config.shards.max(1))
            .map(|_| Engine::new(compiler.clone(), config.shard.clone()))
            .collect();
        let registry = Arc::new(Registry::new());
        let metrics = FrontMetrics::new(&registry);
        FrontDoor {
            router: Router::new(shards.len()),
            admission: Admission::new(config.quota),
            inflight: Mutex::new(HashMap::new()),
            coalesce_ttl: config.coalesce_ttl,
            spill: config.spill,
            shard_deadline: config.shard.default_deadline,
            epoch: Instant::now(),
            shared: Arc::new(DoorShared {
                registry,
                metrics,
                slo: Mutex::new(BTreeMap::new()),
                tenant_slo: config.tenant_slo,
                slo_windows: config.slo_windows.max(1),
            }),
            shards,
        }
    }

    /// A default-config front door with `shards` shards.
    pub fn with_shards(shards: usize) -> FrontDoor {
        FrontDoor::new(
            Compiler::new(),
            FrontDoorConfig {
                shards,
                ..FrontDoorConfig::default()
            },
        )
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Direct access to one shard's engine (tests, dashboards).
    pub fn shard(&self, index: usize) -> &Engine {
        &self.shards[index]
    }

    /// The routing function.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The front door's own metric registry (shard engines keep their
    /// own; see [`Engine::registry`]).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.shared.registry)
    }

    /// The content address `(program, bindings)` routes by.
    pub fn fingerprint_of(
        &self,
        program: &multidim_ir::Program,
        bindings: &multidim_ir::Bindings,
    ) -> Fingerprint {
        self.shards[0].fingerprint_of(program, bindings)
    }

    /// The home shard of a fingerprint.
    pub fn home_shard(&self, fp: Fingerprint) -> usize {
        self.router.route(fp)
    }

    /// Aggregate queued requests across shards.
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|e| e.queue_depth()).sum()
    }

    /// Aggregate in-flight requests across shards.
    pub fn in_flight(&self) -> usize {
        self.shards.iter().map(|e| e.in_flight()).sum()
    }

    /// Estimated time before a newly queued request on `shard` reaches
    /// a worker: queued work × average service time ÷ workers. `None`
    /// until the shard completes its first request.
    pub fn estimated_wait(&self, shard: usize) -> Option<Duration> {
        let e = &self.shards[shard];
        let service = e.estimated_service_seconds()?;
        let queued = (e.queue_depth() + e.in_flight()) as f64;
        Some(Duration::from_secs_f64(
            service * (queued + 1.0) / e.workers().max(1) as f64,
        ))
    }

    /// Submit one request on behalf of `tenant`.
    ///
    /// Errors are admission-time rejections; see [`ServeError`]. A
    /// returned [`Ticket`] means the request is queued on
    /// [`Ticket::shard`].
    pub fn submit(&self, tenant: &str, request: Request) -> Result<Ticket, ServeError> {
        let mut request = request;
        // Mint the request's trace context at the outermost boundary —
        // before the retry clone below, so a spilled resubmission
        // continues the *same* trace — and stamp the admission instant
        // so shard queue accounting covers the full wait.
        let door_trace = if request.trace.is_none() && multidim_trace::store_enabled() {
            let ctx = TraceContext::mint();
            request.trace = Some(ctx);
            Some(ctx)
        } else {
            None
        };
        if request.admitted_at.is_none() {
            request.admitted_at = Some(Instant::now());
        }
        let admitted = request.admitted_at;

        let m = &self.shared.metrics;
        m.requests.inc();
        m.tenant_requests.with(tenant).inc();

        // 1. Admission: the tenant's bucket, then the spare.
        let now = self.epoch.elapsed().as_secs_f64();
        if let Err(retry_after) = self.admission.admit(tenant, now) {
            m.quota_rejected.inc();
            m.tenant_quota_rejected.with(tenant).inc();
            self.shared.record_slo(tenant, 0.0, false);
            finish_door_trace(
                door_trace,
                admitted,
                tenant,
                None,
                false,
                false,
                TraceOutcome::QuotaRejected,
                None,
            );
            return Err(ServeError::QuotaExceeded {
                tenant: tenant.to_string(),
                retry_after,
            });
        }

        // 2. Routing + 3. coalescing: claim the fingerprint if it is
        // about to cold-compile, or join the shard already compiling it.
        let fp = self.fingerprint_of(&request.program, &request.bindings);
        let home = self.router.route(fp);
        let (target, coalesced, claimed) = self.coalesce(fp, home);
        if coalesced {
            m.coalesced.inc();
        }

        // 4. Shed-by-deadline: don't queue work that cannot finish.
        let deadline = request.deadline.or(self.shard_deadline);
        if let (Some(deadline), Some(estimated_wait)) = (deadline, self.estimated_wait(target)) {
            if estimated_wait > deadline {
                if claimed {
                    self.unclaim(fp, target);
                }
                m.shed_deadline.inc();
                m.tenant_shed.with(tenant).inc();
                self.shared.record_slo(tenant, 0.0, false);
                finish_door_trace(
                    door_trace,
                    admitted,
                    tenant,
                    Some(target),
                    false,
                    coalesced,
                    TraceOutcome::Shed,
                    None,
                );
                return Err(ServeError::DeadlineUnmeetable {
                    shard: target,
                    estimated_wait,
                    deadline,
                });
            }
        }

        // 5. Queue on the target; spill once on backpressure.
        let spillable = self.spill && !coalesced && self.shards.len() > 1;
        let retry = spillable.then(|| request.clone());
        match self.shards[target].submit(request) {
            Ok(inner) => Ok(self.admitted(
                inner, tenant, target, false, coalesced, door_trace, admitted,
            )),
            Err(EngineError::Rejected {
                queue_depth,
                retry_after,
                ..
            }) => {
                if let Some(request) = retry {
                    let alt = self.least_loaded_except(target);
                    let spill_started = Instant::now();
                    match self.shards[alt].submit(request) {
                        Ok(inner) => {
                            m.spilled.inc();
                            m.shard_spills.with(&alt.to_string()).inc();
                            if claimed {
                                self.reclaim(fp, target, alt);
                            }
                            // The retry clone carries the same context,
                            // so the spill hop shows up inside the one
                            // trace rather than starting a second one.
                            if let Some(ctx) = &door_trace {
                                record_door_span(
                                    ctx,
                                    "spill",
                                    spill_started,
                                    vec![
                                        ("from_shard", (target as u64).into()),
                                        ("to_shard", (alt as u64).into()),
                                    ],
                                );
                            }
                            Ok(self.admitted(
                                inner, tenant, alt, true, coalesced, door_trace, admitted,
                            ))
                        }
                        Err(EngineError::Rejected {
                            queue_depth,
                            retry_after,
                            ..
                        }) => {
                            if claimed {
                                self.unclaim(fp, target);
                            }
                            self.shed_overload(tenant);
                            finish_door_trace(
                                door_trace,
                                admitted,
                                tenant,
                                Some(alt),
                                true,
                                coalesced,
                                TraceOutcome::Shed,
                                None,
                            );
                            Err(ServeError::Overloaded {
                                home_shard: target,
                                spill_shard: Some(alt),
                                queue_depth,
                                retry_after,
                            })
                        }
                        Err(e) => {
                            if claimed {
                                self.unclaim(fp, target);
                            }
                            self.failed(tenant);
                            finish_door_trace(
                                door_trace,
                                admitted,
                                tenant,
                                Some(alt),
                                true,
                                coalesced,
                                TraceOutcome::Failed,
                                None,
                            );
                            Err(ServeError::Engine(e))
                        }
                    }
                } else {
                    if claimed {
                        self.unclaim(fp, target);
                    }
                    self.shed_overload(tenant);
                    finish_door_trace(
                        door_trace,
                        admitted,
                        tenant,
                        Some(target),
                        false,
                        coalesced,
                        TraceOutcome::Shed,
                        None,
                    );
                    Err(ServeError::Overloaded {
                        home_shard: target,
                        spill_shard: None,
                        queue_depth,
                        retry_after,
                    })
                }
            }
            Err(e) => {
                if claimed {
                    self.unclaim(fp, target);
                }
                self.failed(tenant);
                finish_door_trace(
                    door_trace,
                    admitted,
                    tenant,
                    Some(target),
                    false,
                    coalesced,
                    TraceOutcome::Failed,
                    None,
                );
                Err(ServeError::Engine(e))
            }
        }
    }

    /// Wrap a shard ticket after a successful queue.
    #[allow(clippy::too_many_arguments)]
    fn admitted(
        &self,
        inner: EngineTicket,
        tenant: &str,
        shard: usize,
        spilled: bool,
        coalesced: bool,
        trace: Option<TraceContext>,
        admitted: Option<Instant>,
    ) -> Ticket {
        self.shared
            .metrics
            .shard_requests
            .with(&shard.to_string())
            .inc();
        Ticket {
            inner,
            shared: Arc::clone(&self.shared),
            tenant: tenant.to_string(),
            trace,
            admitted,
            shard,
            spilled,
            coalesced,
        }
    }

    /// One pass over the coalescing table: prune claims that resolved
    /// (the executable reached the claimant's cache) or expired, then
    /// either join an existing claim or — when the home shard would
    /// cold-compile — record a new one. Returns
    /// `(target shard, joined an existing claim, made a new claim)`.
    fn coalesce(&self, fp: Fingerprint, home: usize) -> (usize, bool, bool) {
        // Warm fast path: the home shard already holds the executable,
        // so this is a cache hit wherever the claim table points —
        // serve it at home without touching the table lock.
        if self.shards[home].cache_contains(fp) {
            return (home, false, false);
        }
        let mut table = self.inflight.lock().expect("coalesce lock poisoned");
        let ttl = self.coalesce_ttl;
        let shards = &self.shards;
        table.retain(|f, e| e.since.elapsed() < ttl && !shards[e.shard].cache_contains(*f));
        match table.get(&fp) {
            Some(entry) => (entry.shard, true, false),
            None => {
                let cold = !shards[home].cache_contains(fp);
                if cold {
                    table.insert(
                        fp,
                        Inflight {
                            shard: home,
                            since: Instant::now(),
                        },
                    );
                }
                (home, false, cold)
            }
        }
    }

    /// Withdraw a claim this submission made but did not follow through
    /// on (shed or failed before queueing).
    fn unclaim(&self, fp: Fingerprint, shard: usize) {
        let mut table = self.inflight.lock().expect("coalesce lock poisoned");
        if let Some(entry) = table.get(&fp) {
            if entry.shard == shard {
                table.remove(&fp);
            }
        }
    }

    /// Move a claim to the spill target: the compile will happen there,
    /// so followers must be steered there too.
    fn reclaim(&self, fp: Fingerprint, from: usize, to: usize) {
        let mut table = self.inflight.lock().expect("coalesce lock poisoned");
        if let Some(entry) = table.get_mut(&fp) {
            if entry.shard == from {
                entry.shard = to;
            }
        }
    }

    fn shed_overload(&self, tenant: &str) {
        let m = &self.shared.metrics;
        m.shed_overload.inc();
        m.tenant_shed.with(tenant).inc();
        self.shared.record_slo(tenant, 0.0, false);
    }

    fn failed(&self, tenant: &str) {
        let m = &self.shared.metrics;
        m.failed.inc();
        m.tenant_failed.with(tenant).inc();
        self.shared.record_slo(tenant, 0.0, false);
    }

    /// The least-loaded shard other than `except` (queue depth plus
    /// in-flight; ties break low).
    fn least_loaded_except(&self, except: usize) -> usize {
        self.shards
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != except)
            .min_by_key(|(_, e)| e.queue_depth() + e.in_flight())
            .map(|(i, _)| i)
            .unwrap_or(except)
    }

    /// Warm the fleet: route every request to its home shard and run
    /// them all (bypassing admission control — preload is operator
    /// work, not tenant traffic). Entries previously tuned into the
    /// shared store come back with `tuned = true`, counting the warm
    /// tier's contribution.
    pub fn preload(&self, requests: Vec<Request>) -> PreloadReport {
        let mut per_shard: Vec<Vec<Request>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for request in requests {
            let fp = self.fingerprint_of(&request.program, &request.bindings);
            per_shard[self.router.route(fp)].push(request);
        }
        let mut report = PreloadReport::default();
        let outcomes: Vec<Vec<Result<Response, EngineError>>> = std::thread::scope(|s| {
            let handles: Vec<_> = per_shard
                .into_iter()
                .enumerate()
                .map(|(i, batch)| s.spawn(move || self.shards[i].run_batch(batch)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("preload batch panicked"))
                .collect()
        });
        for outcome in outcomes.into_iter().flatten() {
            match outcome {
                Ok(resp) => {
                    report.warmed += 1;
                    if resp.tuned {
                        report.tuned += 1;
                    }
                }
                Err(_) => report.failed += 1,
            }
        }
        self.shared.metrics.preloaded.add(report.warmed as u64);
        report
    }

    /// Autotune one program on its home shard, persisting the winning
    /// mapping into the shared tuning store — this is how the warm tier
    /// is populated. Routed like any request so the tuned executable
    /// also lands in the hot cache that will serve it.
    pub fn autotune(
        &self,
        program: &multidim_ir::Program,
        bindings: &multidim_ir::Bindings,
        inputs: &std::collections::HashMap<multidim_ir::ArrayId, Vec<f64>>,
        options: &multidim_mapping::TuneOptions,
    ) -> Result<(Arc<Executable>, TuneRecord), ServeError> {
        let home = self
            .router
            .route(self.shards[0].fingerprint_of(program, bindings));
        self.shards[home]
            .autotune(program, bindings, inputs, options)
            .map_err(ServeError::Engine)
    }

    /// Counter snapshot (reads the same counters the registry exports).
    pub fn stats(&self) -> FrontDoorStats {
        let m = &self.shared.metrics;
        FrontDoorStats {
            submitted: m.requests.get(),
            completed: m.completed.get(),
            expired: m.expired.get(),
            failed: m.failed.get(),
            quota_rejected: m.quota_rejected.get(),
            shed_deadline: m.shed_deadline.get(),
            shed_overload: m.shed_overload.get(),
            spilled: m.spilled.get(),
            coalesced: m.coalesced.get(),
        }
    }

    /// One tenant's SLO status, if the tenant has been seen.
    pub fn slo_status(&self, tenant: &str) -> Option<SloStatus> {
        self.shared
            .slo
            .lock()
            .expect("slo lock poisoned")
            .get(tenant)
            .map(|t| t.status())
    }

    /// Every tenant's SLO status, name order.
    pub fn slo_statuses(&self) -> Vec<(String, SloStatus)> {
        self.shared
            .slo
            .lock()
            .expect("slo lock poisoned")
            .iter()
            .map(|(name, t)| (name.clone(), t.status()))
            .collect()
    }

    /// Rotate every tenant's SLO window — call on the telemetry cadence
    /// to keep burn rates fresh.
    pub fn rotate_slo(&self) {
        for tracker in self.shared.slo.lock().expect("slo lock poisoned").values() {
            tracker.rotate();
        }
    }

    /// Refresh the per-shard gauges and render the front door's
    /// registry as Prometheus text exposition.
    pub fn render_metrics(&self) -> String {
        let m = &self.shared.metrics;
        for (i, e) in self.shards.iter().enumerate() {
            let shard = i.to_string();
            m.shard_queue_depth.with(&shard).set(e.queue_depth() as f64);
            m.shard_in_flight.with(&shard).set(e.in_flight() as f64);
        }
        self.shared.registry.render_text()
    }

    /// A request profile for a served response, produced by the shard
    /// that served it.
    pub fn profile(&self, response: &ServeResponse) -> RequestProfile {
        self.shards[response.shard].profile(&response.response)
    }

    /// Drain every shard (waiting for queued work) and persist the
    /// shared tuning store.
    pub fn shutdown(self) {
        for shard in self.shards {
            shard.shutdown();
        }
    }
}
