//! Per-tenant admission control: token-bucket quotas with a shared
//! spare bucket for leftover capacity.
//!
//! Each tenant owns a [`TokenBucket`] refilled at its guaranteed rate.
//! A request is admitted from the tenant's own bucket first; when that
//! is empty the request may still draw from the fleet-wide **spare**
//! bucket, which meters out capacity beyond the guarantees. Because
//! every tenant reaches the spare bucket only after exhausting its own
//! guarantee, leftover capacity is shared fairly: no tenant can touch
//! it while under-spending its guarantee would admit the request, and
//! all over-quota tenants compete for it at equal priority.
//!
//! Buckets take an **explicit clock** (`now` in seconds from an
//! arbitrary epoch) so tests can hand-compute exact token balances
//! without sleeping.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

/// Longest retry hint ever emitted; denials from a zero-rate bucket
/// would otherwise produce an infinite wait.
const MAX_RETRY_SECONDS: f64 = 3600.0;

/// A tenant's rate guarantee: sustained `rate` requests per second with
/// bursts up to `burst` requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantQuota {
    /// Sustained admission rate, requests per second.
    pub rate: f64,
    /// Bucket capacity — how many requests may arrive back-to-back
    /// after an idle period.
    pub burst: f64,
}

impl TenantQuota {
    /// A quota of `rate` requests per second, bursting to `burst`.
    pub fn new(rate: f64, burst: f64) -> TenantQuota {
        TenantQuota { rate, burst }
    }

    /// No limit: every request is admitted from the tenant's own
    /// budget.
    pub fn unlimited() -> TenantQuota {
        TenantQuota {
            rate: f64::INFINITY,
            burst: f64::INFINITY,
        }
    }

    /// A quota that admits nothing on its own (used as the spare bucket
    /// of a policy with no leftover capacity).
    pub fn none() -> TenantQuota {
        TenantQuota {
            rate: 0.0,
            burst: 0.0,
        }
    }

    /// `true` when this quota never rejects.
    pub fn is_unlimited(&self) -> bool {
        self.rate.is_infinite()
    }
}

/// A token bucket over an explicit clock: `burst` capacity, refilled
/// continuously at `rate` tokens per second, one token per admission.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    quota: TenantQuota,
    tokens: f64,
    last: f64,
}

impl TokenBucket {
    /// A full bucket (a tenant starts with its whole burst allowance).
    pub fn new(quota: TenantQuota) -> TokenBucket {
        TokenBucket {
            quota,
            tokens: if quota.is_unlimited() {
                0.0
            } else {
                quota.burst
            },
            last: 0.0,
        }
    }

    /// Refill for the time elapsed since the last observation. `now` is
    /// seconds from the same arbitrary epoch as every other call; a
    /// clock that goes backwards refills nothing.
    fn refill(&mut self, now: f64) {
        let dt = (now - self.last).max(0.0);
        self.last = now;
        if !self.quota.is_unlimited() {
            self.tokens = (self.tokens + dt * self.quota.rate).min(self.quota.burst);
        }
    }

    /// Take one token at time `now`. On failure returns how long the
    /// caller must wait (at the sustained rate) for a token to exist.
    pub fn try_take(&mut self, now: f64) -> Result<(), Duration> {
        if self.quota.is_unlimited() {
            return Ok(());
        }
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            let wait = if self.quota.rate > 0.0 {
                ((1.0 - self.tokens) / self.quota.rate).min(MAX_RETRY_SECONDS)
            } else {
                MAX_RETRY_SECONDS
            };
            Err(Duration::from_secs_f64(wait))
        }
    }

    /// Current balance after refilling to `now` — for tests and
    /// dashboards.
    pub fn tokens_at(&mut self, now: f64) -> f64 {
        self.refill(now);
        self.tokens
    }
}

/// The fleet's quota policy: a default per-tenant quota, named
/// overrides, and the spare bucket shared by all tenants that have
/// exhausted their own guarantee.
#[derive(Debug, Clone)]
pub struct QuotaPolicy {
    /// Quota for tenants without an override.
    pub default: TenantQuota,
    /// Per-tenant overrides, checked by exact name.
    pub overrides: Vec<(String, TenantQuota)>,
    /// The shared leftover-capacity bucket.
    pub spare: TenantQuota,
}

impl Default for QuotaPolicy {
    /// Admit everything: unlimited default quota, no spare needed.
    fn default() -> QuotaPolicy {
        QuotaPolicy {
            default: TenantQuota::unlimited(),
            overrides: Vec::new(),
            spare: TenantQuota::none(),
        }
    }
}

impl QuotaPolicy {
    /// Every tenant gets `rate`/`burst`; no spare capacity.
    pub fn per_tenant(rate: f64, burst: f64) -> QuotaPolicy {
        QuotaPolicy {
            default: TenantQuota::new(rate, burst),
            overrides: Vec::new(),
            spare: TenantQuota::none(),
        }
    }

    /// Replace the quota of one named tenant.
    pub fn with_override(mut self, tenant: &str, quota: TenantQuota) -> QuotaPolicy {
        self.overrides.push((tenant.to_string(), quota));
        self
    }

    /// Set the shared spare bucket.
    pub fn with_spare(mut self, spare: TenantQuota) -> QuotaPolicy {
        self.spare = spare;
        self
    }

    /// The quota `tenant` is entitled to under this policy.
    pub fn quota_for(&self, tenant: &str) -> TenantQuota {
        self.overrides
            .iter()
            .find(|(name, _)| name == tenant)
            .map(|(_, q)| *q)
            .unwrap_or(self.default)
    }
}

/// Where an admitted request's token came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitSource {
    /// The tenant's own guaranteed budget.
    OwnBudget,
    /// The shared leftover-capacity bucket.
    SpareBudget,
}

/// Thread-safe admission control over a [`QuotaPolicy`]: per-tenant
/// buckets created lazily on first sight, plus the shared spare bucket.
#[derive(Debug)]
pub struct Admission {
    policy: QuotaPolicy,
    buckets: Mutex<HashMap<String, TokenBucket>>,
    spare: Mutex<TokenBucket>,
}

impl Admission {
    /// Admission control under `policy`.
    pub fn new(policy: QuotaPolicy) -> Admission {
        let spare = TokenBucket::new(policy.spare);
        Admission {
            policy,
            buckets: Mutex::new(HashMap::new()),
            spare: Mutex::new(spare),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &QuotaPolicy {
        &self.policy
    }

    /// Admit one request from `tenant` at time `now` (seconds from the
    /// caller's epoch). Tries the tenant's own bucket first, then the
    /// spare; a denial reports the shorter of the two waits.
    pub fn admit(&self, tenant: &str, now: f64) -> Result<AdmitSource, Duration> {
        // Unlimited tenants never consume tokens; skip the bucket map
        // (and its lock) entirely so the open-admission hot path costs
        // nothing per request.
        if self.policy.quota_for(tenant).is_unlimited() {
            return Ok(AdmitSource::OwnBudget);
        }
        let own_wait = {
            let mut buckets = self.buckets.lock().expect("quota lock poisoned");
            let bucket = buckets
                .entry(tenant.to_string())
                .or_insert_with(|| TokenBucket::new(self.policy.quota_for(tenant)));
            match bucket.try_take(now) {
                Ok(()) => return Ok(AdmitSource::OwnBudget),
                Err(wait) => wait,
            }
        };
        let spare_wait = {
            let mut spare = self.spare.lock().expect("quota lock poisoned");
            match spare.try_take(now) {
                Ok(()) => return Ok(AdmitSource::SpareBudget),
                Err(wait) => wait,
            }
        };
        Err(own_wait.min(spare_wait))
    }

    /// A tenant's current own-bucket balance at time `now` (creating
    /// the bucket if the tenant is new) — test and dashboard hook.
    pub fn tokens_at(&self, tenant: &str, now: f64) -> f64 {
        let mut buckets = self.buckets.lock().expect("quota lock poisoned");
        buckets
            .entry(tenant.to_string())
            .or_insert_with(|| TokenBucket::new(self.policy.quota_for(tenant)))
            .tokens_at(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_burst_then_starve_then_refill() {
        // rate 2/s, burst 4: four immediate admissions, then denial with
        // a 0.5 s hint, then one more token every half second.
        let mut b = TokenBucket::new(TenantQuota::new(2.0, 4.0));
        for _ in 0..4 {
            assert!(b.try_take(0.0).is_ok());
        }
        let wait = b.try_take(0.0).unwrap_err();
        assert!((wait.as_secs_f64() - 0.5).abs() < 1e-9, "{wait:?}");
        assert!(b.try_take(0.49).is_err());
        assert!(b.try_take(0.5).is_ok());
        assert!(b.try_take(0.5).is_err());
    }

    #[test]
    fn bucket_caps_at_burst_after_idle() {
        let mut b = TokenBucket::new(TenantQuota::new(10.0, 3.0));
        for _ in 0..3 {
            assert!(b.try_take(0.0).is_ok());
        }
        // A long idle period refills to burst, not beyond.
        assert!((b.tokens_at(100.0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn unlimited_never_rejects() {
        let mut b = TokenBucket::new(TenantQuota::unlimited());
        for i in 0..1000 {
            assert!(b.try_take(i as f64 * 1e-6).is_ok());
        }
    }

    #[test]
    fn zero_rate_bucket_rejects_with_bounded_hint() {
        let mut b = TokenBucket::new(TenantQuota::none());
        let wait = b.try_take(0.0).unwrap_err();
        assert!(wait <= Duration::from_secs_f64(MAX_RETRY_SECONDS));
    }

    #[test]
    fn spare_bucket_serves_exhausted_tenants() {
        // Each tenant guaranteed 1 burst; spare holds 2 more.
        let policy = QuotaPolicy::per_tenant(0.0, 1.0).with_spare(TenantQuota::new(0.0, 2.0));
        let adm = Admission::new(policy);
        assert_eq!(adm.admit("a", 0.0), Ok(AdmitSource::OwnBudget));
        assert_eq!(adm.admit("b", 0.0), Ok(AdmitSource::OwnBudget));
        // Guarantees spent; both tenants now compete for the spare pair.
        assert_eq!(adm.admit("a", 0.0), Ok(AdmitSource::SpareBudget));
        assert_eq!(adm.admit("b", 0.0), Ok(AdmitSource::SpareBudget));
        assert!(adm.admit("a", 0.0).is_err());
        assert!(adm.admit("b", 0.0).is_err());
    }

    #[test]
    fn overrides_take_precedence() {
        let policy =
            QuotaPolicy::per_tenant(1.0, 1.0).with_override("vip", TenantQuota::unlimited());
        let adm = Admission::new(policy);
        assert!(adm.admit("vip", 0.0).is_ok());
        assert!(adm.admit("vip", 0.0).is_ok());
        assert!(adm.admit("plebeian", 0.0).is_ok());
        assert!(adm.admit("plebeian", 0.0).is_err());
    }

    #[test]
    fn denial_reports_the_shorter_wait() {
        // Own bucket refills in 1 s; spare in 0.25 s — the hint should
        // be the spare's.
        let policy = QuotaPolicy::per_tenant(1.0, 1.0).with_spare(TenantQuota::new(4.0, 1.0));
        let adm = Admission::new(policy);
        assert_eq!(adm.admit("t", 0.0), Ok(AdmitSource::OwnBudget));
        assert_eq!(adm.admit("t", 0.0), Ok(AdmitSource::SpareBudget));
        let wait = adm.admit("t", 0.0).unwrap_err();
        assert!((wait.as_secs_f64() - 0.25).abs() < 1e-9, "{wait:?}");
    }
}
