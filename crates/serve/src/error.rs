//! Typed failures of the front door.

use multidim_engine::EngineError;
use std::fmt;
use std::time::Duration;

/// Why the front door could not serve a request. Admission-time
/// rejections ([`ServeError::QuotaExceeded`],
/// [`ServeError::DeadlineUnmeetable`], [`ServeError::Overloaded`])
/// carry enough context — shard id, queue depth, retry hint — for the
/// caller to decide between retrying, backing off, and going elsewhere.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The tenant's token bucket (and the shared spare bucket) are
    /// empty. Not an overload signal: the fleet may be idle and still
    /// reject a tenant that exceeds its contract.
    QuotaExceeded {
        /// The rejected tenant.
        tenant: String,
        /// Time until a token exists at the sustained refill rate —
        /// retrying sooner is guaranteed to fail again.
        retry_after: Duration,
    },
    /// Admission-time shed: the target shard's estimated drain time
    /// already exceeds the request's deadline, so queueing it would
    /// only waste a worker on a doomed request.
    DeadlineUnmeetable {
        /// Shard the request would have queued on.
        shard: usize,
        /// Estimated wait before a worker would pick the request up.
        estimated_wait: Duration,
        /// The deadline that estimate defeats.
        deadline: Duration,
    },
    /// Every eligible shard rejected the request by backpressure: the
    /// home shard, and the least-loaded spill target when spilling is
    /// enabled.
    Overloaded {
        /// The fingerprint's home shard (first rejection).
        home_shard: usize,
        /// The spill target that also rejected, when one was tried.
        spill_shard: Option<usize>,
        /// Queue depth observed at the last rejection.
        queue_depth: usize,
        /// Drain-time estimate from the last rejecting shard.
        retry_after: Option<Duration>,
    },
    /// A shard-level failure surfaced through the front door (compile
    /// or run error, deadline expiry inside the engine, worker panic,
    /// shutdown).
    Engine(EngineError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QuotaExceeded {
                tenant,
                retry_after,
            } => write!(
                f,
                "quota exceeded for tenant {tenant:?}: retry in ~{:.1} ms",
                retry_after.as_secs_f64() * 1e3
            ),
            ServeError::DeadlineUnmeetable {
                shard,
                estimated_wait,
                deadline,
            } => write!(
                f,
                "deadline unmeetable on shard {shard}: estimated wait {:.1} ms > deadline {:.1} ms",
                estimated_wait.as_secs_f64() * 1e3,
                deadline.as_secs_f64() * 1e3
            ),
            ServeError::Overloaded {
                home_shard,
                spill_shard,
                queue_depth,
                retry_after,
            } => {
                write!(f, "fleet overloaded: shard {home_shard} rejected")?;
                if let Some(alt) = spill_shard {
                    write!(f, ", spill to shard {alt} rejected")?;
                }
                write!(f, " (queue depth {queue_depth}")?;
                if let Some(d) = retry_after {
                    write!(f, ", retry in ~{:.1} ms", d.as_secs_f64() * 1e3)?;
                }
                write!(f, ")")
            }
            ServeError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> ServeError {
        ServeError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn displays_carry_spill_and_retry_context() {
        let quota = ServeError::QuotaExceeded {
            tenant: "acme".into(),
            retry_after: Duration::from_millis(250),
        };
        let text = quota.to_string();
        assert!(text.contains("acme"), "{text}");
        assert!(text.contains("250.0 ms"), "{text}");

        let shed = ServeError::DeadlineUnmeetable {
            shard: 3,
            estimated_wait: Duration::from_millis(80),
            deadline: Duration::from_millis(50),
        };
        let text = shed.to_string();
        assert!(text.contains("shard 3"), "{text}");
        assert!(text.contains("80.0 ms"), "{text}");
        assert!(text.contains("50.0 ms"), "{text}");

        let over = ServeError::Overloaded {
            home_shard: 1,
            spill_shard: Some(2),
            queue_depth: 16,
            retry_after: Some(Duration::from_millis(12)),
        };
        let text = over.to_string();
        assert!(text.contains("shard 1 rejected"), "{text}");
        assert!(text.contains("spill to shard 2"), "{text}");
        assert!(text.contains("queue depth 16"), "{text}");
        assert!(text.contains("12.0 ms"), "{text}");

        let no_spill = ServeError::Overloaded {
            home_shard: 0,
            spill_shard: None,
            queue_depth: 4,
            retry_after: None,
        };
        let text = no_spill.to_string();
        assert!(!text.contains("spill"), "{text}");
        assert!(!text.contains("retry"), "{text}");
    }

    #[test]
    fn engine_errors_stay_reachable_through_source() {
        let e = ServeError::from(EngineError::Canceled);
        assert!(e.source().unwrap().to_string().contains("canceled"));
        assert!(ServeError::QuotaExceeded {
            tenant: "t".into(),
            retry_after: Duration::ZERO,
        }
        .source()
        .is_none());
    }
}
