//! Deterministic fingerprint → shard routing via rendezvous hashing.
//!
//! The front door must send the same program to the same shard every
//! time — shard-local compilation caches only pay off if routing is
//! sticky — and it must survive fleet resizes without a stored mapping
//! table. Rendezvous (highest-random-weight) hashing gives both: every
//! `(fingerprint, shard)` pair gets a pseudo-random score from a pure
//! function, and the fingerprint's home is the shard with the highest
//! score. Routing is therefore
//!
//! * **deterministic** — no state, so the same fingerprint lands on the
//!   same shard across restarts and across processes;
//! * **minimally disruptive** — growing the fleet from `n` to `n + 1`
//!   shards moves only the keys whose new shard now scores highest
//!   (an expected `1 / (n + 1)` of them), and every moved key moves *to*
//!   the new shard; keys never reshuffle among surviving shards.

use multidim::Fingerprint;

/// Rendezvous-hash router over a fixed number of shards.
///
/// The router is a pure function of `(fingerprint, shard count)`; it
/// holds no per-key state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Router {
    shards: usize,
}

impl Router {
    /// A router over `shards` shards (at least 1).
    pub fn new(shards: usize) -> Router {
        Router {
            shards: shards.max(1),
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The rendezvous score of `fp` on `shard`: a pseudo-random `u64`
    /// from a splitmix64 finalizer over the fingerprint lanes and the
    /// shard index. Public so tests can check the argmax law directly.
    pub fn score(fp: Fingerprint, shard: usize) -> u64 {
        let mut x =
            fp.0[0] ^ fp.0[1].rotate_left(32) ^ (shard as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        x
    }

    /// The home shard of `fp`: the index with the highest score.
    pub fn route(&self, fp: Fingerprint) -> usize {
        (0..self.shards)
            .max_by_key(|&s| Self::score(fp, s))
            .expect("router has at least one shard")
    }

    /// All shards ordered by descending score — the spill preference
    /// order. `ranked(fp)[0]` is [`Router::route`]; later entries are
    /// where a request should land when earlier ones reject.
    pub fn ranked(&self, fp: Fingerprint) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.shards).collect();
        order.sort_by_key(|&s| std::cmp::Reverse(Self::score(fp, s)));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(i: u64) -> Fingerprint {
        Fingerprint([i.wrapping_mul(0x243f_6a88_85a3_08d3), i ^ 0xdead_beef])
    }

    #[test]
    fn route_is_argmax_of_scores() {
        let router = Router::new(5);
        for i in 0..64 {
            let home = router.route(fp(i));
            let best = (0..5).map(|s| Router::score(fp(i), s)).max().unwrap();
            assert_eq!(Router::score(fp(i), home), best);
        }
    }

    #[test]
    fn routing_is_deterministic_across_instances() {
        let a = Router::new(4);
        let b = Router::new(4);
        for i in 0..256 {
            assert_eq!(a.route(fp(i)), b.route(fp(i)));
        }
    }

    #[test]
    fn growth_moves_keys_only_to_the_new_shard() {
        let before = Router::new(4);
        let after = Router::new(5);
        let mut moved = 0usize;
        for i in 0..512 {
            let (old, new) = (before.route(fp(i)), after.route(fp(i)));
            if old != new {
                assert_eq!(new, 4, "moved keys go to the new shard only");
                moved += 1;
            }
        }
        // Expected share is 1/5 of 512 ≈ 102; accept a generous band.
        assert!((40..=170).contains(&moved), "moved {moved} of 512");
    }

    #[test]
    fn load_spreads_across_shards() {
        let router = Router::new(4);
        let mut counts = [0usize; 4];
        for i in 0..4096 {
            counts[router.route(fp(i))] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!((700..=1350).contains(&c), "shard {s} got {c} of 4096 keys");
        }
    }

    #[test]
    fn ranked_starts_at_home_and_permutes_all_shards() {
        let router = Router::new(6);
        for i in 0..32 {
            let ranked = router.ranked(fp(i));
            assert_eq!(ranked[0], router.route(fp(i)));
            let mut sorted = ranked.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..6).collect::<Vec<_>>());
        }
    }
}
