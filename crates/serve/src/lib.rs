//! # multidim-serve — the sharded multi-tenant serving tier
//!
//! The paper's serving story ("heavy traffic from millions of users")
//! outgrows a single in-process [`Engine`](multidim_engine::Engine)
//! pool. This crate is the fleet layer above it: a [`FrontDoor`] that
//! owns N engine shards and gives every request the same five-step
//! path —
//!
//! * **routing** — each program's fingerprint picks its *home* shard by
//!   deterministic rendezvous hashing ([`Router`]), so a program always
//!   returns to the shard whose hot executable cache holds it, across
//!   restarts and with minimal reshuffle when the fleet resizes;
//! * **admission control** — per-tenant token-bucket quotas
//!   ([`QuotaPolicy`], [`Admission`]) with a typed
//!   [`QuotaExceeded`](ServeError::QuotaExceeded) rejection and a
//!   shared spare bucket that shares leftover capacity fairly;
//! * **cross-shard coalescing** — a front-door single-flight table
//!   steers concurrent submissions of a cold program onto the one shard
//!   already compiling it, so N clients during a cold compile produce
//!   one compile fleet-wide;
//! * **tiered caching** — shard-local hot executables over the shared
//!   persistent tuning store as a warm tier, with optional catalog
//!   [`preload`](FrontDoor::preload) at startup;
//! * **graceful degradation** — shed-by-deadline at admission,
//!   load-aware spill to the least-loaded shard on home-shard
//!   backpressure, and per-tenant shed accounting when everything
//!   rejects.
//!
//! Observability rides along: per-shard and per-tenant metric families
//! (including per-shard queue-depth/in-flight gauges), per-tenant
//! [`SloTracker`](multidim_obs::SloTracker)s, and front-door request
//! profiles, all on the crate's own
//! [`Registry`](multidim_obs::Registry).
//!
//! # Example
//!
//! ```
//! use multidim::Compiler;
//! use multidim_engine::{doctest_workload, Request};
//! use multidim_serve::{FrontDoor, FrontDoorConfig};
//!
//! let door = FrontDoor::new(Compiler::new(), FrontDoorConfig {
//!     shards: 2,
//!     ..FrontDoorConfig::default()
//! });
//! let (program, bindings, inputs) = doctest_workload();
//! let home = door.home_shard(door.fingerprint_of(&program, &bindings));
//!
//! let ticket = door
//!     .submit("tenant-a", Request::new(program, bindings, inputs))
//!     .expect("admitted");
//! assert_eq!(ticket.shard, home);
//! let served = ticket.wait().expect("served");
//! assert_eq!(served.shard, home);
//! assert_eq!(door.stats().completed, 1);
//! door.shutdown();
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod front_door;
pub mod quota;
pub mod router;

pub use error::ServeError;
pub use front_door::{
    FrontDoor, FrontDoorConfig, FrontDoorStats, PreloadReport, ServeResponse, Ticket,
};
pub use quota::{Admission, AdmitSource, QuotaPolicy, TenantQuota, TokenBucket};
pub use router::Router;

// The request/response vocabulary is the engine's; re-export it so
// front-door callers need only this crate.
pub use multidim_engine::{doctest_workload, Request, Response};

// The front door is shared across client threads; fail compilation
// loudly if that ever regresses.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FrontDoor>();
    assert_send_sync::<Ticket>();
    assert_send_sync::<ServeError>();
    assert_send_sync::<Admission>();
};
