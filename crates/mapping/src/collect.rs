//! Constraint collection (Section IV-C).
//!
//! Walks the program's access summaries and nest structure and produces a
//! [`ConstraintSet`]:
//!
//! * hard span requirements from pattern kinds (`Reduce`/`Filter`/`GroupBy`
//!   need cross-iteration synchronization) and dynamic extents;
//! * hard device limits (block threads, shared-memory capacity);
//! * soft locality constraints: every access whose linearized address has
//!   stride 1 in some pattern index wants that pattern's level on dimension
//!   `x` with a warp-multiple block size, weighted by `intrinsic ×
//!   execution count ÷ 2^branch-depth` (Figure 8's `α·I` vs `α·I·J`);
//! * soft utilization constraints (minimum block threads, no idle threads).
//!
//! Accesses into compiler-preallocated temporaries (`flexible_layout`) are
//! skipped: Section V-A chooses their physical layout *after* the mapping,
//! so they impose no locality constraint.

use crate::constraint::{
    ConstraintSet, HardConstraint, SoftConstraint, SoftKind, SpanAllReason, Weights,
};
use multidim_device::GpuSpec;
use multidim_ir::{collect_accesses, Bindings, NestInfo, Program};
use std::collections::HashMap;

/// Collect the constraint set for `program`.
///
/// `bindings` provides launch-time sizes where known; unknown symbols use
/// the paper's default estimate of 1000 (Section IV-C).
pub fn collect_constraints(
    program: &Program,
    nest: &NestInfo,
    bindings: &Bindings,
    gpu: &GpuSpec,
    weights: &Weights,
) -> ConstraintSet {
    let mut cs = ConstraintSet::default();

    // --- Hard: device limits -------------------------------------------
    cs.hard
        .push(HardConstraint::MaxBlockThreads(gpu.max_threads_per_block));
    cs.hard.push(HardConstraint::SmemCapacity {
        bytes: gpu.smem_per_sm,
        // One f64 accumulator slot per thread for block-level reductions.
        bytes_per_thread: 8,
    });

    // --- Hard: span requirements per level ------------------------------
    for (lvl, info) in nest.levels.iter().enumerate() {
        if info.has_dynamic() {
            cs.hard.push(HardConstraint::SpanAll {
                level: lvl,
                reason: SpanAllReason::DynamicSize,
            });
        }
        if info.needs_sync() {
            cs.hard.push(HardConstraint::SpanAll {
                level: lvl,
                reason: SpanAllReason::Synchronization,
            });
        }
    }
    // Nested span-all levels cannot both be block-parallel (the inner
    // barrier would sit under the outer's lane-dependent loop).
    let forced: Vec<usize> = cs.span_all_levels().iter().map(|(l, _)| *l).collect();
    for (i, &outer) in forced.iter().enumerate() {
        for &inner in &forced[i + 1..] {
            cs.hard.push(HardConstraint::NestedSyncExclusive {
                outer: outer.min(inner),
                inner: outer.max(inner),
            });
        }
    }

    // --- Soft: locality from accesses ------------------------------------
    // Accumulate merged weights keyed by (constraint kind, level).
    let mut dim_x: HashMap<usize, f64> = HashMap::new();
    let mut warp_mult: HashMap<usize, f64> = HashMap::new();

    for access in collect_accesses(program) {
        if access.flexible_layout {
            continue;
        }
        let exec = exec_count(&access, bindings);
        for link in &access.chain {
            // Strided, invariant, or random (`None`) accesses add no
            // coalescing preference for this level; only unit stride does.
            if let Some(1) = access.stride_for(link.var, bindings) {
                *dim_x.entry(link.level).or_insert(0.0) += weights.coalesce * exec;
                *warp_mult.entry(link.level).or_insert(0.0) += weights.warp_multiple * exec;
            }
        }
    }
    for (level, weight) in dim_x {
        cs.soft.push(SoftConstraint {
            kind: SoftKind::DimX { level },
            weight,
        });
    }
    for (level, weight) in warp_mult {
        cs.soft.push(SoftConstraint {
            kind: SoftKind::WarpMultiple { level },
            weight,
        });
    }

    // --- Soft: utilization -----------------------------------------------
    let root_extent = nest
        .levels
        .first()
        .map(|l| l.representative_size().eval_or_default(bindings))
        .unwrap_or(1) as f64;
    cs.soft.push(SoftConstraint {
        kind: SoftKind::MinBlockThreads { min: 64 },
        weight: weights.min_block * root_extent,
    });
    cs.soft.push(SoftConstraint {
        kind: SoftKind::ModerateBlock,
        weight: weights.moderate_block * root_extent,
    });

    let mut cum = 1.0f64;
    for (lvl, info) in nest.levels.iter().enumerate() {
        let extent = info.representative_size().eval_or_default(bindings);
        cum *= extent.max(1) as f64;
        cs.soft.push(SoftConstraint {
            kind: SoftKind::NoIdleThreads { level: lvl, extent },
            weight: weights.no_idle * cum,
        });
    }

    // Deterministic order for reproducible scoring/pretty-printing.
    cs.soft.sort_by(|a, b| {
        b.weight
            .partial_cmp(&a.weight)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    cs
}

/// Derived execution count of an access: product of enclosing extents ×
/// sequential-loop trip factor ÷ 2 per enclosing branch (Section IV-C).
fn exec_count(access: &multidim_ir::Access, bindings: &Bindings) -> f64 {
    let mut n = 1.0f64;
    for link in &access.chain {
        n *= link.size.eval_or_default(bindings).max(1) as f64;
    }
    n *= access.iterate_factor.max(1) as f64;
    n / 2f64.powi(access.branch_depth as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::SoftKind;
    use multidim_ir::{Expr, ProgramBuilder, ReduceOp, ScalarKind, Size};

    fn k20c() -> GpuSpec {
        GpuSpec::tesla_k20c()
    }

    fn weights() -> Weights {
        Weights::default()
    }

    fn sum_rows(r: i64, c: i64) -> (Program, Bindings) {
        let mut b = ProgramBuilder::new("sumRows");
        let rs = b.sym("R");
        let cs = b.sym("C");
        let m = b.input("m", ScalarKind::F32, &[Size::sym(rs), Size::sym(cs)]);
        let root = b.map(Size::sym(rs), |b, row| {
            b.reduce(Size::sym(cs), ReduceOp::Add, |b, col| {
                b.read(m, &[row.into(), col.into()])
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(rs, r);
        bind.bind(cs, c);
        (p, bind)
    }

    fn sum_cols(r: i64, c: i64) -> (Program, Bindings) {
        let mut b = ProgramBuilder::new("sumCols");
        let rs = b.sym("R");
        let cs = b.sym("C");
        let m = b.input("m", ScalarKind::F32, &[Size::sym(rs), Size::sym(cs)]);
        let root = b.map(Size::sym(cs), |b, col| {
            b.reduce(Size::sym(rs), ReduceOp::Add, |b, row| {
                b.read(m, &[row.into(), col.into()])
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(rs, r);
        bind.bind(cs, c);
        (p, bind)
    }

    fn dim_x_weight(cs: &ConstraintSet, level: usize) -> f64 {
        cs.soft
            .iter()
            .filter(|s| matches!(s.kind, SoftKind::DimX { level: l } if l == level))
            .map(|s| s.weight)
            .sum()
    }

    #[test]
    fn sum_rows_wants_inner_on_x() {
        let (p, bind) = sum_rows(1024, 2048);
        let nest = NestInfo::of(&p);
        let cs = collect_constraints(&p, &nest, &bind, &k20c(), &weights());
        // The matrix read is sequential in the inner (col) index: weight
        // ~ 10 * R * C on level 1. The output store is sequential in the
        // outer index: weight ~ 10 * R on level 0. Inner must dominate.
        let w1 = dim_x_weight(&cs, 1);
        let w0 = dim_x_weight(&cs, 0);
        assert!(w1 > 0.0 && w0 > 0.0);
        assert!(w1 > 100.0 * w0, "inner weight {w1} should dwarf outer {w0}");
    }

    #[test]
    fn sum_cols_wants_outer_on_x() {
        let (p, bind) = sum_cols(1024, 2048);
        let nest = NestInfo::of(&p);
        let cs = collect_constraints(&p, &nest, &bind, &k20c(), &weights());
        // m[row*C + col] with the *outer* pattern over col: stride 1 in the
        // outer var, stride C in the inner: level 0 gets the big weight.
        let w0 = dim_x_weight(&cs, 0);
        let w1 = dim_x_weight(&cs, 1);
        assert!(w0 > 0.0);
        assert_eq!(w1, 0.0, "row index is strided, no DimX want at level 1");
    }

    #[test]
    fn reduce_level_gets_hard_span_all() {
        let (p, bind) = sum_rows(64, 64);
        let nest = NestInfo::of(&p);
        let cs = collect_constraints(&p, &nest, &bind, &k20c(), &weights());
        let spans = cs.span_all_levels();
        assert_eq!(spans, vec![(1, SpanAllReason::Synchronization)]);
    }

    #[test]
    fn figure8_weight_ordering() {
        // Pattern1(I) reads a1[i]; Pattern2(J) nested reads a2[i, j]:
        // conflicting DimX wants where level 1's weight is J times level
        // 0's (Figure 8).
        let mut b = ProgramBuilder::new("fig8");
        let i_s = b.sym("I");
        let j_s = b.sym("J");
        let a1 = b.input("a1", ScalarKind::F32, &[Size::sym(i_s)]);
        let a2 = b.input("a2", ScalarKind::F32, &[Size::sym(i_s), Size::sym(j_s)]);
        let root = b.map(Size::sym(i_s), |b, i| {
            let outer_read = b.read(a1, &[i.into()]);
            let inner = b.reduce(Size::sym(j_s), ReduceOp::Add, |b, j| {
                b.read(a2, &[i.into(), j.into()])
            });
            outer_read + inner
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(i_s, 100);
        bind.bind(j_s, 50);
        let nest = NestInfo::of(&p);
        let cs = collect_constraints(&p, &nest, &bind, &k20c(), &weights());
        let w0 = dim_x_weight(&cs, 0);
        let w1 = dim_x_weight(&cs, 1);
        // Level 0 want: a1[i] (α·I) + out[i] store (α·I) = 2·α·I.
        // Level 1 want: a2 (α·I·J).
        assert!((w1 / w0 - 50.0 / 2.0).abs() < 1e-9, "w1={w1} w0={w0}");
    }

    #[test]
    fn branch_discount_halves_weight() {
        let mut b = ProgramBuilder::new("branchy");
        let n = b.sym("N");
        let a = b.input("a", ScalarKind::F32, &[Size::sym(n)]);
        let g = b.input("g", ScalarKind::F32, &[Size::sym(n)]);
        let root = b.map(Size::sym(n), |b, i| {
            let cond = b.read(g, &[i.into()]).gt(Expr::lit(0.0));
            // `a` read only in the then-branch.
            let then_e = b.read(a, &[i.into()]);
            cond.select(then_e, Expr::lit(0.0))
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 1000);
        let nest = NestInfo::of(&p);
        let cs = collect_constraints(&p, &nest, &bind, &k20c(), &weights());
        // level0 weight = g (unbranched: 10*1000) + a (branched: 10*500) +
        // store (10*1000) = 25000.
        let w0 = dim_x_weight(&cs, 0);
        assert!((w0 - 25_000.0).abs() < 1e-6, "w0={w0}");
    }

    #[test]
    fn dynamic_inner_forces_span_all() {
        let mut b = ProgramBuilder::new("dyn");
        let n = b.sym("N");
        let deg = b.input("deg", ScalarKind::I32, &[Size::sym(n)]);
        let root = b.map(Size::sym(n), |b, i| {
            let d = b.read(deg, &[i.into()]);
            b.reduce_dyn(d, 32, ReduceOp::Add, |_, _| Expr::lit(1.0))
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 100);
        let nest = NestInfo::of(&p);
        let cs = collect_constraints(&p, &nest, &bind, &k20c(), &weights());
        assert_eq!(cs.span_all_levels(), vec![(1, SpanAllReason::DynamicSize)]);
    }

    #[test]
    fn flexible_temporaries_add_no_locality_constraints() {
        // map { i => let t = map { j => x[j] * 2 }; reduce over t } where x
        // is read only via j: the temp accesses are flexible, so level-1
        // DimX weight comes only from x[j].
        let mut b = ProgramBuilder::new("flex");
        let m_s = b.sym("M");
        let n_s = b.sym("N");
        let x = b.input("x", ScalarKind::F32, &[Size::sym(n_s)]);
        let root = b.map(Size::sym(m_s), |b, _i| {
            let inner = b.map(Size::sym(n_s), |b, j| {
                b.read(x, &[j.into()]) * Expr::lit(2.0)
            });
            b.let_(inner, |b, t| {
                b.reduce(Size::sym(n_s), ReduceOp::Add, |b, j| {
                    b.read_var(t, &[j.into()])
                })
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(m_s, 10);
        bind.bind(n_s, 20);
        let nest = NestInfo::of(&p);
        let cs = collect_constraints(&p, &nest, &bind, &k20c(), &weights());
        let w1 = dim_x_weight(&cs, 1);
        // Only x[j]: 10 * (10*20) = 2000.
        assert!((w1 - 2000.0).abs() < 1e-9, "w1={w1}");
    }
}
