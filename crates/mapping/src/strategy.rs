//! Fixed mapping strategies from previous work (Section IV-B, Figure 7).
//!
//! These are the baselines the paper compares against, each expressed as a
//! point in the same mapping-parameter space the search explores:
//!
//! * **1D** — parallelize only the outermost pattern (Thrust, Firepile,
//!   Nikola); inner levels run sequentially inside each thread.
//! * **thread-block/thread** — outer iteration per thread block, inner
//!   pattern across the block's threads (Copperhead).
//! * **warp-based** — outer iteration per warp, inner pattern across the
//!   warp's 32 lanes (Hong et al.).

use crate::constraint::ConstraintSet;
use crate::params::{Dim, LevelMapping, MappingDecision, Span};
use multidim_device::WARP_SIZE;
use multidim_ir::NestInfo;
use std::fmt;

/// Which mapping strategy to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// The paper's locality-aware search (Section IV).
    MultiDim,
    /// Outer level only.
    OneD,
    /// Outer → thread block, inner → threads (Figure 7a).
    ThreadBlockThread,
    /// Outer → warp, inner → lanes (Figure 7b).
    WarpBased,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Strategy::MultiDim => "MultiDim",
            Strategy::OneD => "1D",
            Strategy::ThreadBlockThread => "ThreadBlock/Thread",
            Strategy::WarpBased => "Warp-based",
        };
        f.write_str(s)
    }
}

/// Build the fixed mapping a strategy prescribes for a nest of the given
/// structure (Figure 7's equivalences).
///
/// The returned mapping always satisfies the nest's *hard* span
/// requirements (levels needing synchronization or having dynamic extents
/// get `Span(all)`) — a fixed strategy changes performance, not
/// correctness.
///
/// # Panics
///
/// Panics when called with [`Strategy::MultiDim`]; run the search
/// ([`crate::analyze`]) for that.
pub fn fixed_mapping(
    strategy: Strategy,
    nest: &NestInfo,
    constraints: &ConstraintSet,
) -> MappingDecision {
    let depth = nest.depth().max(1);
    let forced: Vec<bool> = (0..depth)
        .map(|l| {
            constraints
                .span_all_levels()
                .iter()
                .any(|(lvl, _)| *lvl == l)
        })
        .collect();

    let levels: Vec<LevelMapping> = match strategy {
        Strategy::MultiDim => panic!("MultiDim is not a fixed strategy; use analyze()"),
        Strategy::OneD => (0..depth)
            .map(|l| {
                if l == 0 {
                    LevelMapping {
                        dim: Dim::X,
                        block_size: 256,
                        span: if forced[0] { Span::All } else { Span::ONE },
                    }
                } else {
                    // Inner levels sequential within the thread.
                    LevelMapping {
                        dim: Dim(l as u8),
                        block_size: 1,
                        span: Span::All,
                    }
                }
            })
            .collect(),
        Strategy::ThreadBlockThread => fixed_two_level(depth, &forced, 1, 1024),
        Strategy::WarpBased => fixed_two_level(depth, &forced, 16, WARP_SIZE),
    };
    MappingDecision::new(levels)
}

/// Shared shape of the two fixed 2D strategies: outer on y with
/// `outer_block` threads, inner on x with `inner_block` threads and
/// `Span(all)`, deeper levels sequential.
fn fixed_two_level(
    depth: usize,
    forced: &[bool],
    outer_block: u32,
    inner_block: u32,
) -> Vec<LevelMapping> {
    (0..depth)
        .map(|l| {
            if l == 0 {
                if depth == 1 {
                    // Degenerate: a single level behaves like 1D.
                    LevelMapping {
                        dim: Dim::X,
                        block_size: 256,
                        span: if forced[0] { Span::All } else { Span::ONE },
                    }
                } else {
                    LevelMapping {
                        dim: Dim::Y,
                        block_size: outer_block,
                        span: if forced[0] { Span::All } else { Span::ONE },
                    }
                }
            } else if l == 1 {
                LevelMapping {
                    dim: Dim::X,
                    block_size: inner_block,
                    span: Span::All,
                }
            } else {
                LevelMapping {
                    dim: Dim(l as u8),
                    block_size: 1,
                    span: Span::All,
                }
            }
        })
        .collect()
}

/// Reasons a fixed strategy's mapping is what it is — used in tests to
/// assert the Figure 7 equivalence of DOP formulas.
pub fn figure7_dop(strategy: Strategy, outer: i64, inner: i64) -> u64 {
    match strategy {
        Strategy::ThreadBlockThread => outer as u64 * inner.clamp(1, 1024) as u64,
        Strategy::WarpBased => outer as u64 * inner.clamp(1, WARP_SIZE as i64) as u64,
        Strategy::OneD => outer as u64,
        Strategy::MultiDim => panic!("no fixed DOP formula for MultiDim"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::collect_constraints;
    use crate::constraint::Weights;
    use multidim_device::GpuSpec;
    use multidim_ir::{Bindings, Program, ProgramBuilder, ReduceOp, ScalarKind, Size};

    fn nested(r: i64, c: i64) -> (Program, Bindings, NestInfo, ConstraintSet) {
        let mut b = ProgramBuilder::new("sumRows");
        let rs = b.sym("R");
        let cs = b.sym("C");
        let m = b.input("m", ScalarKind::F32, &[Size::sym(rs), Size::sym(cs)]);
        let root = b.map(Size::sym(rs), |b, row| {
            b.reduce(Size::sym(cs), ReduceOp::Add, |b, col| {
                b.read(m, &[row.into(), col.into()])
            })
        });
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(rs, r);
        bind.bind(cs, c);
        let nest = NestInfo::of(&p);
        let cs2 = collect_constraints(
            &p,
            &nest,
            &bind,
            &GpuSpec::tesla_k20c(),
            &Weights::default(),
        );
        (p, bind, nest, cs2)
    }

    #[test]
    fn one_d_parallelizes_outer_only() {
        let (_, _, nest, cs) = nested(1000, 1000);
        let m = fixed_mapping(Strategy::OneD, &nest, &cs);
        assert_eq!(m.level(0).dim, Dim::X);
        assert_eq!(m.level(1).block_size, 1);
        assert_eq!(m.dop(&[1000, 1000]), 1000);
    }

    #[test]
    fn thread_block_thread_matches_figure7a() {
        let (_, _, nest, cs) = nested(1000, 8000);
        let m = fixed_mapping(Strategy::ThreadBlockThread, &nest, &cs);
        assert_eq!(m.level(0).dim, Dim::Y);
        assert_eq!(m.level(0).block_size, 1);
        assert_eq!(m.level(1).dim, Dim::X);
        assert_eq!(m.level(1).block_size, 1024);
        // DOP = I * min(J, MAX_BLOCK_SIZE).
        assert_eq!(
            m.dop(&[1000, 8000]),
            figure7_dop(Strategy::ThreadBlockThread, 1000, 8000)
        );
    }

    #[test]
    fn warp_based_matches_figure7b() {
        let (_, _, nest, cs) = nested(1000, 8000);
        let m = fixed_mapping(Strategy::WarpBased, &nest, &cs);
        assert_eq!(m.level(0).block_size, 16);
        assert_eq!(m.level(1).block_size, 32);
        assert_eq!(
            m.dop(&[1000, 8000]),
            figure7_dop(Strategy::WarpBased, 1000, 8000)
        );
    }

    #[test]
    fn fixed_strategies_respect_hard_constraints() {
        let (_, _, nest, cs) = nested(512, 512);
        for s in [
            Strategy::OneD,
            Strategy::ThreadBlockThread,
            Strategy::WarpBased,
        ] {
            let m = fixed_mapping(s, &nest, &cs);
            assert!(cs.hard_ok(&m), "{s} produced a hard-invalid mapping {m}");
        }
    }

    #[test]
    fn single_level_strategies_coincide() {
        let mut b = ProgramBuilder::new("flat");
        let n = b.sym("N");
        let x = b.input("x", ScalarKind::F32, &[Size::sym(n)]);
        let root = b.map(Size::sym(n), |b, i| b.read(x, &[i.into()]));
        let p = b.finish_map(root, "out", ScalarKind::F32).unwrap();
        let mut bind = Bindings::new();
        bind.bind(n, 4096);
        let nest = NestInfo::of(&p);
        let cs = collect_constraints(
            &p,
            &nest,
            &bind,
            &GpuSpec::tesla_k20c(),
            &Weights::default(),
        );
        let a = fixed_mapping(Strategy::OneD, &nest, &cs);
        let b2 = fixed_mapping(Strategy::ThreadBlockThread, &nest, &cs);
        let c = fixed_mapping(Strategy::WarpBased, &nest, &cs);
        assert_eq!(a, b2);
        assert_eq!(b2, c);
    }

    #[test]
    #[should_panic(expected = "not a fixed strategy")]
    fn multidim_is_not_fixed() {
        let (_, _, nest, cs) = nested(8, 8);
        fixed_mapping(Strategy::MultiDim, &nest, &cs);
    }
}
