//! Mapping constraints (Section IV-C, Table II).
//!
//! Constraints are classified along two orthogonal axes:
//!
//! * **weight** — *hard* constraints must hold for correctness (span
//!   requirements, block-size limits); *soft* constraints are scored
//!   performance hints, each with a derived weight = intrinsic weight ×
//!   execution count ÷ branch discount (Figure 8).
//! * **scope** — *local* constraints concern one pattern/level; *global*
//!   constraints relate several (the conservative-span merge, the minimum
//!   total block size).

use crate::params::{MappingDecision, Span};
use std::fmt;

/// Why a level is forced to `Span(all)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanAllReason {
    /// The pattern needs synchronization across its iterations (`Reduce`,
    /// `Filter`, `GroupBy`); `ControlDOP` may upgrade to `Split(k)` because
    /// a combiner kernel can merge partials.
    Synchronization,
    /// The extent is unknown at launch time; the level cannot be chunked,
    /// so `Split` is not applicable either.
    DynamicSize,
}

impl fmt::Display for SpanAllReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpanAllReason::Synchronization => write!(f, "synchronization"),
            SpanAllReason::DynamicSize => write!(f, "dynamic size"),
        }
    }
}

/// A hard constraint: must be satisfied by every candidate mapping.
#[derive(Debug, Clone, PartialEq)]
pub enum HardConstraint {
    /// `level` must use `Span(all)` (local; merged per level, which is the
    /// Table II "most conservative span" global rule).
    SpanAll {
        /// Which nest level.
        level: usize,
        /// Why (controls whether `Split` may later replace it).
        reason: SpanAllReason,
    },
    /// Total threads per block may not exceed the device limit (global).
    MaxBlockThreads(u32),
    /// Parallelizing sync-needing levels in-block consumes shared memory
    /// (one slot per block thread); the block may not need more than the
    /// device provides (global).
    SmemCapacity {
        /// Bytes available per block.
        bytes: u32,
        /// Bytes needed per thread of the block when any sync level is
        /// block-parallel.
        bytes_per_thread: u32,
    },
    /// Two *nested* synchronization-requiring levels cannot both be
    /// block-parallel: the inner level's barrier would sit inside the
    /// outer level's lane-dependent loop (undefined behaviour on real
    /// hardware; rejected by the code generator). One of the two must run
    /// sequentially per thread (block size 1).
    NestedSyncExclusive {
        /// The enclosing span-all level.
        outer: usize,
        /// The enclosed span-all level.
        inner: usize,
    },
}

impl fmt::Display for HardConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HardConstraint::SpanAll { level, reason } => {
                write!(f, "L{level} must span all ({reason})")
            }
            HardConstraint::MaxBlockThreads(max) => write!(f, "block ≤ {max} threads"),
            HardConstraint::SmemCapacity {
                bytes,
                bytes_per_thread,
            } => {
                write!(f, "smem ≤ {bytes}B at {bytes_per_thread}B/thread")
            }
            HardConstraint::NestedSyncExclusive { outer, inner } => {
                write!(f, "nested sync L{outer}/L{inner} not both block-parallel")
            }
        }
    }
}

/// The performance hint a soft constraint encodes.
#[derive(Debug, Clone, PartialEq)]
pub enum SoftKind {
    /// This level issues sequential memory requests: give it dimension `x`
    /// (Table II row 3, first half).
    DimX {
        /// Which nest level.
        level: usize,
    },
    /// …and a block size that is a multiple of the warp width, so whole
    /// warps coalesce (Table II row 3, second half).
    WarpMultiple {
        /// Which nest level.
        level: usize,
    },
    /// Combined block size at least `min` threads (Table II row 4).
    MinBlockThreads {
        /// Threshold (64 in the paper).
        min: u32,
    },
    /// A level's block size should not exceed its extent (oversized blocks
    /// idle; one of the "common optimizations GPU experts apply").
    NoIdleThreads {
        /// Which nest level.
        level: usize,
        /// The level's (estimated) extent.
        extent: i64,
    },
    /// Mild preference for a moderate total block size (register/occupancy
    /// sweet spot around 256 threads).
    ModerateBlock,
}

/// A weighted soft constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftConstraint {
    /// What is preferred.
    pub kind: SoftKind,
    /// Derived weight: intrinsic × execution count ÷ branch discount.
    pub weight: f64,
}

impl SoftConstraint {
    /// Does `mapping` satisfy this constraint?
    pub fn satisfied(&self, mapping: &MappingDecision) -> bool {
        match &self.kind {
            SoftKind::DimX { level } => mapping.level(*level).dim.is_x(),
            SoftKind::WarpMultiple { level } => {
                // Compound with the dimension choice (Table II row 3):
                // a warp-multiple block only helps coalescing when the
                // level actually sits on dimension x.
                let lm = mapping.level(*level);
                lm.dim.is_x()
                    && lm.block_size >= multidim_device::WARP_SIZE
                    && lm.block_size.is_multiple_of(multidim_device::WARP_SIZE)
            }
            SoftKind::MinBlockThreads { min } => mapping.block_threads() >= *min as u64,
            SoftKind::NoIdleThreads { level, extent } => {
                mapping.level(*level).block_size as i64 <= (*extent).max(1)
            }
            SoftKind::ModerateBlock => {
                let t = mapping.block_threads();
                (64..=512).contains(&t)
            }
        }
    }
}

impl fmt::Display for SoftConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            SoftKind::DimX { level } => write!(f, "L{level}→DimX (w={:.3})", self.weight),
            SoftKind::WarpMultiple { level } => {
                write!(f, "L{level} block %32==0 (w={:.3})", self.weight)
            }
            SoftKind::MinBlockThreads { min } => {
                write!(f, "block≥{min} (w={:.3})", self.weight)
            }
            SoftKind::NoIdleThreads { level, extent } => {
                write!(f, "L{level} block≤{extent} (w={:.3})", self.weight)
            }
            SoftKind::ModerateBlock => write!(f, "block∈[64,512] (w={:.3})", self.weight),
        }
    }
}

/// Intrinsic weights for the soft-constraint categories.
///
/// The paper: "we assign the highest intrinsic weight on the soft constraint
/// that allows memory coalescing" (bandwidth-bound workloads dominate).
#[derive(Debug, Clone, PartialEq)]
pub struct Weights {
    /// Coalescing (`DimX`): the paper's highest.
    pub coalesce: f64,
    /// Warp-multiple block size for coalescing levels.
    pub warp_multiple: f64,
    /// Minimum total block threads.
    pub min_block: f64,
    /// No idle threads (block ≤ extent).
    pub no_idle: f64,
    /// Moderate block-size preference.
    pub moderate_block: f64,
}

impl Default for Weights {
    fn default() -> Self {
        Weights {
            coalesce: 10.0,
            warp_multiple: 2.0,
            min_block: 3.0,
            no_idle: 1.5,
            moderate_block: 0.05,
        }
    }
}

/// The full constraint set for one program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConstraintSet {
    /// Hard constraints.
    pub hard: Vec<HardConstraint>,
    /// Weighted soft constraints.
    pub soft: Vec<SoftConstraint>,
}

impl ConstraintSet {
    /// The levels forced to `Span(all)`, with the *most restrictive* reason
    /// (dynamic size precludes `Split`).
    pub fn span_all_levels(&self) -> Vec<(usize, SpanAllReason)> {
        let mut out: Vec<(usize, SpanAllReason)> = Vec::new();
        for h in &self.hard {
            if let HardConstraint::SpanAll { level, reason } = h {
                match out.iter_mut().find(|(l, _)| l == level) {
                    Some((_, r)) => {
                        if *reason == SpanAllReason::DynamicSize {
                            *r = SpanAllReason::DynamicSize;
                        }
                    }
                    None => out.push((*level, *reason)),
                }
            }
        }
        out
    }

    /// Check every hard constraint against `mapping`.
    pub fn hard_ok(&self, mapping: &MappingDecision) -> bool {
        self.first_violation(mapping).is_none()
    }

    /// The first hard constraint `mapping` violates, if any — the prune
    /// reason attached to rejected candidates in the trace.
    pub fn first_violation(&self, mapping: &MappingDecision) -> Option<&HardConstraint> {
        self.hard.iter().find(|h| !self.holds(h, mapping))
    }

    fn holds(&self, h: &HardConstraint, mapping: &MappingDecision) -> bool {
        match h {
            HardConstraint::SpanAll { level, .. } => {
                matches!(mapping.level(*level).span, Span::All | Span::Split(_))
            }
            HardConstraint::MaxBlockThreads(max) => mapping.block_threads() <= *max as u64,
            HardConstraint::SmemCapacity {
                bytes,
                bytes_per_thread,
            } => {
                // Only binds when some sync level is parallelized in-block.
                let any_parallel_sync = self
                    .span_all_levels()
                    .iter()
                    .any(|(l, _)| mapping.level(*l).block_size > 1);
                !any_parallel_sync
                    || mapping.block_threads() * *bytes_per_thread as u64 <= *bytes as u64
            }
            HardConstraint::NestedSyncExclusive { outer, inner } => {
                mapping.level(*outer).block_size == 1 || mapping.level(*inner).block_size == 1
            }
        }
    }

    /// Sum of satisfied soft weights (the mapping's raw score).
    pub fn score(&self, mapping: &MappingDecision) -> f64 {
        self.soft
            .iter()
            .filter(|s| s.satisfied(mapping))
            .map(|s| s.weight)
            .sum()
    }

    /// The largest single soft weight (used to normalize scores into the
    /// paper's ~0–2.5 plotting range for Figure 17).
    pub fn max_weight(&self) -> f64 {
        self.soft.iter().map(|s| s.weight).fold(0.0, f64::max)
    }

    /// Score normalized by the maximum single weight.
    pub fn normalized_score(&self, mapping: &MappingDecision) -> f64 {
        let m = self.max_weight();
        if m == 0.0 {
            0.0
        } else {
            self.score(mapping) / m
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Dim, LevelMapping};

    fn mapping(levels: Vec<(Dim, u32, Span)>) -> MappingDecision {
        MappingDecision::new(
            levels
                .into_iter()
                .map(|(dim, block_size, span)| LevelMapping {
                    dim,
                    block_size,
                    span,
                })
                .collect(),
        )
    }

    #[test]
    fn span_all_hard_constraint() {
        let cs = ConstraintSet {
            hard: vec![HardConstraint::SpanAll {
                level: 1,
                reason: SpanAllReason::Synchronization,
            }],
            soft: vec![],
        };
        let ok = mapping(vec![(Dim::Y, 4, Span::ONE), (Dim::X, 32, Span::All)]);
        let split_ok = mapping(vec![(Dim::Y, 4, Span::ONE), (Dim::X, 32, Span::Split(4))]);
        let bad = mapping(vec![(Dim::Y, 4, Span::ONE), (Dim::X, 32, Span::ONE)]);
        assert!(cs.hard_ok(&ok));
        assert!(cs.hard_ok(&split_ok));
        assert!(!cs.hard_ok(&bad));
    }

    #[test]
    fn max_block_threads() {
        let cs = ConstraintSet {
            hard: vec![HardConstraint::MaxBlockThreads(1024)],
            soft: vec![],
        };
        assert!(cs.hard_ok(&mapping(vec![(Dim::X, 1024, Span::ONE)])));
        assert!(!cs.hard_ok(&mapping(vec![
            (Dim::X, 1024, Span::ONE),
            (Dim::Y, 2, Span::ONE)
        ])));
    }

    #[test]
    fn smem_capacity_binds_only_with_parallel_sync() {
        let cs = ConstraintSet {
            hard: vec![
                HardConstraint::SpanAll {
                    level: 0,
                    reason: SpanAllReason::Synchronization,
                },
                HardConstraint::SmemCapacity {
                    bytes: 48 * 1024,
                    bytes_per_thread: 64,
                },
            ],
            soft: vec![],
        };
        // 1024 threads * 64B = 64KB > 48KB: rejected when sync level parallel.
        assert!(!cs.hard_ok(&mapping(vec![(Dim::X, 1024, Span::All)])));
        // Sequential sync level (block 1): no smem needed.
        assert!(cs.hard_ok(&mapping(vec![(Dim::X, 1, Span::All)])));
        // 512 threads * 64B = 32KB: fine.
        assert!(cs.hard_ok(&mapping(vec![(Dim::X, 512, Span::All)])));
    }

    #[test]
    fn soft_scoring_sums_satisfied() {
        let cs = ConstraintSet {
            hard: vec![],
            soft: vec![
                SoftConstraint {
                    kind: SoftKind::DimX { level: 1 },
                    weight: 10.0,
                },
                SoftConstraint {
                    kind: SoftKind::WarpMultiple { level: 1 },
                    weight: 2.0,
                },
                SoftConstraint {
                    kind: SoftKind::MinBlockThreads { min: 64 },
                    weight: 3.0,
                },
            ],
        };
        let good = mapping(vec![(Dim::Y, 4, Span::ONE), (Dim::X, 32, Span::All)]);
        assert_eq!(cs.score(&good), 15.0);
        let bad = mapping(vec![(Dim::X, 4, Span::ONE), (Dim::Y, 8, Span::All)]);
        // DimX{1} unsatisfied, WarpMultiple unsatisfied (8 < 32),
        // MinBlockThreads unsatisfied (32 < 64).
        assert_eq!(cs.score(&bad), 0.0);
    }

    #[test]
    fn no_idle_threads() {
        let c = SoftConstraint {
            kind: SoftKind::NoIdleThreads {
                level: 0,
                extent: 50,
            },
            weight: 1.0,
        };
        assert!(c.satisfied(&mapping(vec![(Dim::Y, 32, Span::ONE)])));
        assert!(!c.satisfied(&mapping(vec![(Dim::Y, 64, Span::ONE)])));
    }

    #[test]
    fn normalized_score_bounded_by_constraint_count() {
        let cs = ConstraintSet {
            hard: vec![],
            soft: vec![
                SoftConstraint {
                    kind: SoftKind::DimX { level: 0 },
                    weight: 100.0,
                },
                SoftConstraint {
                    kind: SoftKind::MinBlockThreads { min: 64 },
                    weight: 10.0,
                },
            ],
        };
        let m = mapping(vec![(Dim::X, 64, Span::ONE)]);
        assert!((cs.normalized_score(&m) - 1.1).abs() < 1e-12);
    }

    #[test]
    fn span_all_levels_prefers_dynamic() {
        let cs = ConstraintSet {
            hard: vec![
                HardConstraint::SpanAll {
                    level: 1,
                    reason: SpanAllReason::Synchronization,
                },
                HardConstraint::SpanAll {
                    level: 1,
                    reason: SpanAllReason::DynamicSize,
                },
            ],
            soft: vec![],
        };
        assert_eq!(cs.span_all_levels(), vec![(1, SpanAllReason::DynamicSize)]);
    }
}
