//! Mapping parameters (Section IV-A).
//!
//! A mapping decision assigns, to each nest level: a logical **dimension**
//! (x is the fastest-varying — adjacent threads differ in x, so x is where
//! coalescing happens), a **block size** (threads per block along that
//! dimension), and a **span/split** controlling the degree of parallelism.

use multidim_ir::{Bindings, Size};
use std::fmt;

/// A logical dimension. `Dim(0)` is `x` (fastest varying), `Dim(1)` is `y`,
/// and so on; the number of logical dimensions is unbounded (footnote 3 of
/// the paper), with dimensions ≥ 3 linearized onto the hardware's 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Dim(pub u8);

impl Dim {
    /// The coalescing dimension `x`.
    pub const X: Dim = Dim(0);
    /// Dimension `y`.
    pub const Y: Dim = Dim(1);
    /// Dimension `z`.
    pub const Z: Dim = Dim(2);

    /// `true` for the fastest-varying dimension.
    pub fn is_x(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "x"),
            1 => write!(f, "y"),
            2 => write!(f, "z"),
            3 => write!(f, "w"),
            n => write!(f, "d{n}"),
        }
    }
}

/// Degree-of-parallelism control for one level (Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Span {
    /// Each thread covers `n` points of the index domain; `Span(1)` is full
    /// parallelization.
    Span(i64),
    /// One block covers the whole dimension (all indices strided across the
    /// block's threads). Required when the extent is unknown at launch or
    /// the pattern needs cross-iteration synchronization.
    All,
    /// Like [`Span::All`] but the dimension is cut into `k` block-sized
    /// sections, at the price of a combiner kernel that merges the `k`
    /// partial results.
    Split(i64),
}

impl Span {
    /// The common full-parallel case.
    pub const ONE: Span = Span::Span(1);
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Span(n) => write!(f, "span({n})"),
            Span::All => write!(f, "span(all)"),
            Span::Split(k) => write!(f, "split({k})"),
        }
    }
}

/// The mapping for one nest level.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LevelMapping {
    /// Assigned logical dimension.
    pub dim: Dim,
    /// Threads along `dim` in one block.
    pub block_size: u32,
    /// DOP control.
    pub span: Span,
}

impl fmt::Display for LevelMapping {
    /// Paper notation: `[DimY, 64, span(1)]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[Dim{}, {}, {}]",
            self.dim.to_string().to_uppercase(),
            self.block_size,
            self.span
        )
    }
}

/// A complete mapping decision: one [`LevelMapping`] per nest level,
/// outermost first.
///
/// # Examples
///
/// ```
/// use multidim_mapping::{Dim, LevelMapping, MappingDecision, Span};
///
/// // Figure 9's sumRows mapping: level 0 [DimY, 64, span(1)],
/// // level 1 [DimX, 32, span(all)].
/// let m = MappingDecision::new(vec![
///     LevelMapping { dim: Dim::Y, block_size: 64, span: Span::ONE },
///     LevelMapping { dim: Dim::X, block_size: 32, span: Span::All },
/// ]);
/// assert_eq!(m.block_threads(), 64 * 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MappingDecision {
    levels: Vec<LevelMapping>,
}

impl MappingDecision {
    /// Wrap per-level mappings (outermost first).
    pub fn new(levels: Vec<LevelMapping>) -> Self {
        assert!(!levels.is_empty(), "a mapping needs at least one level");
        MappingDecision { levels }
    }

    /// Per-level mappings, outermost first.
    pub fn levels(&self) -> &[LevelMapping] {
        &self.levels
    }

    /// The mapping for `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn level(&self, level: usize) -> &LevelMapping {
        &self.levels[level]
    }

    /// Mutable access for `ControlDOP`'s span rewriting.
    pub fn level_mut(&mut self, level: usize) -> &mut LevelMapping {
        &mut self.levels[level]
    }

    /// Nest depth covered.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Total threads per block (product over levels).
    pub fn block_threads(&self) -> u64 {
        self.levels.iter().map(|l| l.block_size as u64).product()
    }

    /// Degree of parallelism under `extents` (one per level, outermost
    /// first): `Span(n)` contributes `ceil(extent/n)`, `Span(all)`
    /// contributes the *block size* (Section IV-D), `Split(k)` contributes
    /// `block_size * k`.
    pub fn dop(&self, extents: &[i64]) -> u64 {
        assert_eq!(extents.len(), self.levels.len());
        self.levels
            .iter()
            .zip(extents)
            .map(|(l, &ext)| match l.span {
                Span::Span(n) => {
                    let n = n.max(1);
                    (((ext + n - 1) / n).max(1)) as u64
                }
                Span::All => l.block_size as u64,
                Span::Split(k) => l.block_size as u64 * k.max(1) as u64,
            })
            .product()
    }

    /// Number of thread blocks launched along each level under `extents`
    /// (grid shape in the same level order).
    pub fn grid_blocks(&self, extents: &[i64]) -> Vec<u64> {
        self.levels
            .iter()
            .zip(extents)
            .map(|(l, &ext)| match l.span {
                Span::Span(n) => {
                    let per_block = l.block_size as i64 * n.max(1);
                    ((ext + per_block - 1) / per_block).max(1) as u64
                }
                Span::All => 1,
                Span::Split(k) => k.max(1) as u64,
            })
            .collect()
    }

    /// Evaluate the per-level extents of a nest under `bindings`.
    pub fn eval_extents(sizes: &[Size], bindings: &Bindings) -> Vec<i64> {
        sizes.iter().map(|s| s.eval_or_default(bindings)).collect()
    }
}

impl fmt::Display for MappingDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, l) in self.levels.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "L{i}:{l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig9() -> MappingDecision {
        MappingDecision::new(vec![
            LevelMapping {
                dim: Dim::Y,
                block_size: 64,
                span: Span::ONE,
            },
            LevelMapping {
                dim: Dim::X,
                block_size: 32,
                span: Span::All,
            },
        ])
    }

    #[test]
    fn block_threads_is_product() {
        assert_eq!(fig9().block_threads(), 2048);
    }

    #[test]
    fn dop_span1_uses_extent() {
        // Figure 7(a): DOP = I * min(J, MAX_BLOCK) via span(all) -> block.
        let m = fig9();
        assert_eq!(m.dop(&[1000, 8192]), 1000 * 32);
    }

    #[test]
    fn dop_span_n_divides() {
        let m = MappingDecision::new(vec![LevelMapping {
            dim: Dim::X,
            block_size: 64,
            span: Span::Span(4),
        }]);
        assert_eq!(m.dop(&[1000]), 250);
    }

    #[test]
    fn dop_split_multiplies_block() {
        let m = MappingDecision::new(vec![LevelMapping {
            dim: Dim::X,
            block_size: 32,
            span: Span::Split(3),
        }]);
        assert_eq!(m.dop(&[100_000]), 96);
    }

    #[test]
    fn grid_blocks_fig6() {
        // Figure 6(a): block 64x16 over MxN domain with span(1) both ->
        // M/64 x N/16 blocks.
        let m = MappingDecision::new(vec![
            LevelMapping {
                dim: Dim::X,
                block_size: 64,
                span: Span::ONE,
            },
            LevelMapping {
                dim: Dim::Y,
                block_size: 16,
                span: Span::ONE,
            },
        ]);
        assert_eq!(m.grid_blocks(&[640, 160]), vec![10, 10]);
        // Figure 6(c): split(3) on x, span(2) on y with block 32 wide ->
        // 3 x N/(16*2)... (shapes differ; just check split count).
        let m2 = MappingDecision::new(vec![
            LevelMapping {
                dim: Dim::X,
                block_size: 32,
                span: Span::Split(3),
            },
            LevelMapping {
                dim: Dim::Y,
                block_size: 16,
                span: Span::Span(2),
            },
        ]);
        assert_eq!(m2.grid_blocks(&[1024, 320]), vec![3, 10]);
    }

    #[test]
    fn display_matches_paper_notation() {
        let l = LevelMapping {
            dim: Dim::Y,
            block_size: 64,
            span: Span::ONE,
        };
        assert_eq!(l.to_string(), "[DimY, 64, span(1)]");
        let s = LevelMapping {
            dim: Dim::X,
            block_size: 32,
            span: Span::Split(3),
        };
        assert_eq!(s.to_string(), "[DimX, 32, split(3)]");
    }

    #[test]
    fn dim_names() {
        assert_eq!(Dim(0).to_string(), "x");
        assert_eq!(Dim(3).to_string(), "w");
        assert_eq!(Dim(5).to_string(), "d5");
        assert!(Dim::X.is_x());
        assert!(!Dim::Z.is_x());
    }
}

#[cfg(test)]
mod extent_tests {
    use super::*;
    use multidim_ir::SymId;

    #[test]
    fn eval_extents_defaults_unknowns() {
        let sizes = vec![Size::sym(SymId(0)), Size::from(7), Size::dynamic()];
        let mut b = Bindings::new();
        b.bind(SymId(0), 42);
        assert_eq!(MappingDecision::eval_extents(&sizes, &b), vec![42, 7, 1000]);
    }

    #[test]
    fn grid_blocks_for_all_and_split() {
        let m = MappingDecision::new(vec![
            LevelMapping {
                dim: Dim::Y,
                block_size: 8,
                span: Span::ONE,
            },
            LevelMapping {
                dim: Dim::X,
                block_size: 32,
                span: Span::All,
            },
        ]);
        assert_eq!(m.grid_blocks(&[100, 9999]), vec![13, 1]);
        let s = MappingDecision::new(vec![LevelMapping {
            dim: Dim::X,
            block_size: 32,
            span: Span::Split(5),
        }]);
        assert_eq!(s.grid_blocks(&[9999]), vec![5]);
    }

    #[test]
    fn display_roundtrip_multi_level() {
        let m = MappingDecision::new(vec![
            LevelMapping {
                dim: Dim::Z,
                block_size: 2,
                span: Span::Span(4),
            },
            LevelMapping {
                dim: Dim::Y,
                block_size: 4,
                span: Span::ONE,
            },
            LevelMapping {
                dim: Dim::X,
                block_size: 32,
                span: Span::All,
            },
        ]);
        assert_eq!(
            m.to_string(),
            "L0:[DimZ, 2, span(4)] L1:[DimY, 4, span(1)] L2:[DimX, 32, span(all)]"
        );
        assert_eq!(m.depth(), 3);
        assert_eq!(m.block_threads(), 256);
    }
}
